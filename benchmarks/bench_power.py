"""Extension bench: power/energy payoff of the bespoke methodology.

The paper's motivation is ultra-low power; the enabled analyses of prior
work [5, 6] quantify it.  This bench reports, per (design, benchmark):

* bespoke leakage and total-energy savings on a representative concrete
  run (prior work [4]'s payoff), and
* the input-independent peak switching bound from symbolic activity
  (prior work [5]) next to the measured concrete peak, which must never
  exceed it.
"""

import pytest
from conftest import emit

from repro.analysis import (analyze_peak_power, compare_power,
                            concrete_peak)
from repro.bespoke import generate_bespoke
from repro.reporting.tables import render_table
from repro.workloads import WORKLOADS, build_target

PAIRS = [("omsp430", "tea8"), ("omsp430", "mult"), ("bm32", "Div"),
         ("dr5", "binSearch")]


@pytest.fixture(scope="module")
def power_rows(grid):
    rows = []
    for design, bench in PAIRS:
        result = grid[design][bench]
        workload = WORKLOADS[bench]
        original = build_target(design, workload)
        bespoke_nl = generate_bespoke(original.netlist, result.profile)
        bespoke = build_target(design, workload, netlist=bespoke_nl)
        savings = compare_power(original, bespoke, workload.cases[0])
        rows.append([design, bench,
                     f"{savings.original.total_energy:.0f}",
                     f"{savings.bespoke.total_energy:.0f}",
                     f"{savings.energy_saving_percent:.1f}",
                     f"{savings.leakage_saving_percent:.1f}"])
    return rows


def test_bespoke_power_savings(benchmark, power_rows, artifact_dir):
    text = ("Extension: bespoke power payoff (normalized units)\n"
            + render_table(
                ["Design", "Benchmark", "Energy (orig)",
                 "Energy (bespoke)", "% energy saved",
                 "% leakage saved"], power_rows))
    emit(artifact_dir, "power_savings.txt", text)
    for row in power_rows:
        assert float(row[4]) > 0    # energy saving
        assert float(row[5]) > 0    # leakage saving


def test_peak_power_bound_table(benchmark, artifact_dir):
    rows = []
    for design, bench in PAIRS[:2]:
        workload = WORKLOADS[bench]
        target = build_target(design, workload)
        peak = analyze_peak_power(target, application=bench)
        worst_concrete = max(concrete_peak(target, case)
                             for case in workload.cases)
        rows.append([design, bench, f"{peak.peak_bound:.0f}",
                     f"{worst_concrete:.0f}",
                     f"{100 * worst_concrete / peak.peak_bound:.0f}%"])
        assert worst_concrete <= peak.peak_bound + 1e-9
    text = ("Extension: input-independent peak switching bounds "
            "(prior work [5])\n"
            + render_table(
                ["Design", "Benchmark", "Symbolic bound",
                 "Worst concrete", "Bound utilization"], rows))
    emit(artifact_dir, "peak_power.txt", text)


def test_power_gating_opportunity(benchmark, artifact_dir):
    """Module-oblivious power gating (prior work [6]): beyond the
    never-exercised prune set, gates exercised on only *some* execution
    paths can sleep whenever execution avoids them."""
    from repro.analysis import analyze_gating
    rows = []
    for design, bench in (("omsp430", "binSearch"), ("dr5", "Div")):
        target = build_target(design, WORKLOADS[bench])
        rep = analyze_gating(target, application=bench)
        rows.append([design, bench, rep.paths_considered,
                     len(rep.always), len(rep.sometimes),
                     len(rep.never),
                     f"{rep.gateable_area_percent:.1f}"])
        assert rep.paths_considered >= 2
    text = ("Extension: power-gating opportunity (prior work [6])\n"
            + render_table(
                ["Design", "Benchmark", "Executions", "Always on",
                 "Sometimes", "Never", "Gateable area %"], rows))
    emit(artifact_dir, "power_gating.txt", text)


def test_power_measurement_runtime(benchmark):
    workload = WORKLOADS["tea8"]
    target = build_target("dr5", workload)
    from repro.analysis import measure_concrete_run
    report = benchmark.pedantic(
        lambda: measure_concrete_run(target, workload.cases[0]),
        rounds=1, iterations=1)
    assert report.cycles > 0
