"""Regenerates paper Figure 5: percentage reduction of exercisable gate
count per benchmark, grouped by design.

Paper claim: "Benchmarks run on MSP430 processor have a higher reduction
in exercisable gate count compared to MIPS and RISCV processors because
of the presence of unused peripherals in MSP430."
"""

from conftest import emit

from repro.reporting import figure5


def test_figure5(benchmark, grid, designs, benchmarks_list,
                 artifact_dir):
    text = figure5(grid, benchmarks_list, designs)
    emit(artifact_dir, "figure5.txt", text)
    assert "Figure 5" in text

    # the paper's headline claim: omsp430 wins on every benchmark
    for bench in benchmarks_list:
        assert grid["omsp430"][bench].reduction_percent >= \
            grid["bm32"][bench].reduction_percent
        assert grid["omsp430"][bench].reduction_percent > \
            grid["dr5"][bench].reduction_percent


def test_peripheral_gates_drive_the_gap(benchmark, grid):
    """The omsp430-vs-dr5 gap should come from peripheral logic: the
    multiplier/watchdog/GPIO/timer cells must be absent from omsp430's
    exercisable set for non-multiplying benchmarks."""
    result = grid["omsp430"]["tea8"]
    nl = result.profile.netlist
    ex = result.profile.exercised_nets()
    for prefix in ("mpy_op1", "wdt_cnt", "ta_cnt", "gpio_out_r",
                   "ivec_r"):
        nets = nl.find_nets(prefix)
        assert nets, prefix
        assert not any(ex[n] for n in nets), (
            f"{prefix} marked exercisable in a benchmark that never "
            f"touches it")


def test_mult_exercises_multiplier(benchmark, grid):
    result = grid["omsp430"]["mult"]
    nl = result.profile.netlist
    ex = result.profile.exercised_nets()
    assert any(ex[n] for n in nl.find_nets("mpy_op1"))


def test_figure5_render_speed(benchmark, grid, designs, benchmarks_list):
    out = benchmark(lambda: figure5(grid, benchmarks_list, designs))
    assert out
