"""Ablation: symbol-propagation customization (paper Figure 4 and
section 3.4).

Left sub-figure: circuit inputs are propagated as *identified* symbols,
so when the same unknown reconverges at a gate the output resolves
(``a XOR a = 0``).  Right sub-figure: anonymous Xs carry no identity,
so the same circuit must output X.  This bench reproduces exactly that
circuit shape -- one symbolic input fanning out through two paths that
reconverge at an XOR -- and quantifies both the precision gap and the
cost gap on the event kernel.
"""

import pytest
from conftest import emit

from repro.logic import Logic, SymBit
from repro.netlist import Netlist
from repro.reporting.tables import render_table
from repro.rtl import Design
from repro.sim import EventSim, LabeledSymbolDomain, PlainXDomain

WIDTH = 8


def reconvergent_design(width=WIDTH):
    """Figure 4's circuit, widened: each input bit takes two paths
    (a buffer and a double inverter) that reconverge at an XOR."""
    d = Design("fig4")
    a = d.input("a", width)
    path1 = d.name_sig("p1", ~(~a))
    path2 = d.name_sig("p2", a)
    d.output("y", path1 ^ path2)
    return d.finalize()


def drive_symbolic(sim, nl, width, labeled):
    for i in range(width):
        net = nl.net_index(f"a[{i}]")
        sim.poke(net, SymBit.symbol(f"a{i}") if labeled else Logic.X)
    sim.settle()


def count_unknown_outputs(sim, nl, width):
    return sum(1 for i in range(width)
               if not sim.get_logic_by_name(f"y[{i}]").is_known)


@pytest.fixture(scope="module")
def precision():
    nl = reconvergent_design()
    rows = {}
    for label, domain, labeled in (
            ("labeled symbols (Fig.4 left)", LabeledSymbolDomain(), True),
            ("anonymous X (Fig.4 right)", PlainXDomain(), False)):
        sim = EventSim(nl, domain=domain)
        drive_symbolic(sim, nl, WIDTH, labeled)
        rows[label] = count_unknown_outputs(sim, nl, WIDTH)
    return rows


def test_labeled_symbols_resolve_reconvergence(benchmark, precision,
                                               artifact_dir):
    rows = precision
    text = ("Figure 4 ablation: symbol propagation on a reconvergent "
            "XOR (y = buf(a) ^ inv(inv(a)))\n"
            + render_table(
                ["Propagation mode",
                 f"unknown output bits (of {WIDTH})"],
                [[k, v] for k, v in rows.items()]))
    emit(artifact_dir, "ablation_symbols.txt", text)
    # labeled mode proves every output bit constant 0; anonymous mode
    # must declare every bit unknown (and hence exercisable)
    assert rows["labeled symbols (Fig.4 left)"] == 0
    assert rows["anonymous X (Fig.4 right)"] == WIDTH


def test_labeled_outputs_are_constant_zero(benchmark):
    nl = reconvergent_design()
    sim = EventSim(nl, domain=LabeledSymbolDomain())
    drive_symbolic(sim, nl, WIDTH, labeled=True)
    for i in range(WIDTH):
        assert sim.get_logic_by_name(f"y[{i}]") is Logic.L0


def test_xor_self_cancellation(benchmark):
    """The minimal Fig. 4 circuit: one input, both XOR legs."""
    nl = Netlist("fig4min")
    a = nl.add_net("a")
    y = nl.add_net("y")
    nl.mark_input(a)
    nl.add_gate("g", "XOR", [a, a], y)
    labeled = EventSim(nl, domain=LabeledSymbolDomain())
    labeled.poke(a, SymBit.symbol("s"))
    labeled.settle()
    assert labeled.get_logic(y) is Logic.L0
    plain = EventSim(nl.clone())
    plain.poke(0, Logic.X)
    plain.settle()
    assert plain.get_logic(1) is Logic.X


def test_labeled_mode_is_strictly_less_conservative(benchmark):
    """Anonymous X may only ever be *more* unknown than labeled, never
    the reverse (refinement), checked across both paths of the design."""
    nl = reconvergent_design()
    lab = EventSim(nl, domain=LabeledSymbolDomain())
    drive_symbolic(lab, nl, WIDTH, labeled=True)
    anon = EventSim(nl, domain=PlainXDomain())
    drive_symbolic(anon, nl, WIDTH, labeled=False)
    for net in range(len(nl.nets)):
        lv = lab.get_logic(net)
        av = anon.get_logic(net)
        assert av.is_known is False or av is lv


def _run_domain(domain_cls, nl, cycles=50):
    sim = EventSim(nl, domain=domain_cls())
    labeled = domain_cls is LabeledSymbolDomain
    for _ in range(cycles):
        drive_symbolic(sim, nl, WIDTH, labeled=labeled)
    return sim


def test_plain_domain_throughput(benchmark):
    nl = reconvergent_design()
    benchmark(lambda: _run_domain(PlainXDomain, nl))


def test_labeled_domain_throughput(benchmark):
    nl = reconvergent_design()
    benchmark(lambda: _run_domain(LabeledSymbolDomain, nl))
