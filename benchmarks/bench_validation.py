"""Regenerates the paper's validation experiment (section 5.0.1).

For each core, pick a benchmark, generate the bespoke netlist, and:

* simulate fixed known inputs on original and bespoke netlists and check
  the outputs match;
* check the fixed-input exercised set is a subset of the reported
  exercisable set;
* report original vs bespoke gate counts.

The timed quantity is a full generate-and-validate cycle on omsp430.
"""

import pytest
from conftest import emit

from repro.bespoke import area_report, generate_bespoke, validate_bespoke
from repro.reporting.tables import render_table
from repro.workloads import WORKLOADS, build_target

PAIRS = [("omsp430", "tea8"), ("bm32", "Div"), ("dr5", "binSearch")]


@pytest.fixture(scope="module")
def validations(grid):
    rows = []
    reports = {}
    for design, bench in PAIRS:
        result = grid[design][bench]
        workload = WORKLOADS[bench]
        original = build_target(design, workload)
        bespoke_nl = generate_bespoke(original.netlist, result.profile)
        bespoke = build_target(design, workload, netlist=bespoke_nl)
        report = validate_bespoke(original, bespoke, result,
                                  cases=workload.cases, max_cycles=6000)
        area = area_report(original.netlist, bespoke_nl)
        reports[(design, bench)] = report
        rows.append([design, bench, area["gates_before"],
                     area["gates_after"],
                     f"{area['gate_reduction_percent']:.1f}",
                     report.cases_run,
                     "PASS" if report.ok else "FAIL"])
    return rows, reports


def test_validation_table(benchmark, validations, artifact_dir):
    rows, reports = validations
    text = render_table(
        ["Design", "Benchmark", "Gates", "Bespoke gates",
         "% reduction", "Cases", "Validation"], rows)
    emit(artifact_dir, "validation.txt", text)
    for report in reports.values():
        assert report.ok, report.mismatches
        assert report.behaviour_match
        assert report.subset_ok


def test_validation_runtime(benchmark, grid):
    design, bench = "omsp430", "tea8"
    result = grid[design][bench]
    workload = WORKLOADS[bench]

    def flow():
        original = build_target(design, workload)
        bespoke_nl = generate_bespoke(original.netlist, result.profile)
        bespoke = build_target(design, workload, netlist=bespoke_nl)
        return validate_bespoke(original, bespoke, result,
                                cases=workload.cases[:1],
                                max_cycles=6000)

    report = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert report.ok
