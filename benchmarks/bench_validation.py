"""Regenerates the paper's validation experiment (section 5.0.1).

For each core, pick a benchmark, generate the bespoke netlist, and:

* simulate fixed known inputs on original and bespoke netlists and check
  the outputs match;
* check the fixed-input exercised set is a subset of the reported
  exercisable set;
* prove original/bespoke equivalence formally with the SAT miter and
  record the encoding size (variables/clauses) and solve wall-time;
* report original vs bespoke gate counts.

The timed quantity is a full generate-and-validate cycle on omsp430.
Artifacts: ``validation.txt`` (the spot-check table),
``equivalence.txt`` (the miter table) and ``equivalence.json``
(machine-readable per-processor SAT statistics).
"""

import json

import pytest
from conftest import emit

from repro.bespoke import area_report, generate_bespoke, validate_bespoke
from repro.equiv import check_equivalence
from repro.reporting.tables import equivalence_table, render_table
from repro.workloads import WORKLOADS, build_target

PAIRS = [("omsp430", "tea8"), ("bm32", "Div"), ("dr5", "binSearch")]


@pytest.fixture(scope="module")
def validations(grid):
    rows = []
    reports = {}
    for design, bench in PAIRS:
        result = grid[design][bench]
        workload = WORKLOADS[bench]
        original = build_target(design, workload)
        bespoke_nl = generate_bespoke(original.netlist, result.profile)
        bespoke = build_target(design, workload, netlist=bespoke_nl)
        report = validate_bespoke(original, bespoke, result,
                                  cases=workload.cases, max_cycles=6000)
        area = area_report(original.netlist, bespoke_nl)
        reports[(design, bench)] = report
        rows.append([design, bench, area["gates_before"],
                     area["gates_after"],
                     f"{area['gate_reduction_percent']:.1f}",
                     report.cases_run,
                     "PASS" if report.ok else "FAIL"])
    return rows, reports


def test_validation_table(benchmark, validations, artifact_dir):
    rows, reports = validations
    text = render_table(
        ["Design", "Benchmark", "Gates", "Bespoke gates",
         "% reduction", "Cases", "Validation"], rows)
    emit(artifact_dir, "validation.txt", text)
    for report in reports.values():
        assert report.ok, report.mismatches
        assert report.behaviour_match
        assert report.subset_ok


@pytest.fixture(scope="module")
def equivalences(grid):
    outcomes = []
    for design, bench in PAIRS:
        result = grid[design][bench]
        workload = WORKLOADS[bench]
        original = build_target(design, workload)
        bespoke_nl = generate_bespoke(original.netlist, result.profile)
        outcomes.append((bench, check_equivalence(
            original.netlist, bespoke_nl, profile=result.profile,
            design=design)))
    return outcomes


def test_equivalence_table(benchmark, equivalences, artifact_dir):
    """SAT-equivalence wall-time and clause/variable counts per core."""
    emit(artifact_dir, "equivalence.txt",
         equivalence_table([o for _, o in equivalences]))
    payload = []
    for bench, outcome in equivalences:
        assert outcome.status == "UNSAT", outcome.summary()
        row = outcome.summary()
        row["benchmark"] = bench
        payload.append(row)
    emit(artifact_dir, "equivalence.json", json.dumps(payload, indent=2))


def test_equivalence_runtime(benchmark, grid):
    """Timed: one full miter build + solve on omsp430."""
    design, bench = "omsp430", "tea8"
    result = grid[design][bench]
    original = build_target(design, WORKLOADS[bench])
    bespoke_nl = generate_bespoke(original.netlist, result.profile)

    def check():
        return check_equivalence(original.netlist, bespoke_nl,
                                 profile=result.profile, design=design)

    outcome = benchmark.pedantic(check, rounds=3, iterations=1)
    assert outcome.status == "UNSAT"


def test_validation_runtime(benchmark, grid):
    design, bench = "omsp430", "tea8"
    result = grid[design][bench]
    workload = WORKLOADS[bench]

    def flow():
        original = build_target(design, workload)
        bespoke_nl = generate_bespoke(original.netlist, result.profile)
        bespoke = build_target(design, workload, netlist=bespoke_nl)
        return validate_bespoke(original, bespoke, result,
                                cases=workload.cases[:1],
                                max_cycles=6000)

    report = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert report.ok
