"""Regenerates paper Table 4: simulation path and runtime analysis.

Per (benchmark, design): paths created, paths skipped (CSM subset hits),
and total simulated cycles.  The timed quantity is the path-heaviest run
of the grid (tHold on dr5).

Paper shape targets (see EXPERIMENTS.md for the full comparison):

* ``mult``: 1 path on bm32/omsp430 (hardware multiplier), >1 on dr5;
* ``tea8``: 1 path everywhere;
* ``Div``: wide-compare cores (bm32/dr5) need more paths than the
  flag-based omsp430.
"""

from conftest import emit

from repro.reporting import table4
from repro.reporting.runner import run_one


def test_table4(benchmark, grid, designs, benchmarks_list,
                artifact_dir):
    text = table4(grid, benchmarks_list, designs)
    emit(artifact_dir, "table4.txt", text)

    assert grid["bm32"]["mult"].paths_created == 1
    assert grid["omsp430"]["mult"].paths_created == 1
    assert grid["dr5"]["mult"].paths_created > 1
    for design in designs:
        assert grid[design]["tea8"].paths_created == 1
    assert grid["bm32"]["Div"].paths_created > \
        grid["omsp430"]["Div"].paths_created
    assert grid["dr5"]["Div"].paths_created > \
        grid["omsp430"]["Div"].paths_created

    # bookkeeping invariants
    for design in designs:
        for bench in benchmarks_list:
            r = grid[design][bench]
            assert r.paths_created == 1 + 2 * r.splits
            assert r.paths_skipped <= r.paths_created
            assert r.truncated_paths == 0


def test_path_heavy_run_runtime(benchmark):
    result = benchmark.pedantic(
        lambda: run_one("dr5", "tHold"), rounds=1, iterations=1)
    assert result.paths_created > 100
