"""Extension bench: the "scalable" in the paper's title.

Sweeps application length (TEA round count) on each core and reports
simulated cycles and wall time per run: co-analysis cost must grow
linearly with execution length for straight-line applications (one path,
no state explosion), which is what makes whole-application analysis
tractable.
"""

import time

import pytest
from conftest import emit

from repro.coanalysis import CoAnalysisEngine
from repro.reporting.tables import render_table
from repro.workloads import build_target
from repro.workloads.catalog import make_tea_workload

ROUNDS = [2, 4, 8]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    per_design = {}
    for design in ("omsp430", "dr5"):
        per_design[design] = []
        for rounds in ROUNDS:
            workload = make_tea_workload(rounds)
            target = build_target(design, workload)
            t0 = time.perf_counter()
            result = CoAnalysisEngine(
                target, application=workload.name).run()
            wall = time.perf_counter() - t0
            rows.append([design, rounds, result.paths_created,
                         result.simulated_cycles, f"{wall:.2f}"])
            per_design[design].append(
                (rounds, result.simulated_cycles, wall))
    return rows, per_design


def test_scaling_table(benchmark, sweep, artifact_dir):
    rows, _ = sweep
    text = ("Extension: co-analysis cost vs application length "
            "(TEA rounds)\n"
            + render_table(
                ["Design", "Rounds", "Paths", "Cycles", "Wall (s)"],
                rows))
    emit(artifact_dir, "scaling.txt", text)


def test_straight_line_apps_stay_single_path(benchmark, sweep):
    rows, _ = sweep
    assert all(row[2] == 1 for row in rows)


def test_cycles_scale_linearly(benchmark, sweep):
    """Doubling the rounds should roughly double the simulated cycles
    (within the fixed prologue/epilogue overhead)."""
    _, per_design = sweep
    for design, points in per_design.items():
        cycles = {rounds: cyc for rounds, cyc, _ in points}
        growth = (cycles[8] - cycles[4]) / max(1, cycles[4] - cycles[2])
        assert 1.5 <= growth <= 2.5, (design, cycles)


def test_tea_variants_compute_correctly(benchmark):
    from repro.coanalysis.concrete import run_concrete
    from repro.workloads import built_core
    for design in ("omsp430", "dr5"):
        _, meta = built_core(design)
        workload = make_tea_workload(4)
        target = build_target(design, workload)
        case = workload.cases[0]
        run = run_concrete(target, case, max_cycles=4000)
        assert run.finished
        for addr, want in workload.expected(case,
                                            meta.word_width).items():
            assert target.read_dmem_int(run.final_sim, addr) == want
