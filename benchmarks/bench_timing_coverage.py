"""Extension bench: the other application-specific analyses the tool
enables.

* **Timing slack / voltage overscaling** (prior work [8, 18]): the
  longest path restricted to each application's exercisable gates vs
  the design's full critical path.
* **Symbolic program coverage** (the reduced-ISA connection of [1]):
  fraction of program words reachable over all inputs.
"""

import pytest
from conftest import emit

from repro.analysis import analyze_coverage, timing_slack
from repro.reporting.tables import render_table
from repro.workloads import WORKLOADS, build_target

PAIRS = [("omsp430", "tea8"), ("omsp430", "mult"), ("dr5", "Div")]


@pytest.fixture(scope="module")
def slack_rows(grid):
    rows = []
    for design, bench in PAIRS:
        result = grid[design][bench]
        target = build_target(design, WORKLOADS[bench])
        slack = timing_slack(target.netlist, result.profile)
        rows.append([design, bench,
                     f"{slack.full.critical_delay:.1f}",
                     f"{slack.exercisable.critical_delay:.1f}",
                     f"{slack.slack_percent:.1f}"])
    return rows


def test_timing_slack_table(benchmark, slack_rows, artifact_dir):
    text = ("Extension: application-specific timing slack "
            "(voltage-overscaling headroom, prior work [8])\n"
            + render_table(
                ["Design", "Benchmark", "Full crit. delay",
                 "Exercisable crit. delay", "Slack %"], slack_rows))
    emit(artifact_dir, "timing_slack.txt", text)
    for row in slack_rows:
        assert float(row[4]) >= 0.0


def test_multiplier_free_apps_gain_slack(benchmark, grid):
    """tea8 never sensitizes omsp430's multiplier array (its longest
    structure), so it must show substantial slack; mult exercises it and
    must show less."""
    tea = timing_slack(
        build_target("omsp430", WORKLOADS["tea8"]).netlist,
        grid["omsp430"]["tea8"].profile)
    mult = timing_slack(
        build_target("omsp430", WORKLOADS["mult"]).netlist,
        grid["omsp430"]["mult"].profile)
    assert tea.slack_percent > mult.slack_percent


@pytest.fixture(scope="module")
def coverage_rows():
    rows = []
    for design, bench in PAIRS:
        target = build_target(design, WORKLOADS[bench])
        cov = analyze_coverage(target, application=bench)
        rows.append([design, bench, cov.program.size,
                     len(cov.reachable), len(cov.dead),
                     f"{cov.coverage_percent:.1f}"])
    return rows


def test_coverage_table(benchmark, coverage_rows, artifact_dir):
    text = ("Extension: input-independent program coverage "
            "(dead words are reduced-ISA candidates, cf. [1])\n"
            + render_table(
                ["Design", "Benchmark", "Words", "Reachable", "Dead",
                 "Coverage %"], coverage_rows))
    emit(artifact_dir, "coverage.txt", text)
    for row in coverage_rows:
        assert float(row[5]) > 50.0


def test_reduced_isa_report(benchmark, artifact_dir):
    """Which instruction classes does each application actually need?
    (the reduced-ISA hardware-generation input of [1])"""
    from repro.analysis import analyze_coverage, isa_usage
    rows = []
    for design, bench in PAIRS:
        target = build_target(design, WORKLOADS[bench])
        cov = analyze_coverage(target, application=bench)
        usage = isa_usage(cov, design)
        top = ", ".join(f"{m}({c})" for m, c in
                        sorted(usage.items(), key=lambda kv: -kv[1])[:5])
        rows.append([design, bench, len(usage), top])
        assert usage, (design, bench)
    text = ("Extension: reachable instruction classes per application "
            "(reduced-ISA candidates, cf. [1])\n"
            + render_table(["Design", "Benchmark", "Mnemonics used",
                            "Most frequent"], rows))
    emit(artifact_dir, "reduced_isa.txt", text)


def test_timing_analysis_runtime(benchmark, grid):
    target = build_target("omsp430", WORKLOADS["tea8"])
    profile = grid["omsp430"]["tea8"].profile
    report = benchmark(lambda: timing_slack(target.netlist, profile))
    assert report.full.critical_delay > 0
