"""Shared fixtures for the benchmark harnesses.

The full (design x benchmark) co-analysis grid backs every table and
figure; it is run once and cached on disk (``.repro_cache/``), so each
``pytest benchmarks/ --benchmark-only`` invocation re-renders artifacts
without re-simulating everything.
"""

from pathlib import Path

import pytest

from repro.reporting.runner import DESIGN_ORDER, run_grid
from repro.resilience.artifacts import atomic_write_text
from repro.workloads import WORKLOAD_ORDER

CACHE_DIR = Path(__file__).resolve().parent.parent / ".repro_cache"
ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


@pytest.fixture(scope="session")
def grid():
    """results[design][benchmark] for the full paper grid."""
    return run_grid(cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def designs():
    return list(DESIGN_ORDER)


@pytest.fixture(scope="session")
def benchmarks_list():
    return list(WORKLOAD_ORDER)


@pytest.fixture(scope="session")
def artifact_dir():
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


def emit(artifact_dir: Path, name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/artifacts/.

    Written atomically: a benchmark run killed mid-emit leaves the
    previous complete artifact, not a torn one."""
    print()
    print(text)
    atomic_write_text(artifact_dir / name, text + "\n")
