"""Ablation: conservative-state formation strategies (paper Figure 3 and
section 3.3).

Figure 3's trade-off: merging everything into one uber-conservative
state converges fastest but over-approximates most; keeping clustered or
exact state sets simulates more paths but reports tighter exercisable
sets.  Also demonstrates the CSM's constraint files (section 3.3 / [15])
on inSort, where constraints stop fictitious pointer drift from marking
peripherals exercisable.
"""

import pytest
from conftest import emit

from repro.csm import Clustered, ExactSet, UberConservative
from repro.reporting.tables import render_table
from repro.reporting.runner import run_one

BENCH = "binSearch"
DESIGN = "omsp430"

STRATEGIES = [
    ("uber (paper default)", UberConservative),
    ("clustered k=2", lambda: Clustered(k=2)),
    ("clustered k=4", lambda: Clustered(k=4)),
]


@pytest.fixture(scope="module")
def strategy_results():
    return {name: run_one(DESIGN, BENCH, strategy=factory())
            for name, factory in STRATEGIES}


def test_strategy_tradeoff_table(benchmark, strategy_results,
                                 artifact_dir):
    rows = [[name, r.paths_created, r.paths_skipped, r.simulated_cycles,
             r.exercisable_gate_count]
            for name, r in strategy_results.items()]
    text = ("Figure 3 ablation: conservative state formation "
            f"({DESIGN} / {BENCH})\n" + render_table(
                ["Strategy", "Paths", "Skipped", "Cycles",
                 "Exercisable gates"], rows))
    emit(artifact_dir, "ablation_csm_strategies.txt", text)


def test_finer_strategies_never_more_conservative(benchmark,
                                                   strategy_results):
    """More states per PC can only tighten (or match) the exercisable
    set, at equal-or-higher path cost (the Figure 3 trade-off)."""
    uber = strategy_results["uber (paper default)"]
    for name, r in strategy_results.items():
        if name == "uber (paper default)":
            continue
        assert r.exercisable_gate_count <= uber.exercisable_gate_count
        assert r.paths_created >= uber.paths_created


def test_exact_set_on_tiny_space(benchmark):
    """ExactSet is only tractable for small control spaces -- compare on
    the single-split mult/dr5 run, where it must agree with uber."""
    uber = run_one("dr5", "mult", strategy=UberConservative())
    exact = run_one("dr5", "mult", strategy=ExactSet())
    assert exact.exercisable_gate_count <= uber.exercisable_gate_count


def test_constraints_reduce_overapproximation(benchmark, artifact_dir):
    """Section 3.3: constraint files reduce conservative
    over-approximation (and, here, also path count)."""
    with_c = run_one("omsp430", "inSort", use_constraints=True)
    without = run_one("omsp430", "inSort", use_constraints=False)
    rows = [
        ["constrained (r2/r5 bounded)", with_c.paths_created,
         with_c.exercisable_gate_count,
         f"{with_c.reduction_percent:.1f}"],
        ["unconstrained", without.paths_created,
         without.exercisable_gate_count,
         f"{without.reduction_percent:.1f}"],
    ]
    text = ("Section 3.3 ablation: CSM constraints (omsp430 / inSort)\n"
            + render_table(["CSM mode", "Paths", "Exercisable gates",
                            "% reduction"], rows))
    emit(artifact_dir, "ablation_csm_constraints.txt", text)
    assert with_c.exercisable_gate_count < without.exercisable_gate_count
    # unconstrained merging drags peripheral logic into the set
    ex = without.profile.exercised_nets()
    nl = without.profile.netlist
    assert any(ex[n] for n in nl.find_nets("mpy_op1"))
    exc = with_c.profile.exercised_nets()
    nlc = with_c.profile.netlist
    assert not any(exc[n] for n in nlc.find_nets("mpy_op1"))


def test_strategy_runtime(benchmark):
    result = benchmark.pedantic(
        lambda: run_one(DESIGN, BENCH, strategy=Clustered(k=2)),
        rounds=1, iterations=1)
    assert result.paths_created >= 1
