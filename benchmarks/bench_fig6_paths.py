"""Regenerates paper Figure 6: simulated path counts per benchmark.

Paper claim: "Benchmarks run on MIPS and RISCV processors have a higher
number of simulated paths because a [wide] register is used to indicate
branch conditions, whereas in MSP430 a 1-bit register is used, resulting
in fewer conservative states."  (The tHold exception and the inSort
constraint interaction are analyzed in EXPERIMENTS.md.)
"""

from conftest import emit

from repro.reporting import figure6


def test_figure6(benchmark, grid, designs, benchmarks_list,
                 artifact_dir):
    text = figure6(grid, benchmarks_list, designs)
    emit(artifact_dir, "figure6.txt", text)
    assert "Figure 6" in text

    # wide-compare designs need more paths on the division benchmark
    assert grid["bm32"]["Div"].paths_created > \
        grid["omsp430"]["Div"].paths_created
    assert grid["dr5"]["Div"].paths_created > \
        grid["omsp430"]["Div"].paths_created

    # software multiply: dr5 alone is multi-path
    assert grid["dr5"]["mult"].paths_created > 1
    assert grid["bm32"]["mult"].paths_created == 1
    assert grid["omsp430"]["mult"].paths_created == 1


def test_skipped_paths_show_csm_working(benchmark, grid, designs,
                                        benchmarks_list):
    """Loopy benchmarks must show CSM subset hits (skipped paths) --
    without them the search would not converge."""
    for design in designs:
        assert grid[design]["tHold"].paths_skipped > 0
        assert grid[design]["Div"].paths_skipped > 0


def test_figure6_render_speed(benchmark, grid, designs, benchmarks_list):
    out = benchmark(lambda: figure6(grid, benchmarks_list, designs))
    assert out
