"""Ablation: simulation engine throughput (the "scalable" in the title).

The event-driven kernel reproduces the paper's iverilog architecture;
the vectorized levelized engine is what makes whole-core co-analysis
tractable in Python, and the bit-packed batched engine is what makes a
*forked frontier* tractable: N x 64 lanes (``--lanes``) share every
settle.  This
bench quantifies the gaps in gate-evaluations/second on the largest
core (bm32) and on a small circuit where the event kernel's sparseness
wins back some ground, and records the headline numbers in
``BENCH_engines.json`` at the repo root so per-PR perf is diffable.
"""

import json
import time
from pathlib import Path

import pytest

from repro.logic import Logic, LVec
from repro.rtl import Design
from repro.sim import (BatchCycleSim, CompiledNetlist, CycleSim, EventSim,
                       compile_netlist)
from repro.workloads import built_core

CYCLES_BIG = 50
CYCLES_SMALL = 200
SEGMENT_CYCLES = 8       # <=8-cycle segments: the co-analysis fork cadence
REPLAY_FORKS = 20
REPLAY_MIN_SPEEDUP = 3.0
BATCH_LANE_WIDTHS = [64, 128, 256]   # one trajectory entry per width
BATCH_MIN_SPEEDUP = 5.0  # the ISSUE 7 acceptance bar, at every width
#: widening 64 -> 256 lanes must buy >= this much *additional* lane
#: throughput (lane-cycles per ms of batch wall clock): the per-settle
#: fixed cost is shared by every word, so wider planes must not cost
#: proportionally more
BATCH_WIDEN_MIN_GAIN = 1.5
#: perf trajectory at the repo root -- committed, so the diff of this
#: file in a PR *is* the perf regression report
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_engines.json"
TRAJECTORY_KEEP = 50


def _git_commit() -> str:
    """Short commit hash of the working tree, "unknown" outside git."""
    import subprocess
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _record_trajectory(entry: dict) -> None:
    """Record ``entry`` in the committed BENCH_engines.json history.

    Entries are stamped with the current commit; re-running the bench
    on the same commit *replaces* that commit's measurement for the
    same (design, lanes, cycles) configuration instead of blind-
    appending, so local re-runs don't flood the trajectory.
    """
    from repro.resilience.artifacts import atomic_write_json
    entry = dict(entry, commit=_git_commit())
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, OSError):
            history = []        # a torn file must not poison the bench
    key = ("commit", "design", "lanes", "cycles")
    history = [run for run in history
               if run.get("commit") == "unknown"
               or tuple(run.get(k) for k in key)
               != tuple(entry.get(k) for k in key)]
    history.append(entry)
    atomic_write_json(TRAJECTORY,
                      {"bench": "bench_engines",
                       "runs": history[-TRAJECTORY_KEEP:]})


def _counter(width=8):
    d = Design("cnt")
    r = d.reg(width, "c", reset=True)
    s, _ = r.q.add(d.const(1, width))
    r.drive(s)
    d.output("y", r.q)
    return d.finalize()


def test_cycle_engine_on_bm32(benchmark):
    nl, _ = built_core("bm32")
    compiled = compile_netlist(nl)

    def run():
        sim = CycleSim(compiled, record_activity=False)
        sim.set_input("rst", Logic.L1)
        sim.set_input("pmem_data", LVec.zeros(32))
        sim.set_input("dmem_rdata", LVec.zeros(32))
        sim.step()
        sim.set_input("rst", Logic.L0)
        for _ in range(CYCLES_BIG):
            sim.step()
        return sim

    sim = benchmark(run)
    assert sim.cycle == CYCLES_BIG + 1
    gate_evals = nl.gate_count() * CYCLES_BIG
    print(f"\n  bm32: {nl.gate_count()} gates x {CYCLES_BIG} cycles = "
          f"{gate_evals} gate-evals per round")


def test_event_engine_on_bm32(benchmark):
    nl, _ = built_core("bm32")

    def run():
        sim = EventSim(nl)
        sim.poke_by_name("rst", Logic.L1)
        for i in range(32):
            sim.poke_by_name(f"pmem_data[{i}]", Logic.L0)
            sim.poke_by_name(f"dmem_rdata[{i}]", Logic.L0)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        for _ in range(5):   # the event kernel is the slow faithful path
            sim.tick()
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sim.cycle == 6


def test_cycle_engine_small_circuit(benchmark):
    nl = _counter()
    compiled = compile_netlist(nl)

    def run():
        sim = CycleSim(compiled, record_activity=False)
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        for _ in range(CYCLES_SMALL):
            sim.step()
        return sim

    assert benchmark(run).cycle == CYCLES_SMALL + 1


def test_event_engine_small_circuit(benchmark):
    nl = _counter()

    def run():
        sim = EventSim(nl)
        sim.poke_by_name("rst", Logic.L1)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        for _ in range(CYCLES_SMALL):
            sim.tick()
        return sim

    assert benchmark(run).cycle == CYCLES_SMALL + 1


def test_compile_cost(benchmark):
    nl, _ = built_core("bm32")
    compiled = benchmark(lambda: CompiledNetlist(nl))
    assert compiled.n_nets == len(nl.nets)


def _warmed_sim(compiled, incremental):
    sim = CycleSim(compiled, record_activity=False,
                   incremental=incremental)
    sim.set_input("rst", Logic.L1)
    sim.set_input("pmem_data", LVec.zeros(32))
    sim.set_input("dmem_rdata", LVec.zeros(32))
    sim.step()
    sim.set_input("rst", Logic.L0)
    for _ in range(10):
        sim.step()
    return sim


def _replay(sim, snap):
    """One fork of Algorithm 1's hot loop: restore + short segment."""
    sim.restore(snap)
    for _ in range(SEGMENT_CYCLES):
        sim.step()


def test_segment_replay_fork_heavy(benchmark):
    """The co-analysis hot path: restore a snapshot, replay a short
    segment, fork again.  Incremental dirty-cone settling must beat the
    always-full-sweep engine by >= REPLAY_MIN_SPEEDUP on bm32 -- this
    is the speedup the dirty-cone index exists to buy."""
    nl, _ = built_core("bm32")
    compiled = compile_netlist(nl)

    inc = _warmed_sim(compiled, incremental=True)
    inc_snap = inc.snapshot()
    full = _warmed_sim(compiled, incremental=False)
    full_snap = full.snapshot()

    def forks():
        for _ in range(REPLAY_FORKS):
            _replay(inc, inc_snap)

    benchmark.pedantic(forks, rounds=3, iterations=1, warmup_rounds=1)
    assert inc.incremental_settles > 0   # the fast path actually engaged

    t0 = time.perf_counter()
    for _ in range(REPLAY_FORKS):
        _replay(inc, inc_snap)
    t_inc = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(REPLAY_FORKS):
        _replay(full, full_snap)
    t_full = time.perf_counter() - t0

    speedup = t_full / t_inc
    print(f"\n  segment replay ({REPLAY_FORKS} forks x "
          f"{SEGMENT_CYCLES} cycles): incremental {t_inc*1000:.1f} ms, "
          f"full sweep {t_full*1000:.1f} ms -> {speedup:.1f}x")
    assert speedup >= REPLAY_MIN_SPEEDUP, (
        f"incremental replay only {speedup:.2f}x faster than full sweep "
        f"(expected >= {REPLAY_MIN_SPEEDUP}x)")


def test_batch_engine_replay_speedup(benchmark):
    """The tentpole claim: one batched settle advances a whole wave,
    and widening the planes keeps paying.

    For each lane width in ``BATCH_LANE_WIDTHS`` (64/128/256), replays
    the same warmed bm32 snapshot once per lane for ``CYCLES_BIG``
    cycles as one lockstep batched run, requires bit-identical final
    planes on every lane, and demands a >= BATCH_MIN_SPEEDUP win over
    the serial engine replaying the same states one at a time.  The
    serial side is measured once (64 replays) and scaled linearly --
    serial replay cost is strictly per-state, so the extrapolation is
    exact up to noise.  Widening must also *gain* lane throughput:
    lane-cycles per batch-ms at 256 lanes >= BATCH_WIDEN_MIN_GAIN x
    the 64-lane figure.  One entry per width -- including the lane
    count and the compaction counters of a real batched co-analysis at
    that width -- lands in the BENCH_engines.json trajectory.
    """
    from repro.coanalysis.batch_executor import BatchSegmentExecutor
    from repro.coanalysis.kernel import ExplorationKernel
    from repro.workloads import WORKLOADS, build_target

    nl, _ = built_core("bm32")
    compiled = compile_netlist(nl)
    serial = _warmed_sim(compiled, incremental=True)
    snap = serial.snapshot()

    def serial_round(n):
        for _ in range(n):
            serial.restore(snap)
            for _ in range(CYCLES_BIG):
                serial.step()

    def batch_round(width):
        batch = BatchCycleSim(compiled, record_activity=False,
                              lanes=width)
        lanes = []
        for _ in range(width):
            lane = batch.alloc_lane()
            # the snapshot carries the input values (rst low, zeroed
            # memory buses) -- restore alone is the whole induction
            batch.lane_restore(lane, snap, settle=False)
            lanes.append(lane)
        for _ in range(CYCLES_BIG):
            batch.settle()
            batch.clock_edge()
        batch.settle()
        return batch, lanes

    benchmark.pedantic(lambda: batch_round(BATCH_LANE_WIDTHS[0]),
                       rounds=3, iterations=1, warmup_rounds=1)

    # one serial measurement, linearly scaled per width (replay cost is
    # per-state; there is nothing shared between serial replays)
    base = BATCH_LANE_WIDTHS[0]
    t0 = time.perf_counter()
    serial_round(base)
    serial_per_lane_ms = (time.perf_counter() - t0) * 1000 / base
    serial.settle()

    throughput = {}
    gate_counts = []
    for width in BATCH_LANE_WIDTHS:
        batch_round(width)             # warm the per-width fused kernels
        t0 = time.perf_counter()
        batch, lanes = batch_round(width)
        t_batch_ms = (time.perf_counter() - t0) * 1000

        # equal results: every lane's final planes match the serial
        # engine's, in every plane word
        for lane in lanes:
            val, known = batch.lane_planes(lane)
            assert (val == serial.val).all()
            assert (known == serial.known).all()

        serial_ms = serial_per_lane_ms * width
        speedup = serial_ms / t_batch_ms
        throughput[width] = width * CYCLES_BIG / t_batch_ms
        print(f"\n  batched replay ({width} lanes x {CYCLES_BIG} "
              f"cycles): serial {serial_ms:.1f} ms, "
              f"batch {t_batch_ms:.1f} ms -> {speedup:.1f}x, "
              f"{throughput[width]:.0f} lane-cycles/ms")

        # compaction accounting from a real batched co-analysis at this
        # width (the replay loop above never retires a lane): capping
        # live occupancy below inSort's frontier width forces freed
        # slots to be refilled mid-wave, so the recorded counters
        # exercise the compaction path, not just report zeros
        coa = ExplorationKernel(
            BatchSegmentExecutor(build_target("bm32", WORKLOADS["inSort"]),
                                 lanes=width, max_lanes=4),
            application="inSort", frontier="bfs").run()
        stats = coa.batch_stats
        assert stats.compactions > 0 and stats.refills > 0
        gate_counts.append(coa.exercisable_gate_count)
        _record_trajectory({
            "date": time.strftime("%Y-%m-%d"),
            "design": "bm32",
            "gates": nl.gate_count(),
            "lanes": width,
            "cycles": CYCLES_BIG,
            "serial_ms": round(serial_ms, 2),
            "batch_ms": round(t_batch_ms, 2),
            "speedup": round(speedup, 2),
            "lane_cycles_per_ms": round(throughput[width], 1),
            "coanalysis": {
                "design": "bm32", "benchmark": "inSort",
                "max_lanes": 4,
                "waves": stats.waves,
                "peak_lanes": stats.peak_lanes,
                "compactions": stats.compactions,
                "refills": stats.refills,
                "realized_parallelism":
                    round(stats.realized_parallelism(), 2),
            },
        })
        assert speedup >= BATCH_MIN_SPEEDUP, (
            f"{width}-lane batched replay only {speedup:.2f}x faster "
            f"than serial (expected >= {BATCH_MIN_SPEEDUP}x)")

    # the capped co-analysis dichotomy is lane-width-invariant too
    assert len(set(gate_counts)) == 1, (
        f"exercisable-gate count varies with lane width: {gate_counts}")

    widen_gain = throughput[256] / throughput[64]
    print(f"  widening 64 -> 256 lanes: {widen_gain:.2f}x lane "
          f"throughput")
    assert widen_gain >= BATCH_WIDEN_MIN_GAIN, (
        f"256-lane planes only {widen_gain:.2f}x the 64-lane lane "
        f"throughput (expected >= {BATCH_WIDEN_MIN_GAIN}x)")


def test_traced_coanalysis_smoke(benchmark, artifact_dir):
    """One full co-analysis with the structured trace on: leaves the
    JSONL event stream and its aggregated metrics as CI artifacts, and
    proves the stream alone reconstructs the engine's counters."""
    from repro.coanalysis.trace import aggregate_trace, read_trace
    from repro.reporting.runner import run_one

    trace_path = artifact_dir / "TRACE_coanalysis_smoke.jsonl"

    def run():
        return run_one("dr5", "mult", trace=trace_path)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    events = read_trace(trace_path)
    assert events[0].kind == "run_start"
    assert events[-1].kind == "run_end"

    replayed = aggregate_trace(events)
    assert replayed.paths_explored == len(result.path_records)
    assert replayed.splits == result.splits
    assert replayed.merges_covered == result.paths_skipped
    assert replayed.simulated_cycles == result.simulated_cycles
    assert replayed.summary() == result.metrics.summary()

    from repro.resilience.artifacts import atomic_write_json
    atomic_write_json(artifact_dir / "METRICS_coanalysis_smoke.json",
                      result.metrics.summary())
    print(f"\n  trace: {len(events)} events, "
          f"{replayed.paths_explored} paths, "
          f"{replayed.simulated_cycles} cycles, "
          f"frontier high-water {replayed.frontier_high_water}")
