"""Ablation: simulation engine throughput (the "scalable" in the title).

The event-driven kernel reproduces the paper's iverilog architecture;
the vectorized levelized engine is what makes whole-core co-analysis
tractable in Python.  This bench quantifies the gap in
gate-evaluations/second on the largest core (bm32) and on a small
circuit where the event kernel's sparseness wins back some ground.
"""

import pytest

from repro.logic import Logic, LVec
from repro.rtl import Design
from repro.sim import CompiledNetlist, CycleSim, EventSim
from repro.workloads import built_core

CYCLES_BIG = 50
CYCLES_SMALL = 200


def _counter(width=8):
    d = Design("cnt")
    r = d.reg(width, "c", reset=True)
    s, _ = r.q.add(d.const(1, width))
    r.drive(s)
    d.output("y", r.q)
    return d.finalize()


def test_cycle_engine_on_bm32(benchmark):
    nl, _ = built_core("bm32")
    compiled = CompiledNetlist(nl)

    def run():
        sim = CycleSim(compiled, record_activity=False)
        sim.set_input("rst", Logic.L1)
        sim.set_input("pmem_data", LVec.zeros(32))
        sim.set_input("dmem_rdata", LVec.zeros(32))
        sim.step()
        sim.set_input("rst", Logic.L0)
        for _ in range(CYCLES_BIG):
            sim.step()
        return sim

    sim = benchmark(run)
    assert sim.cycle == CYCLES_BIG + 1
    gate_evals = nl.gate_count() * CYCLES_BIG
    print(f"\n  bm32: {nl.gate_count()} gates x {CYCLES_BIG} cycles = "
          f"{gate_evals} gate-evals per round")


def test_event_engine_on_bm32(benchmark):
    nl, _ = built_core("bm32")

    def run():
        sim = EventSim(nl)
        sim.poke_by_name("rst", Logic.L1)
        for i in range(32):
            sim.poke_by_name(f"pmem_data[{i}]", Logic.L0)
            sim.poke_by_name(f"dmem_rdata[{i}]", Logic.L0)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        for _ in range(5):   # the event kernel is the slow faithful path
            sim.tick()
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sim.cycle == 6


def test_cycle_engine_small_circuit(benchmark):
    nl = _counter()
    compiled = CompiledNetlist(nl)

    def run():
        sim = CycleSim(compiled, record_activity=False)
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        for _ in range(CYCLES_SMALL):
            sim.step()
        return sim

    assert benchmark(run).cycle == CYCLES_SMALL + 1


def test_event_engine_small_circuit(benchmark):
    nl = _counter()

    def run():
        sim = EventSim(nl)
        sim.poke_by_name("rst", Logic.L1)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        for _ in range(CYCLES_SMALL):
            sim.tick()
        return sim

    assert benchmark(run).cycle == CYCLES_SMALL + 1


def test_compile_cost(benchmark):
    nl, _ = built_core("bm32")
    compiled = benchmark(lambda: CompiledNetlist(nl))
    assert compiled.n_nets == len(nl.nets)
