"""Regenerates paper Table 3: gate count analysis.

For every (benchmark, design) pair: the exercisable gate count reported
by symbolic co-analysis and the percentage reduction relative to the
design's total gate count.  The timed quantity is one representative
co-analysis run (binSearch on omsp430).

Paper shape targets (absolute scales differ -- see EXPERIMENTS.md):

* per-benchmark reduction ordering: omsp430 > bm32 > dr5;
* ``mult`` prunes least on the two designs whose hardware multiplier it
  exercises.
"""

from conftest import emit

from repro.reporting import results_csv, table3
from repro.reporting.runner import run_one


def test_table3(benchmark, grid, designs, benchmarks_list,
                artifact_dir):
    text = table3(grid, benchmarks_list, designs)
    emit(artifact_dir, "table3.txt", text)
    emit(artifact_dir, "results.csv",
         results_csv(grid, benchmarks_list, designs))

    # shape assertions mirroring the paper
    for bench in benchmarks_list:
        r_o = grid["omsp430"][bench].reduction_percent
        r_b = grid["bm32"][bench].reduction_percent
        r_d = grid["dr5"][bench].reduction_percent
        if bench != "mult":
            assert r_o > r_b > r_d, (bench, r_o, r_b, r_d)
        assert r_d < 30.0   # dr5 has no peripherals to shed

    for design in ("omsp430", "bm32"):
        non_mult = [grid[design][b].reduction_percent
                    for b in benchmarks_list if b != "mult"]
        assert grid[design]["mult"].reduction_percent < min(non_mult)


def test_representative_coanalysis_runtime(benchmark):
    result = benchmark.pedantic(
        lambda: run_one("omsp430", "binSearch"), rounds=1, iterations=1)
    assert result.exercisable_gate_count > 0
