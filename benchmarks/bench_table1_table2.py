"""Regenerates paper Table 1 (benchmark applications) and Table 2
(target platform characterization).

These tables are metadata, so the timed quantity is the pipeline that
produces their contents: assembling all benchmark programs (Table 1's
artifacts) and elaborating all three cores (Table 2's artifacts).
"""

from conftest import emit

from repro.processors import BUILDERS
from repro.reporting import table1, table2
from repro.workloads import (WORKLOAD_ORDER, WORKLOADS, assemble_workload,
                             built_core)


def test_table1_benchmarks(benchmark, artifact_dir):
    def assemble_all():
        return [assemble_workload(d, WORKLOADS[w])
                for d in ("omsp430", "bm32", "dr5")
                for w in WORKLOAD_ORDER]

    programs = benchmark(assemble_all)
    assert len(programs) == 18
    text = table1([WORKLOADS[w] for w in WORKLOAD_ORDER])
    emit(artifact_dir, "table1.txt", text)
    for w in WORKLOAD_ORDER:
        assert w in text


def test_table2_platforms(benchmark, artifact_dir):
    def build_all():
        return [builder() for builder in BUILDERS.values()]

    cores = benchmark.pedantic(build_all, rounds=1, iterations=1)
    metas = [meta for _, meta in cores]
    text = table2(metas)
    emit(artifact_dir, "table2.txt", text)
    for name in ("omsp430", "bm32", "dr5"):
        assert name in text
    # paper Table 2 invariants
    by_name = {m.name: m for m in metas}
    assert "multiplier" in by_name["bm32"].features.lower()
    assert "watchdog" in by_name["omsp430"].features.lower()
    assert "no hardware multiplier" in by_name["dr5"].features.lower()


def test_total_gate_counts(benchmark, artifact_dir):
    """Reports the tgc line of Tables 3/4 (total gates per design)."""
    lines = ["design,total_gates,flops,area"]
    for design in ("bm32", "omsp430", "dr5"):
        nl, _ = built_core(design)
        lines.append(f"{design},{nl.gate_count()},"
                     f"{len(nl.seq_gates)},{nl.area():.1f}")
    emit(artifact_dir, "total_gate_counts.csv", "\n".join(lines))
