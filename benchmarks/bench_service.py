"""Job-service overhead: submit->done latency and dedup throughput.

The service's pitch is that the *Nth* identical submission is nearly
free: in-flight duplicates coalesce onto the running execution and
completed fingerprints are served straight from the store.  This bench
measures both ends on dr5/mult -- the cold submit->done latency (queue +
spawn + run + verdict) against the direct ``run_one`` wall time, and
the throughput of a 3-job duplicate batch served entirely by dedup --
and appends the numbers to ``BENCH_service.json`` at the repo root so
each PR's diff doubles as the service perf report.
"""

import json
import time
from pathlib import Path

import pytest

from repro.reporting.runner import run_one
from repro.service import Scheduler, SchedulerConfig

SPEC = {"design": "dr5", "benchmark": "mult"}
DEDUP_BATCH = 3
#: dedup-served jobs must beat this many jobs/second: they cost one
#: fingerprint lookup and two manifest writes, never a simulation
DEDUP_MIN_JOBS_PER_S = 5.0
#: the scheduler's overhead on a cold run (spawn + queue + verdict) on
#: top of the direct run_one wall time, seconds
COLD_MAX_OVERHEAD_S = 30.0
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_service.json"
TRAJECTORY_KEEP = 50


def _git_commit() -> str:
    import subprocess
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _record_trajectory(entry: dict) -> None:
    """Append to the committed history; same-commit re-runs replace
    their previous measurement instead of blind-appending."""
    from repro.resilience.artifacts import atomic_write_json
    entry = dict(entry, commit=_git_commit())
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, OSError):
            history = []
    history = [run for run in history
               if run.get("commit") == "unknown"
               or run.get("commit") != entry["commit"]]
    history.append(entry)
    atomic_write_json(TRAJECTORY,
                      {"bench": "bench_service",
                       "runs": history[-TRAJECTORY_KEEP:]})


@pytest.mark.timeout(600)
def test_service_latency_and_dedup_throughput(tmp_path):
    t0 = time.perf_counter()
    direct = run_one(SPEC["design"], SPEC["benchmark"])
    direct_s = time.perf_counter() - t0
    assert direct.complete

    with Scheduler(tmp_path / "store",
                   SchedulerConfig(workers=2)) as sched:
        # -- cold: queue + spawn + run + verdict ----------------------------
        t0 = time.perf_counter()
        cold = sched.submit(dict(SPEC))
        sched.wait(cold.job_id, timeout=300)
        cold_s = time.perf_counter() - t0
        assert sched.get(cold.job_id).state == "DONE"

        # -- warm: a 3-job duplicate batch, all dedup-served ----------------
        t0 = time.perf_counter()
        batch = [sched.submit(dict(SPEC)) for _ in range(DEDUP_BATCH)]
        for job in batch:
            sched.wait(job.job_id, timeout=60)
        dedup_s = time.perf_counter() - t0
        assert all(sched.get(j.job_id).state == "DONE" for j in batch)
        assert sched.counters["executed"] == 1      # nothing re-ran
        assert sched.counters["cache_served"] == DEDUP_BATCH
        dedup_jobs_per_s = DEDUP_BATCH / max(dedup_s, 1e-9)

    entry = {
        "design": SPEC["design"],
        "benchmark": SPEC["benchmark"],
        "direct_run_s": round(direct_s, 4),
        "cold_submit_to_done_s": round(cold_s, 4),
        "cold_overhead_s": round(cold_s - direct_s, 4),
        "dedup_batch_jobs": DEDUP_BATCH,
        "dedup_batch_s": round(dedup_s, 4),
        "dedup_jobs_per_s": round(dedup_jobs_per_s, 2),
    }
    _record_trajectory(entry)
    print()
    print(f"[bench_service] direct={direct_s:.2f}s "
          f"cold submit->done={cold_s:.2f}s "
          f"(overhead {cold_s - direct_s:+.2f}s), "
          f"{DEDUP_BATCH}-job dedup batch={dedup_s:.3f}s "
          f"({dedup_jobs_per_s:.0f} jobs/s)")

    assert cold_s - direct_s < COLD_MAX_OVERHEAD_S
    assert dedup_jobs_per_s > DEDUP_MIN_JOBS_PER_S
