"""Ablation: parallel path exploration (paper section 3.3).

"Since each branch of the simulation can be run by a separate process,
launching these processes in parallel can drastically improve simulation
time."  Times the wave-parallel explorer against the serial engine on a
path-heavy run and checks result equivalence.
"""

import pytest
from conftest import emit

from repro.coanalysis.parallel import (ParallelCoAnalysis,
                                       WorkloadTargetFactory)
from repro.reporting.runner import run_one
from repro.reporting.tables import render_table

DESIGN, BENCH = "omsp430", "Div"


@pytest.fixture(scope="module")
def serial_result():
    return run_one(DESIGN, BENCH)


@pytest.fixture(scope="module")
def parallel_results(serial_result):
    out = {}
    for workers in (1, 2, 4):
        engine = ParallelCoAnalysis(
            WorkloadTargetFactory(DESIGN, BENCH),
            workers=workers, application=BENCH)
        out[workers] = engine.run()
    return out


def test_parallel_matches_serial(benchmark, serial_result,
                                 parallel_results, artifact_dir):
    rows = [["serial", "-", serial_result.paths_created,
             serial_result.exercisable_gate_count,
             f"{serial_result.wall_seconds:.2f}"]]
    for workers, r in parallel_results.items():
        rows.append(["parallel", workers, r.paths_created,
                     r.exercisable_gate_count, f"{r.wall_seconds:.2f}"])
    text = (f"Section 3.3 ablation: parallel paths ({DESIGN} / {BENCH})\n"
            + render_table(["Mode", "Workers", "Paths",
                            "Exercisable gates", "Wall (s)"], rows))
    emit(artifact_dir, "ablation_parallel.txt", text)
    for r in parallel_results.values():
        assert r.exercisable_gate_count == \
            serial_result.exercisable_gate_count
        assert r.paths_created == serial_result.paths_created


def test_parallel_run_timed(benchmark):
    def run():
        return ParallelCoAnalysis(
            WorkloadTargetFactory(DESIGN, BENCH),
            workers=2, application=BENCH).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.paths_created >= 1


def test_worker_validation(benchmark):
    with pytest.raises(ValueError):
        ParallelCoAnalysis(WorkloadTargetFactory(DESIGN, BENCH),
                           workers=0)
