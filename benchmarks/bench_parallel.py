"""Ablation: parallel path exploration (paper section 3.3).

"Since each branch of the simulation can be run by a separate process,
launching these processes in parallel can drastically improve simulation
time."  Times the wave-parallel explorer against the serial engine on a
path-heavy run, checks result equivalence, and reports the supervision
layer's health counters: per-wave wall time, segment retries, and worker
restarts (all zero on a fault-free run).
"""

import pytest
from conftest import emit

from repro.coanalysis.parallel import (ParallelCoAnalysis,
                                       WorkloadTargetFactory)
from repro.reporting.runner import run_one
from repro.reporting.tables import render_table

DESIGN, BENCH = "omsp430", "Div"


@pytest.fixture(scope="module")
def serial_result():
    return run_one(DESIGN, BENCH)


@pytest.fixture(scope="module")
def parallel_engines(serial_result):
    out = {}
    for workers in (1, 2, 4):
        engine = ParallelCoAnalysis(
            WorkloadTargetFactory(DESIGN, BENCH),
            workers=workers, application=BENCH)
        out[workers] = (engine, engine.run())
    return out


def test_parallel_matches_serial(benchmark, serial_result,
                                 parallel_engines, artifact_dir):
    """Every run's row is rendered from its trace-derived RunMetrics --
    the same summary an operator would reconstruct from a JSONL trace --
    not from engine-private counters."""
    sm = serial_result.metrics
    rows = [["serial", "-", serial_result.paths_created,
             serial_result.exercisable_gate_count, sm.batches,
             sm.frontier_high_water,
             f"{sm.wall_seconds:.2f}", "-", "-"]]
    for workers, (engine, r) in parallel_engines.items():
        m = r.metrics
        rows.append(["parallel", workers, r.paths_created,
                     r.exercisable_gate_count, m.batches,
                     m.frontier_high_water, f"{r.wall_seconds:.2f}",
                     m.retries, engine.stats.worker_restarts])
    text = (f"Section 3.3 ablation: parallel paths ({DESIGN} / {BENCH})\n"
            + render_table(["Mode", "Workers", "Paths",
                            "Exercisable gates", "Waves", "Frontier max",
                            "Wall (s)", "Retries", "Restarts"], rows))
    emit(artifact_dir, "ablation_parallel.txt", text)
    for _, r in parallel_engines.values():
        assert r.exercisable_gate_count == \
            serial_result.exercisable_gate_count
        assert r.paths_created == serial_result.paths_created


def test_wave_profile_reported(parallel_engines, artifact_dir):
    """Per-wave wall-clock profile of the supervised runs."""
    lines = [f"Per-wave wall time ({DESIGN} / {BENCH})"]
    for workers, (engine, result) in parallel_engines.items():
        stats = engine.stats
        walls = stats.wave_wall_seconds
        assert stats.waves == len(walls)
        # the trace layer counts the same waves the supervisor timed
        assert result.metrics.batches == stats.waves
        assert result.metrics.retries == stats.segment_retries
        lines.append(
            f"workers={workers}: {stats.waves} waves, "
            f"total {sum(walls):.2f}s, slowest {max(walls):.3f}s, "
            f"retries {stats.segment_retries}, "
            f"restarts {stats.worker_restarts}, "
            f"degraded {stats.degraded}")
        lines.append("  " + " ".join(f"{w * 1000:.0f}ms" for w in walls))
        # a fault-free run must never burn its failure budget
        assert stats.segment_retries == 0
        assert stats.worker_restarts == 0
        assert not stats.degraded
    emit(artifact_dir, "ablation_parallel_waves.txt", "\n".join(lines))


def test_parallel_run_timed(benchmark):
    def run():
        return ParallelCoAnalysis(
            WorkloadTargetFactory(DESIGN, BENCH),
            workers=2, application=BENCH).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.paths_created >= 1


def test_worker_validation(benchmark):
    with pytest.raises(ValueError):
        ParallelCoAnalysis(WorkloadTargetFactory(DESIGN, BENCH),
                           workers=0)
