"""Unit tests for the co-analysis engine on a tiny synthetic target."""

import pytest

from repro.coanalysis import (CoAnalysisEngine, CoAnalysisError,
                              SymbolicTarget)
from repro.csm import ConservativeStateManager, UberConservative
from repro.logic import Logic
from repro.rtl import Design, mux


def toy_design(halt_pc=7, branch_pc=2, taken_pc=5):
    """3-bit PC machine: at ``branch_pc`` the next PC depends on input
    ``d`` (taken -> ``taken_pc``); everywhere else PC increments; parks
    at ``halt_pc``."""
    d = Design("toy")
    din = d.input("d")
    pc = d.reg(3, "pc_r", reset=True)
    at_branch = _pc_is(d, pc.q, branch_pc)
    at_halt = _pc_is(d, pc.q, halt_pc)
    branch_point = d.name_sig("branch_point", at_branch)
    branch_taken = d.name_sig("branch_taken", at_branch & din)
    inc, _ = pc.q.add(d.const(1, 3))
    nxt = mux(branch_taken, inc, d.const(taken_pc, 3))
    nxt = mux(at_halt, nxt, pc.q)
    pc.drive(nxt)
    d.output("pc", pc.q)
    return d.finalize()


def _pc_is(d, pc, value):
    bits = [pc[i] if (value >> i) & 1 else ~pc[i] for i in range(pc.width)]
    acc = bits[0]
    for b in bits[1:]:
        acc = acc & b
    return acc


class ToyTarget(SymbolicTarget):
    name = "toy"
    drive_rounds = 1

    def __init__(self, netlist, halt_pc=7, symbolic_input=True):
        super().__init__(netlist)
        self.halt_pc = halt_pc
        self.symbolic_input = symbolic_input
        self.pc_nets = netlist.bus("pc", 3)
        self.monitored_nets = [netlist.net_index("d")]
        self.branch_point_net = netlist.net_index("branch_point")
        self.branch_force_net = netlist.net_index("branch_taken")

    def apply_symbolic_inputs(self, sim):
        sim.set_input("d", Logic.X if self.symbolic_input else Logic.L0)

    def apply_concrete_inputs(self, sim, inputs):
        sim.set_input("d", Logic.L1 if inputs.get("d") else Logic.L0)

    def is_done(self, sim):
        if self.halt_pc is None:
            return False
        return self.current_pc(sim) == self.halt_pc


class TestEngineBasics:
    def test_single_path_when_no_x(self):
        target = ToyTarget(toy_design(), symbolic_input=False)
        result = CoAnalysisEngine(target, application="toy").run()
        assert result.paths_created == 1
        assert result.splits == 0
        assert result.path_records[0].outcome == "done"

    def test_split_on_symbolic_branch(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        assert result.splits == 1
        assert result.paths_created == 3
        outcomes = {r.outcome for r in result.path_records}
        assert outcomes == {"split", "done"}

    def test_both_decisions_explored(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        forced = sorted(r.forced_decision for r in result.path_records
                        if r.forced_decision is not None)
        assert forced == [0, 1]

    def test_exercisable_subset_of_total(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        assert 0 < result.exercisable_gate_count <= result.total_gates
        assert result.reduction_percent >= 0

    def test_simulated_cycles_accumulate(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        assert result.simulated_cycles == \
            sum(r.cycles for r in result.path_records)

    def test_csm_stats_propagated(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        assert result.csm_stats["observed"] >= 1


class TestBudgets:
    def test_strict_budget_raises(self):
        # halt_pc=None: termination never detected -> budget exhausted
        target = ToyTarget(toy_design(), halt_pc=None,
                           symbolic_input=False)
        engine = CoAnalysisEngine(target, application="toy",
                                  max_cycles_per_path=20, strict=True)
        with pytest.raises(CoAnalysisError):
            engine.run()

    def test_lenient_budget_truncates(self):
        target = ToyTarget(toy_design(), halt_pc=None,
                           symbolic_input=False)
        engine = CoAnalysisEngine(target, application="toy",
                                  max_cycles_per_path=20, strict=False)
        result = engine.run()
        assert result.truncated_paths == 1
        assert result.path_records[0].outcome == "budget"

    def test_max_paths_guard(self):
        target = ToyTarget(toy_design())
        engine = CoAnalysisEngine(target, application="toy", max_paths=1)
        with pytest.raises(CoAnalysisError):
            engine.run()


class TestActivitySemantics:
    def test_branch_cone_exercised(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        ex = result.profile.exercised_nets()
        nl = target.netlist
        assert ex[nl.net_index("d")]               # the X input
        assert ex[nl.net_index("branch_taken")]

    def test_concrete_run_narrower_than_symbolic(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        from repro.coanalysis.concrete import run_concrete
        run = run_concrete(target, {"d": 1}, max_cycles=50)
        extra = run.exercised_nets & ~result.profile.exercised_nets()
        assert not extra.any()


class TestMonitorGating:
    def test_no_halt_without_branch_point(self):
        """X on a monitored net away from a branch must not halt."""
        nl = toy_design(branch_pc=6)   # branch very late
        target = ToyTarget(nl)
        # halt_pc=7 still reachable; d is X the whole run but only the
        # branch at pc=6 consults it
        result = CoAnalysisEngine(target, application="toy").run()
        # exactly one split, at pc 6
        assert result.splits == 1
        assert result.path_records[0].end_pc == 6
