"""Unit tests for the event-kernel co-analysis variant.

Uses the saturating-accumulator FSM from the Listing 1 example: the
accumulator adds an unknown input until it crosses a threshold, so the
``crossed`` control signal goes X and the simulation must fork.
"""

import pytest

from repro.coanalysis.event_engine import EventCoAnalysis
from repro.coanalysis.results import CoAnalysisError, CoAnalysisResult
from repro.logic import Logic
from repro.rtl import Design, mux


WIDTH = 4


def saturating_acc():
    d = Design("acc")
    din = d.input("din", WIDTH)
    acc = d.reg(WIDTH, "acc", reset=True)
    crossed = d.name_sig("crossed", acc.q.uge(d.const(8, WIDTH)))
    done = d.reg(1, "done_r", reset=True)
    done.drive(d.const(1, 1), enable=crossed)
    nxt, _ = acc.q.add(din)
    acc.drive(mux(crossed, nxt, acc.q))
    d.output("acc_o", acc.q)
    d.output("done_o", done.q)
    return d.finalize()


def make_analysis(netlist, symbolic=True, **kw):
    def drive(sim):
        for i in range(WIDTH):
            if symbolic:
                value = Logic.X if i < 2 else Logic.L0
            else:
                value = Logic.L1 if i == 0 else Logic.L0   # din = 1
            sim.poke_by_name(f"din[{i}]", value)
        sim.poke_by_name("rst", Logic.L0)

    def is_done(sim):
        return sim.get_logic_by_name("done_r") is Logic.L1

    def pc_of(sim):
        # control-state key: the done bit (0 = accumulating, 1 = done)
        level = sim.get_logic_by_name("done_r")
        return None if not level.is_known else int(level is Logic.L1)

    def reset(sim):
        sim.poke_by_name("rst", Logic.L1)
        for i in range(WIDTH):
            sim.poke_by_name(f"din[{i}]", Logic.L0)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)

    acc_nets = [f"acc[{i}]" for i in range(WIDTH)]
    return EventCoAnalysis(
        netlist, monitored=["crossed"], fork_nets=acc_nets,
        drive=drive, is_done=is_done, pc_of=pc_of, reset=reset, **kw)


@pytest.fixture(scope="module")
def reset_state():
    """Run the FSM through reset concretely first, checking bring-up."""
    from repro.sim import EventSim
    nl = saturating_acc()
    sim = EventSim(nl)
    sim.poke_by_name("rst", Logic.L1)
    for i in range(WIDTH):
        sim.poke_by_name(f"din[{i}]", Logic.L0)
    sim.tick()
    assert sim.get_logic_by_name("acc[0]") is Logic.L0
    return nl


class TestEventCoAnalysis:
    def test_forks_and_converges(self, reset_state):
        nl = reset_state
        analysis = make_analysis(nl)
        result = analysis.run()
        # one result type across all backends since the kernel extraction
        assert isinstance(result, CoAnalysisResult)
        assert result.splits >= 1
        assert result.paths_created == 1 + 2 * result.splits
        assert result.simulated_cycles > 0
        # trace-derived metrics agree with the engine's own counters
        assert result.metrics.splits == result.splits
        assert result.metrics.paths_explored == len(result.path_records)
        assert result.metrics.simulated_cycles == result.simulated_cycles

    def test_exercised_nets_cover_symbolic_cone(self, reset_state):
        nl = reset_state
        result = make_analysis(nl).run()
        exercised = result.profile.exercised_nets()
        assert exercised[nl.net_index("din[0]")]
        assert exercised[nl.net_index("crossed")]
        gates = result.profile.exercisable_gates()
        assert 0 < len(gates) <= nl.gate_count()

    def test_concrete_input_single_path(self, reset_state):
        nl = reset_state
        result = make_analysis(nl, symbolic=False,
                               max_cycles_per_path=40).run()
        assert result.paths_created == 1
        assert result.splits == 0

    def test_budget_enforced(self, reset_state):
        nl = reset_state

        def never_done(sim):
            return False

        analysis = make_analysis(nl, symbolic=False,
                                 max_cycles_per_path=5)
        analysis.is_done = never_done
        with pytest.raises(CoAnalysisError):
            analysis.run()

    def test_events_counted(self, reset_state):
        result = make_analysis(reset_state).run()
        assert result.events_executed > 0
