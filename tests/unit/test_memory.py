"""Unit tests for the symbolic memory model."""

import pytest

from repro.logic import Logic, LVec
from repro.sim import XMemory


def lv(text):
    return LVec.from_str(text)


class TestBasics:
    def test_load_and_read(self):
        m = XMemory(16, 8)
        m.load_word(3, 0xAB)
        assert m.read_concrete(3).to_int() == 0xAB

    def test_initial_contents_known_zero(self):
        m = XMemory(4, 8)
        assert m.read_concrete(0).to_int() == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            XMemory(0, 8)
        with pytest.raises(ValueError):
            XMemory(8, 0)

    def test_address_bounds(self):
        m = XMemory(4, 8)
        with pytest.raises(IndexError):
            m.load_word(4, 0)

    def test_set_unknown_range(self):
        m = XMemory(16, 8)
        m.set_unknown_range(4, 8)
        assert m.read_concrete(4).has_x
        assert m.read_concrete(7).has_x
        assert not m.read_concrete(8).has_x

    def test_fill_unknown(self):
        m = XMemory(4, 8)
        m.fill_unknown()
        assert all(m.read_concrete(a).has_x for a in range(4))


class TestSymbolicRead:
    def test_known_address(self):
        m = XMemory(8, 8)
        m.load_word(5, 77)
        assert m.read(LVec.from_int(5, 3)).to_int() == 77

    def test_oob_known_address_reads_x(self):
        m = XMemory(4, 8)
        assert m.read(LVec.from_int(7, 3)).has_x

    def test_x_address_merges_window(self):
        m = XMemory(8, 8)
        m.load_word(2, 0b1010)
        m.load_word(3, 0b1000)
        # address 01x selects {2, 3}
        addr = lv("01x")
        out = m.read(addr)
        assert out[3] is Logic.L1
        assert out[0] is Logic.L0
        assert out[1] is Logic.X  # differs between the two words

    def test_x_address_agreeing_words_stay_known(self):
        m = XMemory(4, 8)
        m.load_word(0, 9)
        m.load_word(1, 9)
        assert m.read(lv("0x")).to_int() == 9


class TestWrites:
    def test_plain_write(self):
        m = XMemory(8, 8)
        m.write(LVec.from_int(2, 3), LVec.from_int(0x5A, 8))
        assert m.read_concrete(2).to_int() == 0x5A

    def test_write_disabled(self):
        m = XMemory(8, 8)
        m.write(LVec.from_int(2, 3), LVec.from_int(1, 8),
                enable=Logic.L0)
        assert m.read_concrete(2).to_int() == 0

    def test_x_enable_merges(self):
        m = XMemory(8, 8)
        m.load_word(2, 0b0011)
        m.write(LVec.from_int(2, 3), LVec.from_int(0b0101, 8),
                enable=Logic.X)
        out = m.read_concrete(2)
        assert out[0] is Logic.L1          # both agree
        assert out[1] is Logic.X           # differ
        assert out[2] is Logic.X
        assert m.x_en_writes == 1

    def test_x_address_write_merges_window(self):
        m = XMemory(8, 8)
        m.load_word(0, 0xFF)
        m.load_word(4, 0xFF)
        m.write(lv("0xx"), LVec.from_int(0xFF, 8))  # window 0..3
        assert m.read_concrete(0).to_int() == 0xFF   # agreeing write
        assert m.read_concrete(1).has_x              # 0 merged with 0xFF
        assert m.read_concrete(4).to_int() == 0xFF   # outside window
        assert m.x_addr_writes == 1

    def test_oob_write_ignored(self):
        m = XMemory(4, 8)
        m.write(LVec.from_int(7, 3), LVec.from_int(1, 8))
        assert all(m.read_concrete(a).to_int() == 0 for a in range(4))


class TestStateOps:
    def test_snapshot_restore(self):
        m = XMemory(4, 8)
        m.load_word(1, 11)
        snap = m.snapshot()
        m.load_word(1, 22)
        m.restore(snap)
        assert m.read_concrete(1).to_int() == 11

    def test_covers(self):
        a = XMemory(4, 4)
        b = XMemory(4, 4)
        a.set_unknown(2)
        b.load_word(2, 7)
        assert a.covers(b)
        assert not b.covers(a)

    def test_merge_from(self):
        a = XMemory(2, 4)
        b = XMemory(2, 4)
        a.load_word(0, 0b0101)
        b.load_word(0, 0b0110)
        a.merge_from(b)
        out = a.read_concrete(0)
        # 0101 merged with 0110: bits 0 and 1 differ -> X
        assert str(out) == "01xx"

    def test_equality(self):
        a = XMemory(2, 4)
        b = XMemory(2, 4)
        assert a == b
        b.load_word(1, 3)
        assert a != b
        c = XMemory(2, 4)
        c.set_unknown(0)
        d = XMemory(2, 4)
        d.set_unknown(0)
        assert c == d
