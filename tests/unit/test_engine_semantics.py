"""Deeper unit tests of Algorithm 1 mechanics on the toy target.

Covers the corner semantics the integration grid exercises only in
aggregate: forced-decision lifetimes, CSM interaction, restore
determinism, and observer invocation.
"""

import pytest

from repro.coanalysis import CoAnalysisEngine
from repro.csm import ConservativeStateManager, ExactSet
from repro.logic import Logic

from .test_coanalysis import ToyTarget, toy_design


class TestForcedDecisions:
    def test_force_released_after_first_cycle(self):
        """A forced branch decision must not leak into later cycles."""
        target = ToyTarget(toy_design())
        engine = CoAnalysisEngine(target, application="toy")
        result = engine.run()
        # after the run the engine's sim must hold no residual forces
        # (we re-run and compare: determinism implies no leakage)
        result2 = CoAnalysisEngine(target, application="toy").run()
        assert result.paths_created == result2.paths_created
        assert result.simulated_cycles == result2.simulated_cycles

    def test_forced_children_take_different_paths(self):
        target = ToyTarget(toy_design(branch_pc=2, taken_pc=5))
        result = CoAnalysisEngine(target, application="toy").run()
        done = [r for r in result.path_records if r.outcome == "done"]
        assert len(done) == 2
        # both children halted at pc 7 but traveled different lengths
        assert {r.cycles for r in done} != {done[0].cycles} or \
            done[0].cycles == done[1].cycles  # lengths may tie; check pcs
        assert all(r.end_pc == 7 for r in done)


class TestDeterminism:
    def test_runs_are_reproducible(self):
        results = [CoAnalysisEngine(ToyTarget(toy_design()),
                                    application="toy").run()
                   for _ in range(2)]
        a, b = results
        assert [r.outcome for r in a.path_records] == \
            [r.outcome for r in b.path_records]
        assert (a.profile.exercised_nets()
                == b.profile.exercised_nets()).all()


class TestCsmInteraction:
    def test_exact_set_on_toy(self):
        target = ToyTarget(toy_design())
        csm = ConservativeStateManager(ExactSet())
        result = CoAnalysisEngine(target, csm=csm,
                                  application="toy").run()
        assert result.splits >= 1
        assert csm.stats.observed == result.splits \
            + result.paths_skipped

    def test_repository_keyed_by_halt_pc(self):
        target = ToyTarget(toy_design(branch_pc=2))
        csm = ConservativeStateManager()
        CoAnalysisEngine(target, csm=csm, application="toy").run()
        assert csm.pcs() == [2]


class TestObserver:
    def test_cycle_observer_sees_every_cycle(self):
        target = ToyTarget(toy_design())
        seen = []
        engine = CoAnalysisEngine(
            target, application="toy",
            cycle_observer=lambda sim, pid, cyc: seen.append((pid, cyc)))
        result = engine.run()
        assert len(seen) == result.simulated_cycles
        # per-path cycle counters restart from zero
        per_path = {}
        for pid, cyc in seen:
            per_path.setdefault(pid, []).append(cyc)
        for cycles in per_path.values():
            assert cycles == list(range(len(cycles)))

    def test_observer_sees_settled_values(self):
        target = ToyTarget(toy_design())

        def check(sim, pid, cyc):
            # the PC bus must always be readable and settled
            assert target.current_pc(sim) is not None

        CoAnalysisEngine(target, application="toy",
                         cycle_observer=check).run()
