"""Unit tests for poison-segment quarantine."""

import pytest

from repro.resilience.quarantine import (Quarantined, QuarantineRegistry,
                                         as_quarantine, segment_key)


class TestSegmentKey:
    def test_stable_for_same_inputs(self):
        assert segment_key(b"state", 1) == segment_key(b"state", 1)

    def test_forked_branches_get_distinct_keys(self):
        assert segment_key(b"state", 0) != segment_key(b"state", 1)
        assert segment_key(b"state", None) != segment_key(b"state", 0)

    def test_different_states_get_distinct_keys(self):
        assert segment_key(b"a", None) != segment_key(b"b", None)

    def test_pc_is_cosmetic(self):
        assert segment_key(b"s", 1, pc=7) == segment_key(b"s", 1, pc=8)


class TestThreshold:
    def test_quarantines_at_threshold(self):
        reg = QuarantineRegistry(threshold=3)
        assert not reg.record_failure("k", "crash")
        assert not reg.record_failure("k", "timeout")
        assert reg.record_failure("k", "crash")      # crossing returns True
        assert reg.is_quarantined("k")
        assert not reg.record_failure("k", "crash")  # already quarantined

    def test_keys_are_independent(self):
        reg = QuarantineRegistry(threshold=2)
        reg.record_failure("a", "crash")
        reg.record_failure("b", "crash")
        assert not reg.is_quarantined("a")
        assert not reg.is_quarantined("b")
        reg.record_failure("a", "crash")
        assert reg.is_quarantined("a") and not reg.is_quarantined("b")

    def test_record_carries_history(self):
        reg = QuarantineRegistry(threshold=2)
        reg.record_failure("k", "timeout", detail="hung", pc=12)
        reg.record_failure("k", "crash", detail="boom")
        record = reg.record("k")
        assert record.failures == 2
        assert record.kinds == ["timeout", "crash"]
        assert record.detail == "boom"
        assert record.pc == 12

    def test_len_and_active_count_only_quarantined(self):
        reg = QuarantineRegistry(threshold=2)
        reg.record_failure("a", "crash")
        assert len(reg) == 0 and not reg.active
        reg.record_failure("a", "crash")
        assert len(reg) == 1 and reg.active

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            QuarantineRegistry(threshold=0)


class TestSnapshot:
    def test_roundtrip_preserves_verdicts(self):
        reg = QuarantineRegistry(threshold=2)
        reg.record_failure("a", "crash", detail="x", pc=3)
        reg.record_failure("a", "crash", detail="y", pc=3)
        reg.record_failure("b", "timeout")
        fresh = QuarantineRegistry(threshold=2)
        fresh.restore_state(reg.snapshot_state())
        assert fresh.is_quarantined("a")
        assert not fresh.is_quarantined("b")
        assert fresh.record("b").failures == 1
        assert fresh.summary() == reg.summary()

    def test_summary_lists_only_quarantined(self):
        reg = QuarantineRegistry(threshold=2)
        reg.record_failure("a", "crash")
        assert reg.summary() == []
        reg.record_failure("a", "crash")
        (verdict,) = reg.summary()
        assert verdict["key"] == "a" and verdict["quarantined"]


class TestSentinelAndCoercion:
    def test_sentinel_wraps_record(self):
        reg = QuarantineRegistry(threshold=1)
        reg.record_failure("k", "crash", pc=5)
        sealed = Quarantined(reg.record("k"))
        assert sealed.record.key == "k"
        assert "pc=5" in repr(sealed)

    def test_none_passes_through(self):
        assert as_quarantine(None) is None

    def test_int_becomes_registry(self):
        reg = as_quarantine(4)
        assert isinstance(reg, QuarantineRegistry) and reg.threshold == 4

    def test_instance_passes_through(self):
        reg = QuarantineRegistry()
        assert as_quarantine(reg) is reg
