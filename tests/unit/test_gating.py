"""Unit tests for the power-gating (per-path activity) analysis."""

import pytest

from repro.analysis import analyze_gating, gating_from_result
from repro.coanalysis import CoAnalysisEngine
from repro.workloads import WORKLOADS, build_target

from .test_coanalysis import ToyTarget, toy_design


class TestToyGating:
    @pytest.fixture(scope="class")
    def report(self):
        target = ToyTarget(toy_design())
        return target, analyze_gating(target, application="toy")

    def test_classes_partition_the_netlist(self, report):
        target, rep = report
        total = len(rep.always) + len(rep.sometimes) + len(rep.never)
        assert total == target.netlist.gate_count()

    def test_two_executions_considered(self, report):
        _, rep = report
        assert rep.paths_considered == 2   # taken / not-taken

    def test_fractions_bounded(self, report):
        _, rep = report
        assert all(0.0 <= f <= 1.0
                   for f in rep.exercise_fraction.values())
        for g in rep.always:
            assert rep.exercise_fraction[g] == 1.0

    def test_area_accounting(self, report):
        target, rep = report
        assert rep.always_area + rep.sometimes_area + rep.never_area == \
            pytest.approx(target.netlist.area())
        assert 0 <= rep.gateable_area_percent <= 100


class TestResultRequirements:
    def test_requires_per_path_activity(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(target, application="toy").run()
        with pytest.raises(ValueError):
            gating_from_result(target.netlist, result)

    def test_per_path_union_matches_profile(self):
        """The per-segment recording must not change the global profile."""
        target = ToyTarget(toy_design())
        plain = CoAnalysisEngine(target, application="toy").run()
        recorded = CoAnalysisEngine(
            target, application="toy",
            record_per_path_activity=True).run()
        assert (plain.profile.exercised_nets()
                == recorded.profile.exercised_nets()).all()
        assert plain.paths_created == recorded.paths_created

    def test_segments_align_with_records(self):
        target = ToyTarget(toy_design())
        result = CoAnalysisEngine(
            target, application="toy",
            record_per_path_activity=True).run()
        assert len(result.per_path_exercised) == len(result.path_records)


class TestCoreGating:
    def test_divider_has_path_dependent_gates(self):
        """Div's subtract-or-exit structure leaves some gates exercised
        only on executions that enter the loop body."""
        target = build_target("dr5", WORKLOADS["Div"])
        rep = analyze_gating(target, application="Div")
        assert rep.paths_considered > 5
        assert rep.sometimes, "expected path-dependent gates on Div"
        assert rep.gateable_area_percent > \
            100.0 * rep.never_area / target.netlist.area()
