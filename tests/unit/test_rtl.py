"""Unit tests for the RTL construction kit."""

import pytest

from repro.logic import Logic, LVec
from repro.netlist import NetlistError
from repro.rtl import Design, mux, mux_tree, onehot_mux
from repro.sim import CompiledNetlist, CycleSim


def run_comb(build, inputs):
    """Elaborate a 1-output comb design and evaluate it once."""
    d = Design("t")
    sigs = {name: d.input(name, width) for name, width in inputs}
    out = build(d, sigs)
    d.output("y", out)
    nl = d.finalize()
    sim = CycleSim(CompiledNetlist(nl))

    def evaluate(**values):
        for name, v in values.items():
            sim.set_input(name, v)
        sim.settle()
        nets = nl.bus("y", out.width) if out.width > 1 else \
            [nl.net_index("y")]
        return sim.get_bus(nets)

    return evaluate


class TestBitwise:
    def test_and_or_xor(self):
        ev = run_comb(lambda d, s: (s["a"] & s["b"]) | (s["a"] ^ s["b"]),
                      [("a", 4), ("b", 4)])
        # (a&b)|(a^b) == a|b
        for a in (0, 5, 15):
            for b in (0, 3, 12):
                assert ev(a=LVec.from_int(a, 4),
                          b=LVec.from_int(b, 4)).to_int() == (a | b)

    def test_invert(self):
        ev = run_comb(lambda d, s: ~s["a"], [("a", 4)])
        assert ev(a=LVec.from_int(0b1010, 4)).to_int() == 0b0101


class TestArithmetic:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (200, 100), (255, 1)])
    def test_add(self, a, b):
        ev = run_comb(lambda d, s: s["a"].add(s["b"])[0],
                      [("a", 8), ("b", 8)])
        assert ev(a=LVec.from_int(a, 8),
                  b=LVec.from_int(b, 8)).to_int() == (a + b) & 0xFF

    @pytest.mark.parametrize("a,b", [(9, 5), (5, 9), (0, 1)])
    def test_sub_and_borrow(self, a, b):
        d = Design("t")
        sa = d.input("a", 8)
        sb = d.input("b", 8)
        diff, no_borrow = sa.sub(sb)
        d.output("y", diff)
        d.output("nb", no_borrow)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("a", LVec.from_int(a, 8))
        sim.set_input("b", LVec.from_int(b, 8))
        sim.settle()
        assert sim.get_bus(nl.bus("y", 8)).to_int() == (a - b) & 0xFF
        assert sim.get_net(nl.net_index("nb")) == \
            (Logic.L1 if a >= b else Logic.L0)

    @pytest.mark.parametrize("a,b,expect", [
        (3, 5, 1), (5, 3, 0), (4, 4, 0),
        (0xFC, 2, 0),      # -4 < 2 signed
        (2, 0xFC, 1),      # 2 < -4 is false ... (see assert below)
    ])
    def test_slt_signed(self, a, b, expect):
        ev = run_comb(lambda d, s: s["a"].slt(s["b"]),
                      [("a", 8), ("b", 8)])
        def signed(x):
            return x - 256 if x >= 128 else x
        want = 1 if signed(a) < signed(b) else 0
        assert ev(a=LVec.from_int(a, 8),
                  b=LVec.from_int(b, 8)).to_int() == want

    def test_eq_ne(self):
        ev = run_comb(lambda d, s: s["a"].eq(s["b"]), [("a", 4), ("b", 4)])
        assert ev(a=LVec.from_int(7, 4), b=LVec.from_int(7, 4)).to_int() == 1
        assert ev(a=LVec.from_int(7, 4), b=LVec.from_int(6, 4)).to_int() == 0


class TestShifts:
    def test_const_shifts(self):
        ev = run_comb(lambda d, s: s["a"].shl_const(2), [("a", 8)])
        assert ev(a=LVec.from_int(3, 8)).to_int() == 12
        ev = run_comb(lambda d, s: s["a"].shr_const(2), [("a", 8)])
        assert ev(a=LVec.from_int(12, 8)).to_int() == 3
        ev = run_comb(lambda d, s: s["a"].sar_const(2), [("a", 8)])
        assert ev(a=LVec.from_int(0x80, 8)).to_int() == 0xE0

    @pytest.mark.parametrize("amt", [0, 1, 3, 7])
    def test_barrel_shl(self, amt):
        ev = run_comb(lambda d, s: s["a"].shl(s["n"]),
                      [("a", 8), ("n", 3)])
        assert ev(a=LVec.from_int(0b11, 8),
                  n=LVec.from_int(amt, 3)).to_int() == (0b11 << amt) & 0xFF

    @pytest.mark.parametrize("amt", [0, 2, 5])
    def test_barrel_shr(self, amt):
        ev = run_comb(lambda d, s: s["a"].shr(s["n"]),
                      [("a", 8), ("n", 3)])
        assert ev(a=LVec.from_int(0xF0, 8),
                  n=LVec.from_int(amt, 3)).to_int() == 0xF0 >> amt


class TestMuxes:
    def test_mux2(self):
        ev = run_comb(lambda d, s: mux(s["s"], s["a"], s["b"]),
                      [("s", 1), ("a", 4), ("b", 4)])
        assert ev(s=0, a=LVec.from_int(3, 4),
                  b=LVec.from_int(9, 4)).to_int() == 3
        assert ev(s=1, a=LVec.from_int(3, 4),
                  b=LVec.from_int(9, 4)).to_int() == 9

    def test_mux_tree(self):
        def build(d, s):
            opts = [d.const(v, 8) for v in (10, 20, 30, 40)]
            return mux_tree(s["sel"], opts)
        ev = run_comb(build, [("sel", 2)])
        for i, v in enumerate((10, 20, 30, 40)):
            assert ev(sel=LVec.from_int(i, 2)).to_int() == v

    def test_mux_tree_pads_with_last(self):
        def build(d, s):
            return mux_tree(s["sel"], [d.const(5, 4), d.const(7, 4),
                                       d.const(9, 4)])
        ev = run_comb(build, [("sel", 2)])
        assert ev(sel=LVec.from_int(3, 2)).to_int() == 9

    def test_onehot_mux(self):
        def build(d, s):
            return onehot_mux([s["s0"], s["s1"]],
                              [d.const(0b0101, 4), d.const(0b0011, 4)])
        ev = run_comb(build, [("s0", 1), ("s1", 1)])
        assert ev(s0=1, s1=0).to_int() == 0b0101
        assert ev(s0=0, s1=1).to_int() == 0b0011

    def test_mux_width_mismatch(self):
        d = Design("t")
        s = d.input("s")
        a = d.input("a", 2)
        b = d.input("b", 3)
        with pytest.raises(NetlistError):
            mux(s, a, b)


class TestStructure:
    def test_cat_zext_sext(self):
        ev = run_comb(lambda d, s: s["a"].cat(s["b"]), [("a", 2), ("b", 2)])
        assert ev(a=LVec.from_int(0b01, 2),
                  b=LVec.from_int(0b10, 2)).to_int() == 0b1001
        ev = run_comb(lambda d, s: s["a"].sext(4), [("a", 2)])
        assert ev(a=LVec.from_int(0b10, 2)).to_int() == 0b1110

    def test_repl_requires_1bit(self):
        d = Design("t")
        a = d.input("a", 2)
        with pytest.raises(NetlistError):
            a.repl(3)

    def test_reductions(self):
        ev = run_comb(lambda d, s: s["a"].any(), [("a", 4)])
        assert ev(a=LVec.from_int(0, 4)).to_int() == 0
        assert ev(a=LVec.from_int(2, 4)).to_int() == 1
        ev = run_comb(lambda d, s: s["a"].all(), [("a", 4)])
        assert ev(a=LVec.from_int(15, 4)).to_int() == 1
        assert ev(a=LVec.from_int(7, 4)).to_int() == 0
        ev = run_comb(lambda d, s: s["a"].none(), [("a", 4)])
        assert ev(a=LVec.from_int(0, 4)).to_int() == 1


class TestRegisters:
    def test_register_must_be_driven(self):
        d = Design("t")
        d.reg(2, "r")
        with pytest.raises(NetlistError):
            d.finalize()

    def test_register_driven_twice_rejected(self):
        d = Design("t")
        r = d.reg(2, "r")
        r.drive(d.const(0, 2))
        with pytest.raises(NetlistError):
            r.drive(d.const(1, 2))

    def test_reset_value(self):
        d = Design("t")
        r = d.reg(4, "r", reset=True, reset_value=0b1010)
        r.drive(r.q)   # hold
        d.output("y", r.q)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.settle()
        assert sim.get_bus(nl.bus("y", 4)).to_int() == 0b1010

    def test_unreset_register_starts_x(self):
        d = Design("t")
        r = d.reg(2, "r", reset=False)
        r.drive(r.q)
        d.output("y", r.q)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.settle()
        assert sim.get_bus(nl.bus("y", 2)).has_x

    def test_enable_holds_value(self):
        d = Design("t")
        en = d.input("en")
        r = d.reg(4, "r", reset=True)
        s, _ = r.q.add(d.const(1, 4))
        r.drive(s, enable=en)
        d.output("y", r.q)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("rst", Logic.L1)
        sim.set_input("en", Logic.L0)
        sim.step()
        sim.set_input("rst", Logic.L0)
        sim.step()   # en=0: hold
        sim.set_input("en", Logic.L1)
        sim.step()   # +1
        sim.set_input("en", Logic.L0)
        sim.step()   # hold
        sim.settle()
        assert sim.get_bus(nl.bus("y", 4)).to_int() == 1
