"""Unit tests for the vectorized cycle engine."""

import numpy as np
import pytest

from repro.logic import Logic, LVec
from repro.netlist import Netlist
from repro.rtl import Design, mux
from repro.sim import (CompiledNetlist, CycleSim, ForcedRestoreWarning,
                       XMemory, compile_netlist)


def comb_xor_netlist():
    nl = Netlist("c")
    a = nl.add_net("a")
    b = nl.add_net("b")
    y = nl.add_net("y")
    nl.mark_input(a)
    nl.mark_input(b)
    nl.add_gate("g", "XOR", [a, b], y)
    nl.mark_output(y)
    return nl


class TestCombEvaluation:
    @pytest.mark.parametrize("kind,table", [
        ("AND", {(0, 0): "0", (0, 1): "0", (1, 1): "1", (0, "x"): "0",
                 (1, "x"): "x", ("x", "x"): "x"}),
        ("OR", {(0, 0): "0", (1, 0): "1", (1, "x"): "1", (0, "x"): "x"}),
        ("XOR", {(1, 1): "0", (1, 0): "1", (1, "x"): "x",
                 ("x", "x"): "x"}),
        ("NAND", {(1, 1): "0", (0, "x"): "1", (1, "x"): "x"}),
        ("NOR", {(0, 0): "1", (1, "x"): "0", (0, "x"): "x"}),
        ("XNOR", {(1, 1): "1", (1, "x"): "x"}),
    ])
    def test_two_input_kinds(self, kind, table):
        nl = Netlist("k")
        a = nl.add_net("a")
        b = nl.add_net("b")
        y = nl.add_net("y")
        nl.mark_input(a)
        nl.mark_input(b)
        nl.add_gate("g", kind, [a, b], y)
        nl.mark_output(y)
        sim = CycleSim(CompiledNetlist(nl))
        from repro.logic.value import coerce
        for (va, vb), expect in table.items():
            sim.set_net(a, coerce(va))
            sim.set_net(b, coerce(vb))
            sim.settle()
            assert sim.get_net(y) is coerce(expect), (kind, va, vb)

    def test_not_buf_ties(self):
        nl = Netlist("k")
        a = nl.add_net("a")
        n1 = nl.add_net("n1")
        n2 = nl.add_net("n2")
        t0 = nl.add_net("t0")
        t1 = nl.add_net("t1")
        nl.mark_input(a)
        nl.add_gate("g0", "NOT", [a], n1)
        nl.add_gate("g1", "BUF", [n1], n2)
        nl.add_gate("g2", "TIE0", [], t0)
        nl.add_gate("g3", "TIE1", [], t1)
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_net(a, Logic.L0)
        sim.settle()
        assert sim.get_net(n2) is Logic.L1
        assert sim.get_net(t0) is Logic.L0
        assert sim.get_net(t1) is Logic.L1
        sim.set_net(a, Logic.X)
        sim.settle()
        assert sim.get_net(n2) is Logic.X

    def test_mux2_x_select_agreement(self):
        nl = Netlist("m")
        d0 = nl.add_net("d0")
        d1 = nl.add_net("d1")
        s = nl.add_net("s")
        y = nl.add_net("y")
        for n in (d0, d1, s):
            nl.mark_input(n)
        nl.add_gate("g", "MUX2", [d0, d1, s], y)
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_net(d0, Logic.L1)
        sim.set_net(d1, Logic.L1)
        sim.set_net(s, Logic.X)
        sim.settle()
        assert sim.get_net(y) is Logic.L1
        sim.set_net(d1, Logic.L0)
        sim.settle()
        assert sim.get_net(y) is Logic.X


class TestFlopSemantics:
    def build_dff(self, kind):
        nl = Netlist("f")
        pins = [nl.add_net("d")]
        nl.mark_input(pins[0])
        if "E" in kind:
            e = nl.add_net("e")
            nl.mark_input(e)
            pins.append(e)
        if kind.endswith("R"):
            r = nl.add_net("r")
            nl.mark_input(r)
            pins.append(r)
        q = nl.add_net("q")
        nl.add_gate("ff", kind, pins, q)
        nl.mark_output(q)
        return nl, CycleSim(CompiledNetlist(nl))

    def test_dff_copies_d(self):
        nl, sim = self.build_dff("DFF")
        sim.set_input("d", Logic.L1)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.L1

    def test_dffr_reset_dominates(self):
        nl, sim = self.build_dff("DFFR")
        sim.set_input("d", Logic.L1)
        sim.set_input("r", Logic.L1)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.L0

    def test_dffr_x_reset_merges(self):
        nl, sim = self.build_dff("DFFR")
        sim.set_input("d", Logic.L1)
        sim.set_input("r", Logic.X)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.X
        # merge(0, 0) stays known
        sim.set_input("d", Logic.L0)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.L0

    def test_dffe_hold_and_load(self):
        nl, sim = self.build_dff("DFFE")
        sim.set_input("d", Logic.L1)
        sim.set_input("e", Logic.L1)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.L1
        sim.set_input("d", Logic.L0)
        sim.set_input("e", Logic.L0)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.L1  # held

    def test_dffe_x_enable_merges(self):
        nl, sim = self.build_dff("DFFE")
        sim.set_input("d", Logic.L1)
        sim.set_input("e", Logic.L1)
        sim.step()
        sim.set_input("d", Logic.L0)
        sim.set_input("e", Logic.X)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.X
        # agreeing data stays known even under X enable
        sim.set_input("d", Logic.X)
        sim.set_input("e", Logic.L1)
        sim.step()
        sim.set_input("e", Logic.X)
        sim.step()
        assert sim.get_net(nl.net_index("q")) is Logic.X


class TestForcing:
    def test_force_overrides_driver(self):
        nl = comb_xor_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("a", Logic.L1)
        sim.set_input("b", Logic.X)
        sim.settle()
        y = nl.net_index("y")
        assert sim.get_net(y) is Logic.X
        sim.force(y, Logic.L1)
        sim.settle()
        assert sim.get_net(y) is Logic.L1
        sim.release(y)
        sim.settle()
        assert sim.get_net(y) is Logic.X

    def test_force_propagates_downstream(self):
        d = Design("t")
        a = d.input("a")
        n = d.name_sig("mid", a)
        d.output("y", ~n)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("a", Logic.X)
        sim.settle()
        assert sim.get_net(nl.net_index("y")) is Logic.X
        sim.force(nl.net_index("mid"), Logic.L0)
        sim.settle()
        assert sim.get_net(nl.net_index("y")) is Logic.L1

    def test_force_replaced(self):
        nl = comb_xor_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        y = nl.net_index("y")
        sim.force(y, Logic.L0)
        sim.force(y, Logic.L1)
        sim.settle()
        assert sim.get_net(y) is Logic.L1
        sim.release()
        assert sim._force_nets.size == 0

    def test_force_store_is_dict_backed(self):
        """Repeated force/release is O(1) per call: the store is a dict
        and the packed arrays are rebuilt lazily, not via per-call
        ``.tolist()`` round-trips."""
        nl = comb_xor_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        a, y = nl.net_index("a"), nl.net_index("y")
        sim.force(a, Logic.L0)
        sim.force(y, Logic.L1)
        assert sim._forces == {a: (False, True), y: (True, True)}
        # packed arrays materialize on demand and agree with the dict
        assert sorted(sim._force_nets.tolist()) == sorted([a, y])
        sim.force(y, Logic.L0)           # replace: same net, new value
        assert sim._forces[y] == (False, True)
        assert len(sim._forces) == 2
        sim.release(a)
        assert sim._force_nets.tolist() == [y]

    def test_forced_net_ignores_set_net(self):
        """While forced, a net swallows pokes (matches the event kernel
        and Verilog ``force``): the poked value does not resurface after
        release."""
        nl = comb_xor_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        a = nl.net_index("a")
        sim.set_input("b", Logic.L0)
        sim.force(a, Logic.L1)
        sim.set_net(a, Logic.L0)         # swallowed
        sim.settle()
        assert sim.get_net(a) is Logic.L1
        sim.release(a)
        sim.settle()
        # a is a primary input: it keeps the forced value until re-driven
        assert sim.get_net(a) is Logic.L1


class TestSnapshotRestore:
    def make_counter(self):
        d = Design("cnt")
        r = d.reg(4, "cnt", reset=True)
        s, _ = r.q.add(d.const(1, 4))
        r.drive(s)
        d.output("y", r.q)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.attach_memory(XMemory(4, 8, name="m"))
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        return nl, sim

    def test_snapshot_restore_roundtrip(self):
        nl, sim = self.make_counter()
        for _ in range(3):
            sim.step()
        sim.memories["m"].load_word(2, 0xAB)
        snap = sim.snapshot(pc=3)
        for _ in range(5):
            sim.step()
        sim.memories["m"].load_word(2, 0x11)
        sim.restore(snap)
        sim.settle()
        assert sim.get_bus(nl.bus("y", 4)).to_int() == 3
        assert sim.memories["m"].read_concrete(2).to_int() == 0xAB
        assert sim.cycle == snap.cycle

    def test_restore_requires_matching_shape(self):
        _, sim = self.make_counter()
        snap = sim.snapshot()
        other = comb_xor_netlist()
        other_sim = CycleSim(CompiledNetlist(other))
        with pytest.raises(ValueError):
            other_sim.restore(snap)

    def test_restore_clears_forces(self):
        nl, sim = self.make_counter()
        snap = sim.snapshot()
        sim.force(nl.net_index("y[0]"), Logic.L1)
        with pytest.warns(ForcedRestoreWarning):
            sim.restore(snap)
        assert sim._force_nets.size == 0

    def test_restore_drops_forces_even_under_warnings_as_errors(self):
        """Regression: restore() used to warn *before* dropping the
        forces, so under ``-W error`` the raise left the pins (and the
        cached force arrays) live -- the next settle re-asserted a
        phantom force that no longer belonged to any path."""
        import warnings

        d = Design("ph")
        c = d.input("cond")
        d.output("taken", ~c)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        cond, taken = nl.net_index("cond"), nl.net_index("taken")
        sim.set_net(cond, Logic.L0)
        sim.settle()
        snap = sim.snapshot()
        sim.force(cond, Logic.L1)
        sim.settle()
        assert sim.get_net(taken) is Logic.L0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(ForcedRestoreWarning):
                sim.restore(snap)
        # the raise aborted the restore, but the force must be gone
        assert not sim._forces
        assert sim._force_nets.size == 0
        sim.set_net(cond, Logic.L0)
        sim.settle()
        assert sim.get_net(cond) is Logic.L0      # no phantom pin
        assert sim.get_net(taken) is Logic.L1

    def test_restore_then_force_ordering(self):
        """Pin the fork/replay ordering used by
        ``CoAnalysisEngine._simulate_segment``: restore a snapshot
        *first*, then force the branch-decision net.  The force must
        survive the restore (no warning) and steer downstream logic."""
        import warnings

        d = Design("br")
        c = d.input("cond")
        d.output("taken", ~c)
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        cond, taken = nl.net_index("cond"), nl.net_index("taken")
        sim.set_net(cond, Logic.X)
        sim.settle()
        snap = sim.snapshot()
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # any warning -> failure
            sim.restore(snap)
            sim.force(cond, Logic.L1)
            sim.settle()
        assert cond in sim._forces
        assert sim.get_net(cond) is Logic.L1
        assert sim.get_net(taken) is Logic.L0


class TestActivity:
    def test_toggles_recorded_after_arming(self):
        nl, sim = TestSnapshotRestore().make_counter()
        sim.settle()
        sim.arm_activity()
        for _ in range(2):
            sim.step()
        sim.settle()
        sim.record_activity_now()
        assert sim.exercised_nets()[nl.net_index("y[0]")]

    def test_no_activity_before_arming(self):
        nl, sim = TestSnapshotRestore().make_counter()
        for _ in range(3):
            sim.step()
        assert not sim.exercised_nets().any()

    def test_ever_x_counts_as_exercised(self):
        nl = comb_xor_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("a", Logic.L0)
        sim.set_input("b", Logic.L0)
        sim.settle()
        sim.arm_activity()
        sim.set_input("a", Logic.X)
        sim.settle()
        sim.record_activity_now()
        assert sim.exercised_nets()[nl.net_index("y")]

    def test_reset_activity(self):
        nl, sim = TestSnapshotRestore().make_counter()
        sim.settle()
        sim.arm_activity()
        sim.step()
        sim.reset_activity()
        assert not sim.exercised_nets().any()

    def test_glitch_during_drive_counts_as_toggled(self):
        """Activity contract of ``step(drive=...)``: toggles are recorded
        after *every* settle sweep, so a net that glitches in the first
        sweep and reverts once the drive callback responds still counts
        as exercised (glitches dissipate real power)."""
        nl = comb_xor_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        y = nl.net_index("y")
        sim.set_input("a", Logic.L0)
        sim.set_input("b", Logic.L0)
        sim.settle()
        sim.arm_activity()
        sim.set_input("a", Logic.L1)     # y glitches 0 -> 1 ...
        sim.step(drive=lambda s: s.set_input("a", Logic.L0))
        assert sim.get_net(y) is Logic.L0    # ... and reverts
        assert sim.exercised_nets()[y]       # but was still recorded


class TestIncrementalSettle:
    def make_counter_sim(self, **kw):
        d = Design("cnt")
        r = d.reg(8, "cnt", reset=True)
        s, _ = r.q.add(d.const(1, 8))
        r.drive(s)
        d.output("y", r.q)
        nl = d.finalize()
        return nl, CycleSim(compile_netlist(nl), **kw)

    def test_incremental_settles_happen_on_small_dirty_sets(self):
        nl, sim = self.make_counter_sim()
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        for _ in range(6):
            sim.step()
        # after the first full sweep, single-input pokes and flop edges
        # dirty only a small cone -> the incremental path must engage
        assert sim.full_settles >= 1
        assert sim.incremental_settles > 0

    def test_incremental_disabled_always_full(self):
        nl, sim = self.make_counter_sim(incremental=False)
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        for _ in range(4):
            sim.step()
        assert sim.incremental_settles == 0
        assert sim.full_settles >= 1

    def test_redundant_settle_is_noop(self):
        nl, sim = self.make_counter_sim()
        sim.set_input("rst", Logic.L1)
        sim.settle()
        before = (sim.full_settles, sim.incremental_settles)
        sim.settle()                     # nothing dirty
        assert (sim.full_settles, sim.incremental_settles) == before
        assert sim.noop_settles >= 1

    def test_mark_all_dirty_forces_full_sweep(self):
        nl, sim = self.make_counter_sim()
        sim.set_input("rst", Logic.L1)
        sim.settle()
        full_before = sim.full_settles
        # emulate the engine's bulk plane write (checkpoint resume)
        sim.val[:] = False
        sim.known[:] = False
        sim.mark_all_dirty()
        sim.set_input("rst", Logic.L1)
        sim.settle()
        assert sim.full_settles == full_before + 1

    def test_compile_netlist_cache_and_invalidation(self):
        nl = comb_xor_netlist()
        c1 = compile_netlist(nl)
        assert compile_netlist(nl) is c1
        # structural mutation invalidates the cached compilation
        n = nl.add_net("extra")
        nl.add_gate("gx", "NOT", [nl.net_index("y")], n)
        c2 = compile_netlist(nl)
        assert c2 is not c1
        assert compile_netlist(nl) is c2

    def test_compile_netlist_versionless_is_uncacheable(self):
        """Regression: a netlist without ``_mutation_version`` used to
        fall back to a ``-1`` sentinel, which matched itself forever --
        after the first compile, in-place edits silently served the
        stale schedule.  Version-less netlists must compile fresh."""
        nl = comb_xor_netlist()
        del nl._mutation_version
        c1 = compile_netlist(nl)
        # mutate in place: retarget the gate without bumping a version
        nl.gates[0].kind = "AND"
        c2 = compile_netlist(nl)
        assert c2 is not c1                 # no stale cache hit
        sim = CycleSim(c2)
        a, b, y = (nl.net_index(n) for n in ("a", "b", "y"))
        sim.set_net(a, Logic.L1)
        sim.set_net(b, Logic.L1)
        sim.settle()
        assert sim.get_net(y) is Logic.L1   # AND semantics, not XOR
