"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "dr5", "mult", "--csm", "clustered2",
             "--strategy", "bfs"])
        assert args.design == "dr5"
        assert args.csm == "clustered2"
        assert args.strategy == "bfs"

    def test_run_is_an_alias_of_analyze(self):
        args = build_parser().parse_args(
            ["run", "dr5", "mult", "--engine", "event",
             "--strategy", "novelty", "--trace", "out.jsonl",
             "--progress"])
        assert args.engine == "event"
        assert args.strategy == "novelty"
        assert args.trace == "out.jsonl"
        assert args.progress

    def test_strategy_rejects_csm_names(self):
        # the CSM knob moved to --csm; --strategy is the frontier now
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "dr5", "mult", "--strategy", "clustered2"])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "z80", "mult"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "dr5", "quicksort"])

    def test_verify_args(self):
        args = build_parser().parse_args(
            ["verify", "dr5", "mult", "--mode", "both", "--unroll", "3",
             "--max-conflicts", "5000", "--csm-states"])
        assert args.mode == "both"
        assert args.unroll == 3
        assert args.max_conflicts == 5000
        assert args.csm_states

    def test_verify_mode_defaults_to_sat(self):
        args = build_parser().parse_args(["verify", "dr5", "mult"])
        assert args.mode == "sat"
        assert args.unroll == 1

    def test_verify_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify", "dr5", "mult", "--mode", "smt"])

    def test_analyze_resilience_args(self):
        args = build_parser().parse_args(
            ["analyze", "dr5", "mult", "--checkpoint", "run.ckpt",
             "--resume", "--workers", "4"])
        assert args.checkpoint == "run.ckpt"
        assert args.resume
        assert args.workers == 4

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["analyze", "dr5", "mult", "--resume"])

    def test_lanes_requires_batch_engine(self, capsys):
        rc = main(["run", "dr5", "mult", "--lanes", "128"])
        assert rc == 2
        assert "--engine batch" in capsys.readouterr().err

    def test_lanes_must_be_multiple_of_64(self, capsys):
        rc = main(["run", "dr5", "mult", "--engine", "batch",
                   "--lanes", "100"])
        assert rc == 2
        assert "multiple of 64" in capsys.readouterr().err

    def test_batch_lanes_accepted(self, capsys):
        rc = main(["run", "dr5", "mult", "--engine", "batch",
                   "--lanes", "128", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["paths_created"] > 1


class TestCommands:
    def test_analyze_json(self, capsys):
        rc = main(["analyze", "dr5", "mult", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["design"] == "dr5"
        assert data["paths_created"] > 1

    def test_analyze_plain(self, capsys):
        rc = main(["analyze", "omsp430", "mult"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exercisable_gates" in out

    def test_bespoke_writes_verilog(self, tmp_path, capsys):
        out_v = tmp_path / "bespoke.v"
        rc = main(["bespoke", "dr5", "mult", "-o", str(out_v)])
        assert rc == 0
        text = out_v.read_text()
        assert text.startswith("module")
        assert "PASS" in capsys.readouterr().out

    def test_asm_lists_words(self, tmp_path, capsys):
        src = tmp_path / "p.s"
        src.write_text("movi r1, 7\n_halt: jmp _halt\n")
        rc = main(["asm", "omsp430", str(src)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("0000:")
        assert len(out.strip().splitlines()) == 2

    def test_disasm_lists_instructions(self, tmp_path, capsys):
        src = tmp_path / "p.s"
        src.write_text("start: movi r1, 7\n_halt: jmp _halt\n")
        rc = main(["disasm", "omsp430", str(src)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "start:" in out
        assert "movi r1, 7" in out

    def test_verify_sat_json(self, tmp_path, capsys):
        report = tmp_path / "equiv.json"
        rc = main(["verify", "dr5", "mult", "--json",
                   "--report", str(report)])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["equiv_status"] == "UNSAT"
        assert data["ok"] is True
        assert data["equiv"]["compare_points"] > 0
        saved = json.loads(report.read_text())
        assert saved["equiv_status"] == "UNSAT"

    def test_verify_both_prints_table_and_breakdown(self, capsys):
        rc = main(["verify", "dr5", "mult", "--mode", "both"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "UNSAT" in out
        assert "simulation spot-check: PASS" in out
        assert "pruned gates by cell kind" in out
        assert "verdict: PASS" in out

    def test_trace_writes_vcd(self, tmp_path, capsys):
        out_vcd = tmp_path / "w.vcd"
        rc = main(["trace", "omsp430", "mult", "-o", str(out_vcd)])
        assert rc == 0
        assert "$enddefinitions" in out_vcd.read_text()

    def test_power_reports_savings(self, capsys):
        rc = main(["power", "dr5", "tea8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak switching bound" in out
        assert "energy saving" in out

    def test_run_with_trace_writes_jsonl(self, tmp_path, capsys):
        from repro.coanalysis.trace import aggregate_trace, read_trace
        out = tmp_path / "run.jsonl"
        rc = main(["run", "dr5", "mult", "--strategy", "bfs",
                   "--trace", str(out), "--json"])
        assert rc == 0
        captured = capsys.readouterr()
        assert f"trace written to {out}" in captured.err
        summary = json.loads(captured.out)
        events = read_trace(out)
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"
        metrics = aggregate_trace(events)
        # the trace stream reconstructs the engine's own counters
        assert 1 + 2 * metrics.splits == summary["paths_created"]
        assert metrics.merges_covered == summary["paths_skipped"]
        assert metrics.simulated_cycles == summary["simulated_cycles"]
        assert metrics.summary() == summary["metrics"]

    def test_analyze_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        rc = main(["analyze", "dr5", "mult", "--checkpoint", str(ckpt)])
        assert rc == 0
        assert ckpt.exists()
        capsys.readouterr()
        rc = main(["analyze", "dr5", "mult", "--checkpoint", str(ckpt),
                   "--resume", "--json"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "resumed from checkpoint" in captured.err
        assert json.loads(captured.out)["design"] == "dr5"


class TestErrorHandling:
    def test_coanalysis_error_exits_nonzero_one_line(self, monkeypatch,
                                                     capsys):
        from repro import cli
        from repro.coanalysis.results import CoAnalysisError

        def boom(*args, **kwargs):
            raise CoAnalysisError("path stack exceeded max_paths=7")

        monkeypatch.setattr(cli, "run_one", boom)
        rc = cli.main(["analyze", "dr5", "mult"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err == "error: path stack exceeded max_paths=7\n"
        assert captured.out == ""

    def test_keyboard_interrupt_hints_at_resume(self, monkeypatch, capsys):
        from repro import cli

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "run_one", interrupt)
        rc = cli.main(["analyze", "dr5", "mult",
                       "--checkpoint", "run.ckpt"])
        assert rc == 130
        assert "--checkpoint run.ckpt --resume" in capsys.readouterr().err

    def test_timing_reports_slack(self, capsys):
        rc = main(["timing", "omsp430", "mult"])
        assert rc == 0
        assert "timing slack" in capsys.readouterr().out

    def test_coverage_json(self, capsys):
        rc = main(["coverage", "dr5", "mult", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["program_words"] > 0


class TestStoreCommand:
    def test_parser_accepts_store_actions(self):
        for action in ("ls", "stats", "gc", "verify"):
            args = build_parser().parse_args(
                ["store", action, "--cache", "x", "--json"])
            assert args.action == action
            assert args.json

    def test_store_lifecycle(self, tmp_path, capsys):
        cache = str(tmp_path / "store")
        rc = main(["run", "dr5", "mult", "--cache", cache, "--json"])
        assert rc == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["segment_cache_misses"] > 0

        rc = main(["run", "dr5", "mult", "--cache", cache, "--json"])
        assert rc == 0
        captured = capsys.readouterr()
        warm = json.loads(captured.out)
        assert warm["segment_cache_hits"] > 0
        assert warm["segment_cache_misses"] == 0
        assert "segment cache" in captured.err

        rc = main(["store", "stats", "--cache", cache, "--json"])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["objects"] > 0
        assert stats["manifest_kinds"].get("run") == 1

        rc = main(["store", "ls", "--cache", cache])
        assert rc == 0
        assert "run-" in capsys.readouterr().out

        rc = main(["store", "gc", "--cache", cache, "--json"])
        assert rc == 0
        gc = json.loads(capsys.readouterr().out)
        assert gc["removed"] == 0           # everything registered is live

        rc = main(["store", "verify", "--cache", cache, "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["ok"]

    def test_store_verify_flags_corruption(self, tmp_path, capsys):
        from repro.store import ContentStore
        store = ContentStore(tmp_path / "s")
        digest = store.put_bytes(b"payload")
        store.object_path(digest).write_bytes(b"tampered")
        store.put_manifest("m", {"blob": digest})
        rc = main(["store", "verify", "--cache", str(tmp_path / "s")])
        assert rc == 1
        assert "!!" in capsys.readouterr().out
