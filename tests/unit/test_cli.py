"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "dr5", "mult", "--strategy", "clustered2"])
        assert args.design == "dr5"
        assert args.strategy == "clustered2"

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "z80", "mult"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "dr5", "quicksort"])


class TestCommands:
    def test_analyze_json(self, capsys):
        rc = main(["analyze", "dr5", "mult", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["design"] == "dr5"
        assert data["paths_created"] > 1

    def test_analyze_plain(self, capsys):
        rc = main(["analyze", "omsp430", "mult"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exercisable_gates" in out

    def test_bespoke_writes_verilog(self, tmp_path, capsys):
        out_v = tmp_path / "bespoke.v"
        rc = main(["bespoke", "dr5", "mult", "-o", str(out_v)])
        assert rc == 0
        text = out_v.read_text()
        assert text.startswith("module")
        assert "PASS" in capsys.readouterr().out

    def test_asm_lists_words(self, tmp_path, capsys):
        src = tmp_path / "p.s"
        src.write_text("movi r1, 7\n_halt: jmp _halt\n")
        rc = main(["asm", "omsp430", str(src)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("0000:")
        assert len(out.strip().splitlines()) == 2

    def test_disasm_lists_instructions(self, tmp_path, capsys):
        src = tmp_path / "p.s"
        src.write_text("start: movi r1, 7\n_halt: jmp _halt\n")
        rc = main(["disasm", "omsp430", str(src)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "start:" in out
        assert "movi r1, 7" in out

    def test_trace_writes_vcd(self, tmp_path, capsys):
        out_vcd = tmp_path / "w.vcd"
        rc = main(["trace", "omsp430", "mult", "-o", str(out_vcd)])
        assert rc == 0
        assert "$enddefinitions" in out_vcd.read_text()

    def test_power_reports_savings(self, capsys):
        rc = main(["power", "dr5", "tea8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak switching bound" in out
        assert "energy saving" in out

    def test_timing_reports_slack(self, capsys):
        rc = main(["timing", "omsp430", "mult"])
        assert rc == 0
        assert "timing slack" in capsys.readouterr().out

    def test_coverage_json(self, capsys):
        rc = main(["coverage", "dr5", "mult", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["program_words"] > 0
