"""Structural tests of the three processor models (paper Table 2)."""

import pytest

from repro.netlist.cells import SEQ_KINDS
from repro.workloads import built_core

DESIGNS = ["omsp430", "bm32", "dr5"]


@pytest.fixture(params=DESIGNS)
def core(request):
    return request.param, *built_core(request.param)


class TestStructure:
    def test_netlist_validates(self, core):
        _, nl, _ = core
        nl.validate()

    def test_size_regimes(self, core):
        """Paper-shape invariant: bm32 is the biggest design."""
        name, nl, _ = core
        assert 1000 < nl.gate_count() < 20000
        bm32_gates = built_core("bm32")[0].gate_count()
        assert nl.gate_count() <= bm32_gates

    def test_single_clock_flops_only(self, core):
        _, nl, _ = core
        assert all(g.kind in SEQ_KINDS for g in nl.seq_gates)
        assert len(nl.seq_gates) > 50

    def test_memory_ports_exist(self, core):
        _, nl, meta = core
        for port, width in (
                (meta.pmem_addr_port, meta.pc_width),
                (meta.pmem_data_port, meta.word_width),
                (meta.dmem_addr_port, meta.dmem_addr_width),
                (meta.dmem_rdata_port, meta.word_width),
                (meta.dmem_wdata_port, meta.word_width)):
            assert nl.bus(port, width), port
        assert nl.has_net(meta.dmem_we_port)

    def test_control_signals_exist(self, core):
        _, nl, meta = core
        assert nl.has_net(meta.branch_point)
        assert nl.has_net(meta.branch_force)
        for name in meta.monitored_net_names():
            assert nl.has_net(name), name

    def test_pc_port(self, core):
        _, nl, meta = core
        assert len(nl.bus(meta.pc_port, meta.pc_width)) == meta.pc_width

    def test_logic_depth_bounded(self, core):
        """Levelization must succeed with a sane depth (no comb loops,
        no accidental quadratic chains)."""
        _, nl, _ = core
        depth = max(nl.levelize(), default=0)
        assert 10 < depth < 200

    def test_register_file_is_unreset(self, core):
        """Architectural registers power up X (Listing 1 step 3)."""
        name, nl, meta = core
        prefix = "x0" if name == "dr5" else "r1"
        ff = nl.gates[nl.gate_index(f"{prefix}_ff0")]
        assert ff.kind in ("DFF", "DFFE")

    def test_pc_resets(self, core):
        _, nl, _ = core
        ff = nl.gates[nl.gate_index("pc_r_ff0")]
        assert ff.kind in ("DFFR", "DFFER")


class TestMetaConsistency:
    def test_isa_labels(self):
        labels = {d: built_core(d)[1].isa for d in DESIGNS}
        assert labels == {"omsp430": "MSP430", "bm32": "MIPS32",
                          "dr5": "RV32e"}

    def test_word_widths(self):
        assert built_core("omsp430")[1].word_width == 16
        assert built_core("bm32")[1].word_width == 32
        assert built_core("dr5")[1].word_width == 32

    def test_monitored_shapes_match_paper(self):
        """omsp430 monitors 4 one-bit flags; the RISC cores monitor
        full-width compare operands (section 5.0.3)."""
        omsp = built_core("omsp430")[1]
        assert len(omsp.monitored_net_names()) == 4
        for d in ("bm32", "dr5"):
            meta = built_core(d)[1]
            assert len(meta.monitored_net_names()) == 2 * meta.word_width

    def test_multiplier_presence(self):
        """bm32 and omsp430 carry multiplier arrays; dr5 must not."""
        assert built_core("bm32")[0].find_nets("mpy_a")
        assert built_core("omsp430")[0].find_nets("mpy_op1")
        assert not built_core("dr5")[0].find_nets("mpy")


class TestPeripheralInventory:
    def test_omsp430_peripheral_registers(self):
        nl, _ = built_core("omsp430")
        for prefix in ("mpy_op1", "mpy_op2", "gpio_out_r", "wdt_cnt",
                       "wdt_en", "ta_cnt", "ta_ccr", "ta_en", "gie",
                       "ivec_r"):
            assert nl.find_nets(prefix), prefix

    def test_risc_cores_have_no_peripherals(self):
        for d in ("bm32", "dr5"):
            nl, _ = built_core(d)
            for prefix in ("gpio", "wdt", "ta_cnt"):
                assert not nl.find_nets(prefix), (d, prefix)
