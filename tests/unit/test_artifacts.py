"""Unit tests for crash-consistent artifact writing."""

import json
import os

import pytest

from repro.resilience.artifacts import (atomic_open, atomic_write_bytes,
                                        atomic_write_json,
                                        atomic_write_text, fsync_dir)
from repro.resilience.faults import torn_write


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "out.bin"
        atomic_write_bytes(path, b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_json_helper_roundtrips(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": [1, 2], "b": "x"})
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": "x"}


class TestErrorPath:
    def test_error_keeps_old_file_and_removes_temp(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as fh:
                fh.write("half of the new conte")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_error_with_no_previous_file_leaves_nothing(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_open(path, "wb") as fh:
                fh.write(b"partial")
                raise RuntimeError("crash")
        assert not path.exists()
        assert os.listdir(tmp_path) == []

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_open(tmp_path / "x", "r"):
                pass


class TestTornWriteSimulation:
    """torn_write models the in-place failure the atomic writer closes."""

    def test_torn_write_leaves_a_prefix(self, tmp_path):
        path = tmp_path / "victim.json"
        blob = json.dumps({"k": list(range(100))}).encode()
        torn_write(path, blob, keep=0.5)
        assert path.read_bytes() == blob[:len(blob) // 2]
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_torn_write_clamps_keep(self, tmp_path):
        with pytest.raises(ValueError):
            torn_write(tmp_path / "x", b"data", keep=1.5)

    def test_atomic_writer_is_immune_to_the_same_window(self, tmp_path):
        # the scenario torn_write models: old artifact + kill mid-update.
        # In-place writing leaves garbage; the atomic path leaves the
        # old artifact intact (verified via the error path above) and
        # after a *completed* write the content is whole.
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"version": 1})
        atomic_write_json(path, {"version": 2, "extra": "x" * 4096})
        assert json.loads(path.read_text())["version"] == 2


class TestFsyncDir:
    def test_fsync_dir_is_silent_on_missing_path(self, tmp_path):
        fsync_dir(tmp_path / "nope")        # must not raise

    def test_fsync_dir_on_real_directory(self, tmp_path):
        fsync_dir(tmp_path)                 # must not raise
