"""Unit tests for the event-driven kernel and the Symbolic event region."""

import pytest

from repro.logic import Logic
from repro.logic.symbol import SymBit
from repro.netlist import Netlist
from repro.rtl import Design
from repro.sim import (EventScheduler, EventSim, HaltSimulation,
                       LabeledSymbolDomain, MonitorX, Region)
from repro.sim.tasks import (InitializeState, load_state_file,
                             parse_signal_list, save_state_file)


def nand_latch_free_netlist():
    nl = Netlist("comb")
    a = nl.add_net("a")
    b = nl.add_net("b")
    n1 = nl.add_net("n1")
    y = nl.add_net("y")
    nl.mark_input(a)
    nl.mark_input(b)
    nl.add_gate("g0", "NAND", [a, b], n1)
    nl.add_gate("g1", "NOT", [n1], y)
    nl.mark_output(y)
    return nl


def counter_design(width=4):
    d = Design("cnt")
    en = d.input("en")
    r = d.reg(width, "cnt", reset=True)
    s, _ = r.q.add(d.const(1, width))
    r.drive(s, enable=en)
    d.output("y", r.q)
    return d.finalize()


class TestScheduler:
    def test_regions_execute_in_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(Region.SYMBOLIC, lambda: order.append("sym"))
        sched.schedule(Region.NBA, lambda: order.append("nba"))
        sched.schedule(Region.ACTIVE, lambda: order.append("act"))
        sched.run_time_step()
        assert order == ["act", "nba", "sym"]

    def test_nba_event_scheduling_active_reenters(self):
        sched = EventScheduler()
        order = []

        def nba_event():
            order.append("nba")
            sched.schedule(Region.ACTIVE, lambda: order.append("act2"))

        sched.schedule(Region.NBA, nba_event)
        sched.run_time_step()
        assert order == ["nba", "act2"]

    def test_symbolic_runs_only_when_settled(self):
        sched = EventScheduler()
        order = []

        def sym():
            order.append("sym")

        def act():
            order.append("act")
            sched.schedule(Region.NBA, lambda: order.append("nba"))

        sched.schedule(Region.SYMBOLIC, sym)
        sched.schedule(Region.ACTIVE, act)
        sched.run_time_step()
        assert order == ["act", "nba", "sym"]

    def test_future_scheduling_and_advance(self):
        sched = EventScheduler()
        hits = []
        sched.schedule(Region.ACTIVE, lambda: hits.append(sched.time),
                       delay=5)
        sched.schedule(Region.ACTIVE, lambda: hits.append(sched.time),
                       delay=2)
        sched.run()
        assert hits == [2, 5]

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.schedule(Region.ACTIVE, lambda: None, delay=-1)

    def test_event_count(self):
        sched = EventScheduler()
        for _ in range(3):
            sched.schedule(Region.ACTIVE, lambda: None)
        sched.run_time_step()
        assert sched.events_executed == 3

    def test_figure2_region_trace(self):
        """The paper's Figure 2 ordering, observed through the trace:
        within every time step, Symbolic events execute strictly after
        all other regions."""
        nl = counter_design()
        sim = EventSim(nl)
        sim.add_symbolic_task(lambda s: None)
        sim.scheduler.trace = []
        sim.poke_by_name("rst", Logic.L1)
        sim.poke_by_name("en", Logic.L1)
        for _ in range(3):
            sim.tick()
        by_time = {}
        for when, region in sim.scheduler.trace:
            by_time.setdefault(when, []).append(region)
        assert by_time, "trace empty"
        symbolic_steps = 0
        for regions in by_time.values():
            if int(Region.SYMBOLIC) not in regions:
                continue
            symbolic_steps += 1
            first_sym = regions.index(int(Region.SYMBOLIC))
            assert all(r == int(Region.SYMBOLIC)
                       for r in regions[first_sym:])
        assert symbolic_steps >= 3


class TestEventSim:
    def test_combinational_propagation(self):
        nl = nand_latch_free_netlist()
        sim = EventSim(nl)
        sim.poke_by_name("a", Logic.L1)
        sim.poke_by_name("b", Logic.L1)
        sim.settle()
        assert sim.get_logic_by_name("y") is Logic.L1

    def test_x_propagation(self):
        nl = nand_latch_free_netlist()
        sim = EventSim(nl)
        sim.poke_by_name("a", Logic.L0)
        sim.poke_by_name("b", Logic.X)
        sim.settle()
        assert sim.get_logic_by_name("y") is Logic.L0  # AND(0, x) = 0

    def test_poke_gate_driven_net_rejected(self):
        nl = nand_latch_free_netlist()
        sim = EventSim(nl)
        with pytest.raises(ValueError):
            sim.poke_by_name("y", Logic.L1)

    def test_counter_ticks(self):
        nl = counter_design()
        sim = EventSim(nl)
        sim.poke_by_name("rst", Logic.L1)
        sim.poke_by_name("en", Logic.L0)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        sim.poke_by_name("en", Logic.L1)
        for _ in range(5):
            sim.tick()
        got = [sim.get_logic_by_name(f"y[{i}]") for i in range(4)]
        assert [g is Logic.L1 for g in got] == [True, False, True, False]

    def test_save_restore_state(self):
        nl = counter_design()
        sim = EventSim(nl)
        sim.poke_by_name("rst", Logic.L1)
        sim.poke_by_name("en", Logic.L1)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        for _ in range(3):
            sim.tick()
        state = sim.save_state()
        for _ in range(4):
            sim.tick()
        sim.restore_state(state)
        got = [sim.get_logic_by_name(f"y[{i}]") for i in range(4)]
        assert [g is Logic.L1 for g in got] == [True, True, False, False]
        assert sim.cycle == 4

    def test_restore_wrong_design_rejected(self):
        sim1 = EventSim(counter_design())
        sim2 = EventSim(nand_latch_free_netlist())
        with pytest.raises(ValueError):
            sim2.restore_state(sim1.save_state())

    def test_state_file_roundtrip(self, tmp_path):
        nl = counter_design()
        sim = EventSim(nl)
        sim.poke_by_name("rst", Logic.L1)
        sim.poke_by_name("en", Logic.L1)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        sim.tick()
        path = tmp_path / "sim_state.log"
        save_state_file(path, sim.save_state())
        sim.tick()
        sim.tick()
        InitializeState(path)(sim)
        got = [sim.get_logic_by_name(f"y[{i}]") for i in range(4)]
        assert [g is Logic.L1 for g in got] == [True, False, False, False]


class TestMonitorX:
    def test_parse_signal_list(self):
        text = "# flags\nsr_n\nsr_z  # zero\n\nsr_c\n"
        assert parse_signal_list(text) == ["sr_n", "sr_z", "sr_c"]

    def test_monitor_halts_on_x(self):
        nl = counter_design()
        sim = EventSim(nl)
        monitor = MonitorX(["y[0]"])
        sim.add_symbolic_task(monitor)
        sim.poke_by_name("rst", Logic.L0)
        sim.poke_by_name("en", Logic.X)
        with pytest.raises(HaltSimulation) as err:
            sim.run(10)
        assert err.value.reason == "monitor_x"
        assert monitor.triggered_signals == ["y[0]"]

    def test_monitor_quiet_when_known(self):
        nl = counter_design()
        sim = EventSim(nl)
        sim.add_symbolic_task(MonitorX(["y[0]"]))
        sim.poke_by_name("rst", Logic.L1)
        sim.poke_by_name("en", Logic.L1)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        assert sim.run(5) == 5

    def test_monitor_qualifier_gates_halt(self):
        nl = counter_design()
        sim = EventSim(nl)
        # qualified by en: en is 0 -> no halt even though y is X
        sim.add_symbolic_task(MonitorX(["y[0]"], qualifier="en"))
        sim.poke_by_name("rst", Logic.L0)
        sim.poke_by_name("en", Logic.L0)
        assert sim.run(3) == 3

    def test_monitor_from_file(self, tmp_path):
        f = tmp_path / "control_signals.ini"
        f.write_text("y[0]\ny[1]\n")
        monitor = MonitorX(f)
        assert monitor.signal_names == ["y[0]", "y[1]"]

    def test_monitor_needs_signals(self):
        with pytest.raises(ValueError):
            MonitorX([])

    def test_halt_and_continue_from_saved_state(self):
        """The paper's full halt/fork/resume loop on the event kernel:
        halt on X, save the state, make copies with the X re-interpreted
        as 0 and 1 ("modify each copy with the status that allows the
        processor to take one of the possible executions"), resume."""
        nl = counter_design()
        sim = EventSim(nl)
        sim.add_symbolic_task(MonitorX(["cnt[0]"]))
        sim.poke_by_name("rst", Logic.L1)
        sim.poke_by_name("en", Logic.L1)
        sim.tick()
        sim.poke_by_name("rst", Logic.L0)
        sim.poke_by_name("en", Logic.X)     # unknown enable
        with pytest.raises(HaltSimulation):
            sim.run(5)
        state = sim.save_state()
        cnt0 = nl.net_index("cnt[0]")
        assert state["values"][cnt0] is Logic.X
        # fork: one copy per re-interpretation of the X state bit
        finals = []
        for forced in (Logic.L0, Logic.L1):
            fork = dict(state)
            fork["values"] = list(state["values"])
            fork["values"][cnt0] = forced
            sim.restore_state(fork)
            assert sim.get_logic_by_name("cnt[0]") is forced
            sim.poke_by_name("en", Logic.L0)  # deterministic continuation
            sim.run(1)
            finals.append([sim.get_logic_by_name(f"y[{i}]")
                           for i in range(4)])
        assert finals[0] != finals[1]


class TestLabeledDomain:
    def test_xor_cancellation_through_gates(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        y = nl.add_net("y")
        nl.mark_input(a)
        nl.add_gate("g", "XOR", [a, a], y)
        sim = EventSim(nl, domain=LabeledSymbolDomain())
        sim.poke(a, SymBit.symbol("s0"))
        sim.settle()
        assert sim.get_logic(y) is Logic.L0

    def test_plain_domain_cannot_cancel(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        y = nl.add_net("y")
        nl.mark_input(a)
        nl.add_gate("g", "XOR", [a, a], y)
        sim = EventSim(nl)
        sim.poke(a, Logic.X)
        sim.settle()
        assert sim.get_logic(y) is Logic.X

    def test_taint_reaches_output(self):
        nl = nand_latch_free_netlist()
        sim = EventSim(nl, domain=LabeledSymbolDomain())
        sim.poke(nl.net_index("a"),
                 SymBit.symbol("k", taint=frozenset({"secret"})))
        sim.poke(nl.net_index("b"), SymBit.const(1))
        sim.settle()
        assert "secret" in sim.get(nl.net_index("y")).taint


class TestBridgeForcedRestore:
    def test_bridge_restore_releases_forces_before_warning(self):
        """Regression: ``EventSimBridge.restore`` used to warn *first*
        and then ``_forced.clear()`` -- under warnings-as-errors the
        pins stayed live, and even on the normal path the bare clear
        skipped ``release()``'s driver re-scheduling, leaving the forced
        value latched until something else touched the net."""
        import warnings

        from repro.coanalysis.executors import EventSimBridge
        from repro.sim import ForcedRestoreWarning

        nl = nand_latch_free_netlist()
        bridge = EventSimBridge(nl)
        a, b = nl.net_index("a"), nl.net_index("b")
        n1, y = nl.net_index("n1"), nl.net_index("y")
        bridge.set_net(a, Logic.L1)
        bridge.set_net(b, Logic.L1)
        bridge.settle()
        assert bridge.get_net(y) is Logic.L1
        snap = bridge.snapshot()
        bridge.force(n1, Logic.L1)      # override the NAND output
        bridge.settle()
        assert bridge.get_net(y) is Logic.L0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(ForcedRestoreWarning):
                bridge.restore(snap)
        assert not bridge.es._forced
        bridge.settle()
        # the NAND owns n1 again: 1 NAND 1 = 0, so y re-derives to 1
        assert bridge.get_net(n1) is Logic.L0
        assert bridge.get_net(y) is Logic.L1
