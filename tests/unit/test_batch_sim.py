"""Unit tests for the bit-packed lane-parallel simulator.

The contract under test: every lane of a :class:`BatchCycleSim`
behaves exactly like a fresh serial :class:`CycleSim` fed the same
stimulus -- values, X propagation, forces, activity planes, snapshots.
The serial engine is the oracle throughout.
"""

import warnings

import numpy as np
import pytest

from repro.logic import Logic, LVec
from repro.logic.value import coerce
from repro.netlist import Netlist
from repro.rtl import Design
from repro.sim import (LANE_CAPACITY, BatchCycleSim, CompiledNetlist,
                       CycleSim, ForcedRestoreWarning, LaneCapacityError,
                       XMemory, batch_kernels_for)

LOGICS = (Logic.L0, Logic.L1, Logic.X)


def all_kinds_netlist():
    """One gate of every supported comb kind, shared inputs."""
    nl = Netlist("k")
    a, b, s = (nl.add_net(n) for n in ("a", "b", "s"))
    for n in (a, b, s):
        nl.mark_input(n)
    for kind in ("AND", "OR", "XOR", "NAND", "NOR", "XNOR"):
        nl.add_gate(f"g_{kind}", kind, [a, b], nl.add_net(f"y_{kind}"))
    nl.add_gate("g_NOT", "NOT", [a], nl.add_net("y_NOT"))
    nl.add_gate("g_BUF", "BUF", [b], nl.add_net("y_BUF"))
    nl.add_gate("g_MUX2", "MUX2", [a, b, s], nl.add_net("y_MUX2"))
    nl.add_gate("g_T0", "TIE0", [], nl.add_net("y_T0"))
    nl.add_gate("g_T1", "TIE1", [], nl.add_net("y_T1"))
    return nl


def counter_netlist():
    d = Design("cnt")
    r = d.reg(4, "cnt", reset=True)
    s, _ = r.q.add(d.const(1, 4))
    r.drive(s)
    d.output("y", r.q)
    return d.finalize()


class TestKernelParity:
    def test_fused_kernels_match_serial_on_every_kind(self):
        """The generated bitwise kernels and the serial evaluators are
        the same four-valued function, for every input combination."""
        nl = all_kinds_netlist()
        compiled = CompiledNetlist(nl)
        serial = CycleSim(compiled)
        batch = BatchCycleSim(compiled)
        lane = batch.alloc_lane()
        a, b, s = (nl.net_index(n) for n in ("a", "b", "s"))
        outs = [nl.net_index(f"y_{k}") for k in
                ("AND", "OR", "XOR", "NAND", "NOR", "XNOR",
                 "NOT", "BUF", "MUX2", "T0", "T1")]
        for va in LOGICS:
            for vb in LOGICS:
                for vs in LOGICS:
                    for net, v in ((a, va), (b, vb), (s, vs)):
                        serial.set_net(net, v)
                        batch.lane_set_net(lane, net, v)
                    serial.settle()
                    batch.settle()
                    for out in outs:
                        assert batch.lane_get_net(lane, out) is \
                            serial.get_net(out), \
                            (nl.net_name(out), va, vb, vs)

    def test_kernel_cache_keyed_by_compiled_identity(self):
        nl = all_kinds_netlist()
        c1 = CompiledNetlist(nl)
        assert batch_kernels_for(c1) is batch_kernels_for(c1)
        assert batch_kernels_for(CompiledNetlist(nl)) is not \
            batch_kernels_for(c1)

    def test_divergent_lanes_settle_independently(self):
        """27 lanes, one input combination each, one shared settle."""
        nl = all_kinds_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        a, b, s = (nl.net_index(n) for n in ("a", "b", "s"))
        combos = [(va, vb, vs) for va in LOGICS for vb in LOGICS
                  for vs in LOGICS]
        lanes = []
        for va, vb, vs in combos:
            lane = batch.alloc_lane()
            batch.lane_set_net(lane, a, va)
            batch.lane_set_net(lane, b, vb)
            batch.lane_set_net(lane, s, vs)
            lanes.append(lane)
        batch.settle()
        serial = CycleSim(compiled)
        for lane, (va, vb, vs) in zip(lanes, combos):
            serial.set_net(a, va)
            serial.set_net(b, vb)
            serial.set_net(s, vs)
            serial.settle()
            for name in ("y_AND", "y_XOR", "y_MUX2", "y_NOT"):
                net = nl.net_index(name)
                assert batch.lane_get_net(lane, net) is \
                    serial.get_net(net), (name, va, vb, vs)


class TestLaneLifecycle:
    def test_fork_at_capacity_raises(self):
        nl = counter_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl))
        first = batch.alloc_lane()
        for _ in range(LANE_CAPACITY - 1):
            batch.fork_lane(first)
        assert batch.n_lanes == LANE_CAPACITY
        with pytest.raises(LaneCapacityError):
            batch.fork_lane(first)
        with pytest.raises(LaneCapacityError):
            batch.alloc_lane()
        # dropping one lane frees capacity again
        batch.drop_lane(first)
        assert batch.alloc_lane() is not None

    def test_merge_down_to_one_lane_keeps_state(self):
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        rst = nl.net_index("rst")
        y = nl.bus("y", 4)
        lanes = [batch.alloc_lane() for _ in range(8)]
        for lane in lanes:
            batch.lane_set_net(lane, rst, Logic.L1)
        batch.settle()
        batch.clock_edge()
        for lane in lanes:
            batch.lane_set_net(lane, rst, Logic.L0)
        # advance lane i by i extra cycles (drop the others as we go)
        survivor = lanes[3]
        for step in range(5):
            batch.settle()
            batch.clock_edge()
        for lane in lanes:
            if lane != survivor:
                batch.drop_lane(lane)
        assert batch.n_lanes == 1
        batch.settle()
        assert batch.lane_get_bus(survivor, y).to_int() == 5
        assert batch.lane_cycle[survivor] == 6

    def test_dropped_lane_slot_is_recycled_clean(self):
        """A recycled lane must not inherit its previous occupant's
        values, forces, memories, or activity."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        rst = nl.net_index("rst")
        y = nl.bus("y", 4)
        lane = batch.alloc_lane()
        view = batch.lane_view(lane)
        view.attach_memory(XMemory(4, 8, name="m"))
        batch.lane_arm_activity(lane)
        batch.lane_set_net(lane, rst, Logic.L1)
        batch.settle()
        batch.clock_edge()
        batch.lane_set_net(lane, rst, Logic.L0)
        batch.lane_force(lane, rst, Logic.L0)
        for _ in range(3):
            batch.settle()
            batch.record_activity_now()
            batch.clock_edge()
        batch.drop_lane(lane)
        lane2 = batch.alloc_lane()
        assert lane2 == lane                    # lowest slot reused
        assert batch.lane_memories[lane2] == {}
        assert batch.lane_forced_nets(lane2) == []
        assert batch.lane_cycle[lane2] == 0
        toggled, ever_x = batch.lane_activity(lane2)
        assert not toggled.any() and not ever_x.any()
        # fresh lane is all-X (bar ties): the counter output is unknown
        assert batch.lane_get_net(lane2, y[0]) is Logic.X

    def test_fork_copies_state_and_diverges(self):
        nl = counter_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl))
        rst = nl.net_index("rst")
        y = nl.bus("y", 4)
        src = batch.alloc_lane()
        batch.lane_view(src).attach_memory(XMemory(4, 8, name="m"))
        batch.lane_memories[src]["m"].load_word(1, 0x5A)
        batch.lane_set_net(src, rst, Logic.L1)
        batch.settle()
        batch.clock_edge()
        batch.lane_set_net(src, rst, Logic.L0)
        batch.settle()
        batch.clock_edge()          # counter: 1
        child = batch.fork_lane(src)
        assert batch.lane_cycle[child] == batch.lane_cycle[src]
        assert batch.lane_memories[child]["m"].read_concrete(1) \
            .to_int() == 0x5A
        # memories are clones, not aliases
        batch.lane_memories[child]["m"].load_word(1, 0x11)
        assert batch.lane_memories[src]["m"].read_concrete(1) \
            .to_int() == 0x5A
        # hold the child in reset; the parent keeps counting
        batch.lane_set_net(child, rst, Logic.L1)
        batch.settle()
        batch.clock_edge()
        batch.settle()
        assert batch.lane_get_bus(src, y).to_int() == 2
        assert batch.lane_get_bus(child, y).to_int() == 0


class TestSerialParity:
    def test_lockstep_counter_matches_serial_per_lane(self):
        """Four lanes with divergent reset timing, each checked against
        a fresh serial CycleSim fed the identical stimulus."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        rst = nl.net_index("rst")
        # lane i holds reset for i+1 cycles, then runs free
        release_at = [1, 2, 3, 5]
        lanes = [batch.alloc_lane() for _ in release_at]
        serials = [CycleSim(compiled) for _ in release_at]
        for lane, serial in zip(lanes, serials):
            batch.lane_set_net(lane, rst, Logic.L1)
            serial.set_net(rst, Logic.L1)
        for cycle in range(8):
            for lane, serial, rel in zip(lanes, serials, release_at):
                if cycle == rel:
                    batch.lane_set_net(lane, rst, Logic.L0)
                    serial.set_net(rst, Logic.L0)
            batch.settle()
            batch.clock_edge()
            for serial in serials:
                serial.settle()
                serial.clock_edge()
        batch.settle()
        for lane, serial in zip(lanes, serials):
            serial.settle()
            val, known = batch.lane_planes(lane)
            assert (val == serial.val).all()
            assert (known == serial.known).all()

    def test_x_propagation_parity_per_lane(self):
        """An X-reset lane must reproduce serial X propagation exactly
        while a concrete sibling lane stays fully known."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        rst = nl.net_index("rst")
        lane_x = batch.alloc_lane()
        lane_c = batch.alloc_lane()
        batch.lane_set_net(lane_x, rst, Logic.X)
        batch.lane_set_net(lane_c, rst, Logic.L1)
        serial_x = CycleSim(compiled)
        serial_x.set_net(rst, Logic.X)
        for _ in range(3):
            batch.settle()
            batch.clock_edge()
            serial_x.settle()
            serial_x.clock_edge()
        batch.settle()
        serial_x.settle()
        val_x, known_x = batch.lane_planes(lane_x)
        assert (known_x == serial_x.known).all()
        assert (val_x == serial_x.val).all()
        # the concrete lane is unpolluted by its sibling's Xs
        y = nl.bus("y", 4)
        assert batch.lane_get_bus(lane_c, y).to_int() == 0

    def test_activity_planes_match_serial(self):
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        serial = CycleSim(compiled)
        rst = nl.net_index("rst")
        lane = batch.alloc_lane()
        batch.lane_set_net(lane, rst, Logic.L1)
        serial.set_net(rst, Logic.L1)
        batch.settle()
        batch.clock_edge()
        serial.settle()
        serial.clock_edge()
        batch.lane_set_net(lane, rst, Logic.L0)
        serial.set_net(rst, Logic.L0)
        batch.settle()
        serial.settle()
        batch.lane_arm_activity(lane)
        serial.arm_activity()
        for _ in range(3):
            batch.settle()
            batch.record_activity_now()
            batch.clock_edge()
            serial.settle()
            serial.record_activity_now()
            serial.clock_edge()
        batch.settle()
        batch.record_activity_now()
        serial.settle()
        serial.record_activity_now()
        toggled, ever_x = batch.lane_activity(lane)
        assert (toggled == serial.toggled).all()
        assert (ever_x == serial.ever_x).all()
        assert (batch.lane_exercised(lane) ==
                serial.exercised_nets()).all()

    def test_per_lane_forces_are_isolated(self):
        nl = all_kinds_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        a, b = nl.net_index("a"), nl.net_index("b")
        y = nl.net_index("y_AND")
        l0, l1 = batch.alloc_lane(), batch.alloc_lane()
        for lane in (l0, l1):
            batch.lane_set_net(lane, a, Logic.L1)
            batch.lane_set_net(lane, b, Logic.L1)
        batch.lane_force(l0, y, Logic.L0)
        batch.settle()
        assert batch.lane_get_net(l0, y) is Logic.L0    # pinned
        assert batch.lane_get_net(l1, y) is Logic.L1    # driven
        # release: the driver owns lane 0's bit again
        batch.lane_release(l0, y)
        batch.settle()
        assert batch.lane_get_net(l0, y) is Logic.L1
        assert batch.lane_forced_nets(l0) == []


class TestSnapshotRestore:
    def _run_serial(self, compiled, nl, cycles):
        serial = CycleSim(compiled)
        serial.attach_memory(XMemory(4, 8, name="m"))
        rst = nl.net_index("rst")
        serial.set_net(rst, Logic.L1)
        serial.step()
        serial.set_net(rst, Logic.L0)
        for _ in range(cycles):
            serial.step()
        return serial

    def test_serial_snapshot_restores_into_a_lane(self):
        """The interop the batched executor depends on: a snapshot
        taken by the *serial* engine restores into a batch lane and the
        lane continues exactly where the serial sim would have."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        serial = self._run_serial(compiled, nl, 3)
        serial.memories["m"].load_word(2, 0xAB)
        snap = serial.snapshot(pc=7)

        batch = BatchCycleSim(compiled)
        lane = batch.alloc_lane()
        batch.lane_view(lane).attach_memory(XMemory(4, 8, name="m"))
        batch.lane_restore(lane, snap)
        assert batch.lane_cycle[lane] == snap.cycle
        assert batch.lane_memories[lane]["m"].read_concrete(2) \
            .to_int() == 0xAB
        # both continue for two cycles and agree on every net
        for _ in range(2):
            batch.settle()
            batch.clock_edge()
            serial.settle()
            serial.clock_edge()
        batch.settle()
        serial.settle()
        val, known = batch.lane_planes(lane)
        assert (val == serial.val).all()
        assert (known == serial.known).all()

    def test_lane_snapshot_restores_into_serial(self):
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        lane = batch.alloc_lane()
        view = batch.lane_view(lane)
        view.attach_memory(XMemory(4, 8, name="m"))
        rst = nl.net_index("rst")
        view.set_net(rst, Logic.L1)
        view.step()
        view.set_net(rst, Logic.L0)
        for _ in range(4):
            view.step()
        snap = view.snapshot(pc=3)
        serial = CycleSim(compiled)
        serial.attach_memory(XMemory(4, 8, name="m"))
        serial.restore(snap)
        serial.settle()
        batch.settle()
        val, known = batch.lane_planes(lane)
        assert (val == serial.val).all()
        assert (known == serial.known).all()
        assert serial.cycle == batch.lane_cycle[lane]

    def test_restore_mismatched_shape_rejected(self):
        nl = counter_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl))
        lane = batch.alloc_lane()
        other = all_kinds_netlist()
        other_sim = CycleSim(CompiledNetlist(other))
        with pytest.raises(ValueError):
            batch.lane_restore(lane, other_sim.snapshot())

    def test_lane_restore_drops_forces_before_warning(self):
        """Batch twin of the serial regression: under -W error the
        raise must not leave the lane's pins (or force cache) live."""
        nl = all_kinds_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl))
        lane = batch.alloc_lane()
        a, b = nl.net_index("a"), nl.net_index("b")
        y = nl.net_index("y_AND")
        batch.lane_set_net(lane, a, Logic.L1)
        batch.lane_set_net(lane, b, Logic.L1)
        batch.settle()
        snap = batch.lane_snapshot(lane)
        batch.lane_force(lane, y, Logic.L0)
        batch.settle()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(ForcedRestoreWarning):
                batch.lane_restore(lane, snap)
        assert batch.lane_forced_nets(lane) == []
        batch.settle()
        assert batch.lane_get_net(lane, y) is Logic.L1   # no phantom pin

    def test_restore_into_mid_run_batch_leaves_siblings_alone(self):
        """lane_restore touches exactly one bit column: a sibling lane
        mid-count must be unaffected by the restore's dirty cone."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        rst = nl.net_index("rst")
        y = nl.bus("y", 4)
        a_lane, b_lane = batch.alloc_lane(), batch.alloc_lane()
        for lane in (a_lane, b_lane):
            batch.lane_set_net(lane, rst, Logic.L1)
        batch.settle()
        batch.clock_edge()
        for lane in (a_lane, b_lane):
            batch.lane_set_net(lane, rst, Logic.L0)
        for _ in range(4):
            batch.settle()
            batch.clock_edge()
        batch.settle()
        snap = batch.lane_snapshot(a_lane)        # counter == 4
        for _ in range(2):
            batch.settle()
            batch.clock_edge()
        batch.settle()
        assert batch.lane_get_bus(a_lane, y).to_int() == 6
        batch.lane_restore(a_lane, snap)
        assert batch.lane_get_bus(a_lane, y).to_int() == 4
        assert batch.lane_get_bus(b_lane, y).to_int() == 6


class TestLaneView:
    def test_view_step_matches_serial_step(self):
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled)
        view = batch.lane_view(batch.alloc_lane())
        serial = CycleSim(compiled)
        for sim in (view, serial):
            sim.set_input("rst", Logic.L1)
            sim.step()
            sim.set_input("rst", Logic.L0)
            sim.arm_activity()
            for _ in range(3):
                sim.step()
            sim.settle()
        assert view.get_bus(nl.bus("y", 4)).to_int() == \
            serial.get_bus(nl.bus("y", 4)).to_int() == 3
        assert (view.val == serial.val).all()
        assert (view.known == serial.known).all()
        assert (view.toggled == serial.toggled).all()
        assert (view.exercised_nets() == serial.exercised_nets()).all()

    def test_view_rejects_duplicate_memory(self):
        nl = counter_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl))
        view = batch.lane_view(batch.alloc_lane())
        view.attach_memory(XMemory(4, 8, name="m"))
        with pytest.raises(ValueError):
            view.attach_memory(XMemory(4, 8, name="m"))

    def test_view_of_inactive_lane_rejected(self):
        nl = counter_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl))
        lane = batch.alloc_lane()
        batch.drop_lane(lane)
        with pytest.raises(ValueError):
            batch.lane_view(lane)

    def test_set_bus_and_get_bus_roundtrip(self):
        nl = all_kinds_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl))
        view = batch.lane_view(batch.alloc_lane())
        nets = [nl.net_index("a"), nl.net_index("b"), nl.net_index("s")]
        vec = LVec([Logic.L1, Logic.X, Logic.L0])
        view.set_bus(nets, vec)
        got = view.get_bus(nets)
        assert [g is v for g, v in zip(got.bits, vec.bits)] == [True] * 3


class TestMultiWordPlanes:
    """Widened planes: N*64 lanes stored as (n_nets, n_words) uint64.

    Lanes past 63 live in higher words; every multi-word path --
    alloc, fork, settle, clock, activity, snapshot -- must behave
    exactly like the single-word engine on lane 0.
    """

    def test_capacity_must_be_multiple_of_64(self):
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        for bad in (0, -64, 100, 65):
            with pytest.raises(ValueError):
                BatchCycleSim(compiled, lanes=bad)
        assert BatchCycleSim(compiled, lanes=128).capacity == 128

    @pytest.mark.parametrize("lanes", [128, 256])
    def test_capacity_enforced_at_width(self, lanes):
        nl = counter_netlist()
        batch = BatchCycleSim(CompiledNetlist(nl), lanes=lanes)
        for _ in range(lanes):
            batch.alloc_lane()
        assert batch.n_lanes == lanes
        with pytest.raises(LaneCapacityError):
            batch.alloc_lane()

    @pytest.mark.parametrize("lanes", [64, 128, 256])
    def test_counter_parity_across_words(self, lanes):
        """Lanes in every word of the plane match a serial CycleSim fed
        the same per-lane reset timing -- 64/128/256-lane runs are
        bit-identical to serial and therefore to each other."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled, lanes=lanes)
        rst = nl.net_index("rst")
        all_lanes = [batch.alloc_lane() for _ in range(lanes)]
        # sample lanes around every word boundary plus the extremes
        picks = sorted({0, 1, 62, 63} |
                       {b + d for b in range(64, lanes, 64)
                        for d in (-1, 0, 1)} | {lanes - 1})
        release_at = {lane: (lane % 5) + 1 for lane in picks}
        serials = {lane: CycleSim(compiled) for lane in picks}
        for lane in all_lanes:
            batch.lane_set_net(lane, rst, Logic.L1)
        for serial in serials.values():
            serial.set_net(rst, Logic.L1)
        for cycle in range(8):
            for lane in picks:
                if cycle == release_at[lane]:
                    batch.lane_set_net(lane, rst, Logic.L0)
                    serials[lane].set_net(rst, Logic.L0)
            batch.settle()
            batch.clock_edge()
            for serial in serials.values():
                serial.settle()
                serial.clock_edge()
        batch.settle()
        for lane in picks:
            serial = serials[lane]
            serial.settle()
            val, known = batch.lane_planes(lane)
            assert (val == serial.val).all(), f"lane {lane}"
            assert (known == serial.known).all(), f"lane {lane}"

    def test_fork_across_word_boundary(self):
        """A fork whose destination lane lands in a higher word copies
        the source state bit-exactly and then diverges independently."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled, lanes=128)
        rst = nl.net_index("rst")
        src = batch.alloc_lane()
        batch.lane_set_net(src, rst, Logic.L1)
        batch.settle()
        batch.clock_edge()
        batch.lane_set_net(src, rst, Logic.L0)
        for _ in range(3):
            batch.settle()
            batch.clock_edge()
        batch.settle()
        # fill word 0, then fork: the copy lands in word 1
        while batch.n_lanes < 64:
            batch.alloc_lane()
        child = batch.fork_lane(src)
        assert child >= 64
        val_s, known_s = batch.lane_planes(src)
        val_c, known_c = batch.lane_planes(child)
        assert (val_s == val_c).all()
        assert (known_s == known_c).all()
        # hold the child in reset while the source keeps counting
        batch.lane_set_net(child, rst, Logic.L1)
        for _ in range(2):
            batch.settle()
            batch.clock_edge()
        batch.settle()
        y = nl.bus("y", 4)
        assert batch.lane_get_bus(child, y).to_int() == 0
        assert batch.lane_get_bus(src, y).to_int() == 5

    def test_activity_and_snapshot_in_high_word(self):
        """Activity planes and snapshot/restore round-trip for a lane
        in word >= 1, matching an armed serial sim."""
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        batch = BatchCycleSim(compiled, lanes=192)
        rst = nl.net_index("rst")
        for _ in range(130):
            batch.alloc_lane()
        lane = 129                      # word 2, bit 1
        serial = CycleSim(compiled)
        batch.lane_set_net(lane, rst, Logic.L1)
        serial.set_net(rst, Logic.L1)
        batch.settle()
        serial.settle()
        batch.lane_arm_activity(lane)
        serial.arm_activity()
        batch.lane_set_net(lane, rst, Logic.L0)
        serial.set_net(rst, Logic.L0)
        for _ in range(4):
            batch.settle()
            batch.clock_edge()
            batch.record_activity_now(1 << lane)
            serial.settle()
            serial.clock_edge()
            serial.record_activity_now()
        batch.settle()
        serial.settle()
        toggled, ever_x = batch.lane_activity(lane)
        assert (toggled == serial.toggled).all()
        assert (ever_x == serial.ever_x).all()
        snap = batch.lane_snapshot(lane, pc=7)
        fresh = CycleSim(compiled)
        fresh.restore(snap)
        fresh.settle()
        val, known = batch.lane_planes(lane)
        assert (fresh.val == val).all()
        assert (fresh.known == known).all()

    def test_kernels_cached_per_word_count(self):
        nl = counter_netlist()
        compiled = CompiledNetlist(nl)
        k1 = batch_kernels_for(compiled, 1)
        k2 = batch_kernels_for(compiled, 2)
        assert k1 is not k2
        assert batch_kernels_for(compiled, 2) is k2
        assert batch_kernels_for(compiled) is k1
