"""Exhaustive per-cell CNF cross-checks against the 4-valued tables.

Every combinational cell kind in ``netlist/cells.py`` is encoded both
through the raw Tseitin generators (``cell_clauses``) and the structural
encoder (``StructuralEncoder.cell_lit``), and checked on **every** binary
input assignment against ``logic/tables.py`` -- the single source of
truth both simulation engines evaluate through.

X-handling: CNF is binary-only by design.  A 4-valued ``X`` in the
co-analysis means "either binary value"; the SAT solver explores both
branches of that choice explicitly, so the clauses only need to
characterize the cell on known (0/1) inputs.  The one obligation the
4-valued rows impose is *consistency*: whenever the table yields a known
output for a partially-X input row (e.g. ``AND(0, X) = 0``), every
binary completion of that row must yield the same output -- otherwise
the binary encoding could disagree with a Kleene-derived constant.  The
`test_x_rows_are_binary_consistent` check pins that down.
"""

import itertools

import pytest

from repro.equiv.cnf import (CELL_CLAUSES, FALSE_LIT, TRUE_LIT, CnfBuilder,
                             StructuralEncoder, cell_clauses)
from repro.equiv.solver import Solver
from repro.logic import Logic
from repro.logic.tables import COMB_EVAL, evaluate
from repro.netlist.cells import COMB_KINDS, SEQ_KINDS, kind as cell_kind

BINARY = (Logic.L0, Logic.L1)


def to_logic(bit):
    return Logic.L1 if bit else Logic.L0


def clause_models(kind, arity):
    """All (inputs, output) pairs satisfying the cell's raw clauses."""
    builder = CnfBuilder()
    out = builder.new_var()
    ins = [builder.new_var() for _ in range(arity)]
    for cl in cell_clauses(kind, out, ins):
        builder.add_clause(cl)
    models = set()
    for bits in itertools.product((False, True), repeat=arity + 1):
        solver = Solver(builder.n_vars, builder.clauses)
        assum = [v if b else -v for v, b in zip([out] + ins, bits)]
        if solver.solve(assum).is_sat:
            models.add(bits)
    return models


class TestRawClauses:
    """cell_clauses == logic/tables.py on every binary input row."""

    @pytest.mark.parametrize("kind", sorted(COMB_KINDS))
    def test_exhaustive_binary_agreement(self, kind):
        arity = cell_kind(kind).arity
        expected = set()
        for bits in itertools.product((False, True), repeat=arity):
            out = evaluate(kind, [to_logic(b) for b in bits])
            assert out.is_known, \
                f"{kind} must be binary-valued on binary inputs"
            expected.add((out is Logic.L1, *bits))
        assert clause_models(kind, arity) == expected

    def test_every_comb_kind_has_a_generator(self):
        assert set(CELL_CLAUSES) == set(COMB_KINDS)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            cell_clauses("DFF", 1, [2])


class TestStructuralEncoder:
    """cell_lit agrees with the tables through the node algebra."""

    @pytest.mark.parametrize("kind", sorted(COMB_KINDS))
    def test_exhaustive_binary_agreement(self, kind):
        arity = cell_kind(kind).arity
        enc = StructuralEncoder()
        ins = [enc.builder.new_var() for _ in range(arity)]
        lit = enc.cell_lit(kind, ins)
        for bits in itertools.product((False, True), repeat=arity):
            want = evaluate(kind, [to_logic(b) for b in bits]) is Logic.L1
            solver = Solver(enc.builder.n_vars, enc.builder.clauses)
            assum = [v if b else -v for v, b in zip(ins, bits)]
            assum.append(lit if want else -lit)
            assert solver.solve(assum).is_sat, \
                f"{kind}{bits} should produce {int(want)}"
            solver = Solver(enc.builder.n_vars, enc.builder.clauses)
            assum[-1] = -assum[-1]
            assert solver.solve(assum).is_unsat, \
                f"{kind}{bits} must not produce {int(not want)}"

    @pytest.mark.parametrize("kind", sorted(COMB_KINDS))
    def test_constant_folding_matches_tables(self, kind):
        """Feeding constant literals folds to the table's constant."""
        arity = cell_kind(kind).arity
        for bits in itertools.product((False, True), repeat=arity):
            enc = StructuralEncoder()
            ins = [TRUE_LIT if b else FALSE_LIT for b in bits]
            lit = enc.cell_lit(kind, ins)
            want = evaluate(kind, [to_logic(b) for b in bits]) is Logic.L1
            assert lit == (TRUE_LIT if want else FALSE_LIT)
            assert enc.builder.n_vars == 1, "no variables for constants"

    def test_structural_sharing_across_polarities(self):
        enc = StructuralEncoder()
        a, b = enc.builder.new_var(), enc.builder.new_var()
        x = enc.xor2(a, b)
        assert enc.xor2(-a, b) == -x
        assert enc.xor2(a, -b) == -x
        assert enc.xor2(-a, -b) == x
        assert enc.xor2(b, a) == x          # commutative canonical order
        n_and = enc.and2(a, b)
        assert enc.and2(b, a) == n_and

    def test_flop_next_state_matches_cycle_sim(self):
        """flop_next_lit mirrors CycleSim.clock_edge exactly."""
        from repro.netlist import Netlist
        from repro.sim.cycle_sim import CycleSim, compile_netlist

        for kind in sorted(SEQ_KINDS):
            arity = cell_kind(kind).arity
            nl = Netlist(f"flop_{kind}")
            pins = [nl.add_net(f"i{k}") for k in range(arity)]
            for p in pins:
                nl.mark_input(p)
            q = nl.add_net("q")
            nl.add_gate("u0", kind, pins, q)
            nl.mark_output(q)
            sim = CycleSim(compile_netlist(nl), record_activity=False)

            for q0 in (False, True):
                for bits in itertools.product((False, True), repeat=arity):
                    sim.set_net(q, to_logic(q0))
                    for p, bv in zip(pins, bits):
                        sim.set_net(p, to_logic(bv))
                    sim.settle()
                    sim.clock_edge()
                    want = sim.get_net(q) is Logic.L1

                    enc = StructuralEncoder()
                    qlit = enc.builder.new_var()
                    inlits = [enc.builder.new_var() for _ in range(arity)]
                    nxt = enc.flop_next_lit(kind, qlit, inlits)
                    solver = Solver(enc.builder.n_vars,
                                    enc.builder.clauses)
                    assum = [qlit if q0 else -qlit]
                    assum += [v if bv else -v
                              for v, bv in zip(inlits, bits)]
                    assum.append(nxt if want else -nxt)
                    assert solver.solve(assum).is_sat, \
                        (kind, q0, bits, want)


class TestXHandling:
    """The binary-only CNF is consistent with the 4-valued tables."""

    @pytest.mark.parametrize("kind", sorted(COMB_KINDS))
    def test_x_rows_are_binary_consistent(self, kind):
        """Whenever the 4-valued table yields a *known* output for a row
        containing X, every binary completion yields that same output --
        so Kleene-derived constants never contradict the CNF."""
        arity = cell_kind(kind).arity
        levels = (Logic.L0, Logic.L1, Logic.X)
        for row in itertools.product(levels, repeat=arity):
            if Logic.X not in row:
                continue
            out = evaluate(kind, list(row))
            if not out.is_known:
                continue
            free = [i for i, v in enumerate(row) if v is Logic.X]
            for fill in itertools.product(BINARY, repeat=len(free)):
                completed = list(row)
                for i, v in zip(free, fill):
                    completed[i] = v
                assert evaluate(kind, completed) is out, \
                    f"{kind}{row} known output must survive completion"

    def test_table_evaluate_covers_encoder_kinds(self):
        assert set(COMB_EVAL) == set(CELL_CLAUSES)
