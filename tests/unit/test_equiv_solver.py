"""Unit tests for the dependency-free CDCL SAT solver."""

import itertools
import random

import pytest

from repro.equiv.solver import (SAT, UNKNOWN, UNSAT, Solver, solve_cnf)


def brute_force(n_vars, clauses, assumptions=()):
    """Reference decision procedure (exponential, for tiny instances)."""
    fixed = {abs(l): l > 0 for l in assumptions}
    free = [v for v in range(1, n_vars + 1) if v not in fixed]
    for bits in itertools.product((False, True), repeat=len(free)):
        asg = dict(fixed)
        asg.update(zip(free, bits))
        if all(any(asg[abs(l)] == (l > 0) for l in cl) for cl in clauses):
            return True
    return False


def random_3sat(rng, n_vars, n_clauses):
    clauses = []
    for _ in range(n_clauses):
        vs = rng.sample(range(1, n_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return clauses


def pigeonhole(holes):
    """PHP(holes+1, holes): classic UNSAT family, resolution-hard."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver(3, []).solve().status == SAT

    def test_unit_propagation(self):
        res = solve_cnf(2, [[1], [-1, 2]])
        assert res.status == SAT
        assert res.value(1) and res.value(2)

    def test_trivial_conflict(self):
        assert solve_cnf(1, [[1], [-1]]).status == UNSAT

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        res = solve_cnf(3, clauses)
        assert res.status == SAT
        for cl in clauses:
            assert any(res.value(l) for l in cl)

    def test_tautology_and_duplicate_literals(self):
        s = Solver(2)
        s.add_clause([1, -1])           # dropped
        s.add_clause([2, 2])            # deduped to unit
        res = s.solve()
        assert res.status == SAT
        assert res.value(2)


class TestAgainstBruteForce:
    def test_random_3sat_grid(self):
        rng = random.Random(20260805)
        for trial in range(150):
            n = rng.randint(4, 9)
            clauses = random_3sat(rng, n, rng.randint(4, int(4.5 * n)))
            want = brute_force(n, clauses)
            res = solve_cnf(n, clauses)
            assert res.status == (SAT if want else UNSAT), \
                (trial, n, clauses)
            if want:
                for cl in clauses:
                    assert any(res.value(l) for l in cl)

    def test_incremental_assumptions(self):
        rng = random.Random(7)
        for _ in range(40):
            n = rng.randint(4, 8)
            clauses = random_3sat(rng, n, rng.randint(6, 3 * n))
            solver = Solver(n, clauses)
            for _ in range(4):          # reuse one solver incrementally
                k = rng.randint(0, 3)
                assum = [v if rng.random() < 0.5 else -v
                         for v in rng.sample(range(1, n + 1), k)]
                want = brute_force(n, clauses, assum)
                res = solver.solve(assum)
                assert res.status == (SAT if want else UNSAT), \
                    (clauses, assum)


class TestHardInstances:
    def test_pigeonhole_unsat(self):
        n, clauses = pigeonhole(5)
        res = solve_cnf(n, clauses)
        assert res.status == UNSAT
        assert res.conflicts > 0        # needed real search, not luck

    def test_xor_chain_sat(self):
        # x1 ^ x2, x2 ^ x3, ... : trivially SAT but propagation-heavy
        clauses = []
        for v in range(1, 40):
            clauses += [[v, v + 1], [-v, -(v + 1)]]
        assert solve_cnf(40, clauses).status == SAT


class TestBudget:
    def test_conflict_budget_yields_unknown_then_solves(self):
        n, clauses = pigeonhole(5)
        solver = Solver(n, clauses)
        res = solver.solve(max_conflicts=3)
        assert res.status == UNKNOWN
        assert solver.solve().status == UNSAT   # same solver, full budget


class TestPhasePriming:
    def test_primed_phase_steers_model(self):
        solver = Solver(2, [[1, 2]])
        solver.prime_phases({1: False, 2: True})
        res = solver.solve()
        assert res.status == SAT
        assert res.value(2) and not res.value(1)
