"""Unit tests for simulation state snapshots (subset/merge primitives)."""

import numpy as np
import pytest

from repro.sim.state import SimState


def make_state(val_bits, known_bits, mem_val=None, mem_known=None,
               pc=0, cycle=0):
    n = len(val_bits)
    mems = {}
    if mem_val is not None:
        mems["m"] = (np.array(mem_val, dtype=bool),
                     np.array(mem_known, dtype=bool))
    return SimState(
        net_val=np.array(val_bits, dtype=bool),
        net_known=np.array(known_bits, dtype=bool),
        memories=mems, pc=pc, cycle=cycle)


class TestCovers:
    def test_reflexive(self):
        s = make_state([1, 0, 0], [1, 1, 0])
        assert s.covers(s)

    def test_x_covers_concrete(self):
        general = make_state([0, 0], [0, 0])
        specific = make_state([1, 0], [1, 1])
        assert general.covers(specific)
        assert not specific.covers(general)

    def test_value_mismatch_not_covered(self):
        a = make_state([1, 0], [1, 1])
        b = make_state([0, 0], [1, 1])
        assert not a.covers(b)

    def test_memory_participates(self):
        a = make_state([1], [1], mem_val=[[0, 0]], mem_known=[[0, 0]])
        b = make_state([1], [1], mem_val=[[1, 0]], mem_known=[[1, 1]])
        assert a.covers(b)
        assert not b.covers(a)


class TestMerge:
    def test_merge_produces_cover(self):
        a = make_state([1, 0, 1], [1, 1, 1], pc=4)
        b = make_state([1, 1, 0], [1, 1, 1], pc=4)
        m = a.merge(b)
        assert m.covers(a) and m.covers(b)
        assert m.net_known.tolist() == [True, False, False]
        assert m.pc == 4

    def test_merge_differing_pc_clears_pc(self):
        a = make_state([1], [1], pc=4)
        b = make_state([1], [1], pc=8)
        assert a.merge(b).pc is None

    def test_merge_does_not_mutate_operands(self):
        a = make_state([1], [1])
        b = make_state([0], [1])
        a.merge(b)
        assert a.net_known.tolist() == [True]
        assert b.net_val.tolist() == [False]

    def test_merge_memory(self):
        a = make_state([1], [1], mem_val=[[1, 1]], mem_known=[[1, 1]])
        b = make_state([1], [1], mem_val=[[1, 0]], mem_known=[[1, 1]])
        m = a.merge(b)
        assert m.memories["m"][1].tolist() == [[True, False]]


class TestMisc:
    def test_count_x(self):
        s = make_state([0, 0, 0], [1, 0, 0],
                       mem_val=[[0, 0]], mem_known=[[0, 1]])
        assert s.count_x() == 3
        assert s.state_bits() == 5

    def test_copy_is_deep(self):
        s = make_state([1], [1], mem_val=[[1]], mem_known=[[1]])
        c = s.copy()
        c.net_val[0] = False
        c.memories["m"][0][0][0] = False
        assert s.net_val[0]
        assert s.memories["m"][0][0][0]

    def test_bytes_roundtrip(self):
        s = make_state([1, 0], [1, 1], mem_val=[[1, 0]],
                       mem_known=[[1, 1]], pc=12, cycle=99)
        r = SimState.from_bytes(s.to_bytes())
        assert r.pc == 12 and r.cycle == 99
        assert r.covers(s) and s.covers(r)

    def test_from_bytes_type_check(self):
        import pickle
        with pytest.raises(TypeError):
            SimState.from_bytes(pickle.dumps({"not": "a state"}))

    def test_fingerprint_distinguishes(self):
        a = make_state([1, 0], [1, 1])
        b = make_state([0, 0], [1, 1])
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == a.copy().fingerprint()

    def test_compatible(self):
        a = make_state([1, 0], [1, 1])
        b = make_state([1, 0, 1], [1, 1, 1])
        assert not a.compatible(b)
        assert a.compatible(a.copy())
