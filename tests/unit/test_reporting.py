"""Unit tests for table/figure renderers and the grid runner."""

from pathlib import Path

import numpy as np
import pytest

from repro.coanalysis.results import CoAnalysisResult
from repro.netlist import Netlist
from repro.reporting import (figure5, figure6, render_table, results_csv,
                             table1, table2, table3, table4)
from repro.sim.activity import ToggleProfile


def tiny_netlist(gates=4):
    nl = Netlist("t")
    a = nl.add_net("a")
    nl.mark_input(a)
    prev = a
    for i in range(gates):
        out = nl.add_net(f"n{i}")
        nl.add_gate(f"g{i}", "NOT", [prev], out)
        prev = out
    nl.mark_output(prev)
    return nl


def fake_result(design, bench, exercisable, paths, skipped, cycles,
                gates=4):
    nl = tiny_netlist(gates)
    profile = ToggleProfile.empty(nl)
    # mark the first `exercisable` gate outputs as toggled
    for g in nl.gates[:exercisable]:
        profile.toggled[g.output] = True
    profile.const_known[:] = True
    return CoAnalysisResult(design=design, application=bench,
                            profile=profile, paths_created=paths,
                            paths_skipped=skipped,
                            simulated_cycles=cycles)


@pytest.fixture
def grid():
    designs = ["bm32", "omsp430"]
    benches = ["Div", "mult"]
    out = {}
    for d in designs:
        out[d] = {}
        for i, b in enumerate(benches):
            out[d][b] = fake_result(d, b, exercisable=2 + i,
                                    paths=3 + i, skipped=i, cycles=10 * (i + 1))
    return out


class TestRenderTable:
    def test_grid_shape(self):
        text = render_table(["A", "B"], [[1, "xy"], [22, "z"]])
        lines = text.splitlines()
        assert lines[1].count("|") == 3
        assert "xy" in text and "22" in text

    def test_column_widths_expand(self):
        text = render_table(["H"], [["longer-cell"]])
        assert "longer-cell" in text

    def test_empty_rows(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestPaperTables:
    def test_table1_lists_workloads(self):
        from repro.workloads import WORKLOADS, WORKLOAD_ORDER
        text = table1([WORKLOADS[w] for w in WORKLOAD_ORDER])
        for w in WORKLOAD_ORDER:
            assert w in text

    def test_table2_lists_metas(self):
        from repro.workloads import built_core
        metas = [built_core(d)[1] for d in ("omsp430", "dr5")]
        text = table2(metas)
        assert "MSP430" in text and "RV32e" in text

    def test_table3_contents(self, grid):
        text = table3(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "tgc 4" in text
        assert "% reduction" in text
        assert "Div" in text

    def test_table4_contents(self, grid):
        text = table4(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "created" in text and "cycles" in text

    def test_results_csv(self, grid):
        text = results_csv(grid, ["Div", "mult"], ["bm32", "omsp430"])
        lines = text.splitlines()
        assert lines[0].startswith("design,benchmark")
        assert len(lines) == 5
        assert lines[1].startswith("bm32,Div,4,")


class TestFigures:
    def test_figure5_has_bars(self, grid):
        text = figure5(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "Figure 5" in text
        assert "%" in text
        assert "#" in text

    def test_figure6_log_scale_handles_one_path(self, grid):
        text = figure6(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "Figure 6" in text
        # counts are printed verbatim
        assert " 3" in text


class TestRunnerCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        from repro.reporting import runner

        calls = []
        real_run_one = runner.run_one

        def counting_run_one(design, bench, strategy=None, **kw):
            calls.append((design, bench))
            return fake_result(design, bench, 2, 3, 1, 10)

        monkeypatch.setattr(runner, "run_one", counting_run_one)
        grid1 = runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                                cache_dir=tmp_path)
        assert calls == [("bm32", "Div")]
        grid2 = runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                                cache_dir=tmp_path)
        assert calls == [("bm32", "Div")]   # served from cache
        assert grid2["bm32"]["Div"].paths_created == \
            grid1["bm32"]["Div"].paths_created

    def test_no_cache_dir_reruns(self, monkeypatch):
        from repro.reporting import runner
        calls = []
        monkeypatch.setattr(
            runner, "run_one",
            lambda d, b, strategy=None, **kw: (
                calls.append(1), fake_result(d, b, 1, 1, 0, 1))[1])
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=None)
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=None)
        assert len(calls) == 2
