"""Unit tests for table/figure renderers and the grid runner."""

from pathlib import Path

import numpy as np
import pytest

from repro.coanalysis.results import CoAnalysisResult
from repro.netlist import Netlist
from repro.reporting import (figure5, figure6, render_table, results_csv,
                             table1, table2, table3, table4)
from repro.sim.activity import ToggleProfile


def tiny_netlist(gates=4):
    nl = Netlist("t")
    a = nl.add_net("a")
    nl.mark_input(a)
    prev = a
    for i in range(gates):
        out = nl.add_net(f"n{i}")
        nl.add_gate(f"g{i}", "NOT", [prev], out)
        prev = out
    nl.mark_output(prev)
    return nl


def fake_result(design, bench, exercisable, paths, skipped, cycles,
                gates=4):
    nl = tiny_netlist(gates)
    profile = ToggleProfile.empty(nl)
    # mark the first `exercisable` gate outputs as toggled
    for g in nl.gates[:exercisable]:
        profile.toggled[g.output] = True
    profile.const_known[:] = True
    return CoAnalysisResult(design=design, application=bench,
                            profile=profile, paths_created=paths,
                            paths_skipped=skipped,
                            simulated_cycles=cycles)


@pytest.fixture
def grid():
    designs = ["bm32", "omsp430"]
    benches = ["Div", "mult"]
    out = {}
    for d in designs:
        out[d] = {}
        for i, b in enumerate(benches):
            out[d][b] = fake_result(d, b, exercisable=2 + i,
                                    paths=3 + i, skipped=i, cycles=10 * (i + 1))
    return out


class TestRenderTable:
    def test_grid_shape(self):
        text = render_table(["A", "B"], [[1, "xy"], [22, "z"]])
        lines = text.splitlines()
        assert lines[1].count("|") == 3
        assert "xy" in text and "22" in text

    def test_column_widths_expand(self):
        text = render_table(["H"], [["longer-cell"]])
        assert "longer-cell" in text

    def test_empty_rows(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestPaperTables:
    def test_table1_lists_workloads(self):
        from repro.workloads import WORKLOADS, WORKLOAD_ORDER
        text = table1([WORKLOADS[w] for w in WORKLOAD_ORDER])
        for w in WORKLOAD_ORDER:
            assert w in text

    def test_table2_lists_metas(self):
        from repro.workloads import built_core
        metas = [built_core(d)[1] for d in ("omsp430", "dr5")]
        text = table2(metas)
        assert "MSP430" in text and "RV32e" in text

    def test_table3_contents(self, grid):
        text = table3(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "tgc 4" in text
        assert "% reduction" in text
        assert "Div" in text

    def test_table4_contents(self, grid):
        text = table4(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "created" in text and "cycles" in text

    def test_results_csv(self, grid):
        text = results_csv(grid, ["Div", "mult"], ["bm32", "omsp430"])
        lines = text.splitlines()
        assert lines[0].startswith("design,benchmark")
        assert len(lines) == 5
        assert lines[1].startswith("bm32,Div,4,")


class TestFigures:
    def test_figure5_has_bars(self, grid):
        text = figure5(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "Figure 5" in text
        assert "%" in text
        assert "#" in text

    def test_figure6_log_scale_handles_one_path(self, grid):
        text = figure6(grid, ["Div", "mult"], ["bm32", "omsp430"])
        assert "Figure 6" in text
        # counts are printed verbatim
        assert " 3" in text


class TestRunnerCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        from repro.reporting import runner

        calls = []
        real_run_one = runner.run_one

        def counting_run_one(design, bench, strategy=None, **kw):
            calls.append((design, bench))
            return fake_result(design, bench, 2, 3, 1, 10)

        monkeypatch.setattr(runner, "run_one", counting_run_one)
        grid1 = runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                                cache_dir=tmp_path)
        assert calls == [("bm32", "Div")]
        grid2 = runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                                cache_dir=tmp_path)
        assert calls == [("bm32", "Div")]   # served from cache
        assert grid2["bm32"]["Div"].paths_created == \
            grid1["bm32"]["Div"].paths_created

    def test_no_cache_dir_reruns(self, monkeypatch):
        from repro.reporting import runner
        calls = []
        monkeypatch.setattr(
            runner, "run_one",
            lambda d, b, strategy=None, **kw: (
                calls.append(1), fake_result(d, b, 1, 1, 0, 1))[1])
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=None)
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=None)
        assert len(calls) == 2

    def test_corrupt_grid_entry_falls_through_to_fresh_run(
            self, tmp_path, monkeypatch):
        """Satellite regression: a truncated / garbage cache entry must
        be treated as a miss, never crash or return junk."""
        from repro.reporting import runner
        from repro.store import ContentStore

        calls = []
        monkeypatch.setattr(
            runner, "run_one",
            lambda d, b, strategy=None, **kw: (
                calls.append(1), fake_result(d, b, 2, 3, 1, 10))[1])
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=tmp_path)
        assert len(calls) == 1

        store = ContentStore(tmp_path)
        (name,) = [n for n in store.manifest_names()
                   if n.startswith("grid-")]
        # truncate the pickled result blob behind the manifest's back
        digest = store.get_manifest(name)["result"]
        store.object_path(digest).write_bytes(b"\x80garbage")

        grid = runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                               cache_dir=tmp_path)
        assert len(calls) == 2              # re-ran instead of crashing
        assert grid["bm32"]["Div"].paths_created == 3

        # same story for a torn manifest file
        store.manifest_path(name).write_text("{not json")
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=tmp_path)
        assert len(calls) == 3

    def test_mutated_strategy_misses_grid_cache(self, tmp_path,
                                                monkeypatch):
        """No version constant: changing the CSM strategy changes the
        fingerprint, so the cache never serves a stale entry."""
        from repro.csm.strategies import Clustered
        from repro.reporting import runner

        calls = []
        monkeypatch.setattr(
            runner, "run_one",
            lambda d, b, strategy=None, **kw: (
                calls.append(1), fake_result(d, b, 1, 1, 0, 1))[1])
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=tmp_path)
        runner.run_grid(designs=["bm32"], benchmarks=["Div"],
                        cache_dir=tmp_path,
                        strategy_factory=lambda: Clustered(k=2))
        assert len(calls) == 2


class TestDefaultCacheDir:
    def test_env_var_wins(self, tmp_path, monkeypatch):
        from repro.reporting.runner import default_cache_dir
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_not_inside_the_package_tree(self, monkeypatch):
        import repro
        from repro.reporting.runner import default_cache_dir
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        pkg = Path(repro.__file__).resolve().parent
        resolved = default_cache_dir().resolve()
        assert pkg not in resolved.parents and resolved != pkg

    def test_xdg_cache_home_honored(self, tmp_path, monkeypatch):
        from repro.reporting.runner import default_cache_dir
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro"
