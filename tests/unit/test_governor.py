"""Unit tests for the run governor (budgets, watchdog, signals)."""

import os
import signal

import pytest

from repro.resilience.governor import (RunBudget, RunGovernor, StopRequest,
                                       TRACE_KIND_FOR_REASON, as_governor,
                                       current_rss_mb)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestBudget:
    def test_default_budget_is_unlimited(self):
        assert RunBudget().unlimited

    def test_any_limit_makes_it_bounded(self):
        assert not RunBudget(deadline_seconds=1.0).unlimited
        assert not RunBudget(max_rss_mb=10.0).unlimited
        assert not RunBudget(max_frontier=5).unlimited
        assert not RunBudget(max_segments=5).unlimited


class TestDeadline:
    def test_no_stop_before_deadline(self):
        clock = FakeClock()
        gov = RunGovernor(RunBudget(deadline_seconds=10.0), clock=clock)
        gov.start()
        clock.advance(9.9)
        assert gov.check() is None

    def test_stop_at_deadline(self):
        clock = FakeClock()
        gov = RunGovernor(RunBudget(deadline_seconds=10.0), clock=clock)
        gov.start()
        clock.advance(10.0)
        stop = gov.check()
        assert stop is not None and stop.reason == "deadline"
        assert "10.0s" in stop.detail

    def test_epoch_starts_at_first_check_if_not_started(self):
        clock = FakeClock(t=100.0)
        gov = RunGovernor(RunBudget(deadline_seconds=5.0), clock=clock)
        assert gov.check() is None      # t0 pinned here, elapsed == 0
        clock.advance(5.0)
        assert gov.check().reason == "deadline"


class TestMemoryWatchdog:
    def test_stop_over_rss_ceiling(self):
        gov = RunGovernor(RunBudget(max_rss_mb=100.0),
                          rss_mb=lambda: 150.0)
        stop = gov.check()
        assert stop is not None and stop.reason == "memory"
        assert "150.0" in stop.detail

    def test_no_stop_under_ceiling(self):
        gov = RunGovernor(RunBudget(max_rss_mb=100.0),
                          rss_mb=lambda: 50.0)
        assert gov.check() is None

    def test_real_rss_sampler_is_positive_here(self):
        # POSIX CI: the process certainly holds > 1 MiB resident
        assert current_rss_mb() > 1.0


class TestCaps:
    def test_frontier_cap(self):
        gov = RunGovernor(RunBudget(max_frontier=10))
        assert gov.check(frontier=10) is None
        assert gov.check(frontier=11).reason == "frontier"

    def test_segment_cap(self):
        gov = RunGovernor(RunBudget(max_segments=10))
        assert gov.check(segments=9) is None
        assert gov.check(segments=10).reason == "segments"


class TestStickiness:
    def test_first_stop_wins(self):
        gov = RunGovernor(RunBudget())
        gov.request_stop("interrupted", "first")
        gov.request_stop("deadline", "second")
        assert gov.stop_requested == StopRequest("interrupted", "first")

    def test_check_is_sticky(self):
        clock = FakeClock()
        gov = RunGovernor(RunBudget(deadline_seconds=1.0), clock=clock)
        gov.start()
        clock.advance(2.0)
        first = gov.check()
        clock.advance(100.0)
        assert gov.check() is first


class TestSignals:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_becomes_stop_request(self, signum):
        gov = RunGovernor()
        with gov.governed():
            os.kill(os.getpid(), signum)
            stop = gov.check()
        assert stop is not None and stop.reason == "interrupted"
        assert signal.Signals(signum).name in stop.detail

    def test_previous_handlers_restored(self):
        calls = []
        previous = signal.signal(signal.SIGTERM,
                                 lambda *a: calls.append("outer"))
        try:
            gov = RunGovernor()
            with gov.governed():
                assert signal.getsignal(signal.SIGTERM) == gov._on_signal
            assert signal.getsignal(signal.SIGTERM) is not gov._on_signal
            os.kill(os.getpid(), signal.SIGTERM)
            assert calls == ["outer"]
            assert gov.stop_requested is None
        finally:
            signal.signal(signal.SIGTERM, previous)


class TestTraceMapping:
    def test_every_governor_reason_has_a_trace_kind(self):
        from repro.coanalysis.trace import EVENT_KINDS
        for reason in ("deadline", "memory", "frontier", "segments",
                       "interrupted"):
            assert TRACE_KIND_FOR_REASON[reason] in EVENT_KINDS


class TestCoercion:
    def test_none_passes_through(self):
        assert as_governor(None) is None

    def test_budget_becomes_governor(self):
        budget = RunBudget(deadline_seconds=1.0)
        gov = as_governor(budget)
        assert isinstance(gov, RunGovernor) and gov.budget is budget

    def test_governor_passes_through(self):
        gov = RunGovernor()
        assert as_governor(gov) is gov

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_governor(5)
