"""Unit tests for the netlist IR and Verilog round-trip."""

import pytest

from repro.netlist import (LIBRARY, Netlist, NetlistError, kind,
                           parse_verilog, write_verilog)


def tiny_netlist():
    nl = Netlist("tiny")
    a = nl.add_net("a")
    b = nl.add_net("b")
    n1 = nl.add_net("n1")
    y = nl.add_net("y")
    nl.mark_input(a)
    nl.mark_input(b)
    nl.add_gate("g0", "NAND", [a, b], n1)
    nl.add_gate("g1", "NOT", [n1], y)
    nl.mark_output(y)
    return nl


class TestCells:
    def test_library_has_core_kinds(self):
        for name in ("AND", "OR", "NOT", "XOR", "MUX2", "DFF", "DFFER"):
            assert name in LIBRARY

    def test_kind_lookup_error(self):
        with pytest.raises(KeyError):
            kind("FOO")

    def test_arity(self):
        assert kind("MUX2").arity == 3
        assert kind("TIE0").arity == 0

    def test_sequential_flag(self):
        assert kind("DFF").sequential
        assert not kind("AND").sequential


class TestNetlistConstruction:
    def test_counts(self):
        nl = tiny_netlist()
        assert nl.gate_count() == 2
        assert len(nl.nets) == 4
        assert nl.area() > 0

    def test_duplicate_net_rejected(self):
        nl = Netlist("t")
        nl.add_net("a")
        with pytest.raises(NetlistError):
            nl.add_net("a")

    def test_duplicate_gate_rejected(self):
        nl = tiny_netlist()
        n2 = nl.add_net("n2")
        with pytest.raises(NetlistError):
            nl.add_gate("g0", "NOT", [nl.net_index("a")], n2)

    def test_multiple_drivers_rejected(self):
        nl = tiny_netlist()
        with pytest.raises(NetlistError):
            nl.add_gate("g2", "NOT", [nl.net_index("a")],
                        nl.net_index("y"))

    def test_driving_primary_input_rejected(self):
        nl = tiny_netlist()
        with pytest.raises(NetlistError):
            nl.add_gate("g2", "NOT", [nl.net_index("y")],
                        nl.net_index("a"))

    def test_wrong_arity_rejected(self):
        nl = Netlist("t")
        a = nl.add_net("a")
        y = nl.add_net("y")
        with pytest.raises(NetlistError):
            nl.add_gate("g", "AND", [a], y)

    def test_net_lookup(self):
        nl = tiny_netlist()
        assert nl.net_name(nl.net_index("n1")) == "n1"
        with pytest.raises(NetlistError):
            nl.net_index("nope")

    def test_fanout_tracking(self):
        nl = tiny_netlist()
        assert nl.nets[nl.net_index("n1")].fanout == [1]

    def test_stats(self):
        stats = tiny_netlist().stats()
        assert stats["gates"] == 2
        assert stats["kind:NAND"] == 1


class TestLevelize:
    def test_levels_increase_along_paths(self):
        nl = tiny_netlist()
        levels = nl.levelize()
        assert levels[0] < levels[1]

    def test_comb_loop_detected(self):
        nl = Netlist("loop")
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.add_gate("g0", "NOT", [a], b)
        nl.add_gate("g1", "NOT", [b], a)
        with pytest.raises(NetlistError):
            nl.levelize()

    def test_flop_breaks_loop(self):
        nl = Netlist("seq")
        q = nl.add_net("q")
        d = nl.add_net("d")
        nl.add_gate("inv", "NOT", [q], d)
        nl.add_gate("ff", "DFF", [d], q)
        nl.levelize()  # must not raise

    def test_validate_floating_used_net(self):
        nl = Netlist("f")
        a = nl.add_net("a")
        y = nl.add_net("y")
        nl.add_gate("g", "NOT", [a], y)  # 'a' has no driver, not an input
        with pytest.raises(NetlistError):
            nl.validate()


class TestClone:
    def test_clone_is_deep_and_equal_shape(self):
        nl = tiny_netlist()
        dup = nl.clone()
        assert dup.gate_count() == nl.gate_count()
        assert [n.name for n in dup.nets] == [n.name for n in nl.nets]
        dup.add_net("extra")
        assert not nl.has_net("extra")


class TestBusHelpers:
    def test_bus_lookup(self):
        nl = Netlist("b")
        for i in range(4):
            nl.add_net(f"data[{i}]")
        assert len(nl.bus("data", 4)) == 4

    def test_find_nets_sorts_numerically(self):
        nl = Netlist("b")
        for i in (10, 2, 0, 1):
            nl.add_net(f"d[{i}]")
        names = [nl.net_name(i) for i in nl.find_nets("d[")]
        # numeric ordering, not lexicographic
        assert names.index("d[2]") < names.index("d[10]")


class TestVerilogRoundTrip:
    def test_round_trip_structure(self):
        nl = tiny_netlist()
        text = write_verilog(nl)
        back = parse_verilog(text)
        assert back.gate_count() == nl.gate_count()
        assert [g.kind for g in back.gates] == [g.kind for g in nl.gates]
        assert len(back.inputs) == 2
        assert len(back.outputs) == 1

    def test_escaped_identifiers_round_trip(self):
        nl = Netlist("esc")
        a = nl.add_net("pc[3]")
        y = nl.add_net("out[0]")
        nl.mark_input(a)
        nl.add_gate("g", "BUF", [a], y)
        nl.mark_output(y)
        back = parse_verilog(write_verilog(nl))
        assert back.has_net("pc[3]")
        assert back.has_net("out[0]")

    def test_verilog_text_contains_module(self):
        text = write_verilog(tiny_netlist())
        assert text.startswith("module tiny")
        assert "endmodule" in text
        assert "NAND" in text

    def test_parse_rejects_positional_connections(self):
        bad = """
        module m (a, y);
          input a; output y;
          NOT g (a, y);
        endmodule
        """
        with pytest.raises(NetlistError):
            parse_verilog(bad)

    def test_parse_with_comments(self):
        text = write_verilog(tiny_netlist())
        text = "// header comment\n/* block */\n" + text
        assert parse_verilog(text).gate_count() == 2
