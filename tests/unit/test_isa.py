"""Unit tests for the assembler framework and the three ISA encoders."""

import pytest

from repro.isa import (AsmError, Bm32Assembler, Dr5Assembler,
                       Msp430Assembler)
from repro.isa import mips32, msp430, rv32e


class TestFramework:
    def test_labels_and_comments(self):
        prog = Msp430Assembler().assemble("""
        ; comment
        start:  movi r1, 4    # trailing comment
        loop:   jmp loop
        """)
        assert prog.labels["start"] == 0
        assert prog.labels["loop"] == 1
        assert prog.size == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            Msp430Assembler().assemble("a:\na:\n movi r0, 1")

    def test_org_and_word(self):
        prog = Msp430Assembler().assemble("""
        .org 4
        data: .word 0xBEEF
        """)
        assert prog.labels["data"] == 4
        assert prog.words[4] == 0xBEEF
        assert prog.words[0] == 0

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError) as err:
            Msp430Assembler().assemble("frobnicate r1, r2")
        assert "frobnicate" in str(err.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as err:
            Msp430Assembler().assemble("movi r1, 1\nbogus r1")
        assert "line 2" in str(err.value)

    def test_label_as_operand(self):
        prog = Msp430Assembler().assemble("""
        jmp end
        movi r1, 1
        end: jmp end
        """)
        assert prog.words[0] & 0x3FF == 2

    def test_halt_label_property(self):
        prog = Msp430Assembler().assemble("_halt: jmp _halt")
        assert prog.halt_address == 0
        prog2 = Msp430Assembler().assemble("movi r1, 1")
        with pytest.raises(AsmError):
            prog2.halt_address

    def test_bad_register(self):
        with pytest.raises(AsmError):
            Msp430Assembler().assemble("movi rx, 1")

    def test_mem_operand_parsing(self):
        prog = Msp430Assembler().assemble("ld r1, -2(r3)")
        word = prog.words[0]
        assert (word >> 12) == msp430.OP_LD
        assert (word >> 9) & 7 == 1
        assert (word >> 6) & 7 == 3
        assert word & 0x3F == 0x3E  # -2 in 6-bit two's complement

    def test_offset_out_of_range(self):
        with pytest.raises(AsmError):
            Msp430Assembler().assemble("ld r1, 40(r3)")


class TestMsp430Encodings:
    def test_two_reg_ops(self):
        a = Msp430Assembler()
        for mn, op in (("mov", msp430.OP_MOV), ("add", msp430.OP_ADD),
                       ("sub", msp430.OP_SUB), ("cmp", msp430.OP_CMP),
                       ("and", msp430.OP_AND), ("bis", msp430.OP_BIS),
                       ("xor", msp430.OP_XOR)):
            word = a.assemble(f"{mn} r2, r5").words[0]
            assert word >> 12 == op
            assert (word >> 9) & 7 == 2
            assert (word >> 6) & 7 == 5

    def test_movi_masks_low_byte(self):
        word = Msp430Assembler().assemble("movi r1, 0x1FF").words[0]
        assert word & 0xFF == 0xFF

    def test_li_expands_to_two_words(self):
        prog = Msp430Assembler().assemble("li r1, 0x1234")
        assert prog.size == 2
        assert prog.words[0] >> 12 == msp430.OP_MOVI
        assert prog.words[1] >> 12 == msp430.OP_MOVHI
        assert prog.words[1] & 0xFF == 0x12

    def test_jcc_conditions(self):
        a = Msp430Assembler()
        for mn, cond in (("jeq", msp430.COND_JEQ), ("jne", msp430.COND_JNE),
                         ("jc", msp430.COND_JC), ("jl", msp430.COND_JL)):
            word = a.assemble(f"t: {mn} t").words[0]
            assert word >> 12 == msp430.OP_JCC
            assert (word >> 9) & 7 == cond

    def test_shift_ops(self):
        a = Msp430Assembler()
        word = a.assemble("rra r3").words[0]
        assert word >> 12 == msp430.OP_SHIFT
        assert (word >> 6) & 7 == msp430.SH_RRA
        word = a.assemble("srl r3").words[0]
        assert (word >> 6) & 7 == msp430.SH_SRL

    def test_peripheral_map_is_paged(self):
        assert msp430.MPY_OP1 == 0x100
        assert msp430.TA_CCR == 0x10A


class TestBm32Encodings:
    def test_rtype(self):
        word = Bm32Assembler().assemble("addu r3, r1, r2").words[0]
        assert word >> 26 == 0
        assert word & 0x3F == mips32.F_ADDU
        assert (word >> 23) & 7 == 1   # rs
        assert (word >> 20) & 7 == 2   # rt
        assert (word >> 17) & 7 == 3   # rd

    def test_shift_encodes_shamt(self):
        word = Bm32Assembler().assemble("sll r3, r2, 7").words[0]
        assert (word >> 6) & 0x1F == 7
        assert word & 0x3F == mips32.F_SLL

    def test_mult_and_moves(self):
        a = Bm32Assembler()
        assert a.assemble("mult r1, r2").words[0] & 0x3F == mips32.F_MULT
        assert a.assemble("mflo r4").words[0] & 0x3F == mips32.F_MFLO
        assert a.assemble("mfhi r4").words[0] & 0x3F == mips32.F_MFHI

    def test_branches(self):
        word = Bm32Assembler().assemble("t: beq r1, r2, t").words[0]
        assert word >> 26 == mips32.OP_BEQ
        word = Bm32Assembler().assemble("t: bne r1, r2, t").words[0]
        assert word >> 26 == mips32.OP_BNE

    def test_lw_sw_negative_offset(self):
        word = Bm32Assembler().assemble("lw r1, -1(r2)").words[0]
        assert word >> 26 == mips32.OP_LW
        assert word & 0xFFFF == 0xFFFF

    def test_li_expansion(self):
        prog = Bm32Assembler().assemble("li r1, 0x12345678")
        assert prog.size == 2
        assert prog.words[0] >> 26 == mips32.OP_LUI
        assert prog.words[0] & 0xFFFF == 0x1234
        assert prog.words[1] & 0xFFFF == 0x5678

    def test_addiu_range_checked(self):
        with pytest.raises(AsmError):
            Bm32Assembler().assemble("addiu r1, r0, 70000")

    def test_pseudos(self):
        a = Bm32Assembler()
        assert a.assemble("nop").words[0] == 0
        prog = a.assemble("move r2, r3")
        assert prog.words[0] & 0x3F == mips32.F_ADDU


class TestDr5Encodings:
    def test_rtype_vs_imm_dispatch(self):
        a = Dr5Assembler()
        r = a.assemble("add r3, r1, r2").words[0]
        assert r >> 26 == rv32e.OP_RTYPE
        assert r & 0x3F == rv32e.F_ADD
        i = a.assemble("addi r3, r1, 5").words[0]
        assert i >> 26 == rv32e.OP_ADDI

    def test_all_branches(self):
        a = Dr5Assembler()
        for mn, op in (("beq", rv32e.OP_BEQ), ("bne", rv32e.OP_BNE),
                       ("blt", rv32e.OP_BLT), ("bge", rv32e.OP_BGE),
                       ("bltu", rv32e.OP_BLTU), ("bgeu", rv32e.OP_BGEU)):
            word = a.assemble(f"t: {mn} r1, r2, t").words[0]
            assert word >> 26 == op

    def test_shifts_immediate(self):
        word = Dr5Assembler().assemble("slli r2, r1, 4").words[0]
        assert word >> 26 == rv32e.OP_SLLI
        assert (word >> 6) & 0x1F == 4

    def test_jal_and_j(self):
        a = Dr5Assembler()
        word = a.assemble("t: jal r1, t").words[0]
        assert word >> 26 == rv32e.OP_JAL
        assert (word >> 17) & 7 == 1
        word = a.assemble("t: j t").words[0]
        assert (word >> 17) & 7 == 0   # j == jal r0

    def test_sw_operand_order(self):
        word = Dr5Assembler().assemble("sw r2, 3(r1)").words[0]
        assert word >> 26 == rv32e.OP_SW
        assert (word >> 23) & 7 == 1   # base in rs1
        assert (word >> 20) & 7 == 2   # stored reg in rs2

    def test_no_multiplier_mnemonic(self):
        with pytest.raises(AsmError):
            Dr5Assembler().assemble("mult r1, r2")
