"""Unit tests for the VCD waveform writer."""

import pytest

from repro.logic import Logic
from repro.rtl import Design
from repro.sim import CompiledNetlist, CycleSim
from repro.sim.vcd import VcdWriter, _identifier, parse_vcd_changes


def counter(width=3):
    d = Design("cnt")
    r = d.reg(width, "c", reset=True)
    s, _ = r.q.add(d.const(1, width))
    r.drive(s)
    d.output("y", r.q)
    return d.finalize()


class TestIdentifiers:
    def test_unique_and_compact(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        assert all(len(i) <= 2 for i in ids)
        assert _identifier(0) == "!"


class TestWriter:
    def run_counter(self, tmp_path, cycles=6):
        nl = counter()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        path = tmp_path / "wave.vcd"
        with VcdWriter(path, nl, nets=nl.bus("y", 3)) as vcd:
            for _ in range(cycles):
                sim.settle()
                vcd.sample(sim)
                sim.step()
        return path.read_text()

    def test_header_structure(self, tmp_path):
        text = self.run_counter(tmp_path)
        assert "$timescale 1ns $end" in text
        assert "$scope module cnt $end" in text
        assert "$enddefinitions $end" in text
        assert "$var wire 1" in text

    def test_bit_changes_follow_counter(self, tmp_path):
        text = self.run_counter(tmp_path, cycles=6)
        changes = parse_vcd_changes(text)
        y0 = [v for _, v in changes["y_0"]]
        # LSB alternates every cycle: 0,1,0,1,...
        assert y0 == ["0", "1", "0", "1", "0", "1"]

    def test_only_changes_are_written(self, tmp_path):
        text = self.run_counter(tmp_path, cycles=4)
        changes = parse_vcd_changes(text)
        # MSB of a 3-bit counter never reaches 1 in 4 cycles of counting
        y2 = [v for _, v in changes["y_2"]]
        assert y2 == ["0"]

    def test_x_values_dumped(self, tmp_path):
        nl = counter()
        sim = CycleSim(CompiledNetlist(nl))   # no reset: everything X
        path = tmp_path / "x.vcd"
        with VcdWriter(path, nl, nets=nl.bus("y", 3)) as vcd:
            sim.settle()
            vcd.sample(sim)
        changes = parse_vcd_changes(path.read_text())
        assert changes["y_0"] == [(0, "x")]

    def test_empty_net_list_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            VcdWriter(tmp_path / "e.vcd", counter(), nets=[])

    def test_sample_requires_open(self, tmp_path):
        nl = counter()
        vcd = VcdWriter(tmp_path / "c.vcd", nl, nets=nl.bus("y", 3))
        sim = CycleSim(CompiledNetlist(nl))
        with pytest.raises(RuntimeError):
            vcd.sample(sim)

    def test_explicit_timestamps(self, tmp_path):
        nl = counter()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        path = tmp_path / "t.vcd"
        with VcdWriter(path, nl, nets=nl.bus("y", 3)) as vcd:
            sim.settle()
            vcd.sample(sim, time=100)
        assert "#100" in path.read_text()
