"""Unit tests for four-valued scalar logic."""

import pytest

from repro.logic.value import (Logic, coerce, covers, l_and, l_buf, l_mux,
                               l_nand, l_nor, l_not, l_or, l_xnor, l_xor,
                               merge, reduce_and, reduce_or, reduce_xor)

L0, L1, X, Z = Logic.L0, Logic.L1, Logic.X, Logic.Z


class TestCoerce:
    def test_from_int(self):
        assert coerce(0) is L0
        assert coerce(1) is L1

    def test_from_bool(self):
        assert coerce(True) is L1
        assert coerce(False) is L0

    def test_from_str(self):
        assert coerce("0") is L0
        assert coerce("1") is L1
        assert coerce("x") is X
        assert coerce("X") is X
        assert coerce("z") is Z

    def test_identity(self):
        assert coerce(X) is X

    def test_bad_int(self):
        with pytest.raises(ValueError):
            coerce(2)

    def test_bad_str(self):
        with pytest.raises(ValueError):
            coerce("q")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            coerce(1.5)


class TestKleeneGates:
    def test_and_controlling_zero(self):
        assert l_and(L0, X) is L0
        assert l_and(X, L0) is L0
        assert l_and(L0, Z) is L0

    def test_and_unknown(self):
        assert l_and(L1, X) is X
        assert l_and(X, X) is X

    def test_and_known(self):
        assert l_and(L1, L1) is L1
        assert l_and(L1, L0) is L0

    def test_or_controlling_one(self):
        assert l_or(L1, X) is L1
        assert l_or(X, L1) is L1
        assert l_or(L1, Z) is L1

    def test_or_unknown(self):
        assert l_or(L0, X) is X
        assert l_or(X, X) is X

    def test_xor_never_resolves_x(self):
        assert l_xor(X, X) is X
        assert l_xor(L0, X) is X
        assert l_xor(L1, X) is X

    def test_xor_known(self):
        assert l_xor(L0, L1) is L1
        assert l_xor(L1, L1) is L0

    def test_not(self):
        assert l_not(L0) is L1
        assert l_not(L1) is L0
        assert l_not(X) is X
        assert l_not(Z) is X

    def test_buf_normalizes_z(self):
        assert l_buf(Z) is X
        assert l_buf(L1) is L1

    def test_derived_gates(self):
        assert l_nand(L1, L1) is L0
        assert l_nand(L0, X) is L1
        assert l_nor(L0, L0) is L1
        assert l_nor(L1, X) is L0
        assert l_xnor(L1, L1) is L1
        assert l_xnor(L1, X) is X

    def test_z_treated_as_x(self):
        assert l_and(L1, Z) is X
        assert l_or(L0, Z) is X
        assert l_xor(L0, Z) is X


class TestMux:
    def test_known_select(self):
        assert l_mux(L0, L1, L0) is L1
        assert l_mux(L1, L1, L0) is L0

    def test_x_select_agreeing_data(self):
        assert l_mux(X, L1, L1) is L1
        assert l_mux(X, L0, L0) is L0

    def test_x_select_disagreeing_data(self):
        assert l_mux(X, L0, L1) is X
        assert l_mux(X, X, X) is X

    def test_x_select_unknown_data(self):
        assert l_mux(X, X, L1) is X


class TestReductions:
    def test_reduce_and(self):
        assert reduce_and([L1, L1, L1]) is L1
        assert reduce_and([L1, L0, X]) is L0
        assert reduce_and([L1, X, L1]) is X

    def test_reduce_or(self):
        assert reduce_or([L0, L0]) is L0
        assert reduce_or([L0, L1, X]) is L1
        assert reduce_or([L0, X]) is X

    def test_reduce_xor(self):
        assert reduce_xor([L1, L1, L1]) is L1
        assert reduce_xor([L1, X]) is X
        assert reduce_xor([]) is L0


class TestCoversMerge:
    def test_x_covers_all(self):
        for v in (L0, L1, X, Z):
            assert covers(X, v)

    def test_known_covers_itself_only(self):
        assert covers(L0, L0)
        assert not covers(L0, L1)
        assert not covers(L1, X)

    def test_merge_identical(self):
        assert merge(L1, L1) is L1
        assert merge(L0, L0) is L0

    def test_merge_differing_becomes_x(self):
        assert merge(L0, L1) is X
        assert merge(L1, X) is X

    def test_merge_covers_both(self):
        for a in (L0, L1, X):
            for b in (L0, L1, X):
                m = merge(a, b)
                assert covers(m, a)
                assert covers(m, b)


class TestOperators:
    def test_dunder_ops(self):
        assert (L1 & L0) is L0
        assert (L1 | L0) is L1
        assert (L1 ^ L1) is L0
        assert (~L1) is L0

    def test_properties(self):
        assert L0.is_known and L1.is_known
        assert not X.is_known and not Z.is_known
        assert X.is_unknown

    def test_str(self):
        assert str(L0) == "0"
        assert str(X) == "x"
