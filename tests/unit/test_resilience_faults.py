"""Unit tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.resilience.faults import (FAULT_KINDS, FaultPlan, FaultSpec,
                                     InjectedFault, corrupt_bytes,
                                     execute_fault)
from repro.sim.state import SimState, StateDecodeError


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, "meltdown")

    def test_known_kinds(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(0, 0, kind).kind == kind


class TestFaultPlan:
    def test_one_shot_fires_only_on_first_attempt(self):
        plan = FaultPlan([FaultSpec(2, 1, "crash")])
        assert plan.fault_for(2, 1, attempt=0) == "crash"
        assert plan.fault_for(2, 1, attempt=1) is None
        assert plan.fault_for(0, 0, attempt=0) is None
        assert plan.fired == [(2, 1, 0, "crash")]

    def test_persistent_fires_every_attempt(self):
        plan = FaultPlan([FaultSpec(0, 0, "crash", persistent=True)])
        for attempt in range(3):
            assert plan.fault_for(0, 0, attempt) == "crash"

    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(seed=7, n_faults=5)
        b = FaultPlan.random(seed=7, n_faults=5)
        c = FaultPlan.random(seed=8, n_faults=5)
        assert a.specs == b.specs
        assert len(a.specs) == 5
        assert a.specs != c.specs

    def test_decorate_passes_fault_into_job(self):
        plan = FaultPlan([FaultSpec(1, 0, "hang")])
        blob, forced, fault = plan.decorate(1, 0, 0, b"state", 1)
        assert (blob, forced, fault) == (b"state", 1, "hang")
        blob, forced, fault = plan.decorate(1, 0, 1, b"state", 1)
        assert fault is None

    def test_decorate_corrupts_parent_side(self):
        state = SimState(np.array([True], dtype=bool),
                         np.array([True], dtype=bool), {})
        pristine = state.to_bytes()
        plan = FaultPlan([FaultSpec(0, 0, "corrupt")])
        blob, _, fault = plan.decorate(0, 0, 0, pristine, None)
        assert fault is None                    # fault already applied
        assert blob != pristine
        with pytest.raises(StateDecodeError):
            SimState.from_bytes(blob)
        # the retry gets the pristine bytes back
        blob2, _, _ = plan.decorate(0, 0, 1, pristine, None)
        assert blob2 == pristine
        SimState.from_bytes(blob2)


class TestExecution:
    def test_none_is_noop(self):
        execute_fault(None)

    def test_crash_raises(self):
        with pytest.raises(InjectedFault):
            execute_fault("crash")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            execute_fault("meltdown")

    def test_corrupt_bytes_changes_content_deterministically(self):
        blob = bytes(range(256))
        assert corrupt_bytes(blob) == corrupt_bytes(blob)
        assert corrupt_bytes(blob) != blob
