"""Concurrent-writer safety of the content store's blob publishes.

The job service points many worker processes at one store, so
``put_bytes`` must survive simultaneous writers racing to publish the
same digest: exactly one durable copy, never a torn or truncated object
visible under the final name.  ``atomic_publish_bytes`` provides the
primitive (create-exclusive via ``os.link``), and a corrupted object --
content not matching its name -- must be repaired, not trusted.
"""

import hashlib
import multiprocessing

import pytest

from repro.resilience.artifacts import atomic_publish_bytes
from repro.store import ContentStore

#: a handful of payloads every writer races to publish
PAYLOADS = [f"segment-result-{i}".encode() * (i + 1) for i in range(8)]


def _hammer(root: str, rounds: int) -> None:
    """Worker: publish every payload ``rounds`` times, interleaved."""
    store = ContentStore(root)
    for _ in range(rounds):
        for blob in PAYLOADS:
            digest = store.put_bytes(blob)
            assert store.get_bytes(digest) == blob


# -- the multiprocessing stress test -----------------------------------------
def test_parallel_writers_one_store(tmp_path):
    root = tmp_path / "store"
    ctx = multiprocessing.get_context("spawn")
    procs = [ctx.Process(target=_hammer, args=(str(root), 5))
             for _ in range(4)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(120)
        assert proc.exitcode == 0
    store = ContentStore(root)
    # exactly one durable object per payload, all content-verified
    report = store.verify()
    assert report["ok"], report
    assert report["objects"] == len(PAYLOADS)
    for blob in PAYLOADS:
        digest = hashlib.sha256(blob).hexdigest()
        assert store.get_bytes(digest) == blob


# -- the primitive ------------------------------------------------------------
def test_atomic_publish_first_writer_wins(tmp_path):
    path = tmp_path / "obj"
    assert atomic_publish_bytes(path, b"first") is True
    assert atomic_publish_bytes(path, b"second") is False
    assert path.read_bytes() == b"first"


def test_atomic_publish_creates_parent_dirs(tmp_path):
    path = tmp_path / "a" / "b" / "obj"
    assert atomic_publish_bytes(path, b"deep") is True
    assert path.read_bytes() == b"deep"


def test_atomic_publish_leaves_no_temp_files(tmp_path):
    path = tmp_path / "obj"
    atomic_publish_bytes(path, b"x")
    atomic_publish_bytes(path, b"y")        # loser must clean up
    assert sorted(p.name for p in tmp_path.iterdir()) == ["obj"]


def test_put_bytes_idempotent_same_process(tmp_path):
    store = ContentStore(tmp_path / "store")
    a = store.put_bytes(b"hello")
    b = store.put_bytes(b"hello")
    assert a == b
    assert store.get_bytes(a) == b"hello"


def test_put_bytes_repairs_corrupt_object(tmp_path):
    store = ContentStore(tmp_path / "store")
    digest = store.put_bytes(b"payload")
    # simulate on-disk corruption: content no longer matches the name
    store.object_path(digest).write_bytes(b"garbage")
    assert store.put_bytes(b"payload") == digest
    assert store.get_bytes(digest) == b"payload"


def test_put_bytes_does_not_rewrite_existing_object(tmp_path):
    store = ContentStore(tmp_path / "store")
    digest = store.put_bytes(b"stable")
    before = store.object_path(digest).stat().st_mtime_ns
    store.put_bytes(b"stable")
    assert store.object_path(digest).stat().st_mtime_ns == before
