"""Unit tests for the structured trace/metrics layer."""

import io
import json

from repro.coanalysis.trace import (EVENT_KINDS, JsonlTraceSink,
                                    MetricsAggregator, ProgressLine,
                                    TraceEvent, Tracer, aggregate_trace,
                                    read_trace)


def events_for_small_run():
    """A hand-written stream shaped like a 3-path run."""
    return [
        TraceEvent("run_start", seq=0, t=0.0, frontier=1,
                   data={"design": "d", "application": "a",
                         "strategy": "dfs"}),
        TraceEvent("segment_start", seq=1, t=0.01, path_id=0, frontier=0),
        TraceEvent("halt", seq=2, t=0.02, path_id=0, pc=4, cycles=10),
        TraceEvent("fork", seq=3, t=0.02, path_id=0, pc=4, frontier=2),
        TraceEvent("segment_end", seq=4, t=0.02, path_id=0, pc=4,
                   cycles=10, outcome="split", frontier=2),
        TraceEvent("segment_start", seq=5, t=0.03, path_id=1, frontier=1),
        TraceEvent("halt", seq=6, t=0.04, path_id=1, pc=4, cycles=5),
        TraceEvent("merge", seq=7, t=0.04, path_id=1, pc=4, frontier=1),
        TraceEvent("segment_end", seq=8, t=0.04, path_id=1, pc=4,
                   cycles=5, outcome="skipped", frontier=1),
        TraceEvent("segment_start", seq=9, t=0.05, path_id=2, frontier=0),
        TraceEvent("segment_end", seq=10, t=0.06, path_id=2, cycles=7,
                   outcome="done", frontier=0),
        TraceEvent("batch", seq=11, t=0.06, frontier=0),
        TraceEvent("phase", seq=12, t=0.07,
                   data={"phase": "explore", "seconds": 0.06}),
        TraceEvent("run_end", seq=13, t=0.08, frontier=0),
    ]


class TestTraceEvent:
    def test_to_json_drops_absent_fields(self):
        event = TraceEvent("halt", seq=3, t=0.5, path_id=1, pc=9)
        raw = event.to_json()
        assert raw == {"kind": "halt", "seq": 3, "t": 0.5,
                       "path_id": 1, "pc": 9}

    def test_data_keys_are_inlined(self):
        event = TraceEvent("phase", data={"phase": "explore",
                                          "seconds": 1.25})
        assert event.to_json()["phase"] == "explore"

    def test_all_kinds_are_known(self):
        for event in events_for_small_run():
            assert event.kind in EVENT_KINDS


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        out = tmp_path / "run.jsonl"
        sink = JsonlTraceSink(out)
        for event in events_for_small_run():
            sink.emit(event)
        sink.close()
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 14
        assert all(json.loads(line)["kind"] in EVENT_KINDS
                   for line in lines)
        parsed = read_trace(out)
        assert [e.kind for e in parsed] == \
            [e.kind for e in events_for_small_run()]
        assert parsed[2].pc == 4
        assert parsed[12].data["phase"] == "explore"

    def test_emit_after_close_is_noop(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.emit(TraceEvent("halt"))   # must not raise


class TestMetrics:
    def test_aggregation(self):
        metrics = aggregate_trace(events_for_small_run())
        assert metrics.paths_explored == 3
        assert metrics.splits == 1
        assert metrics.merges_covered == 1
        assert metrics.halts == 2
        assert metrics.simulated_cycles == 22
        assert metrics.frontier_high_water == 2
        assert metrics.batches == 1
        assert metrics.outcomes == {"split": 1, "skipped": 1, "done": 1}
        assert metrics.phase_seconds["explore"] == 0.06
        assert metrics.wall_seconds == 0.08

    def test_resume_inherits_counters(self):
        agg = MetricsAggregator()
        agg.emit(TraceEvent("resume", data={"paths_explored": 40,
                                            "splits": 12,
                                            "simulated_cycles": 9000}))
        agg.emit(TraceEvent("segment_end", cycles=10, outcome="done"))
        assert agg.metrics.paths_explored == 41
        assert agg.metrics.simulated_cycles == 9010
        assert agg.metrics.resumes == 1

    def test_summary_is_json_serializable(self):
        summary = aggregate_trace(events_for_small_run()).summary()
        assert json.loads(json.dumps(summary)) == summary


class TestTracer:
    def test_always_carries_metrics(self):
        tracer = Tracer()
        tracer.emit("segment_end", cycles=3, outcome="done")
        assert tracer.metrics.paths_explored == 1

    def test_sequence_numbers_are_monotonic(self, tmp_path):
        out = tmp_path / "t.jsonl"
        tracer = Tracer([JsonlTraceSink(out)])
        for _ in range(5):
            tracer.emit("batch")
        tracer.close()
        assert [e.seq for e in read_trace(out)] == list(range(5))


class TestProgressLine:
    def test_renders_and_terminates_line(self):
        stream = io.StringIO()
        line = ProgressLine(stream=stream, min_interval=0.0)
        line.emit(TraceEvent("segment_end", t=1.0, cycles=5, frontier=2))
        line.emit(TraceEvent("run_end", t=2.0))
        line.close()
        text = stream.getvalue()
        assert "paths=1" in text
        assert "frontier=2" in text
        assert text.endswith("\n")
