"""Unit tests for netlist reports, lockstep comparison, CSM persistence."""

import numpy as np
import pytest

from repro.csm import Clustered, ConservativeStateManager
from repro.logic import Logic
from repro.netlist.stats import block_of, diff_blocks, report
from repro.rtl import Design
from repro.sim.compare import lockstep_compare
from repro.sim.state import SimState
from repro.workloads import built_core


def counter(width=4):
    d = Design("cnt")
    en = d.input("en")
    r = d.reg(width, "c", reset=True)
    s, _ = r.q.add(d.const(1, width))
    r.drive(s, enable=en)
    d.output("y", r.q)
    return d.finalize()


class TestNetlistReport:
    def test_block_of(self):
        assert block_of("mpy_op1_ff3") == "mpy_op"
        assert block_of("u123") == "u"
        assert block_of("pc_r_ff0") == "pc_r_ff"

    def test_report_totals(self):
        nl, _ = built_core("omsp430")
        rep = report(nl)
        assert rep.gates == nl.gate_count()
        assert rep.flops == len(nl.seq_gates)
        assert sum(rep.by_kind.values()) == rep.gates
        assert sum(c for c, _ in rep.by_block.values()) == rep.gates
        assert rep.max_fanout >= rep.avg_fanout > 0

    def test_render_contains_blocks(self):
        nl, _ = built_core("omsp430")
        text = report(nl).render()
        assert "Netlist report: omsp430" in text
        assert "cells:" in text

    def test_diff_blocks(self):
        nl = counter()
        rows = diff_blocks(nl, nl)
        assert all(before == after for _, before, after in rows)


class TestLockstep:
    def test_equivalent_engines(self):
        nl = counter()
        stim = [{"rst": Logic.L1, "en": Logic.L0}] + \
               [{"rst": Logic.L0, "en": Logic.L1}] * 5
        result = lockstep_compare(nl, stim)
        assert result.equivalent
        assert result.cycles_run == 6

    def test_x_stimulus_still_equivalent(self):
        nl = counter()
        stim = [{"rst": Logic.L1, "en": Logic.L0},
                {"rst": Logic.L0, "en": Logic.X},
                {"rst": Logic.L0, "en": Logic.L1}]
        assert lockstep_compare(nl, stim).equivalent

    def test_batch_leg_by_name(self):
        """'batch' builds a one-lane BatchCycleSim behind a LaneView."""
        nl = counter()
        stim = [{"rst": Logic.L1, "en": Logic.L0},
                {"rst": Logic.L0, "en": Logic.X}] + \
               [{"rst": Logic.L0, "en": Logic.L1}] * 4
        assert lockstep_compare(nl, stim,
                                engines=("cycle", "batch")).equivalent
        assert lockstep_compare(nl, stim,
                                engines=("event", "batch")).equivalent

    def test_batch_leg_as_lane_view_object(self):
        """A LaneView of a wider sim can be passed in directly."""
        from repro.sim.batch_sim import BatchCycleSim
        from repro.sim.cycle_sim import compile_netlist
        nl = counter()
        sim = BatchCycleSim(compile_netlist(nl), lanes=128)
        view = sim.lane_view(sim.alloc_lane())
        stim = [{"rst": Logic.L1, "en": Logic.L0}] + \
               [{"rst": Logic.L0, "en": Logic.L1}] * 5
        result = lockstep_compare(nl, stim, engines=("cycle", view))
        assert result.equivalent
        assert result.cycles_run == 6

    def test_unknown_engine_name_rejected(self):
        nl = counter()
        with pytest.raises(ValueError, match="unknown engine"):
            lockstep_compare(nl, [], engines=("cycle", "verilator"))

    def test_divergence_reporting_shape(self):
        """Divergence dataclass renders usefully (synthesized case)."""
        from repro.sim.compare import CompareResult, Divergence
        div = Divergence(3, 7, "y[0]", Logic.L1, Logic.X)
        assert "cycle 3" in str(div)
        assert not CompareResult(4, div).equivalent


class TestCsmPersistence:
    def make_state(self, bits):
        return SimState(
            net_val=np.array([b == "1" for b in bits]),
            net_known=np.array([b != "x" for b in bits]),
            memories={}, pc=1)

    def test_roundtrip(self, tmp_path):
        csm = ConservativeStateManager()
        csm.observe(1, self.make_state("101"))
        csm.observe(1, self.make_state("100"))
        path = tmp_path / "repo.pkl"
        csm.save_repository(path)
        loaded = ConservativeStateManager.load_repository(path)
        assert loaded.pcs() == [1]
        assert loaded.stats.observed == 2
        # a covered observation stays covered after reload
        decision = loaded.observe(1, self.make_state("101"))
        assert decision.covered

    def test_strategy_mismatch_rejected(self, tmp_path):
        csm = ConservativeStateManager(Clustered(k=2))
        csm.observe(1, self.make_state("10"))
        path = tmp_path / "repo.pkl"
        csm.save_repository(path)
        with pytest.raises(ValueError):
            ConservativeStateManager.load_repository(path)
        loaded = ConservativeStateManager.load_repository(
            path, strategy=Clustered(k=2))
        assert loaded.total_states() == 1
