"""Unit tests for the Conservative State Manager."""

import numpy as np
import pytest

from repro.csm import (Clustered, ConservativeStateManager, ConstraintSet,
                       ConstraintError, ExactSet, MemConstraint,
                       NetConstraint, UberConservative, load_constraints,
                       parse_constraints)
from repro.sim.state import SimState


def state(bits, pc=0, mem=None):
    """bits: string like '10x' (MSB last here: index i = bit i)."""
    val = [c == "1" for c in bits]
    known = [c != "x" for c in bits]
    mems = {}
    if mem is not None:
        mval, mknown = mem
        mems["dmem"] = (np.array(mval, dtype=bool),
                        np.array(mknown, dtype=bool))
    return SimState(np.array(val), np.array(known), mems, pc=pc)


class TestUberConservative:
    def test_first_observation_expands(self):
        csm = ConservativeStateManager(UberConservative())
        d = csm.observe(10, state("101"))
        assert not d.covered
        assert d.resume_state is not None

    def test_repeat_observation_skipped(self):
        csm = ConservativeStateManager(UberConservative())
        csm.observe(10, state("101"))
        d = csm.observe(10, state("101"))
        assert d.covered
        assert csm.stats.skipped == 1

    def test_new_state_merges(self):
        csm = ConservativeStateManager(UberConservative())
        csm.observe(10, state("101"))
        d = csm.observe(10, state("100"))
        assert not d.covered
        # third bit differs -> X there, first two stay known
        assert d.resume_state.net_known.tolist() == [True, True, False]

    def test_single_entry_per_pc(self):
        csm = ConservativeStateManager(UberConservative())
        csm.observe(10, state("101"))
        csm.observe(10, state("010"))
        assert len(csm.states_for(10)) == 1

    def test_distinct_pcs_independent(self):
        csm = ConservativeStateManager(UberConservative())
        csm.observe(10, state("101", pc=10))
        d = csm.observe(20, state("101", pc=20))
        assert not d.covered
        assert csm.pcs() == [10, 20]

    def test_covered_after_merge(self):
        csm = ConservativeStateManager(UberConservative())
        csm.observe(10, state("101"))
        csm.observe(10, state("100"))     # merge -> 10x? (bit0 differs)
        d = csm.observe(10, state("101"))
        assert d.covered


class TestClustered:
    def test_keeps_up_to_k_states(self):
        csm = ConservativeStateManager(Clustered(k=2))
        csm.observe(5, state("0000"))
        csm.observe(5, state("1111"))
        assert len(csm.states_for(5)) == 2

    def test_merges_into_nearest(self):
        csm = ConservativeStateManager(Clustered(k=2))
        csm.observe(5, state("0000"))
        csm.observe(5, state("1111"))
        csm.observe(5, state("0001"))    # nearest to 0000
        entries = csm.states_for(5)
        xcounts = sorted(s.count_x() for s in entries)
        assert xcounts == [1, 0][::-1] or xcounts == [0, 1]

    def test_less_conservative_than_uber(self):
        # two natural clusters: {0000, 0001} and {1111, 1110}
        uber = ConservativeStateManager(UberConservative())
        clus = ConservativeStateManager(Clustered(k=2))
        for s in ("0000", "1111", "0001", "1110"):
            uber.observe(1, state(s))
            clus.observe(1, state(s))
        assert clus.conservatism() < uber.conservatism()

    def test_k_validation(self):
        with pytest.raises(ValueError):
            Clustered(k=0)


class TestExactSet:
    def test_never_merges(self):
        csm = ConservativeStateManager(ExactSet())
        for s in ("000", "001", "010"):
            csm.observe(2, state(s))
        assert len(csm.states_for(2)) == 3
        assert csm.conservatism() == 0

    def test_detects_duplicates(self):
        csm = ConservativeStateManager(ExactSet())
        csm.observe(2, state("01x"))
        d = csm.observe(2, state("010"))
        assert d.covered


class TestExpansionMemo:
    def test_identical_merged_state_not_reexpanded(self):
        csm = ConservativeStateManager(UberConservative())
        csm.observe(3, state("1x"))
        # merging "10" into "1x" yields "1x" again -- covered
        d = csm.observe(3, state("10"))
        assert d.covered

    def test_constrained_livelock_broken(self):
        # constraint pins bit1 to 1; raw observations disagree
        cs = ConstraintSet([NetConstraint("b1", 1)], {"b0": 0, "b1": 1})
        csm = ConservativeStateManager(UberConservative(), constraints=cs)
        d1 = csm.observe(7, state("10"))   # bit1=0 -> pinned to 1
        assert not d1.covered
        assert d1.resume_state.net_val.tolist() == [True, True]
        # the same raw observation again: merge produces the same pinned
        # state -> memo reports covered instead of looping forever
        d2 = csm.observe(7, state("10"))
        assert d2.covered


class TestConstraints:
    def test_parse(self):
        text = """
        # comment
        net pc[3] 1
        mem dmem[5].2 0
        """
        cs = parse_constraints(text)
        assert cs == [NetConstraint("pc[3]", 1),
                      MemConstraint("dmem", 5, 2, 0)]

    def test_parse_errors(self):
        with pytest.raises(ConstraintError):
            parse_constraints("net a")
        with pytest.raises(ConstraintError):
            parse_constraints("net a 2")
        with pytest.raises(ConstraintError):
            parse_constraints("mem bad 1")
        with pytest.raises(ConstraintError):
            parse_constraints("foo a 1")

    def test_load_from_file(self, tmp_path):
        f = tmp_path / "c.txt"
        f.write_text("net a 1\n")
        assert load_constraints(f) == [NetConstraint("a", 1)]

    def test_unknown_net_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([NetConstraint("nope", 1)], {"a": 0})

    def test_apply_net(self):
        cs = ConstraintSet([NetConstraint("a", 1)], {"a": 0, "b": 1})
        s = state("xx")
        cs.apply(s)
        assert s.net_val.tolist() == [True, False]
        assert s.net_known.tolist() == [True, False]

    def test_apply_mem(self):
        cs = ConstraintSet([MemConstraint("dmem", 0, 1, 1)], {})
        s = state("0", mem=([[0, 0]], [[0, 0]]))
        cs.apply(s)
        assert s.memories["dmem"][0].tolist() == [[False, True]]
        assert s.memories["dmem"][1][0].tolist() == [False, True]

    def test_apply_mem_unknown_memory(self):
        cs = ConstraintSet([MemConstraint("nope", 0, 0, 1)], {})
        with pytest.raises(ConstraintError):
            cs.apply(state("0", mem=([[0]], [[0]])))

    def test_apply_mem_out_of_range(self):
        cs = ConstraintSet([MemConstraint("dmem", 9, 0, 1)], {})
        with pytest.raises(ConstraintError):
            cs.apply(state("0", mem=([[0]], [[0]])))

    def test_len(self):
        cs = ConstraintSet([NetConstraint("a", 1),
                            MemConstraint("dmem", 0, 0, 1)], {"a": 0})
        assert len(cs) == 2


class TestStats:
    def test_counters(self):
        csm = ConservativeStateManager()
        csm.observe(1, state("10"))
        csm.observe(1, state("10"))
        csm.observe(1, state("01"))
        snap = csm.stats.snapshot()
        assert snap["observed"] == 3
        assert snap["skipped"] == 1
        assert snap["expanded"] == 2
        assert snap["distinct_pcs"] == 1
        assert csm.total_states() == 1
