"""The job model: spec validation, the state machine, persistence."""

import pytest

from repro.service.jobs import (JOB_STATES, TERMINAL_STATES, Job, JobSpec,
                                JobSpecError, JobStateError, JobStore,
                                UnknownJob)
from repro.store import ContentStore

FP = "f" * 64


def make_spec(**overrides) -> JobSpec:
    base = {"design": "dr5", "benchmark": "mult"}
    base.update(overrides)
    return JobSpec.from_dict(base)


# -- spec validation ----------------------------------------------------------
def test_spec_defaults():
    spec = make_spec()
    assert spec.csm == "uber"
    assert spec.engine == "serial"
    assert spec.frontier == "dfs"
    assert spec.dedup is True


def test_spec_rejects_unknown_fields():
    with pytest.raises(JobSpecError, match="unknown spec field"):
        JobSpec.from_dict({"design": "dr5", "benchmark": "mult",
                           "colour": "blue"})


def test_spec_rejects_non_dict():
    with pytest.raises(JobSpecError, match="JSON object"):
        JobSpec.from_dict(["dr5", "mult"])


@pytest.mark.parametrize("field,value", [
    ("design", "z80"),
    ("benchmark", "nosuch"),
    ("csm", "psychic"),
    ("engine", "quantum"),
    ("frontier", "lifo"),
])
def test_spec_rejects_unknown_choices(field, value):
    with pytest.raises(JobSpecError):
        make_spec(**{field: value})


def test_spec_engine_default_mirrors_run_one():
    # engine left blank resolves exactly as run_one would, so equal
    # submissions fingerprint equally however they spell the default
    assert JobSpec.from_dict({"design": "dr5", "benchmark": "mult",
                              "engine": None}).engine == "serial"
    assert JobSpec.from_dict({"design": "dr5", "benchmark": "mult",
                              "engine": None,
                              "workers": 4}).engine == "parallel"


def test_spec_lanes_requires_batch_engine():
    with pytest.raises(JobSpecError, match="batch"):
        make_spec(lanes=64)
    with pytest.raises(JobSpecError, match="multiple"):
        make_spec(engine="batch", lanes=65)
    assert make_spec(engine="batch", lanes=128).lanes == 128


@pytest.mark.parametrize("field", ["deadline_seconds", "max_rss_mb",
                                   "max_frontier", "max_segments",
                                   "shard_segments"])
def test_spec_budgets_must_be_positive(field):
    with pytest.raises(JobSpecError, match="positive"):
        make_spec(**{field: 0})


def test_spec_budget_none_when_unlimited():
    assert make_spec().budget() is None
    budget = make_spec(max_segments=5).budget()
    assert budget is not None and budget.max_segments == 5


def test_dedup_key_separates_budget_envelopes():
    # identical run, different budgets: coalescing one onto the other
    # would hand a capped PARTIAL to an uncapped submission
    plain, capped = make_spec(), make_spec(deadline_seconds=1.0)
    assert plain.fingerprint_key() == capped.fingerprint_key()
    assert plain.dedup_key() != capped.dedup_key()


def test_spec_round_trips_through_dict():
    spec = make_spec(engine="batch", lanes=64, max_segments=9,
                     submitter="alice", dedup=False)
    assert JobSpec.from_dict(spec.to_dict()) == spec


# -- the state machine --------------------------------------------------------
def test_new_job_is_queued_with_id_and_timestamp():
    job = Job.new(make_spec(), FP)
    assert job.state == "QUEUED" and not job.terminal
    assert len(job.job_id) == 12 and job.created > 0


def test_legal_lifecycle_stamps_timestamps():
    job = Job.new(make_spec(), FP)
    job.advance("RUNNING")
    assert job.started is not None and job.finished is None
    job.advance("DONE")
    assert job.terminal and job.finished is not None


def test_running_can_requeue_for_retry_or_shard():
    job = Job.new(make_spec(), FP)
    job.advance("RUNNING")
    job.advance("QUEUED")
    assert job.state == "QUEUED"


@pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
def test_terminal_states_are_absorbing(terminal):
    job = Job.new(make_spec(), FP)
    job.advance(terminal)
    for state in JOB_STATES:
        with pytest.raises(JobStateError, match="illegal transition"):
            job.advance(state)


def test_advance_rejects_unknown_state():
    with pytest.raises(JobStateError, match="unknown job state"):
        Job.new(make_spec(), FP).advance("SLEEPING")


def test_queued_cannot_reenter_queued():
    with pytest.raises(JobStateError):
        Job.new(make_spec(), FP).advance("QUEUED")


# -- persistence --------------------------------------------------------------
def test_manifest_round_trip(tmp_path):
    job = Job.new(make_spec(max_segments=7, submitter="bob"), FP)
    job.advance("RUNNING")
    job.attempts, job.retries, job.shards = 3, 1, 2
    job.stop_reason, job.pending_paths = "segments", 4
    job.summary = {"paths_created": 9}
    job.metrics = {"cache_hits": 5}
    job.artifacts = {"checkpoint": "a" * 64}
    clone = Job.from_manifest(job.to_manifest())
    assert clone.to_manifest() == job.to_manifest()
    assert clone.spec == job.spec


def test_job_store_save_load_list(tmp_path):
    store = JobStore(ContentStore(tmp_path / "store"))
    first, second = Job.new(make_spec(), FP), Job.new(make_spec(), FP)
    second.created = first.created + 1
    store.save(first)
    store.save(second)
    assert store.load(first.job_id).job_id == first.job_id
    assert [j.job_id for j in store.list_jobs()] \
        == [first.job_id, second.job_id]


def test_job_store_unknown_job(tmp_path):
    store = JobStore(ContentStore(tmp_path / "store"))
    with pytest.raises(UnknownJob):
        store.load("nosuchjob0000")


def test_job_store_skips_foreign_manifests(tmp_path):
    content = ContentStore(tmp_path / "store")
    store = JobStore(content)
    content.put_manifest("job-rogue", {"kind": "other"})
    content.put_manifest("run-abc", {"kind": "run"})
    job = Job.new(make_spec(), FP)
    store.save(job)
    assert [j.job_id for j in store.list_jobs()] == [job.job_id]


def test_job_paths_live_under_store_root(tmp_path):
    store = JobStore(ContentStore(tmp_path / "store"))
    job_dir = store.job_dir("abc")
    assert store.checkpoint_path("abc").parent == job_dir
    assert store.trace_path("abc").parent == job_dir
    assert (tmp_path / "store") in job_dir.parents
