"""Unit tests for labeled symbolic bits (Fig. 4) and taint propagation."""

from repro.logic.symbol import SymBit, SymbolAllocator, nand_, nor_, xnor_
from repro.logic.value import Logic


def sym(name):
    return SymBit.symbol(name)


class TestConstants:
    def test_const_projection(self):
        assert SymBit.const(0).level is Logic.L0
        assert SymBit.const(1).level is Logic.L1

    def test_unknown_projection(self):
        assert SymBit.unknown().level is Logic.X

    def test_from_logic_normalizes_z(self):
        assert SymBit.from_logic(Logic.Z).level is Logic.X


class TestSameSymbolRecombination:
    """The Fig. 4 (left) cases: identified symbols resolve."""

    def test_xor_same_symbol_is_zero(self):
        a = sym("a")
        assert a.xor_(a).level is Logic.L0

    def test_xor_complement_is_one(self):
        a = sym("a")
        assert a.xor_(a.inv()).level is Logic.L1

    def test_and_complement_is_zero(self):
        a = sym("a")
        assert a.and_(a.inv()).level is Logic.L0

    def test_or_complement_is_one(self):
        a = sym("a")
        assert a.or_(a.inv()).level is Logic.L1

    def test_and_same_symbol_keeps_identity(self):
        a = sym("a")
        out = a.and_(a)
        assert out.sym == "a" and not out.neg

    def test_or_same_symbol_keeps_identity(self):
        a = sym("a")
        out = a.or_(a)
        assert out.sym == "a"

    def test_double_negation(self):
        a = sym("a")
        out = a.inv().inv()
        assert out.sym == "a" and not out.neg


class TestDistinctSymbolsDegrade:
    """Fig. 4 (right): distinct unknowns cannot resolve."""

    def test_xor_distinct_is_x(self):
        out = sym("a").xor_(sym("b"))
        assert out.level is Logic.X and out.sym is None

    def test_and_distinct_is_x(self):
        out = sym("a").and_(sym("b"))
        assert out.level is Logic.X and out.sym is None


class TestControllingValues:
    def test_and_zero_dominates(self):
        assert SymBit.const(0).and_(sym("a")).level is Logic.L0

    def test_or_one_dominates(self):
        assert SymBit.const(1).or_(sym("a")).level is Logic.L1

    def test_and_one_passes_symbol(self):
        out = SymBit.const(1).and_(sym("a"))
        assert out.sym == "a"

    def test_xor_with_zero_passes(self):
        out = sym("a").xor_(SymBit.const(0))
        assert out.sym == "a" and not out.neg

    def test_xor_with_one_inverts(self):
        out = sym("a").xor_(SymBit.const(1))
        assert out.sym == "a" and out.neg


class TestMux:
    def test_select_zero(self):
        out = SymBit.const(0).mux(sym("a"), sym("b"))
        assert out.sym == "a"

    def test_select_one(self):
        out = SymBit.const(1).mux(sym("a"), sym("b"))
        assert out.sym == "b"

    def test_x_select_agreeing_consts(self):
        out = sym("s").mux(SymBit.const(1), SymBit.const(1))
        assert out.level is Logic.L1

    def test_x_select_same_symbol_data(self):
        a = sym("a")
        out = sym("s").mux(a, a)
        assert out.sym == "a"

    def test_x_select_distinct_data(self):
        out = sym("s").mux(sym("a"), sym("b"))
        assert out.level is Logic.X and out.sym is None


class TestDerivedGates:
    def test_nand(self):
        assert nand_(SymBit.const(1), SymBit.const(1)).level is Logic.L0
        assert nand_(SymBit.const(0), sym("a")).level is Logic.L1

    def test_nor(self):
        assert nor_(SymBit.const(0), SymBit.const(0)).level is Logic.L1

    def test_xnor_same_symbol(self):
        a = sym("a")
        assert xnor_(a, a).level is Logic.L1


class TestTaint:
    def test_taint_unions_through_and(self):
        a = SymBit.symbol("a", taint=frozenset({"net"}))
        b = SymBit.symbol("b", taint=frozenset({"disk"}))
        assert a.and_(b).taint == {"net", "disk"}

    def test_taint_survives_controlling_value(self):
        secret = SymBit.symbol("k", taint=frozenset({"key"}))
        gated = SymBit.const(0).and_(secret)
        assert gated.level is Logic.L0
        assert "key" in gated.taint

    def test_taint_through_inversion(self):
        a = SymBit.symbol("a", taint=frozenset({"t"}))
        assert a.inv().taint == {"t"}

    def test_taint_through_xor_cancellation(self):
        a = SymBit.symbol("a", taint=frozenset({"t"}))
        out = a.xor_(a)
        assert out.level is Logic.L0
        assert out.taint == {"t"}

    def test_taint_through_mux(self):
        s = SymBit.symbol("s", taint=frozenset({"ctrl"}))
        out = s.mux(SymBit.const(0), SymBit.const(1))
        assert "ctrl" in out.taint


class TestAllocator:
    def test_fresh_names_unique(self):
        alloc = SymbolAllocator()
        names = {alloc.fresh().sym for _ in range(10)}
        assert len(names) == 10

    def test_fresh_vector(self):
        alloc = SymbolAllocator("m")
        vec = alloc.fresh_vector(4)
        assert len(vec) == 4
        assert all(b.sym.startswith("m") for b in vec)

    def test_prefix(self):
        alloc = SymbolAllocator("inp")
        assert alloc.fresh().sym == "inp0"
