"""Unit tests for the pluggable frontier scheduling strategies."""

import pytest

from repro.coanalysis.frontier import (FRONTIER_STRATEGIES,
                                       BreadthFirstFrontier,
                                       DepthFirstFrontier, FrontierStrategy,
                                       NoveltyFrontier, make_frontier)
from repro.coanalysis.kernel import PendingPath
from repro.sim.state import SimState

import numpy as np


def path(tag, depth=0, origin_pc=None):
    state = SimState(net_val=np.zeros(1, dtype=bool),
                     net_known=np.zeros(1, dtype=bool),
                     memories={}, cycle=tag, pc=origin_pc)
    return PendingPath(state, depth=depth, origin_pc=origin_pc)


def tags(paths):
    return [p.state.cycle for p in paths]


class TestMakeFrontier:
    def test_none_gives_dfs(self):
        assert isinstance(make_frontier(None), DepthFirstFrontier)

    def test_name_lookup(self):
        for name, cls in FRONTIER_STRATEGIES.items():
            assert isinstance(make_frontier(name), cls)

    def test_instance_passthrough(self):
        frontier = BreadthFirstFrontier()
        assert make_frontier(frontier) is frontier

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown frontier strategy"):
            make_frontier("random")

    def test_registry_names_match_classes(self):
        for name, cls in FRONTIER_STRATEGIES.items():
            assert cls.name == name


class TestDepthFirst:
    def test_lifo_order(self):
        f = DepthFirstFrontier()
        for tag in (1, 2, 3):
            f.push(path(tag))
        assert tags(f.pop_batch(None)) == [3, 2, 1]
        assert len(f) == 0

    def test_partial_pop(self):
        f = DepthFirstFrontier()
        for tag in (1, 2, 3):
            f.push(path(tag))
        assert tags(f.pop_batch(2)) == [3, 2]
        assert len(f) == 1

    def test_requeue_restores_schedule(self):
        f = DepthFirstFrontier()
        for tag in (1, 2, 3):
            f.push(path(tag))
        batch = f.pop_batch(2)
        f.requeue(batch)
        assert tags(f.pop_batch(None)) == [3, 2, 1]


class TestBreadthFirst:
    def test_fifo_order(self):
        f = BreadthFirstFrontier()
        for tag in (1, 2, 3):
            f.push(path(tag))
        assert tags(f.pop_batch(None)) == [1, 2, 3]

    def test_requeue_restores_schedule(self):
        f = BreadthFirstFrontier()
        for tag in (1, 2, 3):
            f.push(path(tag))
        batch = f.pop_batch(2)
        f.requeue(batch)
        assert tags(f.pop_batch(None)) == [1, 2, 3]


class TestNovelty:
    def test_prefers_rare_origin_pcs(self):
        f = NoveltyFrontier()
        for _ in range(3):
            f.observe_halt(100)          # pc 100 is well-trodden
        f.push(path(1, depth=1, origin_pc=100))
        f.push(path(2, depth=5, origin_pc=200))   # never seen: novel
        assert tags(f.pop_batch(None)) == [2, 1]

    def test_ties_break_by_depth_then_insertion(self):
        f = NoveltyFrontier()
        f.push(path(1, depth=3, origin_pc=7))
        f.push(path(2, depth=1, origin_pc=7))
        f.push(path(3, depth=1, origin_pc=7))
        assert tags(f.pop_batch(None)) == [2, 3, 1]

    def test_requeue_keeps_interrupted_schedule(self):
        f = NoveltyFrontier()
        for tag in (1, 2, 3):
            f.push(path(tag, origin_pc=7))
        batch = f.pop_batch(2)
        f.requeue(batch)
        assert tags(f.pop_batch(None)) == [1, 2, 3]

    def test_meta_roundtrip(self):
        f = NoveltyFrontier()
        f.observe_halt(7)
        f.observe_halt(7)
        g = NoveltyFrontier()
        g.restore_meta(f.snapshot_meta())
        g.push(path(1, origin_pc=7))
        g.push(path(2, origin_pc=9))
        assert tags(g.pop_batch(None)) == [2, 1]


class TestEntriesRoundTrip:
    """entries() must list paths so that re-push reproduces the order."""

    @pytest.mark.parametrize("name", sorted(FRONTIER_STRATEGIES))
    def test_rebuild_preserves_schedule(self, name):
        f = make_frontier(name)
        for tag in (1, 2, 3, 4):
            f.push(path(tag, depth=tag % 2, origin_pc=tag % 3))
        expected = tags(f.pop_batch(None))

        g = make_frontier(name)
        h = make_frontier(name)
        for tag in (1, 2, 3, 4):
            g.push(path(tag, depth=tag % 2, origin_pc=tag % 3))
        for entry in g.entries():
            h.push(entry)
        assert tags(h.pop_batch(None)) == expected
