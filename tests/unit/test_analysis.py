"""Unit tests for the power / peak-power analyses."""

import numpy as np
import pytest

from repro.analysis import (PowerMeter, analyze_peak_power, compare_power,
                            concrete_peak, leakage_power,
                            measure_concrete_run)
from repro.analysis.power import SWITCH_ENERGY
from repro.bespoke import generate_bespoke
from repro.logic import Logic
from repro.netlist.cells import LIBRARY
from repro.rtl import Design
from repro.sim import CompiledNetlist, CycleSim
from repro.workloads import WORKLOADS, build_target


def counter_netlist(width=4):
    d = Design("cnt")
    en = d.input("en")
    r = d.reg(width, "c", reset=True)
    s, _ = r.q.add(d.const(1, width))
    r.drive(s, enable=en)
    d.output("y", r.q)
    return d.finalize()


class TestPowerMeter:
    def test_every_cell_kind_has_energy(self):
        assert set(SWITCH_ENERGY) == set(LIBRARY)

    def test_idle_circuit_no_dynamic_energy(self):
        nl = counter_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("rst", Logic.L1)
        sim.set_input("en", Logic.L0)
        sim.step()
        sim.set_input("rst", Logic.L0)
        sim.settle()
        meter = PowerMeter(nl)
        for _ in range(5):
            sim.step()
            sim.settle()
            meter.observe(sim)
        assert meter.dynamic_energy() == 0.0
        assert meter.total_toggles == 0
        report = meter.report("cnt")
        assert report.clock_energy > 0         # clock always burns
        assert report.leakage_energy > 0

    def test_active_circuit_burns_energy(self):
        nl = counter_netlist()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("rst", Logic.L1)
        sim.set_input("en", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        sim.settle()
        meter = PowerMeter(nl)
        for _ in range(8):
            sim.step()
            sim.settle()
            meter.observe(sim)
        assert meter.dynamic_energy() > 0
        assert meter.cycles == 7

    def test_leakage_scales_with_area(self):
        small = counter_netlist(2)
        big = counter_netlist(8)
        assert leakage_power(big) > leakage_power(small)

    def test_report_totals_consistent(self):
        nl = counter_netlist()
        meter = PowerMeter(nl)
        report = meter.report("x")
        assert report.total_energy == pytest.approx(
            report.dynamic_energy + report.clock_energy
            + report.leakage_energy)


class TestConcreteMeasurement:
    @pytest.fixture(scope="class")
    def target(self):
        return build_target("dr5", WORKLOADS["mult"])

    def test_measure_concrete_run(self, target):
        report = measure_concrete_run(target, WORKLOADS["mult"].cases[0])
        assert report.cycles > 0
        assert report.toggles > 0
        assert report.average_power > 0

    def test_bespoke_saves_power(self, target):
        from repro.reporting.runner import run_one
        result = run_one("dr5", "mult")
        bespoke_nl = generate_bespoke(target.netlist, result.profile)
        bespoke = build_target("dr5", WORKLOADS["mult"],
                               netlist=bespoke_nl)
        savings = compare_power(target, bespoke,
                                WORKLOADS["mult"].cases[0])
        assert savings.leakage_saving_percent > 0
        assert savings.energy_saving_percent > 0


class TestPeakPower:
    @pytest.fixture(scope="class")
    def peak(self):
        target = build_target("omsp430", WORKLOADS["mult"])
        return target, analyze_peak_power(target, application="mult")

    def test_peak_is_positive(self, peak):
        _, result = peak
        assert result.peak_bound > 0
        assert result.peak_cycle >= 0

    def test_concrete_never_exceeds_bound(self, peak):
        """The soundness property of the peak bound (prior work [5])."""
        target, result = peak
        for case in WORKLOADS["mult"].cases:
            measured = concrete_peak(target, case)
            assert measured <= result.peak_bound + 1e-9

    def test_per_path_peaks_recorded(self, peak):
        _, result = peak
        assert result.per_path_peaks
        assert max(result.per_path_peaks.values()) == \
            pytest.approx(result.peak_bound)

    def test_analysis_attached(self, peak):
        _, result = peak
        assert result.analysis is not None
        assert result.analysis.paths_created >= 1
