"""Unit tests for the content-addressed artifact store (repro.store)."""

import json
import pickle

import numpy as np
import pytest

from repro.csm.constraints import (ConstraintSet, NetConstraint,
                                   parse_constraints)
from repro.csm.strategies import Clustered, ExactSet, UberConservative
from repro.netlist import Netlist, parse_verilog, write_verilog
from repro.store import (ContentStore, SegmentResultCache, StoreCorrupt,
                         StoreError, digest_parts, fingerprint_csm,
                         fingerprint_netlist, fingerprint_workload,
                         run_fingerprint)


def small_netlist(name="t", swap=False):
    """A tiny two-gate circuit; ``swap`` reverses construction order."""
    nl = Netlist(name)
    a = nl.add_net("a")
    b = nl.add_net("b")
    nl.mark_input(a)
    nl.mark_input(b)
    x = nl.add_net("x")
    y = nl.add_net("y")
    if swap:
        nl.add_gate("g_not", "NOT", [x], y)
        # NOT's input has no driver yet: add AND after; x gets its
        # driver from the AND below, so declare gates in swapped order
    nl.add_gate("g_and", "AND", [a, b], x)
    if not swap:
        nl.add_gate("g_not", "NOT", [x], y)
    nl.mark_output(y)
    return nl


class TestDigestParts:
    def test_deterministic(self):
        assert digest_parts("a", "b") == digest_parts("a", "b")

    def test_no_concatenation_ambiguity(self):
        assert digest_parts("ab", "c") != digest_parts("a", "bc")

    def test_bytes_and_str_equivalent(self):
        assert digest_parts("ab") == digest_parts(b"ab")


class TestNetlistFingerprint:
    def test_stable_across_identical_builds(self):
        assert fingerprint_netlist(small_netlist()) == \
            fingerprint_netlist(small_netlist())

    def test_construction_order_independent(self):
        # different gate/net declaration order, same circuit
        assert fingerprint_netlist(small_netlist()) == \
            fingerprint_netlist(small_netlist(swap=True))

    def test_clone_preserves_fingerprint(self):
        nl = small_netlist()
        assert fingerprint_netlist(nl) == fingerprint_netlist(nl.clone())

    def test_verilog_round_trip_preserves_fingerprint(self):
        nl = small_netlist()
        back = parse_verilog(write_verilog(nl))
        assert fingerprint_netlist(nl) == fingerprint_netlist(back)

    def test_gate_instance_names_do_not_matter(self):
        nl = small_netlist()
        renamed = Netlist("t")
        for net in nl.nets:
            renamed.add_net(net.name)
        for idx in nl.inputs:
            renamed.mark_input(idx)
        for g in nl.gates:
            renamed.add_gate(f"u{g.index}", g.kind, g.inputs, g.output)
        for idx in nl.outputs:
            renamed.mark_output(idx)
        assert fingerprint_netlist(nl) == fingerprint_netlist(renamed)

    def test_kind_change_changes_fingerprint(self):
        nl = small_netlist()
        mutated = Netlist("t")
        for net in nl.nets:
            mutated.add_net(net.name)
        for idx in nl.inputs:
            mutated.mark_input(idx)
        for g in nl.gates:
            kind = "OR" if g.kind == "AND" else g.kind
            mutated.add_gate(g.name, kind, g.inputs, g.output)
        for idx in nl.outputs:
            mutated.mark_output(idx)
        assert fingerprint_netlist(nl) != fingerprint_netlist(mutated)

    def test_connection_change_changes_fingerprint(self):
        nl = small_netlist()
        mutated = Netlist("t")
        for net in nl.nets:
            mutated.add_net(net.name)
        for idx in nl.inputs:
            mutated.mark_input(idx)
        for g in nl.gates:
            inputs = g.inputs
            if g.kind == "AND":
                inputs = (inputs[0], inputs[0])     # rewire b -> a
            mutated.add_gate(g.name, g.kind, inputs, g.output)
        for idx in nl.outputs:
            mutated.mark_output(idx)
        assert fingerprint_netlist(nl) != fingerprint_netlist(mutated)

    def test_added_gate_changes_fingerprint(self):
        nl = small_netlist()
        grown = small_netlist()
        z = grown.add_net("z")
        grown.add_gate("g_extra", "NOT", [grown.net_index("y")], z)
        grown.mark_output(z)
        assert fingerprint_netlist(nl) != fingerprint_netlist(grown)

    def test_io_marking_changes_fingerprint(self):
        nl = small_netlist()
        other = small_netlist()
        other.mark_output(other.net_index("x"))     # expose an internal net
        assert fingerprint_netlist(nl) != fingerprint_netlist(other)


class TestCsmFingerprint:
    def test_none_is_stable(self):
        assert fingerprint_csm() == fingerprint_csm(None, None)

    def test_strategy_parameters_distinguish(self):
        assert fingerprint_csm(Clustered(k=2)) != \
            fingerprint_csm(Clustered(k=4))
        assert fingerprint_csm(UberConservative()) != \
            fingerprint_csm(ExactSet())

    def test_constraints_distinguish(self):
        positions = {"mode": 3}
        empty = ConstraintSet([], positions)
        pinned = ConstraintSet([NetConstraint("mode", 0)], positions)
        base = fingerprint_csm(UberConservative(), empty)
        assert base != fingerprint_csm(UberConservative(), pinned)

    def test_constraint_text_order_does_not_matter(self):
        positions = {"a": 0, "b": 1}
        ab = ConstraintSet(parse_constraints("net a 1\nnet b 0"),
                           positions)
        ba = ConstraintSet(parse_constraints("net b 0\nnet a 1"),
                           positions)
        assert fingerprint_csm(UberConservative(), ab) == \
            fingerprint_csm(UberConservative(), ba)


class TestWorkloadFingerprint:
    class FakeProgram:
        def __init__(self, words, word_width=16):
            self.words = list(words)
            self.word_width = word_width

    def test_words_matter(self):
        a = fingerprint_workload("d", self.FakeProgram([1, 2, 3]))
        b = fingerprint_workload("d", self.FakeProgram([1, 2, 4]))
        assert a != b

    def test_data_init_dict_order_does_not_matter(self):
        p = self.FakeProgram([1])
        a = fingerprint_workload("d", p, data_init={1: 9, 2: 8})
        b = fingerprint_workload("d", p, data_init={2: 8, 1: 9})
        assert a == b

    def test_symbolic_ranges_matter(self):
        p = self.FakeProgram([1])
        assert fingerprint_workload("d", p, symbolic_ranges=[(0, 4)]) != \
            fingerprint_workload("d", p, symbolic_ranges=[(0, 8)])


class TestRunFingerprint:
    def test_component_breakdown_and_sensitivity(self):
        nl = small_netlist()
        fp = run_fingerprint(netlist=nl, strategy=UberConservative(),
                             design="d", application="app")
        assert fp.components["netlist"] == fingerprint_netlist(nl)
        assert str(fp) == fp.digest
        fp2 = run_fingerprint(netlist=nl, strategy=UberConservative(),
                              design="d", application="app",
                              engine="batch")
        assert fp.digest != fp2.digest
        fp3 = run_fingerprint(netlist=nl, strategy=Clustered(k=2),
                              design="d", application="app")
        assert fp.digest != fp3.digest


class TestContentStore:
    def test_put_get_roundtrip_and_dedupe(self, tmp_path):
        store = ContentStore(tmp_path)
        d1 = store.put_bytes(b"hello")
        d2 = store.put_bytes(b"hello")
        assert d1 == d2
        assert store.has(d1)
        assert store.get_bytes(d1) == b"hello"

    def test_get_missing_raises(self, tmp_path):
        store = ContentStore(tmp_path)
        with pytest.raises(StoreError):
            store.get_bytes("0" * 64)

    def test_corrupt_blob_detected(self, tmp_path):
        store = ContentStore(tmp_path)
        digest = store.put_bytes(b"payload")
        store.object_path(digest).write_bytes(b"tampered")
        with pytest.raises(StoreCorrupt):
            store.get_bytes(digest)

    def test_put_repairs_corrupt_blob(self, tmp_path):
        # re-putting identical content over a bit-rotted object must
        # rewrite it, or evict-and-rerun healing never converges
        store = ContentStore(tmp_path)
        digest = store.put_bytes(b"payload")
        store.object_path(digest).write_bytes(b"tampered")
        assert store.put_bytes(b"payload") == digest
        assert store.get_bytes(digest) == b"payload"
        assert store.verify()["ok"]

    def test_bad_manifest_names_rejected(self, tmp_path):
        store = ContentStore(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(StoreError):
                store.manifest_path(bad)

    def test_manifest_roundtrip(self, tmp_path):
        store = ContentStore(tmp_path)
        store.put_manifest("run-x", {"kind": "run", "n": 1})
        assert store.get_manifest("run-x") == {"kind": "run", "n": 1}
        assert store.get_manifest("absent") is None
        assert store.manifest_names() == ["run-x"]

    def test_corrupt_manifest_raises(self, tmp_path):
        store = ContentStore(tmp_path)
        store.put_manifest("bad", {"kind": "x"})
        store.manifest_path("bad").write_text("{truncated")
        with pytest.raises(StoreCorrupt):
            store.get_manifest("bad")

    def test_gc_keeps_referenced_blobs(self, tmp_path):
        store = ContentStore(tmp_path)
        live = store.put_bytes(b"live")
        store.put_bytes(b"orphan")
        store.put_manifest("m", {"kind": "t", "blob": live})
        report = store.gc()
        assert report == {"kept": 1, "removed": 1,
                          "freed_bytes": len(b"orphan")}
        assert store.has(live)

    def test_verify_flags_problems(self, tmp_path):
        store = ContentStore(tmp_path)
        good = store.put_bytes(b"good")
        store.put_manifest("m", {"kind": "t", "blob": good})
        assert store.verify()["ok"]
        bad = store.put_bytes(b"soon-corrupt")
        store.object_path(bad).write_bytes(b"flip")
        store.put_manifest("dangling", {"kind": "t", "blob": "1" * 64})
        report = store.verify()
        assert not report["ok"]
        assert bad in report["corrupt_objects"]
        assert any("dangling" in item for item in report["missing_blobs"])

    def test_verify_ignores_fingerprint_cross_references(self, tmp_path):
        store = ContentStore(tmp_path)
        fp = "a" * 64
        store.put_manifest(f"run-{fp}", {
            "kind": "run", "fingerprint": fp,
            "components": {"netlist": "b" * 64},
            "run": fp})
        assert store.verify()["ok"]

    def test_stats(self, tmp_path):
        store = ContentStore(tmp_path)
        store.put_bytes(b"x" * 10)
        store.put_manifest("m1", {"kind": "run"})
        store.put_manifest("m2", {"kind": "segments"})
        stats = store.stats()
        assert stats["objects"] == 1
        assert stats["object_bytes"] == 10
        assert stats["manifest_kinds"] == {"run": 1, "segments": 1}


def fake_segment(outcome="done", cycles=3, activity=True):
    from repro.coanalysis.kernel import SegmentResult
    planes = None
    if activity:
        planes = (np.zeros(4, dtype=bool), np.ones(4, dtype=bool),
                  np.zeros(4, dtype=bool), np.ones(4, dtype=bool))
    return SegmentResult(outcome, 7, cycles, None, None, planes)


def fake_state(cycle=0, pc=7):
    from repro.sim.state import SimState
    return SimState(net_val=np.zeros(4, dtype=bool),
                    net_known=np.ones(4, dtype=bool),
                    memories={}, cycle=cycle, pc=pc)


class TestSegmentResultCache:
    def test_roundtrip(self, tmp_path):
        store = ContentStore(tmp_path)
        cache = SegmentResultCache(store, "f" * 64)
        key = cache.key(fake_state(), None)
        assert cache.lookup(key) is None
        assert cache.store(key, fake_segment())
        cache.flush()

        fresh = SegmentResultCache(store, "f" * 64)
        hit = fresh.lookup(key)
        assert hit is not None
        assert hit.outcome == "done"
        assert hit.cycles == 3
        assert fresh.hits == 1 and fresh.misses == 0

    def test_key_depends_on_state_and_decision(self, tmp_path):
        cache = SegmentResultCache(ContentStore(tmp_path), "f" * 64)
        base = cache.key(fake_state(), None)
        assert cache.key(fake_state(), 1) != base
        assert cache.key(fake_state(cycle=5), None) != base
        other = SegmentResultCache(ContentStore(tmp_path), "e" * 64)
        assert other.key(fake_state(), None) != base

    def test_uncacheable_outcomes_rejected(self, tmp_path):
        cache = SegmentResultCache(ContentStore(tmp_path), "f" * 64)
        key = cache.key(fake_state(), None)
        assert not cache.store(key, fake_segment(outcome="quarantined"))
        assert not cache.store(key, fake_segment(activity=False))

    def test_corrupt_record_self_heals(self, tmp_path):
        store = ContentStore(tmp_path)
        cache = SegmentResultCache(store, "f" * 64)
        key = cache.key(fake_state(), None)
        cache.store(key, fake_segment())
        cache.flush()
        digest = cache._index[key]
        store.object_path(digest).write_bytes(b"garbage")

        fresh = SegmentResultCache(store, "f" * 64)
        assert fresh.lookup(key) is None       # corrupt -> miss + evict
        assert fresh.misses == 1
        fresh.flush()
        healed = SegmentResultCache(store, "f" * 64)
        assert len(healed) == 0

    def test_corrupt_manifest_starts_fresh(self, tmp_path):
        store = ContentStore(tmp_path)
        cache = SegmentResultCache(store, "f" * 64)
        cache.store(cache.key(fake_state(), None), fake_segment())
        cache.flush()
        store.manifest_path(cache.manifest_name).write_text("{nope")
        fresh = SegmentResultCache(store, "f" * 64)
        assert len(fresh) == 0

    def test_flush_only_when_dirty(self, tmp_path):
        store = ContentStore(tmp_path)
        cache = SegmentResultCache(store, "f" * 64)
        cache.flush()
        assert store.get_manifest(cache.manifest_name) is None
        cache.store(cache.key(fake_state(), None), fake_segment())
        cache.flush()
        manifest = store.get_manifest(cache.manifest_name)
        assert manifest["kind"] == "segments"
        assert len(manifest["segments"]) == 1
