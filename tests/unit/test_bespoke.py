"""Unit tests for bespoke pruning and re-synthesis."""

import numpy as np
import pytest

from repro.bespoke import (area_report, generate_bespoke, prune_report,
                           prune_unexercisable, resynthesize)
from repro.logic import Logic, LVec
from repro.netlist import Netlist
from repro.rtl import Design, mux
from repro.sim import CompiledNetlist, CycleSim
from repro.sim.activity import ToggleProfile


def profile_for(netlist, exercised_names, const_values=None):
    """Hand-build a ToggleProfile: listed nets exercised, rest constant."""
    p = ToggleProfile.empty(netlist)
    for name in exercised_names:
        p.toggled[netlist.net_index(name)] = True
    p.const_known[:] = True
    if const_values:
        for name, v in const_values.items():
            p.const_val[netlist.net_index(name)] = bool(v)
    return p


def two_path_netlist():
    """y = sel ? a : b, with separate AND cones for each path."""
    d = Design("t")
    a = d.input("a")
    b = d.input("b")
    sel = d.input("sel")
    path_a = d.name_sig("pa", a & d.const(1, 1))
    path_b = d.name_sig("pb", b & d.const(1, 1))
    d.output("y", mux(sel, path_b, path_a))
    return d.finalize()


class TestPrune:
    def test_unexercised_gates_become_ties(self):
        nl = two_path_netlist()
        # only the a-path was exercised; pb stuck at 0
        prof = profile_for(nl, ["a", "pa", "y", "sel"],
                           const_values={"pb": 0})
        pruned = prune_unexercisable(nl, prof)
        kinds = {g.name: g.kind for g in pruned.gates}
        assert kinds["pb_nbuf0"] == "TIE0"
        assert pruned.gate_count() == nl.gate_count()  # same size pre-fold

    def test_constant_one(self):
        nl = two_path_netlist()
        prof = profile_for(nl, ["a", "pa", "y", "sel"],
                           const_values={"pb": 1})
        pruned = prune_unexercisable(nl, prof)
        kinds = {g.name: g.kind for g in pruned.gates}
        assert kinds["pb_nbuf0"] == "TIE1"

    def test_protect_set(self):
        nl = two_path_netlist()
        prof = profile_for(nl, ["a", "pa", "y", "sel"])
        keep = nl.gate_index("pb_nbuf0")
        pruned = prune_unexercisable(nl, prof, protect={keep})
        kinds = {g.name: g.kind for g in pruned.gates}
        assert kinds["pb_nbuf0"] == "BUF"

    def test_profile_netlist_mismatch(self):
        nl = two_path_netlist()
        other = Netlist("other")
        prof = ToggleProfile.empty(other)
        with pytest.raises(ValueError):
            prune_unexercisable(nl, prof)

    def test_prune_report(self):
        nl = two_path_netlist()
        prof = profile_for(nl, ["a", "pa", "y", "sel"])
        rep = prune_report(nl, prof)
        assert rep["total_gates"] == nl.gate_count()
        assert rep["prunable_gates"] > 0


class TestResynth:
    def build(self, fn, n_inputs, widths=None):
        d = Design("r")
        widths = widths or [1] * n_inputs
        ins = [d.input(f"i{k}", widths[k]) for k in range(n_inputs)]
        d.output("y", fn(d, *ins))
        return d.finalize()

    def equivalent(self, before, after, n_inputs, samples):
        simb = CycleSim(CompiledNetlist(before))
        sima = CycleSim(CompiledNetlist(after))
        for sample in samples:
            for k, v in enumerate(sample):
                simb.set_input(f"i{k}", v)
                if after.has_net(f"i{k}") or after.has_net(f"i{k}[0]"):
                    sima.set_input(f"i{k}", v)
            simb.settle()
            sima.settle()
            yb = simb.get_net(before.net_index("y"))
            ya = sima.get_net(after.net_index("y"))
            assert yb is ya, sample

    def test_and_with_tie1_folds_to_buf(self):
        nl = self.build(lambda d, a: a & d.const(1, 1), 1)
        out = resynthesize(nl)
        assert out.gate_count() < nl.gate_count()
        self.equivalent(nl, out, 1, [(Logic.L0,), (Logic.L1,)])

    def test_and_with_tie0_folds_to_constant(self):
        nl = self.build(lambda d, a: a & d.const(0, 1), 1)
        out = resynthesize(nl)
        kinds = [g.kind for g in out.gates]
        assert "AND" not in kinds
        self.equivalent(nl, out, 1, [(Logic.L0,), (Logic.L1,)])

    def test_xor_with_tie1_becomes_not(self):
        nl = self.build(lambda d, a: a ^ d.const(1, 1), 1)
        out = resynthesize(nl)
        self.equivalent(nl, out, 1, [(Logic.L0,), (Logic.L1,)])
        assert any(g.kind == "NOT" for g in out.gates)

    def test_mux_const_select(self):
        def fn(d, a, b):
            return mux(d.const(1, 1), a, b)
        nl = self.build(fn, 2)
        out = resynthesize(nl)
        assert all(g.kind != "MUX2" for g in out.gates)
        self.equivalent(nl, out, 2,
                        [(Logic.L0, Logic.L1), (Logic.L1, Logic.L0)])

    def test_dead_logic_removed(self):
        d = Design("dead")
        a = d.input("a")
        _unused = a & ~a          # drives nothing
        d.output("y", a)
        nl = d.finalize()
        out = resynthesize(nl)
        assert out.gate_count() < nl.gate_count()

    def test_duplicate_ties_deduped(self):
        nl = Netlist("ties")
        a = nl.add_net("a")
        nl.mark_input(a)
        t1 = nl.add_net("t1")
        t2 = nl.add_net("t2")
        y1 = nl.add_net("y1")
        y2 = nl.add_net("y2")
        nl.add_gate("c1", "TIE1", [], t1)
        nl.add_gate("c2", "TIE1", [], t2)
        nl.add_gate("g1", "AND", [a, t1], y1)
        nl.add_gate("g2", "AND", [a, t2], y2)
        nl.mark_output(y1)
        nl.mark_output(y2)
        out = resynthesize(nl)
        assert sum(1 for g in out.gates if g.kind == "TIE1") <= 1

    def test_flops_not_folded(self):
        d = Design("seq")
        r = d.reg(1, "r", reset=True)
        r.drive(d.const(0, 1))
        d.output("y", r.q)
        nl = d.finalize()
        out = resynthesize(nl)
        assert any(g.is_sequential for g in out.gates)

    def test_area_report(self):
        nl = self.build(lambda d, a: a & d.const(0, 1), 1)
        out = resynthesize(nl)
        rep = area_report(nl, out)
        assert rep["gates_after"] <= rep["gates_before"]
        assert 0 <= rep["gate_reduction_percent"] <= 100


class TestGenerateBespoke:
    def test_end_to_end_shrinks_and_preserves(self):
        nl = two_path_netlist()
        # sel stuck at 0 -> y always follows the a path
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("sel", Logic.L0)
        sim.set_input("a", Logic.L0)
        sim.set_input("b", Logic.L0)
        sim.settle()
        sim.arm_activity()
        for va in (Logic.L1, Logic.L0, Logic.L1):
            sim.set_input("a", va)
            sim.settle()
            sim.record_activity_now()
        prof = ToggleProfile.empty(nl)
        prof.absorb(sim.toggled, sim.ever_x, sim.val & sim.known,
                    sim.known)
        bespoke = generate_bespoke(nl, prof)
        assert bespoke.gate_count() < nl.gate_count()
        bsim = CycleSim(CompiledNetlist(bespoke))
        for va in (Logic.L0, Logic.L1):
            sim.set_input("a", va)
            bsim.set_input("a", va)
            if bespoke.has_net("sel"):
                bsim.set_input("sel", Logic.L0)
            sim.settle()
            bsim.settle()
            assert sim.get_net(nl.net_index("y")) is \
                bsim.get_net(bespoke.net_index("y"))
