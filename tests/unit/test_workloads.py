"""Unit tests for the workload catalog and target construction."""

import pytest

from repro.csm.constraints import parse_constraints
from repro.isa import ASSEMBLERS
from repro.workloads import (INPUT_BASE, OUT_BASE, TABLE_BASE, WORKLOADS,
                             WORKLOAD_ORDER, assemble_workload,
                             build_target, built_core)

DESIGNS = ["omsp430", "bm32", "dr5"]


class TestCatalog:
    def test_paper_table1_set(self):
        assert WORKLOAD_ORDER == ["Div", "inSort", "binSearch", "tHold",
                                  "mult", "tea8"]
        assert set(WORKLOADS) == set(WORKLOAD_ORDER)

    def test_every_workload_has_all_isas(self):
        for w in WORKLOADS.values():
            assert set(w.sources) == set(DESIGNS), w.name

    def test_every_workload_has_cases(self):
        for w in WORKLOADS.values():
            assert w.cases, w.name
            for case in w.cases:
                for addr in case:
                    assert INPUT_BASE <= addr < INPUT_BASE + w.input_len

    def test_missing_isa_raises(self):
        with pytest.raises(KeyError):
            WORKLOADS["Div"].source_for("z80")

    def test_symbolic_ranges_cover_inputs(self):
        for w in WORKLOADS.values():
            (start, end), = w.symbolic_ranges
            assert start == INPUT_BASE
            assert end - start == w.input_len

    def test_case_inputs_ordering(self):
        w = WORKLOADS["Div"]
        case = {INPUT_BASE: 17, INPUT_BASE + 1: 5}
        assert w.case_inputs(case) == [17, 5]

    def test_references_are_pure(self):
        w = WORKLOADS["tea8"]
        case = w.cases[0]
        assert w.expected(case, 16) == w.expected(case, 16)
        assert w.expected(case, 16) != w.expected(case, 32)

    def test_binsearch_table_is_sorted_and_loaded(self):
        w = WORKLOADS["binSearch"]
        values = [w.data_init[TABLE_BASE + i] for i in range(8)]
        assert values == sorted(values)

    def test_insort_constraints_parse(self):
        w = WORKLOADS["inSort"]
        for design in DESIGNS:
            parsed = parse_constraints(w.constraints[design])
            assert len(parsed) > 10    # upper bits of two registers


class TestAssembly:
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("wname", WORKLOAD_ORDER)
    def test_all_programs_assemble(self, design, wname):
        prog = assemble_workload(design, WORKLOADS[wname])
        assert prog.size > 0
        assert prog.halt_address < prog.size
        width = ASSEMBLERS[design].word_width
        assert all(0 <= w < (1 << width) for w in prog.words)

    @pytest.mark.parametrize("design", DESIGNS)
    def test_programs_fit_program_memory(self, design):
        _, meta = built_core(design)
        for wname in WORKLOAD_ORDER:
            prog = assemble_workload(design, WORKLOADS[wname])
            assert prog.size <= (1 << meta.pc_width), (design, wname)


class TestTargetConstruction:
    def test_build_target_binds_ports(self):
        t = build_target("omsp430", WORKLOADS["Div"])
        assert t.name == "omsp430"
        assert t.monitored_nets
        assert t.branch_point_net is not None
        assert t.branch_force_net is not None
        assert len(t.pc_nets) == t.meta.pc_width

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            built_core("z80")

    def test_core_memoized(self):
        a, _ = built_core("dr5")
        b, _ = built_core("dr5")
        assert a is b

    def test_word_width_mismatch_rejected(self):
        from repro.processors import CoreTarget
        nl, meta = built_core("omsp430")
        prog32 = assemble_workload("bm32", WORKLOADS["Div"])
        with pytest.raises(ValueError):
            CoreTarget(nl, meta, prog32)

    def test_rom_contains_program(self):
        t = build_target("dr5", WORKLOADS["mult"])
        for addr, word in enumerate(t.program.words):
            assert t.rom.read_concrete(addr).to_int() == word

    def test_symbolic_inputs_land_in_dmem(self):
        t = build_target("omsp430", WORKLOADS["tHold"])
        sim = t.make_sim()
        t.apply_symbolic_inputs(sim)
        dmem = sim.memories["dmem"]
        w = WORKLOADS["tHold"]
        for i in range(w.input_len):
            assert dmem.read_concrete(INPUT_BASE + i).has_x
        assert not dmem.read_concrete(OUT_BASE).has_x

    def test_concrete_inputs_override(self):
        t = build_target("omsp430", WORKLOADS["Div"])
        sim = t.make_sim()
        t.apply_concrete_inputs(sim, {INPUT_BASE: 42})
        assert t.read_dmem_int(sim, INPUT_BASE) == 42

    def test_state_net_positions_cover_monitored(self):
        t = build_target("bm32", WORKLOADS["Div"])
        positions = t.state_net_positions()
        # every flop q net should be addressable for constraints
        assert "r5[0]" in positions
        assert "pc_r[0]" in positions
