"""Unit tests for four-valued bit-vectors."""

import pytest

from repro.logic.value import Logic
from repro.logic.vector import LVec, pack_vectors


class TestConstruction:
    def test_from_int(self):
        v = LVec.from_int(5, 4)
        assert str(v) == "0101"
        assert v.to_int() == 5

    def test_from_int_wraps(self):
        assert LVec.from_int(-1, 4).to_int() == 15
        assert LVec.from_int(16, 4).to_int() == 0

    def test_from_str_msb_first(self):
        v = LVec.from_str("10x1")
        assert v[0] is Logic.L1
        assert v[1] is Logic.X
        assert v[3] is Logic.L1

    def test_unknown(self):
        v = LVec.unknown(8)
        assert v.count_x() == 8
        assert not v.is_known

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            LVec.from_int(0, 0)


class TestQueries:
    def test_to_int_raises_on_x(self):
        with pytest.raises(ValueError):
            LVec.from_str("1x0").to_int()

    def test_to_int_or(self):
        assert LVec.from_str("1x0").to_int_or(-1) == -1
        assert LVec.from_int(3, 4).to_int_or(-1) == 3

    def test_has_x(self):
        assert LVec.from_str("1x").has_x
        assert not LVec.from_int(2, 2).has_x


class TestStructure:
    def test_slice(self):
        v = LVec.from_int(0b1100, 4)
        assert v[0:2].to_int() == 0
        assert v[2:4].to_int() == 3

    def test_concat(self):
        low = LVec.from_int(0b01, 2)
        high = LVec.from_int(0b10, 2)
        assert low.concat(high).to_int() == 0b1001

    def test_zext_sext(self):
        v = LVec.from_int(0b10, 2)
        assert v.zext(4).to_int() == 0b0010
        assert v.sext(4).to_int() == 0b1110

    def test_trunc(self):
        assert LVec.from_int(0b1011, 4).trunc(2).to_int() == 0b11

    def test_replace(self):
        v = LVec.from_int(0, 4).replace(2, Logic.L1)
        assert v.to_int() == 4

    def test_pack_vectors(self):
        packed = pack_vectors([LVec.from_int(1, 2), LVec.from_int(2, 2)])
        assert packed.to_int() == 0b1001


class TestBitwise:
    def test_and_or_xor_not(self):
        a = LVec.from_int(0b1100, 4)
        b = LVec.from_int(0b1010, 4)
        assert (a & b).to_int() == 0b1000
        assert (a | b).to_int() == 0b1110
        assert (a ^ b).to_int() == 0b0110
        assert (~a).to_int() == 0b0011

    def test_x_with_controlling(self):
        a = LVec.from_str("x0x1")
        zeros = LVec.zeros(4)
        assert str(a & zeros) == "0000"

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            LVec.from_int(0, 2) & LVec.from_int(0, 3)

    def test_shifts(self):
        v = LVec.from_int(0b0110, 4)
        assert v.shl(1).to_int() == 0b1100
        assert v.shr(1).to_int() == 0b0011
        assert LVec.from_int(0b1000, 4).sar(2).to_int() == 0b1110

    def test_shift_beyond_width(self):
        assert LVec.from_int(0b1111, 4).shl(10).to_int() == 0


class TestArithmetic:
    def test_add_known(self):
        a = LVec.from_int(7, 8)
        b = LVec.from_int(9, 8)
        assert (a + b).to_int() == 16

    def test_add_wraps(self):
        a = LVec.from_int(255, 8)
        assert (a + LVec.from_int(1, 8)).to_int() == 0

    def test_sub(self):
        assert (LVec.from_int(9, 8) - LVec.from_int(5, 8)).to_int() == 4

    def test_sub_underflow_wraps(self):
        assert (LVec.from_int(0, 4) - LVec.from_int(1, 4)).to_int() == 15

    def test_x_poisons_carry_chain_upward(self):
        # X in bit 1 of an addend: bits 0 stays known, bits >= 1 unknown
        a = LVec.from_str("000x0")
        b = LVec.from_int(0b00010, 5)
        out = a + b
        assert out[0] is Logic.L0
        assert not out[1].is_known

    def test_x_below_does_not_poison_lower_bits(self):
        a = LVec.from_str("x0000")
        b = LVec.from_int(1, 5)
        out = a + b
        assert out[0] is Logic.L1
        assert out.trunc(4).is_known

    def test_eq(self):
        a = LVec.from_int(5, 4)
        assert a.eq(LVec.from_int(5, 4)) is Logic.L1
        assert a.eq(LVec.from_int(6, 4)) is Logic.L0

    def test_eq_with_x_can_stay_unknown(self):
        a = LVec.from_str("010x")
        assert a.eq(LVec.from_int(0b0100, 4)) is Logic.X

    def test_eq_with_x_resolves_on_known_mismatch(self):
        a = LVec.from_str("110x")
        assert a.eq(LVec.from_int(0b0100, 4)) is Logic.L0

    def test_ult(self):
        assert LVec.from_int(3, 4).ult(LVec.from_int(7, 4)) is Logic.L1
        assert LVec.from_int(7, 4).ult(LVec.from_int(3, 4)) is Logic.L0
        assert LVec.from_int(3, 4).ult(LVec.from_int(3, 4)) is Logic.L0


class TestCoversMerge:
    def test_covers_reflexive(self):
        v = LVec.from_str("10x1")
        assert v.covers(v)

    def test_x_covers_concrete(self):
        assert LVec.from_str("xxxx").covers(LVec.from_int(9, 4))

    def test_concrete_does_not_cover_x(self):
        assert not LVec.from_int(9, 4).covers(LVec.from_str("xxxx"))

    def test_merge_produces_cover(self):
        a = LVec.from_int(0b0101, 4)
        b = LVec.from_int(0b0110, 4)
        m = a.merge(b)
        assert m.covers(a) and m.covers(b)
        assert str(m) == "01xx"

    def test_merge_identical_is_identity(self):
        a = LVec.from_int(0b1010, 4)
        assert a.merge(a) == a


class TestHashEq:
    def test_equality_and_hash(self):
        a = LVec.from_int(3, 4)
        b = LVec.from_int(3, 4)
        assert a == b and hash(a) == hash(b)

    def test_inequality(self):
        assert LVec.from_int(3, 4) != LVec.from_int(3, 5)
