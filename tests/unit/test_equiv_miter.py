"""Unit tests for miter construction, assumption injection, and replay."""

import numpy as np
import pytest

from repro.bespoke import generate_bespoke
from repro.equiv import (EquivOutcome, MiterError, build_miter,
                         check_equivalence, csm_state_cubes, mutate,
                         mutation_campaign, replay_witness)
from repro.equiv.mutate import MutationError, mutable_gates
from repro.rtl import Design, mux
from repro.sim.activity import ToggleProfile
from repro.sim.state import SimState


def profile_for(netlist, exercised_names, const_values=None):
    """Hand-built profile: listed nets exercised, the rest constant."""
    p = ToggleProfile.empty(netlist)
    for name in exercised_names:
        p.toggled[netlist.net_index(name)] = True
    p.const_known[:] = True
    if const_values:
        for name, v in const_values.items():
            p.const_val[netlist.net_index(name)] = bool(v)
    return p


def comb_netlist():
    """y = (a & b) ^ c, z = a | c."""
    d = Design("comb")
    a, b, c = d.input("a"), d.input("b"), d.input("c")
    d.output("y", (a & b) ^ c)
    d.output("z", a | c)
    return d.finalize()


def two_path_netlist():
    """y = sel ? pb : pa (the bespoke-flow staple)."""
    d = Design("t")
    a, b, sel = d.input("a"), d.input("b"), d.input("sel")
    pa = d.name_sig("pa", a & d.const(1, 1))
    pb = d.name_sig("pb", b & d.const(1, 1))
    d.output("y", mux(sel, pb, pa))
    return d.finalize()


def seq_netlist():
    """One-bit accumulator: s' = s ^ a, y = s."""
    d = Design("seq")
    a = d.input("a")
    s = d.reg(1, "s", reset=False)
    s.drive(s.q ^ a)
    d.output("y", s.q)
    return d.finalize()


class TestCombinationalMiter:
    def test_identical_netlists_prove_structurally(self):
        nl = comb_netlist()
        out = check_equivalence(nl, nl.clone())
        assert out.status == "UNSAT"
        assert out.proved_structurally == out.compare_points == 2
        assert out.conflicts == 0
        assert out.equivalent

    def test_inequivalent_netlist_goes_sat_and_replays(self):
        nl = comb_netlist()
        bad = nl.clone()
        # flip the AND to an OR: y differs whenever a != b
        gate = next(g for g in bad.gates if g.kind == "AND")
        gate.kind = "OR"
        bad._mutation_version += 1
        out = check_equivalence(nl, bad)
        assert out.status == "SAT"
        assert out.diff_point.startswith("po:y")
        replay = replay_witness(nl, bad, out.witness)
        assert replay.confirmed
        assert replay.first.kind == "po"
        assert replay.first.name == "y"

    def test_witness_values_cover_every_input(self):
        nl = comb_netlist()
        bad = nl.clone()
        next(g for g in bad.gates if g.kind == "AND").kind = "NAND"
        bad._mutation_version += 1
        out = check_equivalence(nl, bad)
        assert out.status == "SAT"
        assert set(out.witness["inputs"][0]) == {"a", "b", "c"}

    def test_missing_output_is_a_miter_error(self):
        nl = comb_netlist()
        d = Design("comb")          # rebuild with the z output dropped
        a, b, c = d.input("a"), d.input("b"), d.input("c")
        d.output("y", (a & b) ^ c)
        with pytest.raises(MiterError):
            build_miter(nl, d.finalize())

    def test_extra_input_is_a_miter_error(self):
        nl = comb_netlist()
        d = Design("comb")
        a, b, c, w = (d.input("a"), d.input("b"), d.input("c"),
                      d.input("w"))
        d.output("y", (a & b) ^ c)
        d.output("z", (a | c) & ~w)
        with pytest.raises(MiterError):
            build_miter(nl, d.finalize())

    def test_bad_unroll_rejected(self):
        nl = comb_netlist()
        with pytest.raises(MiterError):
            build_miter(nl, nl.clone(), unroll=0)


class TestAssumptionInjection:
    def test_equivalence_holds_only_under_assumptions(self):
        nl = two_path_netlist()
        prof = profile_for(nl, ["a", "pa", "y", "sel"],
                           const_values={"pb": 0, "b": 0})
        besp = generate_bespoke(nl, prof)
        assert besp.gate_count() < nl.gate_count()
        # under the co-analysis constants: formally equivalent
        under = check_equivalence(nl, besp, profile=prof)
        assert under.status == "UNSAT"
        assert under.assumptions_injected > 0
        # with the assumptions dropped the pruning is visible, and the
        # witness replays to a real divergence in CycleSim
        free = check_equivalence(nl, besp)
        assert free.status == "SAT"
        replay = replay_witness(nl, besp, free.witness)
        assert replay.confirmed

    def test_profile_constants_reach_the_report(self):
        nl = two_path_netlist()
        prof = profile_for(nl, ["a", "pa", "y", "sel"],
                           const_values={"pb": 0, "b": 0})
        m = build_miter(nl, generate_bespoke(nl, prof), profile=prof)
        assert m.assumed_consts[nl.net_index("b")] is False


class TestSequentialUnrolling:
    def test_identical_seq_design_unsat_at_depth(self):
        nl = seq_netlist()
        for k in (1, 2, 3):
            out = check_equivalence(nl, nl.clone(), unroll=k)
            assert out.status == "UNSAT"
            assert out.unroll == k
        # deeper unrolls add PO compare points per frame
        deep = check_equivalence(nl, nl.clone(), unroll=3)
        assert deep.compare_points > \
            check_equivalence(nl, nl.clone(), unroll=1).compare_points

    def test_broken_transition_function_detected_and_replays(self):
        nl = seq_netlist()
        bad = nl.clone()
        gate = next(g for g in bad.gates if g.kind == "XOR")
        gate.kind = "XNOR"
        bad._mutation_version += 1
        out = check_equivalence(nl, bad, unroll=2)
        assert out.status == "SAT"
        replay = replay_witness(nl, bad, out.witness, unroll=2)
        assert replay.confirmed
        assert replay.frames == 2


class TestCsmStateCubes:
    def build_gated_pair(self):
        """Original y = a & s; 'bespoke' believes s is stuck at 0."""
        d = Design("g")
        a = d.input("a")
        s = d.reg(1, "s", reset=False)
        s.drive(s.q)
        d.output("y", a & s.q)

        b = Design("g")
        ab = b.input("a")
        sb = b.reg(1, "s", reset=False)
        sb.drive(sb.q)
        b.output("y", ab & b.const(0, 1))
        return d.finalize(), b.finalize()

    def state(self, val, known):
        return SimState(net_val=np.array([val], dtype=bool),
                        net_known=np.array([known], dtype=bool),
                        memories={})

    def test_cubes_gate_the_verdict(self):
        orig, besp = self.build_gated_pair()
        positions = {"s": 0}
        m = build_miter(orig, besp)
        # reachable super-state says s == 0: the designs agree
        cubes = csm_state_cubes(m, [self.state(False, True)], positions)
        assert check_equivalence(orig, besp, miter=m,
                                 csm_cubes=cubes).status == "UNSAT"
        # s == 1 reachable: divergence is real (y = a vs y = 0)
        m2 = build_miter(orig, besp)
        cubes = csm_state_cubes(m2, [self.state(True, True)], positions)
        out = check_equivalence(orig, besp, miter=m2, csm_cubes=cubes)
        assert out.status == "SAT"
        assert replay_witness(orig, besp, out.witness).confirmed

    def test_merged_x_bit_leaves_state_free(self):
        orig, besp = self.build_gated_pair()
        m = build_miter(orig, besp)
        cubes = csm_state_cubes(m, [self.state(False, False)], {"s": 0})
        assert cubes == [[]]            # X bit contributes no literal
        assert check_equivalence(orig, besp, miter=m,
                                 csm_cubes=cubes).status == "SAT"

    def test_states_translate_inside_check(self):
        orig, besp = self.build_gated_pair()
        out = check_equivalence(orig, besp,
                                csm_states=[self.state(False, True)],
                                state_positions={"s": 0})
        assert out.status == "UNSAT"
        assert out.csm_cubes_checked == 1


class TestMutate:
    def test_mutation_is_deterministic_and_nondestructive(self):
        nl = comb_netlist()
        before = [g.kind for g in nl.gates]
        m1, m2 = mutate(nl, seed=3), mutate(nl, seed=3)
        assert m1.mutation == m2.mutation
        assert [g.kind for g in nl.gates] == before
        kinds1 = [g.kind for g in m1.netlist.gates]
        assert kinds1 != before or m1.mutation.swapped_inputs

    def test_profile_restricts_to_exercised_gates(self):
        nl = two_path_netlist()
        prof = profile_for(nl, ["a", "pa", "y", "sel"],
                           const_values={"pb": 0, "b": 0})
        allowed = mutable_gates(nl, prof)
        exercised = prof.exercised_nets()
        for idx in allowed:
            gate = nl.gates[idx]
            assert exercised[gate.output] \
                or gate.kind in ("TIE0", "TIE1")

    def test_no_candidates_raises(self):
        d = Design("empty")
        s = d.reg(1, "s", reset=False)
        s.drive(s.q)
        d.output("y", s.q)
        nl = d.finalize()
        seq_only = nl.clone()
        for g in list(seq_only.gates):
            if not g.is_sequential and g.kind != "BUF":
                break
        prof = ToggleProfile.empty(nl)   # nothing exercised
        prof.const_known[:] = True
        with pytest.raises(MutationError):
            mutate(nl, seed=0, profile=prof)

    def test_campaign_detects_and_confirms(self):
        nl = comb_netlist()
        prof = profile_for(nl, [nl.net_name(i) for i in
                                list(nl.inputs) + list(nl.outputs)])
        # every net toggles: all gates are fair game
        prof.toggled[:] = True
        records = mutation_campaign(nl, nl.clone(), prof, seeds=range(6))
        assert len(records) == 6
        assert all(r["detected"] for r in records)
        assert all(r["confirmed"] for r in records)


class TestOutcomeShape:
    def test_summary_round_trips_through_reporting_table(self):
        from repro.reporting import equivalence_table
        nl = comb_netlist()
        out = check_equivalence(nl, nl.clone(), design="comb")
        text = equivalence_table([out, out.summary()])
        assert "UNSAT" in text and "comb" in text

    def test_tracer_receives_typed_events(self):
        from repro.coanalysis.trace import EVENT_KINDS, Tracer
        assert "equiv_start" in EVENT_KINDS
        assert "equiv_outcome" in EVENT_KINDS
        tracer = Tracer()
        nl = comb_netlist()
        check_equivalence(nl, nl.clone(), design="comb", tracer=tracer)
        assert tracer.metrics.equiv_checks == 1
        assert tracer.metrics.equiv_outcomes == {"UNSAT": 1}
