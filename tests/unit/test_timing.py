"""Unit tests for static timing analysis and the slack report."""

import pytest

from repro.analysis.timing import (CELL_DELAY, critical_path,
                                   exercisable_critical_path,
                                   timing_slack)
from repro.netlist import Netlist
from repro.netlist.cells import LIBRARY
from repro.rtl import Design, mux
from repro.sim.activity import ToggleProfile


def chain_netlist(length=4):
    """rst-free inverter chain between two flops."""
    nl = Netlist("chain")
    d_in = nl.add_net("din")
    nl.mark_input(d_in)
    q = nl.add_net("q0")
    nl.add_gate("ff_in", "DFF", [d_in], q)
    prev = q
    for i in range(length):
        out = nl.add_net(f"n{i}")
        nl.add_gate(f"inv{i}", "NOT", [prev], out)
        prev = out
    q2 = nl.add_net("q1")
    nl.add_gate("ff_out", "DFF", [prev], q2)
    nl.mark_output(q2)
    return nl


class TestCellDelays:
    def test_every_cell_has_a_delay(self):
        assert set(CELL_DELAY) == set(LIBRARY)

    def test_ties_are_free(self):
        assert CELL_DELAY["TIE0"] == 0.0


class TestCriticalPath:
    def test_chain_delay_is_sum(self):
        nl = chain_netlist(5)
        report = critical_path(nl)
        expected = CELL_DELAY["DFF"] + 5 * CELL_DELAY["NOT"]
        assert report.critical_delay == pytest.approx(expected)
        assert len(report.critical_path) == 6   # ff_in + 5 inverters

    def test_longer_chain_longer_delay(self):
        short = critical_path(chain_netlist(2))
        long = critical_path(chain_netlist(8))
        assert long.critical_delay > short.critical_delay

    def test_path_names_are_real_gates(self):
        nl = chain_netlist(3)
        report = critical_path(nl)
        for name in report.critical_path:
            nl.gate_index(name)   # raises if unknown

    def test_parallel_paths_pick_slowest(self):
        d = Design("par")
        a = d.input("a")
        fast = ~a
        slow = a
        for _ in range(4):
            slow = ~slow
        r = d.reg(1, "r")
        r.drive(mux(d.input("s"), fast, slow))
        d.output("y", r.q)
        nl = d.finalize()
        report = critical_path(nl)
        min_expected = 4 * CELL_DELAY["NOT"] + CELL_DELAY["MUX2"]
        assert report.critical_delay >= min_expected

    def test_empty_ish_design(self):
        nl = Netlist("empty")
        a = nl.add_net("a")
        nl.mark_input(a)
        nl.mark_output(a)
        report = critical_path(nl)
        assert report.critical_delay == 0.0


class TestExercisableTiming:
    def make_two_path_design(self):
        """A short path and a long path into the same flop; profile
        marks only the short path exercisable."""
        d = Design("twopath")
        a = d.input("a")
        sel = d.input("sel")
        long_path = a
        for _ in range(6):
            long_path = ~long_path
        long_named = d.name_sig("longp", long_path)
        short_named = d.name_sig("shortp", ~a)
        r = d.reg(1, "r")
        r.drive(mux(sel, short_named, long_named))
        d.output("y", r.q)
        return d.finalize()

    def test_excluding_long_path_reduces_delay(self):
        nl = self.make_two_path_design()
        profile = ToggleProfile.empty(nl)
        # everything except the long-path inverters is exercisable
        long_gates = {nl.gates[nl.gate_index(f"u{i}")].index
                      for i in range(100) if _gate_exists(nl, f"u{i}")}
        for g in nl.gates:
            on_long = g.name.startswith("longp") or g.index in long_gates
            if not on_long:
                profile.toggled[g.output] = True
        profile.const_known[:] = True
        full = critical_path(nl)
        reduced = exercisable_critical_path(nl, profile)
        assert reduced.critical_delay < full.critical_delay

    def test_slack_report(self):
        nl = self.make_two_path_design()
        profile = ToggleProfile.empty(nl)
        for g in nl.gates:
            profile.toggled[g.output] = True   # everything exercisable
        profile.const_known[:] = True
        slack = timing_slack(nl, profile)
        assert slack.slack_percent == pytest.approx(0.0, abs=1e-9)
        assert slack.voltage_headroom == pytest.approx(0.0, abs=1e-9)


def _gate_exists(nl, name):
    try:
        nl.gate_index(name)
        return True
    except Exception:
        return False
