"""Edge-case tests for the core harness and cycle-engine step hooks."""

import pytest

from repro.logic import Logic, LVec
from repro.rtl import Design
from repro.sim import CompiledNetlist, CycleSim, XMemory
from repro.workloads import WORKLOADS, built_core
from repro.processors import CoreTarget
from repro.isa import Msp430Assembler


class TestStepHooks:
    def make_echo(self):
        """Design that registers its input each cycle."""
        d = Design("echo")
        din = d.input("din", 4)
        r = d.reg(4, "r", reset=True)
        r.drive(din)
        d.output("dout", r.q)
        return d.finalize()

    def test_drive_callback_runs_between_settles(self):
        nl = self.make_echo()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("rst", Logic.L0)
        fed = []

        def drive(s):
            # feed back the current output + 1 (combinational testbench)
            out = s.get_bus(nl.bus("dout", 4))
            value = (out.to_int_or(0) + 1) & 0xF
            fed.append(value)
            s.set_input("din", LVec.from_int(value, 4))

        sim.set_input("rst", Logic.L1)
        sim.step()
        sim.set_input("rst", Logic.L0)
        for _ in range(3):
            sim.step(drive=drive)
        sim.settle()
        assert fed == [1, 2, 3]
        assert sim.get_bus(nl.bus("dout", 4)).to_int() == 3

    def test_on_edge_sees_settled_pre_edge_values(self):
        nl = self.make_echo()
        sim = CycleSim(CompiledNetlist(nl))
        seen = []

        def on_edge(s):
            seen.append(s.get_bus(nl.bus("dout", 4)).to_int_or(-1))

        sim.set_input("rst", Logic.L1)
        sim.step(on_edge=on_edge)
        sim.set_input("rst", Logic.L0)
        sim.set_input("din", LVec.from_int(9, 4))
        sim.step(on_edge=on_edge)
        sim.step(on_edge=on_edge)
        # on_edge observes the output *before* the edge commits
        assert seen[-1] == 9

    def test_set_bus_width_mismatch(self):
        nl = self.make_echo()
        sim = CycleSim(CompiledNetlist(nl))
        with pytest.raises(ValueError):
            sim.set_bus(nl.bus("din", 4), LVec.from_int(0, 3))

    def test_attach_memory_twice_rejected(self):
        nl = self.make_echo()
        sim = CycleSim(CompiledNetlist(nl))
        sim.attach_memory(XMemory(4, 4, name="m"))
        with pytest.raises(ValueError):
            sim.attach_memory(XMemory(4, 4, name="m"))


class TestHarnessEdges:
    def make_target(self, gpio_symbolic=False):
        nl, meta = built_core("omsp430")
        prog = Msp430Assembler().assemble("""
            li r1, 261          ; GPIO_IN
            ld r2, 0(r1)
            li r3, 96
            st r2, 0(r3)
        _halt: jmp _halt
        """)
        return CoreTarget(nl, meta, prog, gpio_symbolic=gpio_symbolic)

    def test_gpio_symbolic_flows_to_memory(self):
        from repro.coanalysis import CoAnalysisEngine
        target = self.make_target(gpio_symbolic=True)
        result = CoAnalysisEngine(target, application="gpio",
                                  max_cycles_per_path=100).run()
        ex = result.profile.exercised_nets()
        nl = target.netlist
        assert any(ex[n] for n in nl.bus("gpio_in", 16))

    def test_gpio_concrete_reads_zero(self):
        from repro.coanalysis.concrete import run_concrete
        target = self.make_target(gpio_symbolic=False)
        run = run_concrete(target, {}, max_cycles=100)
        assert run.finished
        assert target.read_dmem_int(run.final_sim, 96) == 0

    def test_rom_is_not_part_of_snapshots(self):
        target = self.make_target()
        sim = target.make_sim()
        snap = sim.snapshot()
        assert "rom" not in snap.memories
        assert "dmem" in snap.memories

    def test_read_dmem_helpers(self):
        target = self.make_target()
        sim = target.make_sim()
        sim.memories["dmem"].load_word(5, 123)
        assert target.read_dmem_int(sim, 5) == 123
        assert target.read_dmem(sim, 5).to_int() == 123

    def test_concrete_run_records_store_stream(self):
        from repro.coanalysis.concrete import run_concrete
        target = self.make_target()
        run = run_concrete(target, {}, max_cycles=100)
        # the program stores GPIO_IN (0) to address 96 exactly once
        assert [(addr, value) for _, addr, value in run.write_trace] \
            == [(96, 0)]
        assert run.pc_trace[0] == 0
        assert run.pc_trace[-1] == target.program.halt_address
