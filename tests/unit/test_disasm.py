"""Unit tests for the disassemblers.

The strongest check is the round-trip: disassembling every word of every
benchmark program and re-assembling the text must reproduce the exact
machine words.
"""

import pytest

from repro.isa import ASSEMBLERS
from repro.isa.disasm import (disassemble, disassemble_program,
                              mnemonic_histogram, mnemonic_of)
from repro.workloads import WORKLOADS, WORKLOAD_ORDER, assemble_workload

DESIGNS = ["omsp430", "bm32", "dr5"]


class TestRoundTrip:
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("wname", WORKLOAD_ORDER)
    def test_benchmarks_roundtrip(self, design, wname):
        program = assemble_workload(design, WORKLOADS[wname])
        assembler = ASSEMBLERS[design]()
        for addr, word in enumerate(program.words):
            text = disassemble(design, word)
            if text.startswith(".word"):
                continue
            back = assembler.assemble(text).words[0]
            assert back == word, (
                f"{design}/{wname}@{addr}: {word:#x} -> {text!r} -> "
                f"{back:#x}")


class TestSpecificEncodings:
    def test_msp430_samples(self):
        a = ASSEMBLERS["omsp430"]()
        for src in ("mov r1, r2", "movi r3, -5", "ld r1, -2(r4)",
                    "st r5, 3(r6)", "jmp 9", "jeq 4", "rra r2",
                    "jrr r7"):
            word = a.assemble(src).words[0]
            assert disassemble("omsp430", word) == src

    def test_bm32_samples(self):
        a = ASSEMBLERS["bm32"]()
        for src in ("addu r3, r1, r2", "sll r2, r1, 4", "mult r1, r2",
                    "mflo r3", "addiu r1, r0, -7", "lw r2, 5(r1)",
                    "beq r1, r2, 12", "j 40"):
            word = a.assemble(src).words[0]
            assert disassemble("bm32", word) == src

    def test_dr5_samples(self):
        a = ASSEMBLERS["dr5"]()
        for src in ("add r3, r1, r2", "slli r2, r1, 4",
                    "addi r1, r0, -7", "sw r2, 3(r1)",
                    "bltu r1, r2, 9", "jal r5, 20"):
            word = a.assemble(src).words[0]
            assert disassemble("dr5", word) == src

    def test_unknown_word_renders_as_data(self):
        assert disassemble("omsp430", 0xF000).startswith(".word")
        assert disassemble("bm32", 0xFFFFFFFF).startswith(".word")

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            disassemble("z80", 0)


class TestHistogram:
    def test_mnemonic_of(self):
        a = ASSEMBLERS["dr5"]()
        word = a.assemble("addi r1, r0, 3").words[0]
        assert mnemonic_of("dr5", word) == "addi"

    def test_histogram_counts(self):
        program = assemble_workload("dr5", WORKLOADS["mult"])
        hist = mnemonic_histogram("dr5", program.words)
        assert hist["addi"] >= 3
        assert "mult" not in hist      # no multiplier instruction on dr5
        assert sum(hist.values()) == program.size

    def test_reduced_isa_report(self):
        """Reachable-word usage exposes unused instruction classes."""
        from repro.analysis import analyze_coverage
        from repro.analysis.coverage import isa_usage
        from repro.workloads import build_target
        target = build_target("omsp430", WORKLOADS["mult"])
        report = analyze_coverage(target, application="mult")
        usage = isa_usage(report, "omsp430")
        assert "st" in usage and "ld" in usage
        # mult's binary never shifts or takes conditional jumps
        for absent in ("rra", "srl", "jeq", "jne"):
            assert absent not in usage

    def test_program_listing(self):
        program = assemble_workload("omsp430", WORKLOADS["Div"])
        listing = disassemble_program("omsp430", program.words)
        assert len(listing) == program.size
        assert any(line.startswith("cmp") for line in listing)
