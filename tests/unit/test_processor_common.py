"""Unit tests for the shared datapath building blocks."""

import pytest

from repro.logic import Logic, LVec
from repro.processors.common import (RegisterFile, alu_adder,
                                     array_multiplier, is_const_eq)
from repro.rtl import Design
from repro.sim import CompiledNetlist, CycleSim


def evaluate(design, outputs):
    nl = design.finalize()
    sim = CycleSim(CompiledNetlist(nl))
    return nl, sim


class TestAluAdder:
    def build(self):
        d = Design("alu")
        a = d.input("a", 8)
        b = d.input("b", 8)
        sub = d.input("sub")
        result, carry, ovf = alu_adder(d, a, b, sub)
        d.output("r", result)
        d.output("c", carry)
        d.output("v", ovf)
        return evaluate(d, None)

    @pytest.mark.parametrize("a,b", [(0, 0), (100, 28), (200, 100)])
    def test_add(self, a, b):
        nl, sim = self.build()
        sim.set_input("a", LVec.from_int(a, 8))
        sim.set_input("b", LVec.from_int(b, 8))
        sim.set_input("sub", Logic.L0)
        sim.settle()
        assert sim.get_bus(nl.bus("r", 8)).to_int() == (a + b) & 0xFF
        carry = sim.get_net(nl.net_index("c"))
        assert (carry is Logic.L1) == (a + b > 0xFF)

    @pytest.mark.parametrize("a,b", [(100, 28), (28, 100), (5, 5)])
    def test_sub_carry_is_not_borrow(self, a, b):
        nl, sim = self.build()
        sim.set_input("a", LVec.from_int(a, 8))
        sim.set_input("b", LVec.from_int(b, 8))
        sim.set_input("sub", Logic.L1)
        sim.settle()
        assert sim.get_bus(nl.bus("r", 8)).to_int() == (a - b) & 0xFF
        assert (sim.get_net(nl.net_index("c")) is Logic.L1) == (a >= b)

    def test_signed_overflow(self):
        nl, sim = self.build()
        sim.set_input("a", LVec.from_int(0x7F, 8))
        sim.set_input("b", LVec.from_int(1, 8))
        sim.set_input("sub", Logic.L0)
        sim.settle()
        assert sim.get_net(nl.net_index("v")) is Logic.L1


class TestArrayMultiplier:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 255), (15, 17),
                                     (255, 255)])
    def test_products(self, a, b):
        d = Design("mul")
        sa = d.input("a", 8)
        sb = d.input("b", 8)
        d.output("p", array_multiplier(d, sa, sb))
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("a", LVec.from_int(a, 8))
        sim.set_input("b", LVec.from_int(b, 8))
        sim.settle()
        assert sim.get_bus(nl.bus("p", 16)).to_int() == a * b

    def test_asymmetric_widths(self):
        d = Design("mul")
        sa = d.input("a", 4)
        sb = d.input("b", 6)
        d.output("p", array_multiplier(d, sa, sb))
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        sim.set_input("a", LVec.from_int(13, 4))
        sim.set_input("b", LVec.from_int(47, 6))
        sim.settle()
        assert sim.get_bus(nl.bus("p", 10)).to_int() == 13 * 47


class TestIsConstEq:
    @pytest.mark.parametrize("value", [0, 3, 7])
    def test_match(self, value):
        d = Design("eq")
        a = d.input("a", 3)
        d.output("y", is_const_eq(d, a, value))
        nl = d.finalize()
        sim = CycleSim(CompiledNetlist(nl))
        for probe in range(8):
            sim.set_input("a", LVec.from_int(probe, 3))
            sim.settle()
            expected = Logic.L1 if probe == value else Logic.L0
            assert sim.get_net(nl.net_index("y")) is expected


class TestRegisterFile:
    def build(self, r0_is_zero=False):
        d = Design("rf")
        waddr = d.input("waddr", 2)
        wdata = d.input("wdata", 8)
        wen = d.input("wen")
        raddr = d.input("raddr", 2)
        rf = RegisterFile(d, 4, 8, r0_is_zero=r0_is_zero)
        rdata = rf.read(raddr)
        rf.connect_write(waddr, wdata, wen)
        d.output("rdata", rdata)
        nl = d.finalize()
        return nl, CycleSim(CompiledNetlist(nl))

    def write(self, sim, addr, value):
        sim.set_input("waddr", LVec.from_int(addr, 2))
        sim.set_input("wdata", LVec.from_int(value, 8))
        sim.set_input("wen", Logic.L1)
        sim.step()
        sim.set_input("wen", Logic.L0)

    def read(self, nl, sim, addr):
        sim.set_input("raddr", LVec.from_int(addr, 2))
        sim.settle()
        return sim.get_bus(nl.bus("rdata", 8))

    def test_write_then_read(self):
        nl, sim = self.build()
        self.write(sim, 2, 0xAB)
        assert self.read(nl, sim, 2).to_int() == 0xAB

    def test_registers_power_up_unknown(self):
        nl, sim = self.build()
        assert self.read(nl, sim, 1).has_x

    def test_write_targets_only_addressed_register(self):
        nl, sim = self.build()
        self.write(sim, 1, 0x11)
        self.write(sim, 3, 0x33)
        assert self.read(nl, sim, 1).to_int() == 0x11
        assert self.read(nl, sim, 3).to_int() == 0x33

    def test_r0_hardwired_zero(self):
        nl, sim = self.build(r0_is_zero=True)
        assert self.read(nl, sim, 0).to_int() == 0
        self.write(sim, 0, 0xFF)
        assert self.read(nl, sim, 0).to_int() == 0

    def test_power_of_two_enforced(self):
        d = Design("bad")
        with pytest.raises(ValueError):
            RegisterFile(d, 3, 8)
