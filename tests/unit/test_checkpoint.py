"""Unit tests for the append-safe checkpoint journal."""

import pickle
import struct

import pytest

from repro.coanalysis.results import CheckpointError
from repro.resilience.checkpoint import (Checkpointer, as_checkpointer,
                                         load_checkpoint)


class TestFraming:
    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt") is None

    def test_empty_file_is_none(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        assert load_checkpoint(path) is None

    def test_latest_record_wins(self, tmp_path):
        ck = Checkpointer(tmp_path / "run.ckpt")
        for n in range(5):
            ck.write({"n": n}, progress=n)
        assert load_checkpoint(ck.path) == {"n": 4}
        assert ck.records_written == 5

    def test_torn_tail_is_ignored(self, tmp_path):
        ck = Checkpointer(tmp_path / "run.ckpt")
        ck.write({"n": 0})
        ck.write({"n": 1})
        intact = ck.path.read_bytes()
        # simulate a crash mid-append: a prefix of a third record
        ck.write({"n": 2})
        full = ck.path.read_bytes()
        torn = full[:len(intact) + (len(full) - len(intact)) // 2]
        ck.path.write_bytes(torn)
        assert load_checkpoint(ck.path) == {"n": 1}

    def test_corrupt_tail_is_ignored(self, tmp_path):
        ck = Checkpointer(tmp_path / "run.ckpt")
        ck.write({"n": 0})
        intact = len(ck.path.read_bytes())
        ck.write({"n": 1})
        blob = bytearray(ck.path.read_bytes())
        blob[intact + 20] ^= 0xFF          # inside record 1's payload
        ck.path.write_bytes(bytes(blob))
        assert load_checkpoint(ck.path) == {"n": 0}

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "future.ckpt"
        payload = pickle.dumps({"n": 0})
        import zlib
        path.write_bytes(b"RCKP" + struct.pack("<BQI", 99, len(payload),
                                               zlib.crc32(payload))
                         + payload)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_creates_parent_directory(self, tmp_path):
        ck = Checkpointer(tmp_path / "deep" / "run.ckpt")
        ck.write({"n": 0})
        assert load_checkpoint(ck.path) == {"n": 0}

    def test_directory_synced_on_journal_creation(self, tmp_path,
                                                  monkeypatch):
        """The create-then-crash window: a journal file whose *name* was
        never made durable can vanish after a power cut even though its
        content was fsynced.  The first write must therefore fsync the
        containing directory -- later appends need not."""
        import repro.resilience.artifacts as artifacts
        synced = []
        monkeypatch.setattr(artifacts, "fsync_dir",
                            lambda p: synced.append(str(p)))
        ck = Checkpointer(tmp_path / "run.ckpt")
        ck.write({"n": 0})
        assert synced == [str(tmp_path)]
        ck.write({"n": 1})
        assert synced == [str(tmp_path)]    # appends reuse the durable name

    def test_recreated_journal_is_synced_again(self, tmp_path,
                                               monkeypatch):
        import repro.resilience.artifacts as artifacts
        synced = []
        monkeypatch.setattr(artifacts, "fsync_dir",
                            lambda p: synced.append(str(p)))
        ck = Checkpointer(tmp_path / "run.ckpt")
        ck.write({"n": 0})
        ck.path.unlink()                    # simulate lost-name crash
        ck.write({"n": 1})
        assert synced == [str(tmp_path)] * 2
        assert load_checkpoint(ck.path) == {"n": 1}


class TestCadence:
    def test_every_segments_paces_writes(self, tmp_path):
        ck = Checkpointer(tmp_path / "run.ckpt", every_segments=10)
        assert ck.due(0)
        ck.write({}, progress=0)
        assert not ck.due(5)
        assert ck.due(10)

    def test_every_seconds_gates_writes(self, tmp_path):
        ck = Checkpointer(tmp_path / "run.ckpt", every_segments=1,
                          every_seconds=3600)
        ck.write({}, progress=0)
        assert not ck.due(50)

    def test_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path / "run.ckpt", every_segments=0)


class TestCoercion:
    def test_path_becomes_checkpointer(self, tmp_path):
        ck = as_checkpointer(str(tmp_path / "run.ckpt"))
        assert isinstance(ck, Checkpointer)

    def test_none_passes_through(self):
        assert as_checkpointer(None) is None

    def test_instance_passes_through(self, tmp_path):
        ck = Checkpointer(tmp_path / "run.ckpt", every_segments=3)
        assert as_checkpointer(ck) is ck


class TestRunPayloadCodec:
    """The single versioned codec for exploration-run payloads."""

    def _v2(self, **overrides):
        from repro.resilience.checkpoint import (RUN_PAYLOAD_CODEC,
                                                 encode_run_payload)
        payload = encode_run_payload(
            engine="serial", design="d", application="a",
            frontier=[(b"blob", 1, 2, 0, 7)], strategy="dfs",
            strategy_meta={}, csm={"repo": []},
            activity={"repr": "sim"},
            counters={"paths_created": 3, "batches_done": 1},
            path_records=[], per_path_exercised=[], journal=[])
        assert payload["codec"] == RUN_PAYLOAD_CODEC
        payload.update(overrides)
        return payload

    def test_v2_roundtrips_unchanged(self):
        from repro.resilience.checkpoint import decode_run_payload
        payload = self._v2()
        assert decode_run_payload(payload) == payload

    def test_v2_payload_without_quarantine_key_upgrades(self):
        # v2 payloads written before the quarantine key existed
        from repro.resilience.checkpoint import decode_run_payload
        payload = self._v2()
        del payload["quarantine"]
        assert decode_run_payload(payload)["quarantine"] is None

    def test_quarantine_snapshot_rides_the_payload(self):
        from repro.resilience.checkpoint import decode_run_payload
        snap = {"threshold": 2, "records": [{"key": "k", "failures": 2,
                                            "quarantined": True}]}
        payload = self._v2(quarantine=snap)
        assert decode_run_payload(payload)["quarantine"] == snap

    def test_unsupported_codec_raises(self):
        from repro.resilience.checkpoint import decode_run_payload
        with pytest.raises(CheckpointError, match="codec v99"):
            decode_run_payload(self._v2(codec=99))

    def test_legacy_serial_payload_upgrades(self):
        from repro.resilience.checkpoint import decode_run_payload
        legacy = {
            "engine": "serial", "design": "d", "application": "a",
            "stack": [(b"blob", 1, 2, 0)],
            "csm": {"repo": []},
            "activity": {"toggled": [True]},
            "counters": {"paths_created": 3},
            "path_records": ["r1", "r2"],
            "per_path_exercised": [], "journal": [],
        }
        out = decode_run_payload(legacy)
        assert out["frontier"] == [(b"blob", 1, 2, 0, None)]
        assert out["strategy"] == "dfs"
        assert out["activity"]["repr"] == "sim"
        # pre-codec serial runs checkpointed once per segment
        assert out["counters"]["batches_done"] == 2

    def test_legacy_parallel_payload_upgrades(self):
        from repro.resilience.checkpoint import decode_run_payload
        legacy = {
            "engine": "parallel", "design": "d", "application": "a",
            "pending": [(b"blob", 0)],
            "waves_done": 4,
            "csm": {"repo": []},
            "profile": {"toggled": [True], "ever_x": [False],
                        "const_val": [False], "const_known": [True]},
            "counters": {"paths_created": 9},
            "path_records": [], "journal": [],
        }
        out = decode_run_payload(legacy)
        assert out["frontier"] == [(b"blob", 0, 0, None, None)]
        assert out["strategy"] == "bfs"
        assert out["activity"] == {"repr": "profile",
                                   "toggled": [True], "ever_x": [False],
                                   "val": [False], "known": [True]}
        assert out["counters"]["batches_done"] == 4
        assert out["per_path_exercised"] == []
