"""Unit tests for PC coverage analysis and the input-case generator."""

import pytest

from repro.analysis import analyze_coverage
from repro.workloads import WORKLOADS, build_target, built_core
from repro.workloads.generator import generate_all, generate_cases


class TestCoverage:
    @pytest.fixture(scope="class")
    def tea_coverage(self):
        target = build_target("dr5", WORKLOADS["tea8"])
        return analyze_coverage(target, application="tea8")

    def test_straight_line_program_nearly_fully_covered(self,
                                                        tea_coverage):
        assert tea_coverage.coverage_percent > 90.0

    def test_dead_words_disjoint_from_reachable(self, tea_coverage):
        assert not (set(tea_coverage.dead)
                    & set(tea_coverage.reachable))
        assert len(tea_coverage.dead) + len(tea_coverage.reachable) == \
            tea_coverage.program.size

    def test_summary_fields(self, tea_coverage):
        s = tea_coverage.summary()
        assert s["program_words"] == tea_coverage.program.size
        assert 0 <= s["coverage_percent"] <= 100

    def test_branchy_program_covers_both_arms(self):
        """Symbolic analysis must reach both sides of an input-dependent
        branch -- the defining property vs a single concrete run."""
        target = build_target("omsp430", WORKLOADS["binSearch"])
        cov = analyze_coverage(target, application="binSearch")
        prog = target.program
        assert prog.label("found") in cov.visited
        assert prog.label("notfound") in cov.visited

    def test_analysis_result_attached(self, tea_coverage):
        assert tea_coverage.analysis.paths_created >= 1


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_cases(WORKLOADS["Div"], 5, seed=3)
        b = generate_cases(WORKLOADS["Div"], 5, seed=3)
        c = generate_cases(WORKLOADS["Div"], 5, seed=4)
        assert a == b
        assert a != c

    def test_div_divisor_never_zero(self):
        for case in generate_cases(WORKLOADS["Div"], 50, seed=1):
            assert case[65] != 0

    def test_div_cases_match_reference_structure(self):
        w = WORKLOADS["Div"]
        for case in generate_cases(w, 10, seed=2):
            expected = w.expected(case, 16)
            assert expected[96] == case[64] // case[65]

    def test_binsearch_mixes_hits_and_misses(self):
        from repro.workloads import BSEARCH_TABLE
        keys = [case[64] for case in
                generate_cases(WORKLOADS["binSearch"], 40, seed=0)]
        hits = [k for k in keys if k in BSEARCH_TABLE]
        misses = [k for k in keys if k not in BSEARCH_TABLE]
        assert hits and misses

    def test_tea_respects_word_width(self):
        for case in generate_cases(WORKLOADS["tea8"], 20, seed=0,
                                   word_width=16):
            assert all(v < (1 << 16) for v in case.values())

    def test_generate_all_covers_catalog(self):
        cases = generate_all(2, seed=9)
        assert set(cases) == set(WORKLOADS)

    def test_unknown_workload_rejected(self):
        from repro.workloads.catalog import Workload
        fake = Workload(name="nope", description="", sources={},
                        input_len=1, cases=[], reference=lambda i, w: {})
        with pytest.raises(KeyError):
            generate_cases(fake, 1)


class TestGeneratedCasesRunCorrectly:
    """Random vectors through the real cores against the references."""

    @pytest.mark.parametrize("design", ["omsp430", "dr5"])
    def test_div_random_sweep(self, design):
        from repro.coanalysis.concrete import run_concrete
        w = WORKLOADS["Div"]
        _, meta = built_core(design)
        target = build_target(design, w)
        for case in generate_cases(w, 3, seed=11,
                                   word_width=meta.word_width):
            run = run_concrete(target, case, max_cycles=4000)
            assert run.finished
            for addr, want in w.expected(case, meta.word_width).items():
                assert target.read_dmem_int(run.final_sim, addr) == want
