"""Property tests for the logic substrate.

The central soundness property of the whole tool: a four-valued
evaluation *covers* every concrete completion of its inputs.  If that
holds per gate and per vector op, the co-analysis engine's claim that
unexercised gates can never toggle is justified.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic import (COMB_EVAL, Logic, SymBit, covers, evaluate,
                         l_and, l_nand, l_nor, l_not, l_or, l_xnor, l_xor,
                         merge)
from repro.logic.vector import LVec

logic_values = st.sampled_from([Logic.L0, Logic.L1, Logic.X, Logic.Z])
known_values = st.sampled_from([Logic.L0, Logic.L1])


def completions(v: Logic):
    """All concrete values a four-valued level may stand for."""
    return [v] if v.is_known else [Logic.L0, Logic.L1]


BINARY_OPS = [l_and, l_or, l_xor, l_nand, l_nor, l_xnor]


class TestGateSoundness:
    @given(logic_values, logic_values)
    def test_binary_ops_cover_all_completions(self, a, b):
        for op in BINARY_OPS:
            out = op(a, b)
            for ca in completions(a):
                for cb in completions(b):
                    assert covers(out, op(ca, cb)), (op.__name__, a, b)

    @given(logic_values)
    def test_not_covers_completions(self, a):
        out = l_not(a)
        for ca in completions(a):
            assert covers(out, l_not(ca))

    @given(logic_values, logic_values, logic_values)
    def test_mux_covers_completions(self, s, d0, d1):
        out = evaluate("MUX2", [d0, d1, s])
        for cs in completions(s):
            for c0 in completions(d0):
                for c1 in completions(d1):
                    concrete = evaluate("MUX2", [c0, c1, cs])
                    assert covers(out, concrete)


class TestAlgebraicLaws:
    @given(logic_values, logic_values)
    def test_commutativity(self, a, b):
        for op in BINARY_OPS:
            assert op(a, b) is op(b, a)

    @given(logic_values, logic_values)
    def test_de_morgan(self, a, b):
        assert l_not(l_and(a, b)) is l_or(l_not(a), l_not(b))
        assert l_not(l_or(a, b)) is l_and(l_not(a), l_not(b))

    @given(logic_values)
    def test_double_negation_known(self, a):
        out = l_not(l_not(a))
        if a.is_known:
            assert out is a
        else:
            assert out is Logic.X


class TestCoversMergeLaws:
    @given(logic_values, logic_values)
    def test_merge_is_least_upper_bound(self, a, b):
        m = merge(a, b)
        assert covers(m, a) and covers(m, b)

    @given(logic_values, logic_values)
    def test_merge_commutes(self, a, b):
        assert merge(a, b) is merge(b, a)

    @given(logic_values, logic_values, logic_values)
    def test_merge_associates(self, a, b, c):
        assert merge(merge(a, b), c) is merge(a, merge(b, c))

    @given(logic_values)
    def test_covers_reflexive(self, a):
        assert covers(a, a)

    @given(logic_values, logic_values, logic_values)
    def test_covers_transitive(self, a, b, c):
        if covers(a, b) and covers(b, c):
            assert covers(a, c)


class TestSymbolicRefinesPlain:
    """A labeled-symbol evaluation is never *more* conservative than the
    plain-X evaluation, and always sound for consistent assignments."""

    syms = st.sampled_from(["a", "b"])

    @given(st.sampled_from(["and", "or", "xor"]), syms, syms,
           st.booleans(), st.booleans())
    def test_symbolic_result_sound(self, opname, s1, s2, n1, n2):
        x = SymBit.symbol(s1)
        if n1:
            x = x.inv()
        y = SymBit.symbol(s2)
        if n2:
            y = y.inv()
        out = getattr(x, opname + "_")(y)
        # check against every consistent assignment of symbols a, b
        for va in (0, 1):
            for vb in (0, 1):
                env = {"a": va, "b": vb}
                cx = env[s1] ^ n1
                cy = env[s2] ^ n2
                if opname == "and":
                    cz = cx & cy
                elif opname == "or":
                    cz = cx | cy
                else:
                    cz = cx ^ cy
                assert covers(out.level,
                              Logic.L1 if cz else Logic.L0)
