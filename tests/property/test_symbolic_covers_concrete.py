"""Property test: the central soundness theorem, end to end.

For a random synchronous netlist, run it once with some inputs replaced
by X (the symbolic run) and once per concrete completion of those inputs
(concrete runs).  Every net value of every concrete run at every cycle
must be covered by the symbolic run's value, and every net that toggles
concretely must appear in the symbolic exercised set.  This is the
gate-level generalization of the paper's 5.0.1 subset validation, on
arbitrary circuits instead of the three cores.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic import Logic, covers
from repro.netlist import Netlist
from repro.sim import CompiledNetlist, CycleSim

COMB_KINDS = ["AND", "OR", "XOR", "NAND", "NOR", "XNOR", "NOT", "BUF",
              "MUX2"]


@st.composite
def seq_netlist(draw):
    """Random netlist with feedback through flops (real FSM shapes)."""
    n_inputs = draw(st.integers(2, 4))
    n_flops = draw(st.integers(1, 3))
    n_gates = draw(st.integers(4, 14))
    nl = Netlist("rand")
    pool = []
    for i in range(n_inputs):
        net = nl.add_net(f"in{i}")
        nl.mark_input(net)
        pool.append(net)
    flop_qs = []
    for f in range(n_flops):
        q = nl.add_net(f"q{f}")
        pool.append(q)
        flop_qs.append(q)
    for g in range(n_gates):
        kind = draw(st.sampled_from(COMB_KINDS))
        arity = {"NOT": 1, "BUF": 1, "MUX2": 3}.get(kind, 2)
        ins = [pool[draw(st.integers(0, len(pool) - 1))]
               for _ in range(arity)]
        out = nl.add_net(f"n{g}")
        nl.add_gate(f"g{g}", kind, ins, out)
        pool.append(out)
    for f, q in enumerate(flop_qs):
        d = pool[draw(st.integers(0, len(pool) - 1))]
        nl.add_gate(f"ff{f}", "DFF", [d], q)
    nl.mark_output(pool[-1])
    return nl


@st.composite
def stimulus_plan(draw, n_inputs):
    """Per input: symbolic or a fixed bit; plus which inputs flip when."""
    symbolic = [draw(st.booleans()) for _ in range(n_inputs)]
    if not any(symbolic):
        symbolic[0] = True
    base = [draw(st.booleans()) for _ in range(n_inputs)]
    return symbolic, base


def _run(nl, input_values, cycles):
    sim = CycleSim(CompiledNetlist(nl))
    for net, value in zip(nl.inputs, input_values):
        sim.set_net(net, value)
    # flops start at 0 for comparability (concrete initial state)
    for g in nl.gates:
        if g.is_sequential:
            sim.set_net(g.output, Logic.L0)
    sim.settle()
    sim.arm_activity()
    trace = []
    for _ in range(cycles):
        sim.settle()
        sim.record_activity_now()
        trace.append([sim.get_net(i) for i in range(len(nl.nets))])
        sim.clock_edge()
    return sim, trace


class TestSymbolicCoversConcrete:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_values_and_activity_covered(self, data):
        nl = data.draw(seq_netlist())
        n_inputs = len(nl.inputs)
        symbolic, base = data.draw(stimulus_plan(n_inputs))
        cycles = 3

        sym_inputs = [Logic.X if symbolic[i]
                      else (Logic.L1 if base[i] else Logic.L0)
                      for i in range(n_inputs)]
        sym_sim, sym_trace = _run(nl, sym_inputs, cycles)
        sym_exercised = sym_sim.exercised_nets()

        # enumerate every completion of the symbolic inputs
        free = [i for i in range(n_inputs) if symbolic[i]]
        for assignment in range(1 << len(free)):
            conc_inputs = list(sym_inputs)
            for k, i in enumerate(free):
                conc_inputs[i] = Logic.L1 if (assignment >> k) & 1 \
                    else Logic.L0
            conc_sim, conc_trace = _run(nl, conc_inputs, cycles)
            for cyc in range(cycles):
                for net in range(len(nl.nets)):
                    assert covers(sym_trace[cyc][net],
                                  conc_trace[cyc][net]), (
                        f"cycle {cyc} net {nl.net_name(net)}")
            extra = conc_sim.exercised_nets() & ~sym_exercised
            assert not extra.any(), (
                [nl.net_name(i) for i in extra.nonzero()[0][:4]])
