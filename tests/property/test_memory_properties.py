"""Property tests: symbolic memory soundness.

The memory model must over-approximate: whatever a concrete memory would
contain after a sequence of reads/writes, the symbolic memory's contents
must cover it -- including under X addresses and X write-enables.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic import Logic
from repro.logic.vector import LVec
from repro.sim import XMemory

WORDS = 8
WIDTH = 4
ADDR_BITS = 3


@st.composite
def partial_addr(draw):
    concrete = draw(st.integers(0, WORDS - 1))
    xmask = draw(st.integers(0, WORDS - 1))
    bits = []
    for i in range(ADDR_BITS):
        if (xmask >> i) & 1:
            bits.append(Logic.X)
        else:
            bits.append(Logic.L1 if (concrete >> i) & 1 else Logic.L0)
    # ensure the concrete address is a completion of the partial one
    concrete_masked = concrete
    return LVec(bits), concrete_masked


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 6))):
        addr, concrete_addr = draw(partial_addr())
        data = draw(st.integers(0, (1 << WIDTH) - 1))
        enable = draw(st.sampled_from([Logic.L1, Logic.X]))
        en_concrete = draw(st.booleans()) if enable is Logic.X else True
        ops.append((addr, concrete_addr, data, enable, en_concrete))
    return ops


class TestWriteSoundness:
    @settings(max_examples=60, deadline=None)
    @given(operations())
    def test_symbolic_memory_covers_concrete_execution(self, ops):
        sym = XMemory(WORDS, WIDTH)
        concrete = [0] * WORDS
        for addr, concrete_addr, data, enable, en_concrete in ops:
            sym.write(addr, LVec.from_int(data, WIDTH), enable=enable)
            if en_concrete:
                concrete[concrete_addr] = data
        for a in range(WORDS):
            assert sym.read_concrete(a).covers(
                LVec.from_int(concrete[a], WIDTH)), (
                f"word {a}: {sym.read_concrete(a)} does not cover "
                f"{concrete[a]}")

    @settings(max_examples=60, deadline=None)
    @given(partial_addr(), st.integers(0, (1 << WIDTH) - 1))
    def test_symbolic_read_covers_concrete_read(self, pa, seed):
        addr, concrete_addr = pa
        mem = XMemory(WORDS, WIDTH)
        for a in range(WORDS):
            mem.load_word(a, (seed + 3 * a) % (1 << WIDTH))
        symbolic = mem.read(addr)
        concrete = mem.read_concrete(concrete_addr)
        assert symbolic.covers(concrete)


class TestCoversMergeLaws:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_merge_from_covers_both(self, v1, v2):
        a = XMemory(2, WIDTH)
        b = XMemory(2, WIDTH)
        a.load_word(0, v1)
        b.load_word(0, v2)
        merged = XMemory(2, WIDTH)
        merged.load_word(0, v1)
        merged.merge_from(b)
        assert merged.covers(a)
        assert merged.covers(b)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 15))
    def test_snapshot_restore_identity(self, v):
        m = XMemory(2, WIDTH)
        m.load_word(1, v)
        snap = m.snapshot()
        m.fill_unknown()
        m.restore(snap)
        assert m.read_concrete(1).to_int() == v
