"""Property tests: the two simulation engines agree gate-for-gate.

This is the reproduction of the paper's non-interference validation
(section 5.0.1): the enhanced simulator must behave exactly like a
baseline simulator on ordinary stimulus.  Here the vectorized cycle
engine is cross-checked against the event-driven kernel on randomly
generated netlists and random four-valued stimulus.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic import Logic
from repro.netlist import Netlist
from repro.sim import CompiledNetlist, CycleSim, EventSim

COMB_KINDS = ["AND", "OR", "XOR", "NAND", "NOR", "XNOR", "NOT", "BUF",
              "MUX2"]


@st.composite
def random_netlist(draw):
    """A random feed-forward netlist with a few flops."""
    n_inputs = draw(st.integers(2, 5))
    n_gates = draw(st.integers(3, 18))
    nl = Netlist("rand")
    pool = []
    for i in range(n_inputs):
        net = nl.add_net(f"in{i}")
        nl.mark_input(net)
        pool.append(net)
    for g in range(n_gates):
        kind = draw(st.sampled_from(COMB_KINDS))
        arity = {"NOT": 1, "BUF": 1, "MUX2": 3}.get(kind, 2)
        ins = [pool[draw(st.integers(0, len(pool) - 1))]
               for _ in range(arity)]
        out = nl.add_net(f"n{g}")
        nl.add_gate(f"g{g}", kind, ins, out)
        pool.append(out)
    # a couple of flops fed from the pool (their outputs feed nothing to
    # keep the graph feed-forward and the comparison simple)
    n_flops = draw(st.integers(0, 2))
    for f in range(n_flops):
        d_net = pool[draw(st.integers(0, len(pool) - 1))]
        q = nl.add_net(f"q{f}")
        nl.add_gate(f"ff{f}", "DFF", [d_net], q)
    nl.mark_output(pool[-1])
    return nl


logic_vals = st.sampled_from([Logic.L0, Logic.L1, Logic.X])

FLOP_KINDS = ["DFF", "DFFE", "DFFR", "DFFER"]


@st.composite
def stimulus(draw, n_inputs, n_cycles):
    return [[draw(logic_vals) for _ in range(n_inputs)]
            for _ in range(n_cycles)]


@st.composite
def random_seq_netlist(draw):
    """A random netlist whose flop outputs feed back into later logic.

    Unlike :func:`random_netlist`, enable/reset pins of DFFE/DFFER
    flops connect to arbitrary pool nets, so the engines' X-merging
    ladders (unknown enable, unknown reset) are exercised directly.
    """
    n_inputs = draw(st.integers(2, 4))
    n_ops = draw(st.integers(4, 16))
    nl = Netlist("randseq")
    pool = []
    for i in range(n_inputs):
        net = nl.add_net(f"in{i}")
        nl.mark_input(net)
        pool.append(net)
    for g in range(n_ops):
        if draw(st.integers(0, 3)) == 0:
            kind = draw(st.sampled_from(FLOP_KINDS))
            pins = [pool[draw(st.integers(0, len(pool) - 1))]]
            if "E" in kind:
                pins.append(pool[draw(st.integers(0, len(pool) - 1))])
            if kind.endswith("R"):
                pins.append(pool[draw(st.integers(0, len(pool) - 1))])
            q = nl.add_net(f"q{g}")
            nl.add_gate(f"ff{g}", kind, pins, q)
            pool.append(q)
        else:
            kind = draw(st.sampled_from(COMB_KINDS))
            arity = {"NOT": 1, "BUF": 1, "MUX2": 3}.get(kind, 2)
            ins = [pool[draw(st.integers(0, len(pool) - 1))]
                   for _ in range(arity)]
            out = nl.add_net(f"n{g}")
            nl.add_gate(f"g{g}", kind, ins, out)
            pool.append(out)
    nl.mark_output(pool[-1])
    return nl


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_every_net_matches_across_engines(self, data):
        nl = data.draw(random_netlist())
        n_inputs = len(nl.inputs)
        stim = data.draw(stimulus(n_inputs, n_cycles=4))

        cyc = CycleSim(CompiledNetlist(nl))
        evt = EventSim(nl)
        for cycle_inputs in stim:
            for i, value in zip(nl.inputs, cycle_inputs):
                cyc.set_net(i, value)
                evt.poke(i, value)
            cyc.settle()
            cyc.clock_edge()
            evt.tick()
            for net in range(len(nl.nets)):
                assert cyc.get_net(net) is evt.get_logic(net), \
                    f"net {nl.net_name(net)} diverged"

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_event_count_stable_with_symbolic_tasks(self, data):
        """Registering a (never-firing) symbolic task must not change
        simulated values -- the paper's 'event list matches baseline'
        check."""
        nl = data.draw(random_netlist())
        stim = data.draw(stimulus(len(nl.inputs), n_cycles=3))

        plain = EventSim(nl)
        enhanced = EventSim(nl)
        observed = []
        enhanced.add_symbolic_task(lambda s: observed.append(s.cycle))
        for cycle_inputs in stim:
            for i, value in zip(nl.inputs, cycle_inputs):
                plain.poke(i, value)
                enhanced.poke(i, value)
            plain.tick()
            enhanced.tick()
            for net in range(len(nl.nets)):
                assert plain.get_logic(net) is enhanced.get_logic(net)
        assert observed == list(range(len(stim)))


class TestForcedSequentialEquivalence:
    """Cross-tests with active forces and enable/reset flops -- the
    fork/replay hot path's semantics, pinned against the event kernel."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_forced_nets_and_flops_match_across_engines(self, data):
        nl = data.draw(random_seq_netlist())
        n_nets = len(nl.nets)
        cyc = CycleSim(CompiledNetlist(nl))
        evt = EventSim(nl)
        forced = set()
        for _ in range(5):
            for i in nl.inputs:
                value = data.draw(logic_vals)
                cyc.set_net(i, value)
                evt.poke(i, value)
            op = data.draw(st.integers(0, 3))
            if op == 0:
                net = data.draw(st.integers(0, n_nets - 1))
                value = data.draw(logic_vals)
                cyc.force(net, value)
                evt.force(net, value)
                forced.add(net)
            elif op == 1 and forced:
                net = data.draw(st.sampled_from(sorted(forced)))
                cyc.release(net)
                evt.release(net)
                forced.discard(net)
            cyc.settle()
            cyc.clock_edge()
            cyc.settle()
            evt.tick()
            for net in range(n_nets):
                assert cyc.get_net(net) is evt.get_logic(net), \
                    f"net {nl.net_name(net)} diverged (forced={forced})"

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_incremental_settle_matches_full_sweep(self, data):
        """The dirty-cone settle and the full levelized sweep are the
        same function -- under pokes, forces, releases, and restores."""
        import warnings as _warnings

        from repro.sim import ForcedRestoreWarning

        nl = data.draw(random_seq_netlist())
        compiled = CompiledNetlist(nl)
        inc = CycleSim(compiled, incremental=True)
        full = CycleSim(compiled, incremental=False)
        n_nets = len(nl.nets)
        snaps = []
        forced = set()
        for _ in range(6):
            for i in nl.inputs:
                value = data.draw(logic_vals)
                inc.set_net(i, value)
                full.set_net(i, value)
            op = data.draw(st.integers(0, 5))
            if op == 0:
                net = data.draw(st.integers(0, n_nets - 1))
                value = data.draw(logic_vals)
                inc.force(net, value)
                full.force(net, value)
                forced.add(net)
            elif op == 1 and forced:
                net = data.draw(st.sampled_from(sorted(forced)))
                inc.release(net)
                full.release(net)
                forced.discard(net)
            elif op == 2:
                snaps.append((inc.snapshot(), full.snapshot()))
            elif op == 3 and snaps:
                si, sf = snaps[data.draw(
                    st.integers(0, len(snaps) - 1))]
                with _warnings.catch_warnings():
                    _warnings.simplefilter("ignore", ForcedRestoreWarning)
                    inc.restore(si)
                    full.restore(sf)
                forced.clear()
            inc.settle()
            full.settle()
            assert (inc.val == full.val).all()
            assert (inc.known == full.known).all()
            inc.clock_edge()
            full.clock_edge()
            inc.settle()
            full.settle()
            assert (inc.val == full.val).all()
            assert (inc.known == full.known).all()
        # full-path sim never takes the incremental shortcut
        assert full.incremental_settles == 0


class TestResynthesisPreservesSemantics:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_fold_sweep_equivalent_on_concrete_inputs(self, data):
        from repro.bespoke import resynthesize
        nl = data.draw(random_netlist())
        out_net_name = nl.net_name(nl.outputs[0])
        opt = resynthesize(nl)
        stim = data.draw(stimulus(len(nl.inputs), n_cycles=3))
        a = CycleSim(CompiledNetlist(nl))
        b = CycleSim(CompiledNetlist(opt))
        for cycle_inputs in stim:
            for idx, value in zip(nl.inputs, cycle_inputs):
                a.set_net(idx, value)
                name = nl.net_name(idx)
                if opt.has_net(name):
                    b.set_net(opt.net_index(name), value)
            a.settle()
            b.settle()
            va = a.get_net(nl.net_index(out_net_name))
            vb = b.get_net(opt.net_index(out_net_name))
            # resynthesis may only *refine* (X -> known), never disagree
            if va.is_known or vb.is_known:
                from repro.logic import covers
                assert covers(va, vb) or va is vb
