"""Property: state/CSM serialization round-trips bit-identically.

Checkpoints persist pickled ``SimState``s and CSM snapshots, so resume
correctness reduces to these round-trips being exact -- and to corrupted
blobs being *rejected* rather than decoded into plausible garbage.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csm.manager import ConservativeStateManager
from repro.sim.state import SimState, StateDecodeError


def bitplane(draw, n):
    bits = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return np.array(bits, dtype=bool)


@st.composite
def states(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    memories = {}
    for name in draw(st.lists(st.sampled_from(["ram", "rom", "regs"]),
                              unique=True, max_size=2)):
        words = draw(st.integers(min_value=1, max_value=8))
        width = draw(st.integers(min_value=1, max_value=16))
        memories[name] = (
            np.array(draw(st.lists(st.lists(st.booleans(), min_size=width,
                                            max_size=width),
                                   min_size=words, max_size=words)),
                     dtype=bool),
            np.array(draw(st.lists(st.lists(st.booleans(), min_size=width,
                                            max_size=width),
                                   min_size=words, max_size=words)),
                     dtype=bool))
    return SimState(
        net_val=bitplane(draw, n), net_known=bitplane(draw, n),
        memories=memories,
        cycle=draw(st.integers(min_value=0, max_value=10 ** 9)),
        pc=draw(st.one_of(st.none(),
                          st.integers(min_value=0, max_value=2 ** 16))),
        meta={"forced": draw(st.one_of(st.none(), st.integers(0, 1)))})


def assert_identical(a: SimState, b: SimState):
    assert np.array_equal(a.net_val, b.net_val)
    assert np.array_equal(a.net_known, b.net_known)
    assert set(a.memories) == set(b.memories)
    for name, (val, known) in a.memories.items():
        bval, bknown = b.memories[name]
        assert np.array_equal(val, bval)
        assert np.array_equal(known, bknown)
    assert (a.cycle, a.pc, a.meta) == (b.cycle, b.pc, b.meta)


@settings(max_examples=60, deadline=None)
@given(states())
def test_bytes_roundtrip_identical(state):
    assert_identical(state, SimState.from_bytes(state.to_bytes()))


@settings(max_examples=60, deadline=None)
@given(states(), st.data())
def test_single_byte_corruption_detected(state, data):
    blob = bytearray(state.to_bytes())
    pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    blob[pos] ^= flip
    with pytest.raises(StateDecodeError):
        SimState.from_bytes(bytes(blob))


@settings(max_examples=25, deadline=None)
@given(st.lists(states(), min_size=1, max_size=4),
       st.integers(min_value=0, max_value=2 ** 12))
def test_csm_snapshot_roundtrip(observed, pc):
    # build a repository, snapshot it, restore into a fresh manager, and
    # check the two managers are bit-identical and decide identically
    csm = ConservativeStateManager()
    base = observed[0]
    for state in observed:
        if state.compatible(base):
            csm.observe(pc, state)
    import pickle
    blob = pickle.loads(pickle.dumps(csm.snapshot_state()))

    clone = ConservativeStateManager()
    clone.restore_state(blob)
    assert clone.pcs() == csm.pcs()
    for at in csm.pcs():
        assert [s.fingerprint() for s in clone.states_for(at)] == \
            [s.fingerprint() for s in csm.states_for(at)]
    assert clone.stats.snapshot() == csm.stats.snapshot()

    probe = base.copy()
    a = csm.observe(pc, probe.copy())
    b = clone.observe(pc, probe.copy())
    assert a.covered == b.covered
    if not a.covered:
        assert a.resume_state.fingerprint() == b.resume_state.fingerprint()


def test_snapshot_rejects_wrong_strategy():
    from repro.csm.strategies import ExactSet
    csm = ConservativeStateManager()
    blob = csm.snapshot_state()
    other = ConservativeStateManager(strategy=ExactSet())
    with pytest.raises(ValueError):
        other.restore_state(blob)


def test_snapshot_rejects_unknown_version():
    csm = ConservativeStateManager()
    blob = csm.snapshot_state()
    blob["version"] = 99
    with pytest.raises(ValueError):
        ConservativeStateManager().restore_state(blob)


def test_legacy_bare_pickle_still_decodes():
    import pickle
    state = SimState(np.array([True], dtype=bool),
                     np.array([True], dtype=bool), {}, pc=1)
    legacy = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    assert_identical(state, SimState.from_bytes(legacy))
