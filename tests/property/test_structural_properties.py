"""Property tests: structural transformations (resynthesis, Verilog IO).

* re-synthesis is idempotent (a second pass changes nothing),
* re-synthesis never grows a netlist,
* Verilog emission/parsing round-trips arbitrary netlists losslessly.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bespoke import resynthesize
from repro.netlist import Netlist, parse_verilog, write_verilog

COMB_KINDS = ["AND", "OR", "XOR", "NAND", "NOR", "XNOR", "NOT", "BUF",
              "MUX2", "TIE0", "TIE1"]


@st.composite
def random_netlist(draw):
    n_inputs = draw(st.integers(1, 4))
    n_gates = draw(st.integers(2, 16))
    nl = Netlist("rand")
    pool = []
    for i in range(n_inputs):
        net = nl.add_net(f"in{i}")
        nl.mark_input(net)
        pool.append(net)
    for g in range(n_gates):
        kind = draw(st.sampled_from(COMB_KINDS))
        arity = {"NOT": 1, "BUF": 1, "MUX2": 3,
                 "TIE0": 0, "TIE1": 0}.get(kind, 2)
        ins = [pool[draw(st.integers(0, len(pool) - 1))]
               for _ in range(arity)]
        out = nl.add_net(f"n{g}")
        nl.add_gate(f"g{g}", kind, ins, out)
        pool.append(out)
    if draw(st.booleans()):
        q = nl.add_net("q0")
        nl.add_gate("ff0", "DFF", [pool[draw(st.integers(
            0, len(pool) - 1))]], q)
        nl.mark_output(q)
    nl.mark_output(pool[-1])
    return nl


class TestResynthesisProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_netlist())
    def test_never_grows(self, nl):
        out = resynthesize(nl)
        assert out.gate_count() <= nl.gate_count()
        assert out.area() <= nl.area() + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(random_netlist())
    def test_idempotent(self, nl):
        once = resynthesize(nl)
        twice = resynthesize(once)
        assert twice.gate_count() == once.gate_count()
        assert [g.kind for g in twice.gates] == \
            [g.kind for g in once.gates]

    @settings(max_examples=50, deadline=None)
    @given(random_netlist())
    def test_outputs_preserved(self, nl):
        out = resynthesize(nl)
        assert [out.net_name(i) for i in out.outputs] == \
            [nl.net_name(i) for i in nl.outputs]
        assert [out.net_name(i) for i in out.inputs] == \
            [nl.net_name(i) for i in nl.inputs]

    @settings(max_examples=50, deadline=None)
    @given(random_netlist())
    def test_result_validates(self, nl):
        resynthesize(nl).validate()


class TestVerilogRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(random_netlist())
    def test_roundtrip_structure(self, nl):
        back = parse_verilog(write_verilog(nl))
        assert back.gate_count() == nl.gate_count()
        assert [g.kind for g in back.gates] == [g.kind for g in nl.gates]
        assert [g.name for g in back.gates] == [g.name for g in nl.gates]
        for gb, ga in zip(back.gates, nl.gates):
            assert [back.net_name(i) for i in gb.inputs] == \
                [nl.net_name(i) for i in ga.inputs]
        assert len(back.inputs) == len(nl.inputs)
        assert len(back.outputs) == len(nl.outputs)

    @settings(max_examples=25, deadline=None)
    @given(random_netlist())
    def test_double_roundtrip_stable(self, nl):
        text1 = write_verilog(nl)
        text2 = write_verilog(parse_verilog(text1))
        assert text1 == text2
