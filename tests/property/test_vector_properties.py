"""Property tests: vector arithmetic soundness under partial knowledge."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic import Logic
from repro.logic.vector import LVec

WIDTH = 8


@st.composite
def partial_vectors(draw, width=WIDTH):
    """A vector with X bits plus one concrete completion of it."""
    concrete = draw(st.integers(0, (1 << width) - 1))
    xmask = draw(st.integers(0, (1 << width) - 1))
    bits = []
    for i in range(width):
        if (xmask >> i) & 1:
            bits.append(Logic.X)
        else:
            bits.append(Logic.L1 if (concrete >> i) & 1 else Logic.L0)
    return LVec(bits), concrete


class TestArithmeticSoundness:
    @given(partial_vectors(), partial_vectors())
    def test_add_covers_concrete(self, pa, pb):
        (va, ca), (vb, cb) = pa, pb
        symbolic = va + vb
        concrete = LVec.from_int(ca + cb, WIDTH)
        assert symbolic.covers(concrete)

    @given(partial_vectors(), partial_vectors())
    def test_sub_covers_concrete(self, pa, pb):
        (va, ca), (vb, cb) = pa, pb
        assert (va - vb).covers(LVec.from_int(ca - cb, WIDTH))

    @given(partial_vectors(), partial_vectors())
    def test_bitwise_cover(self, pa, pb):
        (va, ca), (vb, cb) = pa, pb
        assert (va & vb).covers(LVec.from_int(ca & cb, WIDTH))
        assert (va | vb).covers(LVec.from_int(ca | cb, WIDTH))
        assert (va ^ vb).covers(LVec.from_int(ca ^ cb, WIDTH))
        assert (~va).covers(LVec.from_int(~ca, WIDTH))

    @given(partial_vectors(), partial_vectors())
    def test_eq_ult_cover(self, pa, pb):
        from repro.logic.value import covers
        (va, ca), (vb, cb) = pa, pb
        assert covers(va.eq(vb),
                      Logic.L1 if ca == cb else Logic.L0)
        assert covers(va.ult(vb),
                      Logic.L1 if ca < cb else Logic.L0)

    @given(partial_vectors(), st.integers(0, WIDTH))
    def test_shifts_cover(self, pa, amount):
        va, ca = pa
        assert va.shl(amount).covers(LVec.from_int(ca << amount, WIDTH))
        assert va.shr(amount).covers(LVec.from_int(ca >> amount, WIDTH))


class TestExactOnKnown:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add_exact(self, a, b):
        out = LVec.from_int(a, WIDTH) + LVec.from_int(b, WIDTH)
        assert out.to_int() == (a + b) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_sub_exact(self, a, b):
        out = LVec.from_int(a, WIDTH) - LVec.from_int(b, WIDTH)
        assert out.to_int() == (a - b) & 0xFF

    @given(st.integers(0, 255))
    def test_roundtrip(self, a):
        assert LVec.from_int(a, WIDTH).to_int() == a
        assert LVec.from_str(str(LVec.from_int(a, WIDTH))).to_int() == a


class TestMergeCoversLaws:
    @given(partial_vectors(), partial_vectors())
    def test_merge_covers_both(self, pa, pb):
        va, _ = pa
        vb, _ = pb
        m = va.merge(vb)
        assert m.covers(va) and m.covers(vb)

    @given(partial_vectors())
    def test_covers_reflexive(self, pa):
        va, ca = pa
        assert va.covers(va)
        assert va.covers(LVec.from_int(ca, WIDTH))

    @given(partial_vectors(), partial_vectors(), partial_vectors())
    def test_covers_transitive(self, pa, pb, pc):
        va, vb, vc = pa[0], pb[0], pc[0]
        if va.covers(vb) and vb.covers(vc):
            assert va.covers(vc)
