"""Integration: wave-parallel exploration agrees with the serial engine."""

import pytest

from repro.coanalysis.parallel import (ParallelCoAnalysis,
                                       WorkloadTargetFactory)
from repro.reporting.runner import run_one


@pytest.fixture(scope="module")
def pair():
    serial = run_one("dr5", "mult")
    parallel = ParallelCoAnalysis(
        WorkloadTargetFactory("dr5", "mult"),
        workers=2, application="mult").run()
    return serial, parallel


def test_counts_structurally_consistent(pair):
    """Wave (BFS-ish) order changes CSM merge order, so path counts may
    differ from the serial DFS engine -- exactly as between the paper's
    serial and parallel runs -- but bookkeeping invariants must hold and
    counts must stay in the same regime."""
    serial, parallel = pair
    assert parallel.paths_created == 1 + 2 * parallel.splits
    assert parallel.paths_skipped <= parallel.paths_created
    assert parallel.paths_created <= 3 * serial.paths_created
    assert serial.paths_created <= 3 * parallel.paths_created


def test_exercisable_set_identical(pair):
    serial, parallel = pair
    assert parallel.profile.exercisable_gates() == \
        serial.profile.exercisable_gates()


def test_single_worker_works():
    result = ParallelCoAnalysis(
        WorkloadTargetFactory("omsp430", "mult"),
        workers=1, application="mult").run()
    assert result.paths_created == 1


def test_factory_is_picklable():
    import pickle
    factory = WorkloadTargetFactory("dr5", "mult")
    clone = pickle.loads(pickle.dumps(factory))
    assert clone.design == "dr5"
    target = clone()
    assert target.name == "dr5"
