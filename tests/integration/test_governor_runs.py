"""Integration: governed runs end as resumable PartialResults (ISSUE 6).

A run that hits its wall-clock deadline, memory ceiling, frontier cap,
or receives SIGTERM must flush a final checkpoint and return a
first-class :class:`PartialResult` -- and resuming it must converge to
the same answer as an unbounded run.  A poison segment that kills
workers on every attempt must be quarantined with a recorded verdict
instead of dragging the pool into serial degradation.
"""

import os
import signal

import pytest

from repro.coanalysis.engine import CoAnalysisEngine
from repro.coanalysis.parallel import (ParallelCoAnalysis,
                                       WorkloadTargetFactory)
from repro.coanalysis.results import PartialResult
from repro.csm.manager import ConservativeStateManager
from repro.reporting.runner import run_one
from repro.resilience import (FaultPlan, FaultSpec, RunBudget, RunGovernor,
                              SupervisionPolicy, load_checkpoint)
from repro.workloads import WORKLOADS, build_target

DESIGN, BENCH = "bm32", "Div"

pytestmark = pytest.mark.timeout(600)

FAST_POLICY = dict(segment_timeout=20.0, backoff_base=0.01,
                   max_pool_restarts=3)


@pytest.fixture(scope="module")
def baseline():
    """Unbounded, fault-free serial reference run."""
    return run_one(DESIGN, BENCH, use_constraints=False)


def make_serial(**kw):
    target = build_target(DESIGN, WORKLOADS[BENCH])
    return CoAnalysisEngine(target, csm=ConservativeStateManager(),
                            application=BENCH, **kw)


def make_parallel(**kw):
    kw.setdefault("policy", SupervisionPolicy(**FAST_POLICY))
    return ParallelCoAnalysis(WorkloadTargetFactory(DESIGN, BENCH),
                              workers=2, application=BENCH, **kw)


class TestGovernedStops:
    def test_expired_deadline_returns_partial_not_exception(
            self, tmp_path, baseline):
        """deadline=0 trips at the first boundary: nothing explored,
        everything checkpointed, stop_reason machine-readable."""
        ckpt = tmp_path / "deadline.ckpt"
        partial = make_serial(checkpoint=str(ckpt),
                              budget=RunBudget(deadline_seconds=0.0)).run()
        assert isinstance(partial, PartialResult)
        assert partial.stop_reason == "deadline"
        assert not partial.complete
        assert partial.pending_paths == 1        # the initial path
        assert partial.path_records == []
        assert any(e.kind == "governed_stop" for e in partial.journal)
        assert load_checkpoint(ckpt) is not None

        resumed = make_serial(checkpoint=str(ckpt), resume=True).run()
        assert resumed.complete
        assert resumed.profile.exercisable_gates() == \
            baseline.profile.exercisable_gates()

    def test_memory_watchdog_stops_the_run(self, tmp_path):
        ckpt = tmp_path / "mem.ckpt"
        governor = RunGovernor(RunBudget(max_rss_mb=64.0),
                               rss_mb=lambda: 512.0)    # pinned over limit
        partial = make_serial(checkpoint=str(ckpt), budget=governor).run()
        assert isinstance(partial, PartialResult)
        assert partial.stop_reason == "memory"
        assert "512.0" in partial.stop_detail
        assert partial.metrics.stop_reason == "memory"

    def test_sigterm_mid_run_checkpoints_and_resumes(self, tmp_path,
                                                     baseline):
        """The acceptance scenario: a governed bm32 run SIGTERMed
        mid-wave stops gracefully with a final checkpoint, and the
        relaunched run converges to the unbounded answer."""
        ckpt = tmp_path / "sigterm.ckpt"
        # the fault plan delivers SIGTERM to the parent mid-wave-1
        # dispatch -- exactly a batch scheduler's preemption
        handler_before = signal.getsignal(signal.SIGTERM)
        engine = make_parallel(checkpoint=str(ckpt),
                               fault_plan=FaultPlan(
                                   [FaultSpec(1, 0, "sigterm")]),
                               budget=RunBudget())
        partial = engine.run()
        assert isinstance(partial, PartialResult)
        assert partial.stop_reason == "interrupted"
        assert "SIGTERM" in partial.stop_detail
        assert any(e.kind == "governed_stop" for e in partial.journal)
        assert load_checkpoint(ckpt) is not None
        # the previous disposition was restored on exit
        assert signal.getsignal(signal.SIGTERM) == handler_before

        resumed = make_parallel(checkpoint=str(ckpt), resume=True).run()
        assert resumed.complete and resumed.resumed
        assert resumed.profile.exercisable_gates() == \
            baseline.profile.exercisable_gates()

    def test_partial_summary_is_machine_readable(self, tmp_path):
        partial = make_serial(
            checkpoint=str(tmp_path / "s.ckpt"),
            budget=RunBudget(deadline_seconds=0.0)).run()
        summary = partial.summary()
        assert summary["partial"] is True
        assert summary["stop_reason"] == "deadline"
        assert summary["pending_paths"] == partial.pending_paths


class TestQuarantine:
    def test_poison_segment_is_quarantined_not_degraded(self, baseline):
        """The acceptance scenario: a segment that crashes its worker on
        every attempt is quarantined after the threshold and skipped
        with a recorded verdict -- the pool keeps running in parallel
        instead of degrading to serial."""
        plan = FaultPlan([FaultSpec(1, 0, "crash", persistent=True)])
        engine = make_parallel(fault_plan=plan, quarantine=2)
        result = engine.run()

        assert result.complete
        assert not result.degraded_to_serial
        assert not engine.stats.degraded
        assert result.quarantined_paths == 1
        kinds = [e.kind for e in result.journal]
        assert "quarantined" in kinds and "degraded" not in kinds
        (verdict,) = result.quarantine_verdicts
        assert verdict["quarantined"] and verdict["failures"] == 2
        assert verdict["kinds"] == ["crash", "crash"]
        (record,) = [r for r in result.path_records
                     if r.outcome == "quarantined"]
        assert record.cycles == 0
        assert result.metrics.quarantined == 1
        # the quarantined segment's activity was never explored, so the
        # answer is a (sound) subset of the fault-free dichotomy
        assert result.profile.exercisable_gates() <= \
            baseline.profile.exercisable_gates()

    def test_quarantine_verdicts_survive_resume(self, tmp_path):
        plan = FaultPlan([FaultSpec(1, 0, "crash", persistent=True)])
        ckpt = tmp_path / "quarantine.ckpt"
        first = make_parallel(fault_plan=plan, quarantine=2,
                              checkpoint=str(ckpt)).run()
        assert first.quarantine_verdicts

        resumed = make_parallel(quarantine=2, checkpoint=str(ckpt),
                                resume=True).run()
        assert resumed.resumed
        assert resumed.quarantine_verdicts == first.quarantine_verdicts

    def test_serial_engine_skips_quarantined_keys(self, tmp_path):
        """A registry carried in the checkpoint payload also filters
        pending paths on the serial engine (pre-dispatch skip)."""
        from repro.resilience import QuarantineRegistry, segment_key

        # quarantine the initial path's key, then run with the registry:
        # the kernel must seal it instead of dispatching
        target = build_target(DESIGN, WORKLOADS[BENCH])
        probe = CoAnalysisEngine(target, csm=ConservativeStateManager(),
                                 application=BENCH)
        initial = probe.run()
        first_record = initial.path_records[0]

        registry = QuarantineRegistry(threshold=1)
        engine = make_serial(quarantine=registry)
        # reconstruct the initial pending path's key via a fresh prepare
        from repro.coanalysis.executors import SerialExecutor
        executor = SerialExecutor(build_target(DESIGN, WORKLOADS[BENCH]))
        state = executor.prepare()
        registry.record_failure(segment_key(state.to_bytes(), None),
                                "crash", pc=first_record.start_pc)

        result = engine.run()
        assert result.quarantined_paths == 1
        assert result.path_records[0].outcome == "quarantined"
        # nothing else was explorable: the whole run was the poison root
        assert len(result.path_records) == 1
        assert result.complete
