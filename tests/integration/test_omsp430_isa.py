"""Instruction-level tests of the omsp430 core (m16 ISA).

Every instruction class is executed on the gate-level netlist and the
architectural result (register flops, N/Z/C/V flags, memory,
peripherals) is checked against the ISA definition.
"""

import pytest

from repro.coanalysis.concrete import run_concrete
from repro.isa import Msp430Assembler
from repro.logic import Logic
from repro.processors import CoreTarget
from repro.workloads import built_core

from .isa_harness import run_snippet


def r(name):
    return name  # readability helper


class TestDataMovement:
    def test_movi_positive(self):
        s = run_snippet("omsp430", "movi r1, 42")
        assert s.reg("r1") == 42

    def test_movi_sign_extends(self):
        s = run_snippet("omsp430", "movi r1, 0xF0")
        assert s.reg("r1") == 0xFFF0

    def test_movhi_sets_high_byte(self):
        s = run_snippet("omsp430", """
            movi r1, 0x34
            movhi r1, 0x1200
        """)
        assert s.reg("r1") == 0x1234

    def test_li_full_word(self):
        s = run_snippet("omsp430", "li r2, 0xBEEF")
        assert s.reg("r2") == 0xBEEF

    def test_mov_register(self):
        s = run_snippet("omsp430", """
            li r1, 0x1234
            mov r3, r1
        """)
        assert s.reg("r3") == 0x1234

    def test_clr(self):
        s = run_snippet("omsp430", "clr r4")
        assert s.reg("r4") == 0


class TestAluAndFlags:
    def test_add(self):
        s = run_snippet("omsp430", """
            movi r1, 100
            movi r2, 27
            add r1, r2
        """)
        assert s.reg("r1") == 127

    def test_add_sets_carry_and_zero(self):
        s = run_snippet("omsp430", """
            li r1, 0xFFFF
            movi r2, 1
            add r1, r2
        """)
        assert s.reg("r1") == 0
        assert s.flag("sr_c") == 1
        assert s.flag("sr_z") == 1

    def test_add_overflow_flag(self):
        s = run_snippet("omsp430", """
            li r1, 0x7FFF
            movi r2, 1
            add r1, r2
        """)
        assert s.flag("sr_v") == 1
        assert s.flag("sr_n") == 1

    def test_sub(self):
        s = run_snippet("omsp430", """
            movi r1, 50
            movi r2, 8
            sub r1, r2
        """)
        assert s.reg("r1") == 42

    def test_cmp_sets_flags_without_writeback(self):
        s = run_snippet("omsp430", """
            movi r1, 5
            movi r2, 5
            cmp r1, r2
        """)
        assert s.reg("r1") == 5
        assert s.flag("sr_z") == 1
        assert s.flag("sr_c") == 1    # no borrow

    def test_cmp_borrow_clears_carry(self):
        s = run_snippet("omsp430", """
            movi r1, 3
            movi r2, 5
            cmp r1, r2
        """)
        assert s.flag("sr_c") == 0
        assert s.flag("sr_n") == 1

    def test_logic_ops(self):
        s = run_snippet("omsp430", """
            li r1, 0xFF00
            li r2, 0x0FF0
            mov r3, r1
            and r3, r2
            mov r4, r1
            bis r4, r2
            mov r5, r1
            xor r5, r2
        """)
        assert s.reg("r3") == 0x0F00
        assert s.reg("r4") == 0xFFF0
        assert s.reg("r5") == 0xF0F0

    def test_logic_clears_carry_overflow(self):
        s = run_snippet("omsp430", """
            li r1, 0xFFFF
            movi r2, 1
            add r1, r2
            movi r3, 1
            and r3, r3
        """)
        assert s.flag("sr_c") == 0
        assert s.flag("sr_v") == 0

    def test_mov_preserves_flags(self):
        s = run_snippet("omsp430", """
            movi r1, 0
            movi r2, 0
            cmp r1, r2
            movi r3, 9
        """)
        # MOVI writes a register but must not disturb the flags
        assert s.flag("sr_z") == 1


class TestShifts:
    def test_rra_arithmetic(self):
        s = run_snippet("omsp430", """
            li r1, 0x8004
            rra r1
        """)
        assert s.reg("r1") == 0xC002

    def test_srl_logical(self):
        s = run_snippet("omsp430", """
            li r1, 0x8004
            srl r1
        """)
        assert s.reg("r1") == 0x4002

    def test_shift_carry_is_shifted_out_bit(self):
        s = run_snippet("omsp430", """
            movi r1, 3
            srl r1
        """)
        assert s.reg("r1") == 1
        assert s.flag("sr_c") == 1


class TestMemory:
    def test_load_store(self):
        s = run_snippet("omsp430", """
            movi r1, 64
            li r2, 0xCAFE
            st r2, 0(r1)
            ld r3, 0(r1)
        """)
        assert s.mem(64) == 0xCAFE
        assert s.reg("r3") == 0xCAFE

    def test_negative_offset(self):
        s = run_snippet("omsp430", """
            movi r1, 70
            movi r2, 99
            st r2, -6(r1)
        """, )
        assert s.mem(64) == 99

    def test_load_initial_data(self):
        s = run_snippet("omsp430", """
            movi r1, 80
            ld r2, 0(r1)
        """, data={80: 777})
        assert s.reg("r2") == 777


class TestControlFlow:
    def test_jrr_register_indirect(self):
        s = run_snippet("omsp430", """
            movi r1, target
            jrr r1
            movi r2, 9         ; skipped
        target:
            movi r3, 1
        """)
        assert s.reg("r3") == 1

    def test_jmp(self):
        s = run_snippet("omsp430", """
            movi r1, 1
            jmp over
            movi r1, 2
        over:
        """)
        assert s.reg("r1") == 1

    @pytest.mark.parametrize("jcc,a,b,taken", [
        ("jeq", 5, 5, True), ("jeq", 5, 6, False),
        ("jne", 5, 6, True), ("jne", 5, 5, False),
        ("jc", 7, 5, True), ("jc", 5, 7, False),
        ("jnc", 5, 7, True), ("jnc", 7, 5, False),
        ("jn", 3, 9, True), ("jn", 9, 3, False),
        ("jge", 9, 3, True), ("jge", 3, 9, False),
        ("jl", 3, 9, True), ("jl", 9, 3, False),
    ])
    def test_conditional_jumps(self, jcc, a, b, taken):
        s = run_snippet("omsp430", f"""
            movi r1, {a}
            movi r2, {b}
            movi r3, 0
            cmp r1, r2
            {jcc} hit
            jmp out
        hit:
            movi r3, 1
        out:
        """)
        assert s.reg("r3") == (1 if taken else 0)

    def test_signed_jl_across_zero(self):
        s = run_snippet("omsp430", """
            li r1, 0xFFFF     ; -1
            movi r2, 1
            movi r3, 0
            cmp r1, r2
            jl hit
            jmp out
        hit:
            movi r3, 1
        out:
        """)
        assert s.reg("r3") == 1

    def test_loop_with_counter(self):
        s = run_snippet("omsp430", """
            movi r0, 1
            movi r1, 5
            movi r2, 0
        loop:
            add r2, r0
            sub r1, r0
            jne loop
        """)
        assert s.reg("r2") == 5
        assert s.reg("r1") == 0


class TestPeripherals:
    def test_hardware_multiplier(self):
        s = run_snippet("omsp430", """
            li r4, 256         ; MPY_OP1
            movi r1, 7
            movi r2, 9
            st r1, 0(r4)
            st r2, 1(r4)
            ld r5, 2(r4)       ; RESLO
            ld r6, 3(r4)       ; RESHI
        """)
        assert s.reg("r5") == 63
        assert s.reg("r6") == 0

    def test_multiplier_high_half(self):
        s = run_snippet("omsp430", """
            li r4, 256
            li r1, 0x0200
            li r2, 0x0300
            st r1, 0(r4)
            st r2, 1(r4)
            ld r5, 2(r4)
            ld r6, 3(r4)
        """)
        product = 0x0200 * 0x0300
        assert s.reg("r5") == product & 0xFFFF
        assert s.reg("r6") == product >> 16

    def test_gpio_out_register(self):
        s = run_snippet("omsp430", """
            li r4, 260         ; GPIO_OUT
            li r1, 0xA5A5
            st r1, 0(r4)
            ld r2, 0(r4)
        """)
        assert s.reg("r2") == 0xA5A5

    def test_watchdog_counts_when_enabled(self):
        s = run_snippet("omsp430", """
            li r4, 262         ; WDT_CTL
            movi r1, 1
            st r1, 0(r4)       ; enable
            nop
            nop
            nop
            ld r2, 1(r4)       ; WDT_CNT
        """)
        assert s.reg("r2") >= 3

    def test_watchdog_idle_by_default(self):
        s = run_snippet("omsp430", """
            li r4, 263         ; WDT_CNT
            nop
            nop
            ld r2, 0(r4)
        """)
        assert s.reg("r2") == 0

    def test_timer_counts_and_compares(self):
        s = run_snippet("omsp430", """
            li r4, 264         ; TA_CTL
            movi r1, 1
            st r1, 0(r4)       ; enable timer
            nop
            nop
            ld r2, 1(r4)       ; TA_CNT
        """)
        assert s.reg("r2") >= 2

    def test_gie_and_ivec_registers(self):
        s = run_snippet("omsp430", """
            li r4, 267         ; IE_CTL
            li r5, 268         ; IVEC
            movi r1, 99
            st r1, 0(r5)
            movi r1, 1
            st r1, 0(r4)
            ld r2, 0(r4)       ; read GIE back
            ld r3, 0(r5)       ; read vector back
        """)
        assert s.reg("r2") == 1
        assert s.reg("r3") == 99

    def test_interrupt_logic_idle_without_irq(self):
        """With irq strapped low and GIE at its reset value, the
        interrupt never fires and normal execution is unaffected."""
        s = run_snippet("omsp430", """
            movi r1, 5
            movi r2, 6
            add r1, r2
        """)
        assert s.reg("r1") == 11
        assert s.flag("gie") == 0

    def test_peripheral_space_does_not_alias_dmem(self):
        s = run_snippet("omsp430", """
            movi r1, 0         ; dmem address 0
            li r2, 0x1111
            st r2, 0(r1)
            li r4, 256         ; MPY_OP1 (peripheral page)
            ld r3, 0(r4)
        """)
        assert s.mem(0) == 0x1111
        assert s.reg("r3") == 0   # peripheral register unaffected


class TestInterrupts:
    def run_with_irq(self, src, pulse_at, pulse_len=1, max_cycles=60):
        nl, meta = built_core("omsp430")
        program = Msp430Assembler().assemble(src)
        target = CoreTarget(nl, meta, program)
        sim = target.make_sim()
        target.reset(sim)
        target.apply_concrete_inputs(sim, {})
        for cycle in range(max_cycles):
            target.drive_all(sim)
            sim.set_input("irq",
                          Logic.L1 if pulse_at <= cycle <
                          pulse_at + pulse_len else Logic.L0)
            target.drive_all(sim)
            if target.is_done(sim):
                break
            target.on_edge(sim)
            sim.clock_edge()
        target.drive_all(sim)
        assert target.is_done(sim), "program did not halt"
        return nl, sim

    SIMPLE = """
        li r4, 267
        li r5, 268
        movi r1, isr
        st r1, 0(r5)
        movi r1, 1
        st r1, 0(r4)
    spin:
        jmp spin
    isr:
        movi r3, 77
        jmp _halt
    _halt:
        jmp _halt
    """

    def test_irq_vectors_and_links(self):
        nl, sim = self.run_with_irq(self.SIMPLE, pulse_at=12)
        assert sim.get_bus(nl.bus("r3", 16)).to_int() == 77
        # link register holds the preempted spin-loop address
        program = Msp430Assembler().assemble(self.SIMPLE)
        assert sim.get_bus(nl.bus("r7", 16)).to_int() == \
            program.label("spin")
        # GIE auto-cleared on take
        assert sim.get_net(nl.net_index("gie")) is Logic.L0

    def test_reti_returns_to_preempted_code(self):
        src = """
            li r4, 267
            li r5, 268
            movi r1, isr
            st r1, 0(r5)
            movi r1, 1
            st r1, 0(r4)
            movi r2, 0
            movi r3, 0          ; ISR flag (X until written otherwise)
        loop:
            movi r6, 1
            add r2, r6          ; keeps incrementing
            cmp r3, r1          ; r3 == 1 once ISR ran?  r1 == 1
            jeq _halt
            jmp loop
        isr:
            movi r3, 1
            reti
        _halt:
            jmp _halt
        """
        nl, sim = self.run_with_irq(src, pulse_at=14)
        # the ISR ran (r3 = 1) and execution resumed to reach _halt
        assert sim.get_bus(nl.bus("r3", 16)).to_int() == 1
        assert sim.get_bus(nl.bus("r2", 16)).to_int() >= 1

    def test_no_gie_no_take(self):
        src = """
            li r5, 268
            movi r1, isr
            st r1, 0(r5)        ; vector set but GIE stays 0
            movi r2, 0
            movi r6, 8
        loop:
            movi r1, 1
            add r2, r1
            cmp r2, r6
            jne loop
            jmp _halt
        isr:
            movi r3, 77
        _halt:
            jmp _halt
        """
        nl, sim = self.run_with_irq(src, pulse_at=10, pulse_len=4,
                                    max_cycles=80)
        r3 = sim.get_bus(nl.bus("r3", 16))
        assert not (r3.is_known and r3.to_int() == 77)
        assert sim.get_bus(nl.bus("r2", 16)).to_int() == 8
