"""Regression: checkpoints written by the pre-codec engines still resume.

Before the kernel extraction the serial and parallel engines each had a
private checkpoint payload shape; those journals exist on disk in the
wild, so :func:`decode_run_payload` must keep upgrading them.  This test
manufactures a faithful old-format journal by down-converting a real v2
payload to the legacy serial shape, then resumes it through the new
kernel and checks the run completes with the same answer as an
uninterrupted one.
"""

import pytest

from repro.coanalysis.engine import CoAnalysisEngine
from repro.coanalysis.executors import SerialExecutor
from repro.coanalysis.kernel import ExplorationKernel
from repro.coanalysis.results import RunInterrupted
from repro.reporting.runner import run_one
from repro.resilience.checkpoint import Checkpointer, load_checkpoint
from repro.workloads import WORKLOADS, build_target


def test_precodec_serial_journal_resumes(tmp_path):
    # interrupt a real run mid-exploration to get a live v2 payload
    target = build_target("dr5", WORKLOADS["mult"])
    ck = Checkpointer(tmp_path / "v2.ckpt", every_segments=1)
    kernel = ExplorationKernel(SerialExecutor(target), application="mult",
                               checkpoint=ck, stop_after_batches=2)
    with pytest.raises(RunInterrupted):
        kernel.run()
    v2 = load_checkpoint(ck.path)
    assert v2["codec"] == 2
    assert v2["frontier"]          # paths were actually pending

    # down-convert to the exact shape the pre-codec serial engine wrote
    legacy = {
        "engine": "serial",
        "design": v2["design"],
        "application": v2["application"],
        "stack": [(blob, forced, depth, parent)
                  for blob, forced, depth, parent, _ in v2["frontier"]],
        "csm": v2["csm"],
        "activity": {k: v for k, v in v2["activity"].items()
                     if k != "repr"},
        "counters": {k: v for k, v in v2["counters"].items()
                     if k != "batches_done"},
        "path_records": v2["path_records"],
        "per_path_exercised": v2["per_path_exercised"],
        "journal": v2["journal"],
    }
    legacy_path = tmp_path / "legacy.ckpt"
    Checkpointer(legacy_path).write(legacy, progress=0)

    resumed = CoAnalysisEngine(
        build_target("dr5", WORKLOADS["mult"]), application="mult",
        checkpoint=str(legacy_path), resume=True).run()
    assert resumed.resumed

    baseline = run_one("dr5", "mult")
    assert resumed.profile.exercisable_gates() == \
        baseline.profile.exercisable_gates()
    # the DFS schedule is deterministic, so the resumed run replays the
    # tail of the same exploration
    assert resumed.paths_created == baseline.paths_created
    assert resumed.simulated_cycles == baseline.simulated_cycles
