"""Integration: faulted and interrupted runs converge to the fault-free
answer (ISSUE 1 acceptance tests).

Worker death, hangs, and corrupted state hand-offs must be absorbed by
the supervision layer, and a checkpointed run killed partway through
must resume to the same exercisable-gate dichotomy as an uninterrupted
run -- never a silently different answer.

The whole suite re-runs under any frontier scheduling strategy: set
``REPRO_FRONTIER`` (``dfs``/``bfs``/``novelty``) to pin the schedule --
CI runs the dfs and bfs legs -- since fault recovery must be
order-independent.  ``REPRO_LANES`` (a multiple of 64) widens the
batched engine's lane planes the same way -- CI runs a 64/128/256
matrix -- since interrupt/resume must be lane-width-independent too.
"""

import os
import warnings

import pytest

from repro.coanalysis.engine import CoAnalysisEngine
from repro.coanalysis.parallel import (ParallelCoAnalysis,
                                       WorkloadTargetFactory)
from repro.coanalysis.results import ResumeMismatch, RunInterrupted
from repro.csm.manager import ConservativeStateManager
from repro.reporting.runner import run_one
from repro.resilience import (DegradedToSerialWarning, FaultPlan, FaultSpec,
                              SupervisionPolicy)
from repro.workloads import WORKLOADS, build_target

DESIGN, BENCH = "bm32", "Div"

#: frontier scheduling strategy under test (None = engine defaults)
FRONTIER = os.environ.get("REPRO_FRONTIER") or None

#: batched-engine lane width under test (None = engine default of 64)
LANES = int(os.environ["REPRO_LANES"]) if os.environ.get("REPRO_LANES") \
    else None

pytestmark = pytest.mark.timeout(600)

FAST_POLICY = dict(segment_timeout=20.0, backoff_base=0.01,
                   max_pool_restarts=3)


@pytest.fixture(scope="module")
def fault_free():
    """Serial, fault-free reference run (the ground truth)."""
    return run_one(DESIGN, BENCH, use_constraints=False,
                   frontier=FRONTIER or "dfs")


def make_parallel(**kw):
    kw.setdefault("frontier", FRONTIER)
    return ParallelCoAnalysis(WorkloadTargetFactory(DESIGN, BENCH),
                              workers=2, application=BENCH, **kw)


def make_serial(**kw):
    kw.setdefault("frontier", FRONTIER)
    target = build_target(DESIGN, WORKLOADS[BENCH])
    return CoAnalysisEngine(target, csm=ConservativeStateManager(),
                            application=BENCH, **kw)


def make_batch(**kw):
    kw.setdefault("frontier", FRONTIER)
    kw.setdefault("lanes", LANES)
    target = build_target(DESIGN, WORKLOADS[BENCH])
    return CoAnalysisEngine(target, csm=ConservativeStateManager(),
                            application=BENCH, backend="batch", **kw)


class TestFaultInjection:
    def test_worker_death_and_corruption_recover(self, fault_free):
        """A worker hard-killed mid-wave and one corrupted state
        hand-off both recover automatically; the exercisable-gate set
        equals the fault-free serial run's."""
        plan = FaultPlan([FaultSpec(1, 0, "die"),
                          FaultSpec(2, 0, "corrupt")])
        engine = make_parallel(
            fault_plan=plan,
            policy=SupervisionPolicy(segment_timeout=6.0, backoff_base=0.01,
                                     max_pool_restarts=3))
        result = engine.run()
        assert len(plan.fired) == 2
        assert result.profile.exercisable_gates() == \
            fault_free.profile.exercisable_gates()
        # the death was seen as a lost segment and the pool was rebuilt
        kinds = [e.kind for e in result.journal]
        assert "timeout" in kinds and "pool_restart" in kinds
        assert "corrupt" in kinds
        assert engine.stats.segment_retries >= 2
        assert engine.stats.worker_restarts >= 1
        assert result.recovered_failures == engine.stats.segment_retries
        assert not result.degraded_to_serial

    def test_worker_crash_recovers(self, fault_free):
        plan = FaultPlan([FaultSpec(1, 1, "crash")])
        engine = make_parallel(fault_plan=plan,
                               policy=SupervisionPolicy(**FAST_POLICY))
        result = engine.run()
        assert result.profile.exercisable_gates() == \
            fault_free.profile.exercisable_gates()
        assert engine.stats.segment_retries == 1
        assert any(e.kind == "crash" for e in result.journal)

    def test_mixed_fault_kinds_on_one_segment(self, fault_free):
        """One segment failing *differently* on consecutive attempts --
        hard death, then crash, then corrupted hand-off -- exhausts the
        retry budget across heterogeneous kinds; the run degrades with
        every kind journaled and still converges to the fault-free
        answer."""
        plan = FaultPlan([FaultSpec(1, 0, "die", attempt=0),
                          FaultSpec(1, 0, "crash", attempt=1),
                          FaultSpec(1, 0, "corrupt", attempt=2)])
        engine = make_parallel(
            fault_plan=plan,
            policy=SupervisionPolicy(max_retries=2, segment_timeout=6.0,
                                     backoff_base=0.01,
                                     max_pool_restarts=3))
        with pytest.warns(DegradedToSerialWarning):
            result = engine.run()
        fired_kinds = [kind for (_, _, _, kind) in plan.fired]
        assert fired_kinds == ["die", "crash", "corrupt"]
        kinds = [e.kind for e in result.journal]
        assert "timeout" in kinds      # the die, seen as a lost segment
        assert "crash" in kinds
        assert "corrupt" in kinds
        assert "degraded" in kinds
        assert result.degraded_to_serial
        assert result.profile.exercisable_gates() == \
            fault_free.profile.exercisable_gates()

    def test_mixed_faults_with_quarantine_keep_the_pool(self, fault_free):
        """The same heterogeneous poison segment under a quarantine
        registry: the failures count against one (pc, state) key, the
        segment is quarantined before the retry budget dies, and the
        pool never degrades."""
        plan = FaultPlan([FaultSpec(1, 0, "die", attempt=0),
                          FaultSpec(1, 0, "crash", attempt=1)])
        engine = make_parallel(
            fault_plan=plan, quarantine=2,
            policy=SupervisionPolicy(max_retries=5, segment_timeout=6.0,
                                     backoff_base=0.01,
                                     max_pool_restarts=3))
        result = engine.run()
        assert not result.degraded_to_serial
        assert result.quarantined_paths == 1
        (verdict,) = result.quarantine_verdicts
        assert verdict["kinds"] == ["timeout", "crash"]
        assert result.profile.exercisable_gates() <= \
            fault_free.profile.exercisable_gates()

    def test_repeated_failures_degrade_to_serial(self, fault_free):
        """A segment that fails on every attempt exhausts the retry
        budget; the run degrades to serial with a structured warning and
        still produces the fault-free answer."""
        plan = FaultPlan([FaultSpec(1, 0, "crash", persistent=True)])
        engine = make_parallel(
            fault_plan=plan,
            policy=SupervisionPolicy(max_retries=1, backoff_base=0.01,
                                     segment_timeout=20.0))
        with pytest.warns(DegradedToSerialWarning):
            result = engine.run()
        assert engine.stats.degraded
        assert result.degraded_to_serial
        assert any(e.kind == "degraded" for e in result.journal)
        assert result.profile.exercisable_gates() == \
            fault_free.profile.exercisable_gates()


class TestInterruptResume:
    def test_serial_interrupt_and_resume_matches_uninterrupted(
            self, tmp_path):
        """A checkpointed run killed partway through and resumed yields
        the same CoAnalysisResult dichotomy as an uninterrupted run."""
        baseline = make_serial().run()

        ckpt = tmp_path / "serial.ckpt"
        seen = [0]
        budget = baseline.simulated_cycles // 2

        def killer(sim, path_id, cycle):
            seen[0] += 1
            if seen[0] > budget:
                raise KeyboardInterrupt

        interrupted = make_serial(checkpoint=str(ckpt),
                                  cycle_observer=killer)
        interrupted.checkpoint.every_segments = 4
        with pytest.raises(KeyboardInterrupt):
            interrupted.run()
        assert ckpt.exists()

        resumed = make_serial(checkpoint=str(ckpt), resume=True).run()
        assert resumed.resumed
        assert any(e.kind == "resume" for e in resumed.journal)
        assert resumed.profile.exercisable_gates() == \
            baseline.profile.exercisable_gates()
        assert resumed.paths_created == baseline.paths_created
        assert resumed.paths_skipped == baseline.paths_skipped
        assert resumed.simulated_cycles == baseline.simulated_cycles
        assert len(resumed.path_records) == len(baseline.path_records)

    def test_parallel_stop_and_resume_matches_uninterrupted(
            self, tmp_path):
        baseline = make_parallel().run()

        ckpt = tmp_path / "parallel.ckpt"
        sliced = make_parallel(checkpoint=str(ckpt), stop_after_waves=4)
        with pytest.raises(RunInterrupted):
            sliced.run()

        resumed = make_parallel(checkpoint=str(ckpt), resume=True).run()
        assert resumed.resumed
        assert resumed.profile.exercisable_gates() == \
            baseline.profile.exercisable_gates()
        assert resumed.paths_created == baseline.paths_created
        assert resumed.simulated_cycles == baseline.simulated_cycles

    def test_batch_interrupt_and_resume_matches_uninterrupted(
            self, tmp_path, fault_free):
        """The lane-parallel batched engine honors the same checkpoint
        contract: a ^C mid-wave flushes a final checkpoint, and the
        resumed run converges to the fault-free serial dichotomy."""
        ckpt = tmp_path / "batch.ckpt"
        seen = [0]
        budget = fault_free.simulated_cycles // 2

        def killer(sim, path_id, cycle):
            seen[0] += 1
            if seen[0] > budget:
                raise KeyboardInterrupt

        interrupted = make_batch(checkpoint=str(ckpt),
                                 cycle_observer=killer)
        interrupted.checkpoint.every_segments = 4
        with pytest.raises(KeyboardInterrupt):
            interrupted.run()
        assert ckpt.exists()

        resumed = make_batch(checkpoint=str(ckpt), resume=True).run()
        assert resumed.resumed
        assert any(e.kind == "resume" for e in resumed.journal)
        assert resumed.profile.exercisable_gates() == \
            fault_free.profile.exercisable_gates()
        assert resumed.paths_created == fault_free.paths_created
        assert resumed.paths_skipped == fault_free.paths_skipped

    def test_batch_checkpoint_rejected_by_other_engines(self, tmp_path):
        """Engine kinds are part of the checkpoint identity: a batch
        checkpoint must not silently resume on the serial engine."""
        ckpt = tmp_path / "batch_only.ckpt"
        make_batch(checkpoint=str(ckpt)).run()
        with pytest.raises(ResumeMismatch):
            make_serial(checkpoint=str(ckpt), resume=True).run()

    def test_resume_from_finished_run_is_instant(self, tmp_path):
        ckpt = tmp_path / "done.ckpt"
        first = make_serial(checkpoint=str(ckpt)).run()
        again = make_serial(checkpoint=str(ckpt), resume=True).run()
        assert again.resumed
        assert again.simulated_cycles == first.simulated_cycles
        assert again.profile.exercisable_gates() == \
            first.profile.exercisable_gates()

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        ckpt = tmp_path / "other.ckpt"
        other = build_target(DESIGN, WORKLOADS["mult"])
        CoAnalysisEngine(other, csm=ConservativeStateManager(),
                         application="mult", checkpoint=str(ckpt)).run()
        with pytest.raises(ResumeMismatch):
            make_serial(checkpoint=str(ckpt), resume=True).run()

    def test_resume_without_record_starts_fresh(self, tmp_path):
        ckpt = tmp_path / "fresh.ckpt"
        result = make_parallel(checkpoint=str(ckpt), resume=True).run()
        assert not result.resumed
        assert result.paths_created >= 1
