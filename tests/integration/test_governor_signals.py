"""Governor signal handling when nested under the service's pool.

A service worker always runs with a :class:`RunGovernor` installed, so
SIGTERM delivered to a pool child while ``governed()`` is active must
turn into a checkpointed PARTIAL verdict -- frontier intact, resumable
-- and must never take the scheduler (or its other workers) down with
it.  A SIGKILL, by contrast, leaves no verdict: the scheduler retries
once against the checkpoint and only then settles the job as PARTIAL.
"""

import os
import signal
import time

import pytest

from repro.service import Scheduler, SchedulerConfig

pytestmark = pytest.mark.timeout(600)

#: bm32/Div: 67 paths, a few seconds of work -- wide enough to signal
LONG_SPEC = {"design": "bm32", "benchmark": "Div"}


def _signal_running_worker(sched, job_id, signum, require_checkpoint,
                           timeout=240.0):
    """Wait until the job's worker is live (and, optionally, has
    checkpointed), then deliver ``signum``.  Returns False if the job
    settled before a signal could land."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if sched.get(job_id).terminal:
            return False
        entry = sched._running.get(job_id)
        if entry is not None and entry.proc.is_alive() and entry.proc.pid:
            if not require_checkpoint or \
                    sched.job_store.checkpoint_path(job_id).is_file():
                try:
                    os.kill(entry.proc.pid, signum)
                    return True
                except ProcessLookupError:
                    continue
        time.sleep(0.02)
    raise TimeoutError(f"worker for {job_id} never became signalable")


def test_sigterm_in_pool_child_yields_partial_not_dead_scheduler(tmp_path):
    with Scheduler(tmp_path / "store",
                   SchedulerConfig(workers=2, max_retries=0)) as sched:
        # shard the run so checkpoints exist early and dispatches are
        # plentiful: SIGTERM is guaranteed to land mid-exploration
        job = sched.submit({**LONG_SPEC, "shard_segments": 10})
        landed = _signal_running_worker(sched, job.job_id, signal.SIGTERM,
                                        require_checkpoint=True)
        assert landed, "job finished before SIGTERM could be delivered"
        settled = sched.wait(job.job_id, timeout=240)

        # the governor inside the child turned the signal into a
        # cooperative stop: a PARTIAL with its frontier accounted for
        assert settled.state == "PARTIAL"
        assert settled.stop_reason == "interrupted"
        assert settled.pending_paths > 0
        assert sched.job_store.checkpoint_path(job.job_id).is_file()

        # the scheduler itself is untouched: it still runs jobs
        probe = sched.submit({"design": "dr5", "benchmark": "mult"})
        assert sched.wait(probe.job_id, timeout=300).state == "DONE"

        # resuming the PARTIAL converges to the unbounded answer
        resumed = sched.submit({**LONG_SPEC, "resume_from": job.job_id})
        final = sched.wait(resumed.job_id, timeout=300)
        assert final.state == "DONE"
        assert final.metrics["paths_explored"] == 67
        assert final.resume_of == job.job_id


def test_sigkill_retries_then_partial_with_checkpoint(tmp_path):
    with Scheduler(tmp_path / "store",
                   SchedulerConfig(workers=1, max_retries=1)) as sched:
        job = sched.submit({**LONG_SPEC, "shard_segments": 10})
        kills = 0
        while kills < 2:             # first kill consumes the one retry
            if not _signal_running_worker(sched, job.job_id,
                                          signal.SIGKILL,
                                          require_checkpoint=True):
                break
            kills += 1
            time.sleep(0.2)
        settled = sched.wait(job.job_id, timeout=240)
        if kills < 2:
            pytest.skip("run finished before both SIGKILLs landed")
        assert settled.state == "PARTIAL"
        assert settled.stop_reason == "worker_lost"
        assert settled.retries == 1
        assert sched.counters["retries"] == 1

        # the checkpoint the dead worker left behind still resumes
        resumed = sched.submit({**LONG_SPEC, "resume_from": job.job_id})
        final = sched.wait(resumed.job_id, timeout=300)
        assert final.state == "DONE"
        assert final.metrics["paths_explored"] == 67


def test_cancel_running_job_checkpoints_and_cancels(tmp_path):
    with Scheduler(tmp_path / "store",
                   SchedulerConfig(workers=1)) as sched:
        job = sched.submit({**LONG_SPEC, "shard_segments": 10})
        # wait for a live worker, then cancel through the scheduler
        deadline = time.monotonic() + 240
        while sched._running.get(job.job_id) is None:
            assert time.monotonic() < deadline
            if sched.get(job.job_id).terminal:
                pytest.skip("job settled before cancel could land")
            time.sleep(0.02)
        sched.cancel(job.job_id)
        settled = sched.wait(job.job_id, timeout=240)
        assert settled.state == "CANCELLED"
        # the scheduler survives and keeps serving
        probe = sched.submit({"design": "dr5", "benchmark": "mult"})
        assert sched.wait(probe.job_id, timeout=300).state == "DONE"
