"""Integration: security-style guarantee via symbolic co-analysis.

Prior work [7] uses the methodology for gate-level security guarantees.
A minimal reproduction of that style of claim: with the interrupt pin
modeled as fully attacker-controlled (X) but GIE provably never set by
the application, the ISR remains unreachable -- its program words are
dead, the interrupt-take logic never leaves constant 0, and the bespoke
core prunes the interrupt path entirely.
"""

import pytest

from repro.analysis import analyze_coverage
from repro.bespoke import generate_bespoke
from repro.isa import Msp430Assembler
from repro.logic import Logic
from repro.processors import CoreTarget
from repro.workloads import built_core

PROGRAM = """
; processes two symbolic inputs; never touches IE_CTL
    li r1, 64
    ld r2, 0(r1)
    ld r3, 1(r1)
    add r2, r3
    li r4, 96
    st r2, 0(r4)
    jmp _halt
isr:                    ; present in the binary, never reachable
    movi r5, 1
    li r6, 260          ; GPIO_OUT: the "leak"
    st r5, 0(r6)
    reti
_halt:
    jmp _halt
"""


class HostileIrqTarget(CoreTarget):
    """The interrupt pin is an unknown, attacker-controlled input."""

    def apply_symbolic_inputs(self, sim):
        super().apply_symbolic_inputs(sim)
        sim.set_input("irq", Logic.X)


@pytest.fixture(scope="module")
def analysis():
    netlist, meta = built_core("omsp430")
    program = Msp430Assembler().assemble(PROGRAM, name="irq-sec")
    target = HostileIrqTarget(netlist, meta, program,
                              symbolic_ranges=[(64, 66)])
    return target, analyze_coverage(target, application="irq-sec")


def test_isr_is_dead_code(analysis):
    target, coverage = analysis
    isr = target.program.label("isr")
    dead = set(coverage.dead)
    # every ISR word (isr .. _halt) is unreachable for any input
    for addr in range(isr, target.program.label("_halt")):
        assert addr in dead, f"ISR word {addr} reachable"


def test_interrupt_take_provably_constant(analysis):
    target, coverage = analysis
    nl = target.netlist
    ex = coverage.analysis.profile.exercised_nets()
    assert not ex[nl.net_index("irq_take")], \
        "irq_take must stay constant 0 (GIE is never set)"
    # ... even though the pin itself is symbolic
    assert ex[nl.net_index("irq")]


def test_leak_path_unexercisable(analysis):
    """The GPIO 'leak' the ISR would perform can never happen."""
    target, coverage = analysis
    nl = target.netlist
    ex = coverage.analysis.profile.exercised_nets()
    assert not any(ex[n] for n in nl.find_nets("gpio_out_r"))


def test_bespoke_prunes_interrupt_logic(analysis):
    target, coverage = analysis
    bespoke = generate_bespoke(target.netlist,
                               coverage.analysis.profile)
    assert bespoke.gate_count() < target.netlist.gate_count()
    # the vector register and its fanout are gone
    assert not bespoke.has_net("ivec_r[0]") or not any(
        g.name.startswith("ivec_r_ff") for g in bespoke.gates)
