"""Integration: every example script runs to completion.

Examples are the public face of the library; they must keep working.
Each is executed in-process (imported with a patched ``__main__``-style
call) so failures surface as ordinary test failures with tracebacks.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py", ["dr5", "mult"])
    out = capsys.readouterr().out
    assert "OK: bespoke core is equivalent" in out
    assert "paths created" in out


def test_custom_design_runs(capsys):
    run_example("custom_design.py")
    out = capsys.readouterr().out
    assert "alarm logic proven unexercisable" in out
    assert out.strip().endswith("OK")


def test_security_taint_runs(capsys):
    run_example("security_taint.py")
    out = capsys.readouterr().out
    assert "taint tracking distinguishes" in out


def test_listing1_testbench_runs(capsys):
    run_example("listing1_testbench.py")
    out = capsys.readouterr().out
    assert "halted by $monitor_x" in out
    assert "both execution paths continued" in out


def test_app_specific_analyses_runs(capsys):
    run_example("app_specific_analyses.py", ["dr5", "tea8"])
    out = capsys.readouterr().out
    assert "peak switching bound" in out
    assert "timing slack" in out
    assert out.strip().endswith("OK")


def test_all_examples_have_docstrings():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""')), \
            script.name
        assert '"""' in text, script.name
