"""Warm-run memoization through the content-addressed segment cache.

The acceptance bar for the store subsystem: re-running an identical
co-analysis through ``run_one(..., cache=dir)`` must replay >= 90% of
its segments from the cache and produce a bit-identical
:class:`CoAnalysisResult` -- on the serial AND the batched engine --
while any change to the netlist or CSM configuration must change the
run fingerprint and miss the cache entirely.
"""

import numpy as np
import pytest

from repro.coanalysis.results import CoAnalysisResult
from repro.csm.strategies import Clustered, UberConservative
from repro.reporting.runner import run_one
from repro.store import ContentStore, SegmentResultCache, run_fingerprint
from repro.workloads import built_core

ENGINES = ["serial", "batch"]


def assert_identical(cold: CoAnalysisResult, warm: CoAnalysisResult):
    """Bit-identical analysis output (cache counters excluded)."""
    assert (warm.profile.toggled == cold.profile.toggled).all()
    assert (warm.profile.ever_x == cold.profile.ever_x).all()
    assert (warm.profile.const_val == cold.profile.const_val).all()
    assert (warm.profile.const_known == cold.profile.const_known).all()
    assert warm.paths_created == cold.paths_created
    assert warm.paths_skipped == cold.paths_skipped
    assert warm.splits == cold.splits
    assert warm.simulated_cycles == cold.simulated_cycles
    assert warm.exercisable_gate_count == cold.exercisable_gate_count
    assert len(warm.path_records) == len(cold.path_records)


@pytest.mark.parametrize("engine", ENGINES)
def test_warm_run_hits_and_is_bit_identical(engine, tmp_path):
    cache = tmp_path / "store"
    cold = run_one("dr5", "mult", engine=engine, cache=cache)
    assert cold.segment_cache_hits == 0
    assert cold.segment_cache_misses > 0

    warm = run_one("dr5", "mult", engine=engine, cache=cache)
    total = warm.segment_cache_hits + warm.segment_cache_misses
    assert total > 0
    assert warm.segment_cache_hits / total >= 0.9, (
        f"{engine}: only {warm.segment_cache_hits}/{total} segments "
        f"replayed from cache")
    assert_identical(cold, warm)


@pytest.mark.parametrize("engine", ENGINES)
def test_caching_does_not_change_the_answer(engine, tmp_path):
    """A cold cached run must match an uncached run bit for bit: the
    capture-and-replay plumbing itself must be invisible."""
    uncached = run_one("dr5", "mult", engine=engine)
    cached = run_one("dr5", "mult", engine=engine,
                     cache=tmp_path / "store")
    assert_identical(uncached, cached)


@pytest.mark.parametrize("engine", ENGINES)
def test_governed_resume_with_cache_is_bit_identical(engine, tmp_path):
    """Resuming a governed stop under a segment cache must not lose the
    pre-stop activity: capture mode routes per-segment planes through
    the kernel, so the checkpoint's restored union has to be folded
    into the profile explicitly (regression -- it used to be dropped,
    and every resumed cached run under-reported exercised gates)."""
    from repro.resilience.governor import RunBudget
    direct = run_one("dr5", "mult", engine=engine)
    ck, cache = tmp_path / "ck.journal", tmp_path / "store"
    partial = run_one("dr5", "mult", engine=engine, cache=cache,
                      checkpoint=str(ck),
                      budget=RunBudget(max_segments=3))
    assert not partial.complete
    final = run_one("dr5", "mult", engine=engine, cache=cache,
                    checkpoint=str(ck), resume=True)
    assert final.complete
    assert_identical(direct, final)


def test_netlist_mutation_invalidates_cache(tmp_path):
    """A structurally different netlist must produce a different run
    fingerprint -- no stale replay, no version constant required."""
    nl, app = built_core("dr5")
    base = run_fingerprint(netlist=nl, strategy=UberConservative(),
                           design="dr5", application="mult")
    mutated = nl.clone()
    extra = mutated.add_net("__fp_probe")
    mutated.add_gate("__fp_probe_g", "NOT", [mutated.outputs[0]], extra)
    mutated.mark_output(extra)
    changed = run_fingerprint(netlist=mutated,
                              strategy=UberConservative(),
                              design="dr5", application="mult")
    assert base.digest != changed.digest
    assert base.components["netlist"] != changed.components["netlist"]

    store = ContentStore(tmp_path / "store")
    warm = SegmentResultCache(store, base.digest)
    warm_other = SegmentResultCache(store, changed.digest)
    # identical (cycle, pc, state) under different run digests must key
    # to different cache entries
    from repro.sim.state import SimState
    state = SimState(net_val=np.zeros(4, dtype=bool),
                     net_known=np.ones(4, dtype=bool),
                     memories={}, cycle=0, pc=0)
    assert warm.key(state, None) != warm_other.key(state, None)


def test_lane_width_invalidates_cache(tmp_path):
    """A 64-lane warm cache must miss cleanly at 128 lanes: the lane
    width is part of the run fingerprint, so widening the planes gets a
    fresh run instead of replaying segments recorded under different
    lane scheduling."""
    nl, _ = built_core("dr5")
    at64 = run_fingerprint(netlist=nl, strategy=UberConservative(),
                           design="dr5", application="mult",
                           engine="batch", lanes=64)
    at128 = run_fingerprint(netlist=nl, strategy=UberConservative(),
                            design="dr5", application="mult",
                            engine="batch", lanes=128)
    assert at64.digest != at128.digest
    assert at64.components["lanes"] == 64
    assert at128.components["lanes"] == 128
    # everything else about the two configurations is identical
    assert at64.components["netlist"] == at128.components["netlist"]
    assert at64.components["csm"] == at128.components["csm"]

    # end to end: warm the cache at 64 lanes, re-run at 128 -- every
    # segment misses, and the answer is still bit-identical
    cache = tmp_path / "store"
    cold = run_one("dr5", "mult", engine="batch", cache=cache)
    assert cold.segment_cache_misses > 0
    widened = run_one("dr5", "mult", engine="batch", lanes=128,
                      cache=cache)
    assert widened.segment_cache_hits == 0
    assert widened.segment_cache_misses > 0
    assert_identical(cold, widened)


def test_csm_mutation_invalidates_cache():
    nl, _ = built_core("dr5")
    a = run_fingerprint(netlist=nl, strategy=UberConservative(),
                        design="dr5", application="mult")
    b = run_fingerprint(netlist=nl, strategy=Clustered(k=2),
                        design="dr5", application="mult")
    assert a.digest != b.digest
    assert a.components["csm"] != b.components["csm"]
    # but the netlist component is untouched
    assert a.components["netlist"] == b.components["netlist"]


def test_cache_survives_gc(tmp_path):
    """gc must keep every blob the segment manifest references: a warm
    run after gc still replays from cache."""
    cache = tmp_path / "store"
    run_one("dr5", "mult", cache=cache)
    store = ContentStore(cache)
    report = store.gc()
    assert report["removed"] == 0          # everything recorded is live
    warm = run_one("dr5", "mult", cache=cache)
    assert warm.segment_cache_hits > 0
    assert warm.segment_cache_misses == 0
    assert store.verify()["ok"]
