"""Integration: every benchmark program runs correctly on its core.

This is program-level bring-up: the assembled binary, the gate-level
core, and the memory harness together must compute the documented
function for every concrete validation case.
"""

import pytest

from repro.coanalysis.concrete import run_concrete
from repro.workloads import (WORKLOAD_ORDER, WORKLOADS, build_target,
                             built_core)

DESIGNS = ["omsp430", "bm32", "dr5"]


@pytest.fixture(scope="module")
def targets():
    cache = {}

    def get(design, wname):
        key = (design, wname)
        if key not in cache:
            cache[key] = build_target(design, WORKLOADS[wname])
        return cache[key]

    return get


@pytest.mark.parametrize("design", DESIGNS)
@pytest.mark.parametrize("wname", WORKLOAD_ORDER)
def test_program_matches_reference(design, wname, targets):
    workload = WORKLOADS[wname]
    target = targets(design, wname)
    _, meta = built_core(design)
    for case in workload.cases:
        run = run_concrete(target, case, max_cycles=6000)
        assert run.finished, (
            f"{design}/{wname} did not reach _halt in {run.cycles} cycles")
        for addr, want in workload.expected(case, meta.word_width).items():
            got = target.read_dmem(run.final_sim, addr)
            assert got.is_known, f"{design}/{wname}@{addr} is {got}"
            assert got.to_int() == want, (
                f"{design}/{wname}@{addr}: got {got.to_int()}, want {want}")


@pytest.mark.parametrize("design", DESIGNS)
def test_pc_trace_is_deterministic(design, targets):
    """Two identical concrete runs produce identical PC traces."""
    workload = WORKLOADS["Div"]
    target = targets(design, "Div")
    r1 = run_concrete(target, workload.cases[0], max_cycles=3000)
    r2 = run_concrete(target, workload.cases[0], max_cycles=3000)
    assert r1.pc_trace == r2.pc_trace
    assert r1.cycles == r2.cycles


@pytest.mark.parametrize("design", DESIGNS)
def test_distinct_inputs_distinct_outputs(design, targets):
    workload = WORKLOADS["tea8"]
    target = targets(design, "tea8")
    _, meta = built_core(design)
    runs = [run_concrete(target, case, max_cycles=3000)
            for case in workload.cases[:2]]
    outs = [target.read_dmem_int(r.final_sim, 96) for r in runs]
    assert outs[0] != outs[1]


def test_halt_is_stable(targets):
    """Staying past _halt must not change architectural state."""
    target = targets("omsp430", "Div")
    case = WORKLOADS["Div"].cases[0]
    r1 = run_concrete(target, case, max_cycles=3000)
    # run again with extra cycles after halt by raising the budget on a
    # second target run -- the halt self-loop parks the PC
    sim = r1.final_sim
    before = target.read_dmem_int(sim, 96)
    for _ in range(5):
        target.drive_all(sim)
        target.on_edge(sim)
        sim.clock_edge()
    target.drive_all(sim)
    assert target.is_done(sim)
    assert target.read_dmem_int(sim, 96) == before
