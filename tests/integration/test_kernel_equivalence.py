"""Integration: all three executors agree through the shared kernel.

The exercisable/unexercisable gate dichotomy is the analysis *product*;
Algorithm 1's soundness argument does not depend on the order paths are
simulated or on which simulation backend runs each segment.  This test
drives the same tiny bm32 workload -- one symbolic input, one
data-dependent branch -- through the serial cycle executor, the
event-driven executor, the wave-parallel pool and the lane-parallel
batched engine, under every frontier strategy, and requires the
dichotomy to come out identical.
"""

import pytest

from repro.coanalysis.engine import CoAnalysisEngine
from repro.coanalysis.frontier import FRONTIER_STRATEGIES
from repro.coanalysis.parallel import ParallelCoAnalysis
from repro.isa import ASSEMBLERS
from repro.processors import CoreTarget
from repro.workloads import INPUT_BASE, built_core

# one lw of a symbolic word, one sltu/bne on it, distinct stores per arm
TINY_SOURCE = """
    addiu r1, r0, 64
    lw r2, 0(r1)        ; symbolic input
    addiu r3, r0, 8
    sltu r4, r2, r3
    bne r4, r0, small
    addiu r5, r0, 1
    j store
small:
    addiu r5, r0, 2
store:
    addiu r6, r0, 96
    sw r5, 0(r6)
_halt:
    j _halt
"""


def tiny_target() -> CoreTarget:
    netlist, meta = built_core("bm32")
    program = ASSEMBLERS["bm32"]().assemble(TINY_SOURCE, name="tiny")
    return CoreTarget(netlist, meta, program,
                      symbolic_ranges=[(INPUT_BASE, INPUT_BASE + 1)])


class TinyTargetFactory:
    """Picklable zero-arg factory for the worker pool (spawn start)."""

    def __call__(self) -> CoreTarget:
        return tiny_target()


def run_engine(engine_name: str, frontier: str, **kw):
    if engine_name == "parallel":
        return ParallelCoAnalysis(TinyTargetFactory(), workers=2,
                                  application="tiny",
                                  frontier=frontier, **kw).run()
    if engine_name.startswith("batch"):
        # "batch128" / "batch256" are lane-width legs of the batch engine
        backend = "batch"
        if engine_name != "batch":
            kw.setdefault("lanes", int(engine_name[len("batch"):]))
    else:
        backend = {"serial": "cycle", "event": "event"}[engine_name]
    return CoAnalysisEngine(tiny_target(), application="tiny",
                            frontier=frontier, backend=backend,
                            **kw).run()


@pytest.fixture(scope="module")
def serial_dfs():
    return run_engine("serial", "dfs")


def test_serial_explores_the_branch(serial_dfs):
    assert serial_dfs.splits >= 1
    assert serial_dfs.paths_created == 1 + 2 * serial_dfs.splits
    gates = serial_dfs.profile.exercisable_gates()
    assert 0 < len(gates) < serial_dfs.total_gates


@pytest.mark.parametrize("engine_name", ["serial", "event", "parallel",
                                         "batch", "batch128", "batch256"])
@pytest.mark.parametrize("frontier", sorted(FRONTIER_STRATEGIES))
def test_dichotomy_engine_and_order_invariant(engine_name, frontier,
                                              serial_dfs):
    if engine_name == "serial" and frontier == "dfs":
        pytest.skip("the reference run itself")
    result = run_engine(engine_name, frontier)
    assert result.profile.exercisable_gates() == \
        serial_dfs.profile.exercisable_gates()
    # structural bookkeeping holds regardless of backend/order
    assert result.paths_created == 1 + 2 * result.splits
    assert result.paths_skipped <= result.paths_created


@pytest.mark.parametrize("engine_name", ["serial", "event", "parallel", "batch"])
@pytest.mark.parametrize("frontier", sorted(FRONTIER_STRATEGIES))
def test_governed_stop_then_resume_is_equivalent(engine_name, frontier,
                                                 serial_dfs, tmp_path):
    """A governed run stopped mid-exploration (PartialResult) and then
    resumed converges to the same dichotomy as an unbounded run, on
    every backend and frontier order."""
    from repro.coanalysis.results import PartialResult
    from repro.resilience.governor import RunBudget

    ckpt = tmp_path / f"{engine_name}_{frontier}.ckpt"
    partial = run_engine(engine_name, frontier, checkpoint=str(ckpt),
                         budget=RunBudget(max_segments=1))
    assert isinstance(partial, PartialResult)
    assert not partial.complete
    assert partial.stop_reason == "segments"
    assert partial.pending_paths >= 1
    assert any(e.kind == "governed_stop" for e in partial.journal)
    assert partial.metrics.stop_reason == "segments"
    assert "stop_reason" in partial.summary()

    resumed = run_engine(engine_name, frontier, checkpoint=str(ckpt),
                         resume=True)
    assert resumed.complete and resumed.resumed
    assert resumed.profile.exercisable_gates() == \
        serial_dfs.profile.exercisable_gates()
    assert resumed.paths_created == 1 + 2 * resumed.splits


# two sequential symbolic branches with different-length arms: a BFS
# frontier batch holds more paths than 2 lanes, and paths inside one
# batch retire at different lockstep cycles -- the setup that forces
# mid-wave compaction
TWO_BRANCH_SOURCE = """
    addiu r1, r0, 64
    lw r2, 0(r1)        ; symbolic input a
    lw r7, 1(r1)        ; symbolic input b
    addiu r3, r0, 8
    sltu r4, r2, r3
    bne r4, r0, small_a
    addiu r5, r0, 1
    addiu r5, r5, 1
    addiu r5, r5, 1
    j second
small_a:
    addiu r5, r0, 2
second:
    sltu r4, r7, r3
    bne r4, r0, small_b
    addiu r6, r0, 1
    addiu r6, r6, 1
    addiu r6, r6, 1
    j store
small_b:
    addiu r6, r0, 2
store:
    addiu r8, r0, 96
    sw r5, 0(r8)
    sw r6, 1(r8)
_halt:
    j _halt
"""


def two_branch_target() -> CoreTarget:
    netlist, meta = built_core("bm32")
    program = ASSEMBLERS["bm32"]().assemble(TWO_BRANCH_SOURCE,
                                            name="twobranch")
    return CoreTarget(netlist, meta, program,
                      symbolic_ranges=[(INPUT_BASE, INPUT_BASE + 2)])


@pytest.mark.parametrize("lanes", [64, 128, 256])
def test_batch_compaction_matches_serial(lanes):
    """Mid-wave lane compaction is result-invisible at every plane
    width: capping live occupancy at 2 lanes forces retired slots to be
    refilled from the frontier while other lanes keep running, and the
    dichotomy, path accounting and profile still match the serial
    reference bit for bit."""
    from repro.coanalysis.batch_executor import BatchSegmentExecutor
    from repro.coanalysis.kernel import ExplorationKernel

    reference = CoAnalysisEngine(two_branch_target(),
                                 application="twobranch").run()
    assert reference.splits >= 2        # both branches actually forked

    executor = BatchSegmentExecutor(two_branch_target(), lanes=lanes,
                                    max_lanes=2)
    result = ExplorationKernel(executor, application="twobranch",
                               frontier="bfs").run()
    assert result.profile.exercisable_gates() == \
        reference.profile.exercisable_gates()
    assert (result.profile.toggled == reference.profile.toggled).all()
    assert (result.profile.ever_x == reference.profile.ever_x).all()
    assert result.paths_created == 1 + 2 * result.splits
    stats = result.batch_stats
    assert stats.segments == len(result.path_records)
    # a BFS batch carried more paths than the 2 live lanes, and arms
    # of different length retire at different cycles: compaction fired
    assert stats.compactions > 0
    assert stats.refills > 0


def test_batch_trace_carries_compaction_stats(tmp_path):
    """Every "batch" trace event reports lane occupancy plus the
    compaction counters for that frontier batch."""
    import json

    trace = tmp_path / "batch.jsonl"
    from repro.coanalysis.trace import JsonlTraceSink, Tracer
    result = CoAnalysisEngine(tiny_target(), application="tiny",
                              backend="batch",
                              tracer=Tracer([JsonlTraceSink(trace)])).run()
    assert result.complete
    events = [json.loads(line)
              for line in trace.read_text().splitlines() if line]
    batch_events = [e for e in events if e.get("kind") == "batch"]
    assert batch_events
    for event in batch_events:
        assert "lanes" in event
        assert "compactions" in event
        assert "refills" in event


def test_metrics_cross_check(serial_dfs):
    """Every run carries trace-derived metrics agreeing with its own
    counters (the acceptance criterion for the trace layer)."""
    m = serial_dfs.metrics
    assert m.splits == serial_dfs.splits
    assert m.merges_covered == serial_dfs.paths_skipped
    assert m.simulated_cycles == serial_dfs.simulated_cycles
    assert m.paths_explored == len(serial_dfs.path_records)
