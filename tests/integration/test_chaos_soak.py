"""Chaos soak: a governed bm32 co-analysis under randomized fault
injection either completes or leaves a resumable checkpoint (ISSUE 6).

This is the CI chaos job's payload.  A seeded :meth:`FaultPlan.random`
schedule mixes worker crashes, hard deaths, hangs, memory spikes and a
parent-side SIGTERM into a checkpointed, traced, quarantine-enabled
parallel run.  The invariant under test is *operational*, not
numerical: every launch must end either complete or as a
:class:`PartialResult` whose checkpoint a relaunch can resume, every
trace file must parse, and the final converged answer must equal the
fault-free baseline.

Set ``REPRO_CHAOS_ARTIFACTS`` to a directory to keep the trace JSONL
and checkpoint for upload (CI does); otherwise they live in pytest's
tmp_path and vanish with it.
"""

import os
from pathlib import Path

import pytest

from repro.coanalysis.parallel import (ParallelCoAnalysis,
                                       WorkloadTargetFactory)
from repro.coanalysis.results import PartialResult
from repro.coanalysis.trace import JsonlTraceSink, Tracer, read_trace
from repro.reporting.runner import run_one
from repro.resilience import (FaultPlan, RunBudget, SupervisionPolicy,
                              load_checkpoint)

DESIGN, BENCH = "bm32", "Div"

pytestmark = pytest.mark.timeout(600)

#: relaunches allowed before the soak is declared stuck
MAX_LAUNCHES = 6

CHAOS_KINDS = ("crash", "die", "hang", "memspike", "sigterm")


@pytest.fixture(scope="module")
def baseline():
    return run_one(DESIGN, BENCH, use_constraints=False)


def artifact_dir(tmp_path: Path) -> Path:
    override = os.environ.get("REPRO_CHAOS_ARTIFACTS")
    if override:
        path = Path(override)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


@pytest.mark.parametrize("seed", [7, 2022])
def test_chaos_soak_completes_or_resumes(seed, tmp_path, baseline):
    outdir = artifact_dir(tmp_path)
    plan = FaultPlan.random(seed=seed, n_faults=4, max_wave=6,
                            max_segment=3, kinds=CHAOS_KINDS)
    ckpt = outdir / f"chaos_{seed}.ckpt"

    result = None
    traces = []
    for launch in range(MAX_LAUNCHES):
        trace_path = outdir / f"chaos_{seed}_launch{launch}.jsonl"
        traces.append(trace_path)
        engine = ParallelCoAnalysis(
            WorkloadTargetFactory(DESIGN, BENCH), workers=2,
            application=BENCH,
            # a fresh plan each launch: same schedule, reset bookkeeping
            fault_plan=FaultPlan(plan.specs),
            policy=SupervisionPolicy(segment_timeout=3.0,
                                     backoff_base=0.01,
                                     max_pool_restarts=5),
            budget=RunBudget(deadline_seconds=300.0),
            quarantine=3,
            checkpoint=str(ckpt),
            resume=launch > 0,
            tracer=Tracer(sinks=[JsonlTraceSink(trace_path)]))
        result = engine.run()
        # the operational invariant: complete, or resumable partial
        if result.complete:
            break
        assert isinstance(result, PartialResult)
        assert result.stop_reason
        assert load_checkpoint(ckpt) is not None, \
            "partial run left no resumable checkpoint"
    assert result is not None and result.complete, \
        f"soak did not converge within {MAX_LAUNCHES} launches"

    # the converged answer equals the fault-free baseline -- unless a
    # segment was quarantined, in which case its (unexplored) activity
    # soundly under-approximates it
    final = result.profile.exercisable_gates()
    if result.quarantined_paths:
        assert final <= baseline.profile.exercisable_gates()
    else:
        assert final == baseline.profile.exercisable_gates()

    # every launch left a well-formed trace: parseable JSONL framed by
    # run_start/run_end
    for trace_path in traces:
        events = read_trace(trace_path)
        assert events, f"empty trace {trace_path.name}"
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"

    # the journal narrates whatever chaos actually fired
    kinds = {e.kind for e in result.journal}
    assert kinds & {"crash", "timeout", "corrupt", "quarantined",
                    "governed_stop", "resume", "pool_restart"}, \
        f"no fault/recovery evidence in journal: {sorted(kinds)}"
