"""End-to-end acceptance for the job service.

The ISSUE's bar: two concurrent identical submissions yield ONE
execution plus one coalesced result; a later duplicate is served from
the store without running; and the service's answer is bit-identical to
a direct ``run_one`` -- on the serial AND the batched engine.  Plus the
HTTP layer: submit/status/cancel/artifacts/trace/metrics over a real
socket, and restart recovery from nothing but the store.
"""

import time

import pytest

from repro.reporting.runner import run_one
from repro.service import (Scheduler, SchedulerConfig, ServiceAPI,
                           ServiceClient, ServiceError)
from repro.service.jobs import JobSpecError

pytestmark = pytest.mark.timeout(600)


def assert_identical(expected, actual):
    """Bit-identical analysis payloads (timing/cache counters aside)."""
    assert (actual.profile.toggled == expected.profile.toggled).all()
    assert (actual.profile.ever_x == expected.profile.ever_x).all()
    assert actual.paths_created == expected.paths_created
    assert actual.paths_skipped == expected.paths_skipped
    assert actual.simulated_cycles == expected.simulated_cycles
    assert actual.exercisable_gate_count == expected.exercisable_gate_count


@pytest.fixture(scope="module")
def direct_result():
    """The ground truth the service must reproduce."""
    return run_one("dr5", "mult")


@pytest.mark.parametrize("engine", ["serial", "batch"])
def test_concurrent_identical_submissions_coalesce(engine, tmp_path,
                                                   direct_result):
    spec = {"design": "dr5", "benchmark": "mult", "engine": engine}
    with Scheduler(tmp_path / "store", SchedulerConfig(workers=2)) as sched:
        first = sched.submit(dict(spec))
        second = sched.submit(dict(spec))       # identical, concurrent
        assert second.coalesced_into == first.job_id

        done_first = sched.wait(first.job_id, timeout=300)
        done_second = sched.wait(second.job_id, timeout=300)
        assert done_first.state == done_second.state == "DONE"
        # one execution, one coalesced adoption, same stored result
        assert sched.counters["executed"] == 1
        assert sched.counters["coalesced"] == 1
        assert done_second.result_digest == done_first.result_digest

        # a third submission after completion never runs at all
        third = sched.submit(dict(spec))
        assert third.state == "DONE" and third.cache_hit
        assert sched.counters["executed"] == 1

        # and the answer is the direct run_one answer, bit for bit
        result = sched.job_store.load_result(done_first)
        assert result is not None and result.complete
        assert_identical(direct_result, result)


def test_restart_recovery_serves_done_from_store(tmp_path):
    root = tmp_path / "store"
    with Scheduler(root, SchedulerConfig(workers=1)) as sched:
        job = sched.submit({"design": "dr5", "benchmark": "mult"})
        sched.wait(job.job_id, timeout=300)
    # a brand-new scheduler on the same store: no re-execution
    with Scheduler(root, SchedulerConfig(workers=1)) as fresh:
        dup = fresh.submit({"design": "dr5", "benchmark": "mult"})
        assert dup.state == "DONE" and dup.cache_hit
        assert fresh.counters["executed"] == 0


def test_sharded_run_converges(tmp_path, direct_result):
    """Work-stealing shards: many governed dispatches, one answer."""
    with Scheduler(tmp_path / "store",
                   SchedulerConfig(workers=2)) as sched:
        job = sched.submit({"design": "dr5", "benchmark": "mult",
                            "shard_segments": 3})
        done = sched.wait(job.job_id, timeout=300)
        assert done.state == "DONE"
        assert done.shards >= 2                  # 9 paths / 3 per shard
        result = sched.job_store.load_result(done)
        assert_identical(direct_result, result)


def test_http_api_round_trip(tmp_path):
    with Scheduler(tmp_path / "store", SchedulerConfig(workers=2)) as sched:
        with ServiceAPI(sched, port=0) as api:
            client = ServiceClient(api.url)
            assert client.healthz() == {"ok": True}

            # a bad spec is a 400, not a 500
            with pytest.raises(ServiceError) as err:
                client.submit({"design": "dr5"})
            assert err.value.status == 400

            view = client.submit({"design": "dr5", "benchmark": "mult"})
            assert view["state"] in ("QUEUED", "RUNNING")
            final = client.wait(view["job"], timeout=300)
            assert final["state"] == "DONE"

            # status / listing / metrics / artifacts
            assert client.job(view["job"])["state"] == "DONE"
            assert any(j["job"] == view["job"] for j in client.jobs())
            metrics = client.metrics()
            assert metrics["counters"]["executed"] == 1
            art = client.artifacts(view["job"])
            assert set(art["artifacts"]) == {"checkpoint", "trace"}

            # the streamed trace is the whole run, parsed line by line
            events = list(client.trace_lines(view["job"]))
            assert events[0]["kind"] == "run_start"
            assert events[-1]["kind"] == "run_end"

            # unknown job ids are 404s on every route
            for call in (client.job, client.cancel, client.artifacts):
                with pytest.raises(ServiceError) as err:
                    call("nosuchjob000")
                assert err.value.status == 404


def test_cancel_queued_job(tmp_path):
    # a scheduler that is never started dispatches nothing, so the
    # submission stays QUEUED and cancel settles it synchronously
    sched = Scheduler(tmp_path / "store", SchedulerConfig(workers=1))
    job = sched.submit({"design": "dr5", "benchmark": "mult"})
    cancelled = sched.cancel(job.job_id)
    assert cancelled.state == "CANCELLED"
    # its dedup slot was released: the next submission runs fresh
    again = sched.submit({"design": "dr5", "benchmark": "mult"})
    assert again.state == "QUEUED" and again.coalesced_into is None


def test_submit_rejects_bad_spec(tmp_path):
    sched = Scheduler(tmp_path / "store")
    with pytest.raises(JobSpecError):
        sched.submit({"design": "dr5", "benchmark": "mult",
                      "engine": "quantum"})


def test_quota_limits_active_jobs_per_submitter(tmp_path):
    from repro.service import QuotaExceeded
    sched = Scheduler(tmp_path / "store",
                      SchedulerConfig(workers=1, quota_jobs=2))
    sched.submit({"design": "dr5", "benchmark": "mult",
                  "submitter": "alice", "dedup": False})
    sched.submit({"design": "dr5", "benchmark": "mult",
                  "submitter": "alice", "dedup": False})
    with pytest.raises(QuotaExceeded):
        sched.submit({"design": "dr5", "benchmark": "mult",
                      "submitter": "alice", "dedup": False})
    # quotas are per-tenant: bob is unaffected
    assert sched.submit({"design": "dr5", "benchmark": "mult",
                         "submitter": "bob"}).state == "QUEUED"
