"""Integration: bespoke validation under randomized input sweeps.

Extends the paper's fixed-input validation (5.0.1) with seeded random
vectors from the workload-aware generator: for each pair, the bespoke
netlist must match the original on every generated case, and every
concrete run must stay inside the symbolic exercisable set.
"""

import pytest

from repro.bespoke import generate_bespoke, validate_bespoke
from repro.reporting.runner import run_one
from repro.workloads import WORKLOADS, build_target, built_core
from repro.workloads.generator import generate_cases

PAIRS = [("omsp430", "tea8"), ("dr5", "mult"), ("bm32", "Div")]
CASES_PER_PAIR = 4


@pytest.mark.parametrize("design,bench", PAIRS)
def test_random_sweep_validates(design, bench):
    result = run_one(design, bench)
    workload = WORKLOADS[bench]
    _, meta = built_core(design)
    original = build_target(design, workload)
    bespoke_nl = generate_bespoke(original.netlist, result.profile)
    bespoke = build_target(design, workload, netlist=bespoke_nl)
    cases = generate_cases(workload, CASES_PER_PAIR, seed=42,
                           word_width=meta.word_width)
    report = validate_bespoke(original, bespoke, result, cases=cases,
                              max_cycles=8000)
    assert report.ok, report.mismatches
    assert report.cases_run == CASES_PER_PAIR


def test_random_cases_also_match_reference():
    """The generator's cases agree with the Python reference models when
    run on the real hardware (sanity of the whole triangle)."""
    from repro.coanalysis.concrete import run_concrete
    design, bench = "omsp430", "tHold"
    workload = WORKLOADS[bench]
    _, meta = built_core(design)
    target = build_target(design, workload)
    for case in generate_cases(workload, 3, seed=5,
                               word_width=meta.word_width):
        run = run_concrete(target, case, max_cycles=4000)
        assert run.finished
        for addr, want in workload.expected(case, meta.word_width).items():
            assert target.read_dmem_int(run.final_sim, addr) == want
