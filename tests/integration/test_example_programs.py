"""Integration: the standalone example programs assemble and compute."""

from pathlib import Path

import pytest

from repro.coanalysis.concrete import run_concrete
from repro.isa import ASSEMBLERS
from repro.processors import CoreTarget
from repro.workloads import built_core

PROGRAMS = Path(__file__).resolve().parents[2] / "examples" / "programs"


def load(design, filename, data=None):
    source = (PROGRAMS / filename).read_text()
    netlist, meta = built_core(design)
    program = ASSEMBLERS[design]().assemble(source, name=filename)
    return CoreTarget(netlist, meta, program)


def test_fibonacci_omsp430():
    target = load("omsp430", "fibonacci.omsp430.s")
    run = run_concrete(target, {}, max_cycles=200)
    assert run.finished
    assert target.read_dmem_int(run.final_sim, 96) == 55


@pytest.mark.parametrize("a,b,gcd", [(48, 18, 6), (7, 13, 1),
                                     (100, 100, 100)])
def test_gcd_dr5(a, b, gcd):
    target = load("dr5", "gcd.dr5.s")
    run = run_concrete(target, {64: a, 65: b}, max_cycles=2000)
    assert run.finished
    assert target.read_dmem_int(run.final_sim, 96) == gcd


def test_checksum_bm32():
    block = [0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]
    expected = 0
    for w in block:
        expected ^= w
        expected = ((expected << 1) | (expected >> 31)) & 0xFFFFFFFF
    target = load("bm32", "checksum.bm32.s")
    run = run_concrete(target, {64 + i: v for i, v in enumerate(block)},
                       max_cycles=400)
    assert run.finished
    assert target.read_dmem_int(run.final_sim, 96) == expected


def test_programs_assemble_via_cli(tmp_path, capsys):
    from repro.cli import main
    for design, filename in (("omsp430", "fibonacci.omsp430.s"),
                             ("dr5", "gcd.dr5.s"),
                             ("bm32", "checksum.bm32.s")):
        rc = main(["asm", design, str(PROGRAMS / filename)])
        assert rc == 0
        assert capsys.readouterr().out.startswith("0000:")
