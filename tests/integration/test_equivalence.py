"""Integration: formal equivalence of the example bespoke flows.

The acceptance bar for the equivalence subsystem, end to end on the real
cores:

* the miter is **UNSAT** for the example bespoke flow of every
  processor under the co-analysis unexercisable-constant assumptions --
  the paper's gate-count savings provably preserve behaviour, for every
  input and state the assumptions permit, not just the sampled cases;
* every seeded mutation of a bespoke netlist makes the miter go **SAT**
  and the extracted counterexample **replays to a real divergence** in
  ``CycleSim`` -- the checker detects actual bugs and never reports a
  phantom one;
* the ``repro verify`` CLI and the ``mode="sat"``/``"both"`` validation
  path agree with the programmatic API.
"""

import json

import pytest

from repro.bespoke import generate_bespoke, validate_bespoke
from repro.cli import main
from repro.equiv import check_equivalence, mutation_campaign
from repro.reporting.runner import run_one
from repro.workloads import WORKLOADS, build_target

PAIRS = [
    ("omsp430", "mult"),
    ("bm32", "Div"),
    ("dr5", "mult"),
]

#: seeds chosen so the mutated gate is observable under the co-analysis
#: assumptions (a mutation buried behind an assumed-constant enable is
#: legitimately undetectable -- that is what the assumptions *mean*)
MUTATION_SEEDS = {
    "omsp430": (0, 2, 3),
    "bm32": (0, 1, 2),
    "dr5": (0, 1, 2),
}


@pytest.fixture(scope="module")
def flows():
    cache = {}

    def get(design, bench):
        key = (design, bench)
        if key not in cache:
            result = run_one(design, bench)
            workload = WORKLOADS[bench]
            original = build_target(design, workload)
            bespoke_nl = generate_bespoke(original.netlist, result.profile)
            bespoke = build_target(design, workload, netlist=bespoke_nl)
            cache[key] = (original, bespoke, result)
        return cache[key]

    return get


@pytest.mark.parametrize("design,bench", PAIRS)
def test_bespoke_flow_is_formally_equivalent(design, bench, flows):
    original, bespoke, result = flows(design, bench)
    out = check_equivalence(original.netlist, bespoke.netlist,
                            profile=result.profile, design=design)
    assert out.status == "UNSAT", out.summary()
    assert out.compare_points > 100
    # the shared structural encoder should collapse the (identical)
    # surviving logic: the proof must be cheap, not a solver epic
    assert out.proved_structurally == out.compare_points
    assert out.assumptions_injected > 0


@pytest.mark.parametrize("design,bench", PAIRS)
def test_sequential_unroll_stays_equivalent(design, bench, flows):
    original, bespoke, result = flows(design, bench)
    out = check_equivalence(original.netlist, bespoke.netlist,
                            profile=result.profile, unroll=2,
                            design=design)
    assert out.status == "UNSAT", out.summary()


@pytest.mark.parametrize("design,bench", PAIRS)
def test_seeded_mutations_detected_and_confirmed(design, bench, flows):
    original, bespoke, result = flows(design, bench)
    records = mutation_campaign(original.netlist, bespoke.netlist,
                                result.profile,
                                seeds=MUTATION_SEEDS[design])
    assert records, "campaign produced no records"
    for record in records:
        assert record["detected"], \
            f"mutation not detected: {record}"
        assert record["confirmed"], \
            f"witness did not replay in CycleSim: {record}"
        assert record["divergence"]


def test_validate_bespoke_sat_mode(flows):
    design, bench = "dr5", "mult"
    original, bespoke, result = flows(design, bench)
    report = validate_bespoke(original, bespoke, result,
                              cases=WORKLOADS[bench].cases, mode="sat")
    assert report.mode == "sat"
    assert report.equiv_status == "UNSAT"
    assert report.equiv_ok and report.ok
    assert report.cases_run == 0        # no simulation leg in sat mode
    report_both = validate_bespoke(original, bespoke, result,
                                   cases=WORKLOADS[bench].cases,
                                   mode="both", max_cycles=6000)
    assert report_both.ok
    assert report_both.cases_run == len(WORKLOADS[bench].cases)
    assert report_both.equiv["proved_structurally"] > 0


def test_validate_bespoke_rejects_unknown_mode(flows):
    original, bespoke, result = flows("dr5", "mult")
    with pytest.raises(ValueError):
        validate_bespoke(original, bespoke, result, cases=[], mode="smt")


def test_verify_cli_smoke(tmp_path, capsys):
    report = tmp_path / "equiv.json"
    trace = tmp_path / "equiv.jsonl"
    rc = main(["verify", "dr5", "mult", "--mode", "both", "--csm-states",
               "--json", "--report", str(report), "--trace", str(trace)])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["equiv_status"] == "UNSAT"
    assert data["sim_ok"] is True
    saved = json.loads(report.read_text())
    assert saved == data
    # the typed event stream is parseable and aggregates
    from repro.coanalysis.trace import aggregate_trace, read_trace
    events = read_trace(trace)
    kinds = [e.kind for e in events]
    assert "equiv_start" in kinds and "equiv_outcome" in kinds
    metrics = aggregate_trace(events)
    assert metrics.equiv_checks == 1
    assert metrics.equiv_outcomes == {"UNSAT": 1}
