"""Integration: symbolic co-analysis reproduces the paper's key shapes.

Runs a fast subset of the (design x benchmark) grid and asserts the
qualitative results the paper reports in section 5:

* ``mult`` is single-path on the two cores with hardware multipliers and
  multi-path on dr5 (software multiply);
* ``tea8`` is single-path everywhere (straight-line dataflow);
* the concretely exercised set is always a subset of the symbolically
  exercisable set (soundness, section 5.0.1);
* omsp430 shows the largest bespoke reduction (unused peripherals), dr5
  the smallest (no peripherals).
"""

import pytest

from repro.coanalysis.concrete import run_concrete
from repro.reporting.runner import run_one
from repro.workloads import WORKLOADS, build_target


@pytest.fixture(scope="module")
def grid():
    designs = ["omsp430", "bm32", "dr5"]
    benchmarks = ["Div", "binSearch", "mult", "tea8"]
    return {d: {b: run_one(d, b) for b in benchmarks} for d in designs}


class TestPathShapes:
    def test_mult_single_path_with_hw_multiplier(self, grid):
        assert grid["omsp430"]["mult"].paths_created == 1
        assert grid["bm32"]["mult"].paths_created == 1

    def test_mult_multi_path_on_dr5(self, grid):
        assert grid["dr5"]["mult"].paths_created > 1

    def test_tea8_single_path_everywhere(self, grid):
        for d in grid:
            assert grid[d]["tea8"].paths_created == 1
            assert grid[d]["tea8"].splits == 0

    def test_div_wide_compare_cores_need_more_paths(self, grid):
        """bm32/dr5 resolve branches from full-width registers; omsp430
        from 1-bit flags (paper section 5.0.3)."""
        assert grid["bm32"]["Div"].paths_created > \
            grid["omsp430"]["Div"].paths_created
        assert grid["dr5"]["Div"].paths_created > \
            grid["omsp430"]["Div"].paths_created

    def test_paths_created_consistent_with_splits(self, grid):
        for d in grid:
            for b in grid[d]:
                r = grid[d][b]
                assert r.paths_created == 1 + 2 * r.splits

    def test_no_truncated_paths(self, grid):
        for d in grid:
            for b in grid[d]:
                assert grid[d][b].truncated_paths == 0


class TestReductionShapes:
    def test_reduction_ordering_matches_figure5(self, grid):
        """omsp430 (peripherals) > bm32 > dr5 (bare core)."""
        for b in ("Div", "binSearch", "tea8"):
            assert grid["omsp430"][b].reduction_percent > \
                grid["bm32"][b].reduction_percent
            assert grid["bm32"][b].reduction_percent > \
                grid["dr5"][b].reduction_percent

    def test_mult_prunes_least_where_multiplier_used(self, grid):
        for d in ("omsp430", "bm32"):
            others = [grid[d][b].reduction_percent
                      for b in ("Div", "binSearch", "tea8")]
            assert grid[d]["mult"].reduction_percent < min(others)

    def test_some_gates_always_survive(self, grid):
        for d in grid:
            for b in grid[d]:
                r = grid[d][b]
                assert 0 < r.exercisable_gate_count < r.total_gates


class TestSoundness:
    @pytest.mark.parametrize("design", ["omsp430", "bm32", "dr5"])
    @pytest.mark.parametrize("bench", ["Div", "binSearch", "mult",
                                       "tea8"])
    def test_concrete_exercised_subset_of_symbolic(self, design, bench,
                                                   grid):
        result = grid[design][bench]
        workload = WORKLOADS[bench]
        target = build_target(design, workload)
        exercisable = result.profile.exercised_nets()
        for case in workload.cases[:2]:
            run = run_concrete(target, case, max_cycles=6000)
            extra = run.exercised_nets & ~exercisable
            names = [target.netlist.net_name(i)
                     for i in extra.nonzero()[0][:5]]
            assert not extra.any(), (
                f"{design}/{bench}: concretely exercised nets missing "
                f"from the symbolic exercisable set: {names}")


class TestCycleCounts:
    def test_cycles_scale_with_paths(self, grid):
        for d in grid:
            r = grid[d]["Div"]
            assert r.simulated_cycles >= r.paths_created

    def test_wall_time_recorded(self, grid):
        assert grid["omsp430"]["Div"].wall_seconds > 0
