"""Integration: bespoke generation + validation (paper section 5.0.1).

For a representative set of (core, application) pairs: run symbolic
co-analysis, prune + re-synthesize a bespoke netlist, then check

* the bespoke netlist is smaller,
* fixed-input behaviour (PC trace, stores, final memory) is identical on
  original and bespoke netlists,
* the concretely exercised set is a subset of the exercisable set.
"""

import pytest

from repro.bespoke import generate_bespoke, validate_bespoke
from repro.netlist import parse_verilog, write_verilog
from repro.reporting.runner import run_one
from repro.workloads import WORKLOADS, build_target

PAIRS = [
    ("omsp430", "Div"),
    ("omsp430", "tea8"),
    ("omsp430", "mult"),
    ("bm32", "binSearch"),
    ("bm32", "mult"),
    ("dr5", "Div"),
    ("dr5", "tea8"),
]


@pytest.fixture(scope="module")
def flows():
    cache = {}

    def get(design, bench):
        key = (design, bench)
        if key not in cache:
            result = run_one(design, bench)
            workload = WORKLOADS[bench]
            original = build_target(design, workload)
            bespoke_nl = generate_bespoke(original.netlist, result.profile)
            bespoke = build_target(design, workload, netlist=bespoke_nl)
            cache[key] = (original, bespoke, result)
        return cache[key]

    return get


@pytest.mark.parametrize("design,bench", PAIRS)
def test_bespoke_is_smaller(design, bench, flows):
    original, bespoke, _ = flows(design, bench)
    assert bespoke.netlist.gate_count() < original.netlist.gate_count()
    assert bespoke.netlist.area() < original.netlist.area()


@pytest.mark.parametrize("design,bench", PAIRS)
def test_bespoke_size_tracks_exercisable_count(design, bench, flows):
    """Re-synthesis may shrink below the exercisable count (constant
    folding wins) but never needs more gates than exercisable + ties."""
    _, bespoke, result = flows(design, bench)
    slack = 1.10 * result.exercisable_gate_count + 16
    assert bespoke.netlist.gate_count() <= slack


@pytest.mark.parametrize("design,bench", PAIRS)
def test_validation_report_clean(design, bench, flows):
    original, bespoke, result = flows(design, bench)
    workload = WORKLOADS[bench]
    report = validate_bespoke(original, bespoke, result,
                              cases=workload.cases,
                              max_cycles=6000)
    assert report.ok, report.mismatches
    assert report.cases_run == len(workload.cases)


def test_bespoke_netlist_roundtrips_through_verilog(flows):
    """The emitted bespoke netlist is valid structural Verilog."""
    _, bespoke, _ = flows("omsp430", "tea8")
    text = write_verilog(bespoke.netlist)
    back = parse_verilog(text)
    assert back.gate_count() == bespoke.netlist.gate_count()


def test_original_netlist_verilog_flow():
    """Design-agnostic claim: the tool consumes a *Verilog netlist*; the
    whole co-analysis pipeline must work on a parsed-back core."""
    original = build_target("omsp430", WORKLOADS["mult"])
    text = write_verilog(original.netlist)
    reparsed = parse_verilog(text)
    target = build_target("omsp430", WORKLOADS["mult"], netlist=reparsed)
    from repro.coanalysis import CoAnalysisEngine
    result = CoAnalysisEngine(target, application="mult").run()
    direct = run_one("omsp430", "mult")
    assert result.paths_created == direct.paths_created
    assert result.exercisable_gate_count == direct.exercisable_gate_count
