"""Instruction-level tests of the dr5 core (RV32E subset).

dr5 is a two-phase (FETCH/EXEC) machine, so each instruction takes two
cycles; the harness only observes architectural state at halt, so the
tests read like the single-cycle ones.
"""

import pytest

from .isa_harness import run_snippet

M32 = 0xFFFFFFFF


class TestImmediates:
    def test_addi(self):
        s = run_snippet("dr5", "addi x1, r0, 77".replace("x1", "r1"))
        assert s.reg("x1") == 77

    def test_addi_negative(self):
        s = run_snippet("dr5", "addi r1, r0, -3")
        assert s.reg("x1") == (-3) & M32

    def test_li(self):
        s = run_snippet("dr5", "li r2, 0xCAFEBABE")
        assert s.reg("x2") == 0xCAFEBABE

    def test_lui_high_half(self):
        s = run_snippet("dr5", "lui r3, 0x12340000")
        assert s.reg("x3") == 0x12340000

    def test_x0_hardwired_zero(self):
        s = run_snippet("dr5", """
            addi r0, r0, 55
            add r1, r0, r0
        """)
        assert s.reg("x1") == 0

    def test_mv_pseudo(self):
        s = run_snippet("dr5", """
            addi r2, r0, 31
            mv r3, r2
        """)
        assert s.reg("x3") == 31


class TestRType:
    def test_add_sub(self):
        s = run_snippet("dr5", """
            addi r1, r0, 500
            addi r2, r0, 123
            add r3, r1, r2
            sub r4, r1, r2
        """)
        assert s.reg("x3") == 623
        assert s.reg("x4") == 377

    def test_logic(self):
        s = run_snippet("dr5", """
            li r1, 0xF0F0F0F0
            li r2, 0x0FF00FF0
            and r3, r1, r2
            or  r4, r1, r2
            xor r5, r1, r2
        """)
        assert s.reg("x3") == 0x00F000F0
        assert s.reg("x4") == 0xFFF0FFF0
        assert s.reg("x5") == 0xFF00FF00

    @pytest.mark.parametrize("a,b,slt,sltu", [
        (1, 2, 1, 1),
        (2, 1, 0, 0),
        (0xFFFFFFFE, 3, 1, 0),   # -2 < 3 signed, huge unsigned
    ])
    def test_slt_sltu(self, a, b, slt, sltu):
        s = run_snippet("dr5", f"""
            li r1, {a}
            li r2, {b}
            slt r3, r1, r2
            sltu r4, r1, r2
        """)
        assert s.reg("x3") == slt
        assert s.reg("x4") == sltu

    def test_register_shift_amount(self):
        s = run_snippet("dr5", """
            addi r1, r0, 3
            addi r2, r0, 5
            sll r3, r2, r1
            srl r4, r3, r1
        """)
        assert s.reg("x3") == 40
        assert s.reg("x4") == 5

    def test_immediate_shifts(self):
        s = run_snippet("dr5", """
            addi r1, r0, 0x0F0
            slli r2, r1, 8
            srli r3, r1, 4
        """)
        assert s.reg("x2") == 0xF000
        assert s.reg("x3") == 0xF

    def test_logical_immediates(self):
        s = run_snippet("dr5", """
            li r1, 0xFFFF1234
            andi r2, r1, 0xFF00
            ori  r3, r1, 0x000F
            xori r4, r1, 0xFFFF
        """)
        assert s.reg("x2") == 0x1200
        assert s.reg("x3") == 0xFFFF123F
        assert s.reg("x4") == 0xFFFFEDCB


class TestMemory:
    def test_lw_sw(self):
        s = run_snippet("dr5", """
            addi r1, r0, 64
            li r2, 0x89ABCDEF
            sw r2, 0(r1)
            lw r3, 0(r1)
        """)
        assert s.mem(64) == 0x89ABCDEF
        assert s.reg("x3") == 0x89ABCDEF

    def test_offsets(self):
        s = run_snippet("dr5", """
            addi r1, r0, 66
            addi r2, r0, 7
            sw r2, -2(r1)
            sw r2, 2(r1)
            lw r3, -2(r1)
        """)
        assert s.mem(64) == 7
        assert s.mem(68) == 7
        assert s.reg("x3") == 7

    def test_initial_data(self):
        s = run_snippet("dr5", """
            addi r1, r0, 90
            lw r2, 0(r1)
        """, data={90: 31337})
        assert s.reg("x2") == 31337


class TestControlFlow:
    @pytest.mark.parametrize("br,a,b,taken", [
        ("beq", 4, 4, True), ("beq", 4, 5, False),
        ("bne", 4, 5, True), ("bne", 4, 4, False),
        ("blt", 3, 9, True), ("blt", 9, 3, False),
        ("bge", 9, 3, True), ("bge", 3, 9, False),
        ("bge", 4, 4, True),
        ("bltu", 3, 9, True), ("bltu", 9, 3, False),
        ("bgeu", 9, 3, True), ("bgeu", 3, 9, False),
    ])
    def test_branches(self, br, a, b, taken):
        s = run_snippet("dr5", f"""
            addi r1, r0, {a}
            addi r2, r0, {b}
            addi r3, r0, 0
            {br} r1, r2, hit
            j out
        hit:
            addi r3, r0, 1
        out:
        """)
        assert s.reg("x3") == (1 if taken else 0)

    def test_signed_vs_unsigned_branch_disagree(self):
        s = run_snippet("dr5", """
            li r1, 0xFFFFFFFF    ; -1 signed / max unsigned
            addi r2, r0, 1
            addi r3, r0, 0
            addi r4, r0, 0
            blt r1, r2, s_hit
            j check_u
        s_hit:
            addi r3, r0, 1
        check_u:
            bltu r1, r2, u_hit
            j out
        u_hit:
            addi r4, r0, 1
        out:
        """)
        assert s.reg("x3") == 1   # signed: -1 < 1
        assert s.reg("x4") == 0   # unsigned: max > 1

    def test_jal_links(self):
        s = run_snippet("dr5", """
            jal r5, target
            addi r1, r0, 99      ; skipped
        target:
            addi r2, r0, 1
        """)
        assert s.reg("x2") == 1
        assert s.reg("x5") == 1   # link = address after the jal

    def test_jal_call_return(self):
        s = run_snippet("dr5", """
            addi r1, r0, 0
            jal r5, func
            addi r1, r1, 100     ; runs after "return"
            j done
        func:
            addi r1, r1, 10
            ; return: jump to the link address held in r5 -- dr5 has no
            ; jalr in this subset, so emulate with a computed branch
            ; (store-and-match): here we simply fall through via beq
            beq r0, r0, back
        back:
            j ret_site
        ret_site:
            addi r1, r1, 1
        done:
        """, max_cycles=400)
        assert s.finished

    def test_loop(self):
        s = run_snippet("dr5", """
            addi r1, r0, 5
            addi r2, r0, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
        """)
        assert s.reg("x2") == 15

    def test_two_cycles_per_instruction(self):
        s = run_snippet("dr5", """
            addi r1, r0, 1
            addi r2, r0, 2
            addi r3, r0, 3
        """)
        # 3 instructions x 2 phases each; halt detected at the _halt fetch
        assert s.cycles == 6
