"""Instruction-level tests of the bm32 core (MIPS32 subset)."""

import pytest

from .isa_harness import run_snippet

M32 = 0xFFFFFFFF


class TestImmediatesAndMoves:
    def test_addiu(self):
        s = run_snippet("bm32", "addiu r1, r0, 1234")
        assert s.reg("r1") == 1234

    def test_addiu_negative_immediate(self):
        s = run_snippet("bm32", "addiu r1, r0, -5")
        assert s.reg("r1") == (-5) & M32

    def test_lui_ori_li(self):
        s = run_snippet("bm32", "li r2, 0xDEADBEEF")
        assert s.reg("r2") == 0xDEADBEEF

    def test_r0_is_hardwired_zero(self):
        s = run_snippet("bm32", """
            addiu r0, r0, 999
            addu r1, r0, r0
        """)
        assert s.reg("r1") == 0

    def test_move_pseudo(self):
        s = run_snippet("bm32", """
            addiu r3, r0, 77
            move r4, r3
        """)
        assert s.reg("r4") == 77


class TestRType:
    def test_addu_subu(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 1000
            addiu r2, r0, 234
            addu r3, r1, r2
            subu r4, r1, r2
        """)
        assert s.reg("r3") == 1234
        assert s.reg("r4") == 766

    def test_subu_wraps(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 1
            addiu r2, r0, 2
            subu r3, r1, r2
        """)
        assert s.reg("r3") == M32

    def test_logic(self):
        s = run_snippet("bm32", """
            li r1, 0xFF00FF00
            li r2, 0x0FF00FF0
            and r3, r1, r2
            or  r4, r1, r2
            xor r5, r1, r2
        """)
        assert s.reg("r3") == 0x0F000F00
        assert s.reg("r4") == 0xFFF0FFF0
        assert s.reg("r5") == 0xF0F0F0F0

    @pytest.mark.parametrize("a,b,slt,sltu", [
        (3, 5, 1, 1),
        (5, 3, 0, 0),
        (4, 4, 0, 0),
        (0xFFFFFFFF, 1, 1, 0),    # -1 < 1 signed; huge > 1 unsigned
    ])
    def test_slt_sltu(self, a, b, slt, sltu):
        s = run_snippet("bm32", f"""
            li r1, {a}
            li r2, {b}
            slt r3, r1, r2
            sltu r4, r1, r2
        """)
        assert s.reg("r3") == slt
        assert s.reg("r4") == sltu

    def test_shifts(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 0x0F0
            sll r2, r1, 4
            srl r3, r1, 4
        """)
        assert s.reg("r2") == 0xF00
        assert s.reg("r3") == 0x00F

    def test_shift_by_zero(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 123
            sll r2, r1, 0
        """)
        assert s.reg("r2") == 123


class TestImmediatesLogical:
    def test_andi_ori_xori_zero_extend(self):
        s = run_snippet("bm32", """
            li r1, 0xFFFF1234
            andi r2, r1, 0xFF00
            ori  r3, r1, 0x00FF
            xori r4, r1, 0xFFFF
        """)
        assert s.reg("r2") == 0x1200
        assert s.reg("r3") == 0xFFFF12FF
        assert s.reg("r4") == 0xFFFFEDCB


class TestMultiplier:
    def test_mult_mflo(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 300
            addiu r2, r0, 200
            mult r1, r2
            nop
            mflo r3
        """)
        assert s.reg("r3") == 60000

    def test_mult_latency_one_cycle(self):
        """LO is architected to hold the product one instruction later."""
        s = run_snippet("bm32", """
            addiu r1, r0, 6
            addiu r2, r0, 7
            mult r1, r2
            addiu r4, r0, 1
            mflo r3
        """)
        assert s.reg("r3") == 42

    def test_mfhi_zero_for_16bit_operands(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 0xFFF
            mult r1, r1
            nop
            mfhi r3
        """)
        assert s.reg("r3") == 0


class TestMemory:
    def test_lw_sw(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 64
            li r2, 0x12345678
            sw r2, 0(r1)
            lw r3, 0(r1)
        """)
        assert s.mem(64) == 0x12345678
        assert s.reg("r3") == 0x12345678

    def test_negative_offset(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 70
            addiu r2, r0, 55
            sw r2, -6(r1)
            lw r3, -6(r1)
        """)
        assert s.mem(64) == 55
        assert s.reg("r3") == 55

    def test_initial_data(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 100
            lw r2, 0(r1)
        """, data={100: 4242})
        assert s.reg("r2") == 4242


class TestControlFlow:
    def test_j(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 1
            j over
            addiu r1, r0, 2
        over:
        """)
        assert s.reg("r1") == 1

    @pytest.mark.parametrize("br,a,b,taken", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
    ])
    def test_branches(self, br, a, b, taken):
        s = run_snippet("bm32", f"""
            addiu r1, r0, {a}
            addiu r2, r0, {b}
            addiu r3, r0, 0
            {br} r1, r2, hit
            j out
        hit:
            addiu r3, r0, 1
        out:
        """)
        assert s.reg("r3") == (1 if taken else 0)

    def test_compare_as_subtraction_idiom(self):
        """The paper's bm32 idiom: subu into a temp, branch against r0."""
        s = run_snippet("bm32", """
            addiu r1, r0, 9
            addiu r2, r0, 9
            subu r7, r1, r2
            addiu r3, r0, 0
            bne r7, r0, out
            addiu r3, r0, 1
        out:
        """)
        assert s.reg("r3") == 1

    def test_countdown_loop(self):
        s = run_snippet("bm32", """
            addiu r1, r0, 6
            addiu r2, r0, 0
        loop:
            addiu r2, r2, 3
            addiu r1, r1, -1
            bne r1, r0, loop
        """)
        assert s.reg("r2") == 18
