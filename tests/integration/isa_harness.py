"""Helpers for instruction-level core tests.

Runs a snippet of assembly on the real gate-level core and exposes the
architectural state (register flops, memories, flags) for assertions.
"""

from typing import Dict, Optional

from repro.coanalysis.concrete import run_concrete
from repro.isa import ASSEMBLERS
from repro.logic import Logic
from repro.processors import CoreTarget
from repro.workloads import built_core


class SnippetRun:
    """Result of executing one assembly snippet."""

    def __init__(self, target: CoreTarget, run):
        self.target = target
        self.run = run
        self.netlist = target.netlist
        self.sim = run.final_sim

    @property
    def finished(self) -> bool:
        return self.run.finished

    @property
    def cycles(self) -> int:
        return self.run.cycles

    def reg(self, name: str, width: Optional[int] = None) -> int:
        """Architectural register value read straight from the flops."""
        width = width or self.target.meta.word_width
        nets = self.netlist.bus(name, width)
        value = self.sim.get_bus(nets)
        assert value.is_known, f"register {name} = {value}"
        return value.to_int()

    def flag(self, name: str) -> int:
        level = self.sim.get_net(self.netlist.net_index(name))
        assert level.is_known, f"flag {name} is {level}"
        return 1 if level is Logic.L1 else 0

    def mem(self, addr: int) -> int:
        return self.target.read_dmem_int(self.sim, addr)


def run_snippet(design: str, body: str,
                data: Optional[Dict[int, int]] = None,
                max_cycles: int = 2000) -> SnippetRun:
    """Assemble ``body`` (which must end in a ``_halt`` loop or use the
    ``halt`` pseudo) and run it to completion on the gate-level core."""
    if "_halt" not in body:
        body = body + "\n_halt: halt\n"
    netlist, meta = built_core(design)
    program = ASSEMBLERS[design]().assemble(body, name="snippet")
    target = CoreTarget(netlist, meta, program)
    run = run_concrete(target, data or {}, max_cycles=max_cycles)
    result = SnippetRun(target, run)
    assert result.finished, f"snippet did not halt in {max_cycles} cycles"
    return result
