#!/usr/bin/env python3
"""Bespoke-processor sweep: regenerate the paper's evaluation narrative.

Runs symbolic co-analysis for every benchmark on every core (using the
on-disk result cache if present), then prints Table 3, Table 4, Figure 5
and Figure 6 and emits the bespoke Verilog netlist for one pair.

Usage::

    python examples/bespoke_sweep.py [--no-cache] [out.v]
"""

import sys
from pathlib import Path

from repro import WORKLOADS, build_target, generate_bespoke, write_verilog
from repro.reporting import (DESIGN_ORDER, figure5, figure6, run_grid,
                             table3, table4)
from repro.workloads import WORKLOAD_ORDER


def main(argv) -> None:
    cache = None if "--no-cache" in argv else \
        Path(__file__).resolve().parent.parent / ".repro_cache"
    out_v = next((a for a in argv if a.endswith(".v")), None)

    print("running the full co-analysis grid "
          f"({len(DESIGN_ORDER)} designs x {len(WORKLOAD_ORDER)} "
          "benchmarks) ...")
    results = run_grid(cache_dir=cache, verbose=True)

    print()
    print(table3(results, WORKLOAD_ORDER, DESIGN_ORDER))
    print()
    print(table4(results, WORKLOAD_ORDER, DESIGN_ORDER))
    print()
    print(figure5(results, WORKLOAD_ORDER, DESIGN_ORDER))
    print(figure6(results, WORKLOAD_ORDER, DESIGN_ORDER))

    design, bench = "omsp430", "tea8"
    result = results[design][bench]
    target = build_target(design, WORKLOADS[bench])
    bespoke = generate_bespoke(target.netlist, result.profile)
    print(f"bespoke {design}/{bench}: "
          f"{target.netlist.gate_count()} -> {bespoke.gate_count()} gates")
    if out_v:
        Path(out_v).write_text(write_verilog(bespoke))
        print(f"bespoke netlist written to {out_v}")


if __name__ == "__main__":
    main(sys.argv[1:])
