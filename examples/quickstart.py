#!/usr/bin/env python3
"""Quickstart: symbolic co-analysis of a benchmark on a processor core.

Runs the paper's core flow end to end on one (application, design) pair:

1. assemble the application and bind it to the gate-level core,
2. run symbolic co-analysis (all inputs = X),
3. report the exercisable / unexercisable gate dichotomy,
4. generate and validate a bespoke processor.

Usage::

    python examples/quickstart.py [design] [benchmark]

with design in {omsp430, bm32, dr5} and benchmark in
{Div, inSort, binSearch, tHold, mult, tea8}.
"""

import sys

from repro import (CoAnalysisEngine, WORKLOADS, build_target,
                   generate_bespoke, validate_bespoke)


def main(design: str = "omsp430", bench: str = "binSearch") -> None:
    workload = WORKLOADS[bench]
    target = build_target(design, workload)
    print(f"design     : {design} "
          f"({target.netlist.gate_count()} gates, "
          f"{len(target.netlist.seq_gates)} flops)")
    print(f"application: {bench} -- {workload.description}")
    print(f"monitored  : {', '.join(target.monitored_names()[:6])}"
          f"{' ...' if len(target.monitored_nets) > 6 else ''}")

    print("\nrunning symbolic co-analysis (all inputs = X) ...")
    result = CoAnalysisEngine(target, application=bench).run()
    print(f"  paths created   : {result.paths_created}")
    print(f"  paths skipped   : {result.paths_skipped} (CSM subset hits)")
    print(f"  simulated cycles: {result.simulated_cycles}")
    print(f"  exercisable     : {result.exercisable_gate_count}"
          f" / {result.total_gates} gates")
    print(f"  guaranteed idle : {result.unexercisable_gate_count} gates"
          f" ({result.reduction_percent:.1f}% reduction)")

    print("\ngenerating bespoke processor (prune + re-synthesize) ...")
    bespoke_nl = generate_bespoke(target.netlist, result.profile)
    print(f"  bespoke netlist : {bespoke_nl.gate_count()} gates, "
          f"area {bespoke_nl.area():.0f} (was "
          f"{target.netlist.area():.0f})")

    print("\nvalidating against fixed-input runs (paper 5.0.1) ...")
    bespoke = build_target(design, workload, netlist=bespoke_nl)
    report = validate_bespoke(target, bespoke, result,
                              cases=workload.cases)
    print(f"  cases            : {report.cases_run}")
    print(f"  behaviour match  : {report.behaviour_match}")
    print(f"  exercised subset : {report.subset_ok}")
    if not report.ok:
        for m in report.mismatches:
            print("  !!", m)
        sys.exit(1)
    print("\nOK: bespoke core is equivalent on the analyzed application.")


if __name__ == "__main__":
    main(*sys.argv[1:3])
