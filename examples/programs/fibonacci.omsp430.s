; Fibonacci on the omsp430 model (m16 ISA).
; Computes fib(10) iteratively and stores it at data address 96.
;
;   python -m repro asm omsp430 examples/programs/fibonacci.omsp430.s
;
    movi r0, 1          ; constant one
    movi r1, 0          ; fib(i)
    movi r2, 1          ; fib(i+1)
    movi r4, 10         ; iterations
loop:
    mov r3, r2          ; t = b
    add r2, r1          ; b = a + b
    mov r1, r3          ; a = t
    sub r4, r0
    jne loop
    li r5, 96
    st r1, 0(r5)        ; fib(10) = 55
_halt:
    jmp _halt
