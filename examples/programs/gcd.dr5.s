; Euclid's GCD on the dr5 model (RV32E subset), subtraction form.
; Inputs at data addresses 64/65, result at 96.
;
;   python -m repro asm dr5 examples/programs/gcd.dr5.s
;
    addi r1, r0, 64
    lw r2, 0(r1)        ; a
    lw r3, 1(r1)        ; b
loop:
    beq r2, r3, done
    bltu r2, r3, swap
    sub r2, r2, r3      ; a > b: a -= b
    j loop
swap:
    sub r3, r3, r2      ; b > a: b -= a
    j loop
done:
    addi r4, r0, 96
    sw r2, 0(r4)
_halt:
    j _halt
