; Rotating-XOR checksum over 8 words on the bm32 model (MIPS32 subset).
; Input block at data addresses 64..71, checksum at 96.
;
;   python -m repro asm bm32 examples/programs/checksum.bm32.s
;
    addiu r1, r0, 64    ; pointer
    addiu r2, r0, 8     ; remaining
    addiu r3, r0, 0     ; accumulator
loop:
    lw r4, 0(r1)
    xor r3, r3, r4
    sll r5, r3, 1       ; rotate left by one ...
    srl r6, r3, 31
    or r3, r5, r6       ; ... (shift-shift-or)
    addiu r1, r1, 1
    addiu r2, r2, -1
    bne r2, r0, loop
    addiu r7, r0, 96
    sw r3, 0(r7)
_halt:
    j _halt
