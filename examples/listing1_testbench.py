#!/usr/bin/env python3
"""The paper's Listing 1 workflow on the event-driven kernel.

Reproduces the user-facing testbench contract of the enhanced iverilog:

1. ``$monitor_x("control_signals.ini")`` -- watch the control-flow
   signals named in a file,
2. ``$initialize_state("sim_state.log")`` -- resume a saved simulation,
3. reset pulse, inputs initialized to X,
4. on halt: save the state to disk, fork it with the X re-interpreted as
   0 and as 1 (two "iverilog instances"), and continue each copy from
   the file -- the exact mechanics of Figure 1.

The design is a small comparator FSM standing in for the DUT.
"""

import tempfile
from pathlib import Path

from repro.logic import Logic, LVec
from repro.rtl import Design, mux
from repro.sim import EventSim, HaltSimulation, MonitorX
from repro.sim.tasks import InitializeState, save_state_file

WIDTH = 4


def build_dut():
    """Accumulator that saturates when an unknown input crosses 8."""
    d = Design("dut")
    din = d.input("din", WIDTH)
    acc = d.reg(WIDTH, "acc", reset=True)
    crossed = d.name_sig("crossed", acc.q.uge(d.const(8, WIDTH)))
    nxt, _ = acc.q.add(din)
    acc.drive(mux(crossed, nxt, acc.q))      # hold once crossed
    d.output("acc_o", acc.q)
    return d.finalize()


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="listing1_"))
    nl = build_dut()

    # --- the control_signals.ini file of Listing 1 -------------------------
    signals_file = workdir / "control_signals.ini"
    signals_file.write_text("# control flow signals\ncrossed\n")

    sim = EventSim(nl)
    monitor = MonitorX(signals_file)
    sim.add_symbolic_task(monitor)
    print(f"monitoring {monitor.signal_names} (from {signals_file.name})")

    # --- reset pulse + X inputs (Listing 1 steps 2-3) ---------------------
    sim.poke_by_name("rst", Logic.L1)
    for i in range(WIDTH):
        sim.poke_by_name(f"din[{i}]", Logic.L0)
    sim.tick()
    sim.poke_by_name("rst", Logic.L0)
    for i in range(WIDTH):
        sim.poke_by_name(f"din[{i}]", Logic.X)   # application input = X

    # --- run until $monitor_x halts ----------------------------------------
    ticks = 0
    try:
        while ticks < 50:
            sim.tick()
            ticks += 1
    except HaltSimulation as halt:
        print(f"halted by ${halt.reason} after {ticks + 1} cycles; "
              f"X on {monitor.triggered_signals}")

    # --- save the simulation state (Figure 1's sim_state.log) -------------
    state_file = workdir / "sim_state.log"
    save_state_file(state_file, sim.save_state())
    print(f"state saved to {state_file.name} "
          f"({state_file.stat().st_size} bytes)")

    # --- fork: one continuation per re-interpretation of the X -----------
    crossed_net = nl.net_index("crossed")
    for branch_value in (Logic.L0, Logic.L1):
        fork = EventSim(nl)                      # a fresh "iverilog run"
        InitializeState(state_file)(fork)
        # set the control-flow signal for this execution path by
        # resolving the accumulator bits that made `crossed` unknown
        state = fork.save_state()
        for i in range(WIDTH):
            net = nl.net_index(f"acc[{i}]")
            if state["values"][net] is Logic.X:
                state["values"][net] = branch_value
        fork.restore_state(state)
        for i in range(WIDTH):
            fork.poke_by_name(f"din[{i}]", Logic.L0)
        fork.tick()
        acc = "".join(str(fork.get_logic_by_name(f"acc_o[{i}]"))
                      for i in reversed(range(WIDTH)))
        print(f"  fork with X->{branch_value}: acc_o = {acc}")

    print("OK: both execution paths continued from the saved state.")


if __name__ == "__main__":
    main()
