#!/usr/bin/env python3
"""Design-agnostic co-analysis of a user-supplied accelerator.

The paper's headline claim is that the tool analyzes *any* digital
design, not just the three bundled cores: the user supplies a gate-level
netlist, a stimulus harness, and the control-flow signals to monitor
(Figure 1).  This example builds a small sensor-threshold accelerator
FSM from scratch, hands it to the same engine, and generates a bespoke
variant for a deployment where one feature is never enabled.

The FSM:

* IDLE -> SAMPLE on ``start``,
* SAMPLE: compares the sensor word with a programmed threshold,
* above-threshold events either increment a counter (count mode) or set
  a sticky alarm (alarm mode) depending on a mode pin,
* -> DONE after 4 samples.

Deployment constraint: ``mode`` is strapped to count mode, so the alarm
logic is provably unexercisable and gets pruned.
"""

from repro import CoAnalysisEngine, SymbolicTarget, generate_bespoke
from repro.logic import Logic, LVec
from repro.rtl import Design, mux

WIDTH = 8
N_SAMPLES = 4


def build_accelerator():
    d = Design("sensor_acc")
    start = d.input("start")
    mode = d.input("mode")                  # 0: count, 1: sticky alarm
    sensor = d.input("sensor", WIDTH)
    threshold = d.input("threshold", WIDTH)

    state = d.reg(2, "state", reset=True)           # 0 idle,1 sample,2 done
    remaining = d.reg(3, "remaining", reset=True, reset_value=N_SAMPLES)
    count = d.reg(WIDTH, "count", reset=True)
    alarm = d.reg(1, "alarm", reset=True)

    in_idle = state.q.eq(d.const(0, 2))
    in_sample = state.q.eq(d.const(1, 2))

    above = d.name_sig("above", sensor.uge(threshold) & in_sample)
    branch_point = d.name_sig("branch_point", in_sample)

    one = d.const(1, WIDTH)
    count.drive(count.q.add(one)[0],
                enable=above & ~mode)
    alarm.drive(d.const(1, 1), enable=above & mode)

    last = remaining.q.eq(d.const(1, 3))
    remaining.drive(remaining.q.sub(d.const(1, 3))[0], enable=in_sample)

    nxt = mux(in_idle & start, state.q, d.const(1, 2))
    nxt = mux(in_sample & last, nxt, d.const(2, 2))
    state.drive(nxt)

    d.output("count_o", count.q)
    d.output("alarm_o", alarm.q)
    d.output("state_o", state.q)
    return d.finalize()


class AcceleratorTarget(SymbolicTarget):
    """Minimal harness: no memories, inputs driven once."""

    name = "sensor_acc"
    drive_rounds = 1

    def __init__(self, netlist, mode_strapped=0):
        super().__init__(netlist)
        self.mode_strapped = mode_strapped
        self.monitored_nets = [netlist.net_index("above")]
        self.branch_point_net = netlist.net_index("branch_point")
        self.branch_force_net = netlist.net_index("above")
        # For an FSM the "PC" is its whole control-state vector: the
        # state register plus the loop counter.  Indexing the CSM
        # repository on both keeps the counter concrete per entry
        # (merging it to X would make the next control state unknown).
        self.pc_nets = (netlist.bus("state_o", 2)
                        + netlist.bus("remaining", 3))

    def apply_symbolic_inputs(self, sim):
        sim.set_input("start", Logic.L1)
        sim.set_input("mode", Logic.L0 if self.mode_strapped == 0
                      else Logic.L1)
        sim.set_input("sensor", LVec.unknown(WIDTH))     # field data: X
        sim.set_input("threshold", LVec.from_int(100, WIDTH))

    def apply_concrete_inputs(self, sim, inputs):
        self.apply_symbolic_inputs(sim)
        sim.set_input("sensor", LVec.from_int(inputs["sensor"], WIDTH))

    def is_done(self, sim):
        return self.current_pc(sim) == 2


def main() -> None:
    nl = build_accelerator()
    print(f"accelerator: {nl.gate_count()} gates, "
          f"{len(nl.seq_gates)} flops")

    target = AcceleratorTarget(nl, mode_strapped=0)
    result = CoAnalysisEngine(target, application="sensor",
                              max_cycles_per_path=100).run()
    print(f"symbolic analysis: {result.paths_created} paths, "
          f"{result.simulated_cycles} cycles")
    print(f"exercisable gates: {result.exercisable_gate_count}"
          f" / {result.total_gates} "
          f"({result.reduction_percent:.1f}% prunable)")

    ex = result.profile.exercised_nets()
    alarm_nets = nl.find_nets("alarm")
    assert not any(ex[n] for n in alarm_nets), \
        "alarm logic should be idle in count mode"
    print("alarm logic proven unexercisable in the strapped deployment")

    bespoke = generate_bespoke(nl, result.profile)
    print(f"bespoke accelerator: {bespoke.gate_count()} gates "
          f"(was {nl.gate_count()})")
    assert bespoke.gate_count() < nl.gate_count()
    print("OK")


if __name__ == "__main__":
    main()
