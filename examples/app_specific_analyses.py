#!/usr/bin/env python3
"""The full application-specific analysis suite on one (core, app) pair.

The paper's point is that one symbolic co-analysis unlocks a family of
design techniques (its refs [4]-[8]).  This example runs them all on a
single pair and prints the combined report:

* bespoke gate/area reduction                       [4]
* input-independent peak switching bound            [5]
* energy and leakage savings of the bespoke core    [4, 6]
* timing slack usable for voltage overscaling       [8, 18]
* symbolic program coverage / dead code             [1]

Usage::

    python examples/app_specific_analyses.py [design] [benchmark]
"""

import sys

from repro import WORKLOADS, build_target, generate_bespoke
from repro.analysis import (analyze_coverage, analyze_peak_power,
                            compare_power, concrete_peak, timing_slack)
from repro.bespoke import area_report


def main(design: str = "omsp430", bench: str = "tea8") -> None:
    workload = WORKLOADS[bench]
    target = build_target(design, workload)
    print(f"=== {design} / {bench} "
          f"({target.netlist.gate_count()} gates) ===\n")

    print("[co-analysis + peak power bound]")
    peak = analyze_peak_power(target, application=bench)
    analysis = peak.analysis
    print(f"  paths: {analysis.paths_created}, "
          f"cycles: {analysis.simulated_cycles}")
    print(f"  exercisable gates: {analysis.exercisable_gate_count}"
          f" / {analysis.total_gates}")
    print(f"  peak switching bound: {peak.peak_bound:.0f} units "
          f"(cycle {peak.peak_cycle})")
    worst = max(concrete_peak(target, c) for c in workload.cases)
    print(f"  worst measured concrete peak: {worst:.0f} "
          f"({100 * worst / peak.peak_bound:.0f}% of bound)\n")

    print("[bespoke processor]")
    bespoke_nl = generate_bespoke(target.netlist, analysis.profile)
    area = area_report(target.netlist, bespoke_nl)
    print(f"  gates: {area['gates_before']} -> {area['gates_after']} "
          f"({area['gate_reduction_percent']}%)")
    print(f"  area : {area['area_before']} -> {area['area_after']} "
          f"({area['area_reduction_percent']}%)")
    bespoke = build_target(design, workload, netlist=bespoke_nl)
    savings = compare_power(target, bespoke, workload.cases[0])
    print(f"  energy saving : {savings.energy_saving_percent:.1f}%")
    print(f"  leakage saving: {savings.leakage_saving_percent:.1f}%\n")

    print("[timing slack -> voltage overscaling headroom]")
    slack = timing_slack(target.netlist, analysis.profile)
    print(f"  full critical path       : "
          f"{slack.full.critical_delay:.1f} gate-delays "
          f"(ends at {slack.full.endpoint})")
    print(f"  exercisable critical path: "
          f"{slack.exercisable.critical_delay:.1f} gate-delays")
    print(f"  slack: {slack.slack_percent:.1f}%  "
          f"(~{100 * slack.voltage_headroom:.0f}% relative Vdd headroom)\n")

    print("[program coverage]")
    coverage = analyze_coverage(target, application=bench)
    print(f"  {coverage.summary()}")
    if coverage.dead_labels():
        print(f"  dead labels: {coverage.dead_labels()}")
    print("\nOK")


if __name__ == "__main__":
    main(*sys.argv[1:3])
