#!/usr/bin/env python3
"""Information-flow analysis with labeled, tainted symbols.

Prior work [7] used the co-analysis methodology to provide gate-level
information-flow security guarantees: symbols carry *taint* as well as
unknownness, so the analysis can prove that a secret can never reach an
output.  This example reproduces that use of the tool's customizable
symbol propagation (paper section 3.4) on a small crypto-ish datapath:

* a key register (tainted ``secret``),
* a data input (tainted ``public``),
* an output mux controlled by a "debug" pin.

The analysis shows the output is key-tainted whenever debug mode could
expose the key path, and clean when the mux is provably parked.
"""

from repro.logic import Logic, SymBit
from repro.rtl import Design, mux
from repro.sim import EventSim, LabeledSymbolDomain

WIDTH = 8


def build_datapath():
    d = Design("leaky")
    key = d.input("key", WIDTH)
    data = d.input("data", WIDTH)
    debug = d.input("debug")
    masked = data ^ key                     # encryption-ish mixing
    # debug tap: raw key bypass (the vulnerability)
    d.output("out", mux(debug, masked, key))
    return d.finalize()


def taint_report(sim, nl, label):
    taints = set()
    for i in range(WIDTH):
        taints |= sim.get(nl.net_index(f"out[{i}]")).taint
    print(f"  {label:<28} output taint: "
          f"{sorted(taints) if taints else '(clean)'}")
    return taints


def main() -> None:
    nl = build_datapath()
    print(f"datapath: {nl.gate_count()} gates; "
          "out = debug ? key : data ^ key\n")

    def fresh():
        sim = EventSim(nl, domain=LabeledSymbolDomain())
        for i in range(WIDTH):
            sim.poke(nl.net_index(f"key[{i}]"),
                     SymBit.symbol(f"k{i}", taint=frozenset({"secret"})))
            sim.poke(nl.net_index(f"data[{i}]"),
                     SymBit.symbol(f"d{i}", taint=frozenset({"public"})))
        return sim

    print("case 1: debug pin unknown (attacker-controlled)")
    sim = fresh()
    sim.poke(nl.net_index("debug"), SymBit.unknown())
    sim.settle()
    taints = taint_report(sim, nl, "debug = X")
    assert "secret" in taints

    print("\ncase 2: debug pin tied low (deployed configuration)")
    sim = fresh()
    sim.poke(nl.net_index("debug"), SymBit.const(0))
    sim.settle()
    taints = taint_report(sim, nl, "debug = 0")
    # the XOR mixes key into the output -- still secret-tainted, which is
    # exactly what an information-flow analysis must report for an XOR
    # "encryption" with a reusable key
    assert "secret" in taints

    print("\ncase 3: key register cleared before debug access")
    sim = fresh()
    for i in range(WIDTH):
        sim.poke(nl.net_index(f"key[{i}]"), SymBit.const(0))
    sim.poke(nl.net_index("debug"), SymBit.unknown())
    sim.settle()
    taints = taint_report(sim, nl, "key cleared, debug = X")
    assert "secret" not in taints
    print("\nOK: taint tracking distinguishes the three configurations.")


if __name__ == "__main__":
    main()
