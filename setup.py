"""Legacy shim so `python setup.py develop` works in offline environments
where pip's build isolation cannot fetch setuptools/wheel."""

from setuptools import setup

setup()
