"""Labeled symbolic bits and taint propagation (paper section 3.4, Fig. 4).

The paper's tool lets the *rules of symbol propagation* be customized:

* **Unlabeled mode** (Fig. 4 right): every unknown is an indistinguishable
  ``X``.  Cheapest and most scalable, but ``a XOR a`` evaluates to ``X``.
* **Labeled mode** (Fig. 4 left): each circuit input carries an identifying
  symbol, so when the *same* symbol recombines at a gate the result can be
  resolved (``a XOR a = 0``, ``a AND NOT a = 0``, ``a OR NOT a = 1``).
* **Taint mode** (used for the security analyses of prior work [7]): a
  symbol additionally carries a set of taint labels that union through every
  gate it influences.

:class:`SymBit` implements all three: it is either a concrete constant, a
(possibly negated) single symbol literal, or an anonymous unknown -- in
every case annotated with a taint set.  Expressions over *distinct* symbols
deliberately degrade to anonymous unknowns; full symbolic expression graphs
would reimplement a BDD package, which is beyond what the paper's tool does
(it resolves only same-symbol recombination).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from .value import Logic

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class SymBit:
    """A four-valued bit with optional symbol identity and taint labels.

    Attributes:
        level: the projection onto plain four-valued logic.  A symbol
            literal projects to ``X``.
        sym:   symbol identifier, or ``None`` for constants / anonymous Xs.
        neg:   True when this bit is the complement of symbol ``sym``.
        taint: labels that have influenced this bit.
    """

    level: Logic
    sym: Optional[str] = None
    neg: bool = False
    taint: FrozenSet[str] = field(default=_EMPTY)

    # -- constructors ----------------------------------------------------
    @staticmethod
    def const(value: int, taint: FrozenSet[str] = _EMPTY) -> "SymBit":
        return SymBit(Logic.L1 if value else Logic.L0, taint=taint)

    @staticmethod
    def unknown(taint: FrozenSet[str] = _EMPTY) -> "SymBit":
        return SymBit(Logic.X, taint=taint)

    @staticmethod
    def symbol(name: str, taint: FrozenSet[str] = _EMPTY) -> "SymBit":
        """A fresh identified symbolic input (Fig. 4 left)."""
        return SymBit(Logic.X, sym=name, taint=taint)

    @staticmethod
    def from_logic(level: Logic, taint: FrozenSet[str] = _EMPTY) -> "SymBit":
        return SymBit(Logic.X if level is Logic.Z else level, taint=taint)

    # -- queries ----------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return self.level.is_known

    @property
    def is_symbolic(self) -> bool:
        return self.sym is not None

    def __str__(self) -> str:
        if self.sym is not None:
            return ("~" if self.neg else "") + self.sym
        return str(self.level)

    # -- helpers ----------------------------------------------------------
    def _same_literal(self, other: "SymBit") -> bool:
        return (self.sym is not None and self.sym == other.sym
                and self.neg == other.neg)

    def _opposite_literal(self, other: "SymBit") -> bool:
        return (self.sym is not None and self.sym == other.sym
                and self.neg != other.neg)

    def _taints(self, other: "SymBit") -> FrozenSet[str]:
        if not other.taint:
            return self.taint
        if not self.taint:
            return other.taint
        return self.taint | other.taint

    # -- gate algebra -------------------------------------------------------
    def inv(self) -> "SymBit":
        if self.is_const:
            return SymBit(Logic.L0 if self.level is Logic.L1 else Logic.L1,
                          taint=self.taint)
        if self.sym is not None:
            return SymBit(Logic.X, self.sym, not self.neg, self.taint)
        return SymBit(Logic.X, taint=self.taint)

    def and_(self, other: "SymBit") -> "SymBit":
        taint = self._taints(other)
        if self.level is Logic.L0 or other.level is Logic.L0:
            # Controlling value: the 0 side alone decides; taint still
            # unions because the gate output *observed* both inputs only in
            # the information-flow sense when the non-controlling side could
            # matter -- the conservative choice for security analyses is to
            # keep the union.
            return SymBit(Logic.L0, taint=taint)
        if self.level is Logic.L1:
            return SymBit(other.level, other.sym, other.neg, taint)
        if other.level is Logic.L1:
            return SymBit(self.level, self.sym, self.neg, taint)
        # both unknown
        if self._same_literal(other):
            return SymBit(Logic.X, self.sym, self.neg, taint)
        if self._opposite_literal(other):
            return SymBit(Logic.L0, taint=taint)  # a & ~a
        return SymBit(Logic.X, taint=taint)

    def or_(self, other: "SymBit") -> "SymBit":
        taint = self._taints(other)
        if self.level is Logic.L1 or other.level is Logic.L1:
            return SymBit(Logic.L1, taint=taint)
        if self.level is Logic.L0:
            return SymBit(other.level, other.sym, other.neg, taint)
        if other.level is Logic.L0:
            return SymBit(self.level, self.sym, self.neg, taint)
        if self._same_literal(other):
            return SymBit(Logic.X, self.sym, self.neg, taint)
        if self._opposite_literal(other):
            return SymBit(Logic.L1, taint=taint)  # a | ~a
        return SymBit(Logic.X, taint=taint)

    def xor_(self, other: "SymBit") -> "SymBit":
        taint = self._taints(other)
        if self.is_const and other.is_const:
            return SymBit(Logic.L1 if self.level is not other.level
                          else Logic.L0, taint=taint)
        if self.is_const:
            out = other if self.level is Logic.L0 else other.inv()
            return SymBit(out.level, out.sym, out.neg, taint)
        if other.is_const:
            out = self if other.level is Logic.L0 else self.inv()
            return SymBit(out.level, out.sym, out.neg, taint)
        if self._same_literal(other):
            return SymBit(Logic.L0, taint=taint)  # a ^ a = 0  (Fig. 4 left)
        if self._opposite_literal(other):
            return SymBit(Logic.L1, taint=taint)  # a ^ ~a = 1
        return SymBit(Logic.X, taint=taint)

    def mux(self, d0: "SymBit", d1: "SymBit") -> "SymBit":
        """``self ? d1 : d0`` with same-literal select resolution."""
        taint = self.taint | d0.taint | d1.taint
        if self.level is Logic.L0:
            return SymBit(d0.level, d0.sym, d0.neg, self.taint | d0.taint)
        if self.level is Logic.L1:
            return SymBit(d1.level, d1.sym, d1.neg, self.taint | d1.taint)
        if (d0.level is d1.level and d0.is_const):
            return SymBit(d0.level, taint=taint)
        if d0._same_literal(d1):
            return SymBit(Logic.X, d0.sym, d0.neg, taint)
        return SymBit(Logic.X, taint=taint)


def nand_(a: SymBit, b: SymBit) -> SymBit:
    return a.and_(b).inv()


def nor_(a: SymBit, b: SymBit) -> SymBit:
    return a.or_(b).inv()


def xnor_(a: SymBit, b: SymBit) -> SymBit:
    return a.xor_(b).inv()


class SymbolAllocator:
    """Allocates uniquely named input symbols (``s0, s1, ...``)."""

    def __init__(self, prefix: str = "s"):
        self._prefix = prefix
        self._next = 0

    def fresh(self, taint: FrozenSet[str] = _EMPTY) -> SymBit:
        name = f"{self._prefix}{self._next}"
        self._next += 1
        return SymBit.symbol(name, taint=taint)

    def fresh_vector(self, width: int,
                     taint: FrozenSet[str] = _EMPTY) -> Tuple[SymBit, ...]:
        return tuple(self.fresh(taint) for _ in range(width))
