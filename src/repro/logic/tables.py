"""Gate evaluation dispatch tables.

Both simulation engines and the re-synthesis constant folder evaluate
primitive cells through these tables so that semantics are defined exactly
once.  Evaluators take a sequence of input :class:`Logic` levels (in the
cell's declared pin order) and return the output level.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from .value import (Logic, l_buf, l_mux, l_not, reduce_and, reduce_or,
                    reduce_xor)

GateEval = Callable[[Sequence[Logic]], Logic]


def _not(ins: Sequence[Logic]) -> Logic:
    return l_not(ins[0])


def _buf(ins: Sequence[Logic]) -> Logic:
    return l_buf(ins[0])


def _and(ins: Sequence[Logic]) -> Logic:
    return reduce_and(ins)


def _or(ins: Sequence[Logic]) -> Logic:
    return reduce_or(ins)


def _xor(ins: Sequence[Logic]) -> Logic:
    return reduce_xor(ins)


def _nand(ins: Sequence[Logic]) -> Logic:
    return l_not(reduce_and(ins))


def _nor(ins: Sequence[Logic]) -> Logic:
    return l_not(reduce_or(ins))


def _xnor(ins: Sequence[Logic]) -> Logic:
    return l_not(reduce_xor(ins))


def _mux2(ins: Sequence[Logic]) -> Logic:
    # pin order: D0, D1, S
    return l_mux(ins[2], ins[0], ins[1])


def _tie0(ins: Sequence[Logic]) -> Logic:
    return Logic.L0


def _tie1(ins: Sequence[Logic]) -> Logic:
    return Logic.L1


#: Combinational evaluators keyed by cell kind name.
COMB_EVAL: Dict[str, GateEval] = {
    "NOT": _not,
    "BUF": _buf,
    "AND": _and,
    "OR": _or,
    "XOR": _xor,
    "NAND": _nand,
    "NOR": _nor,
    "XNOR": _xnor,
    "MUX2": _mux2,
    "TIE0": _tie0,
    "TIE1": _tie1,
}


def evaluate(kind: str, inputs: Sequence[Logic]) -> Logic:
    """Evaluate a combinational cell of ``kind`` on ``inputs``."""
    try:
        fn = COMB_EVAL[kind]
    except KeyError:
        raise KeyError(f"no combinational evaluator for cell kind {kind!r}") \
            from None
    return fn(inputs)
