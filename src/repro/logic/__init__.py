"""Four-valued and symbolic logic substrate."""

from .value import (Logic, coerce, covers, l_and, l_buf, l_mux, l_nand,
                    l_nor, l_not, l_or, l_xnor, l_xor, merge, reduce_and,
                    reduce_or, reduce_xor)
from .symbol import SymBit, SymbolAllocator
from .vector import LVec, pack_vectors
from .tables import COMB_EVAL, evaluate

__all__ = [
    "Logic", "coerce", "covers", "merge",
    "l_and", "l_or", "l_not", "l_xor", "l_nand", "l_nor", "l_xnor",
    "l_buf", "l_mux", "reduce_and", "reduce_or", "reduce_xor",
    "SymBit", "SymbolAllocator",
    "LVec", "pack_vectors",
    "COMB_EVAL", "evaluate",
]
