"""Four-valued scalar logic.

The simulator operates on the classic four-valued Verilog domain:

* ``L0`` / ``L1`` -- known logic low / high.
* ``X``          -- unknown.  In this tool an ``X`` additionally denotes a
  *symbolic* application input (paper section 3): a value that could be 0 or
  1 depending on the input, so anything it reaches is *exercisable*.
* ``Z``          -- high impedance.  Gates treat a ``Z`` input as ``X``
  (standard Verilog semantics for non-tristate primitives).

Gate evaluation follows Kleene's strong three-valued logic extended with
``Z``: controlling values dominate unknowns (``AND(0, X) = 0``,
``OR(1, X) = 1``) which is exactly what allows the symbolic simulation to
prove gates unexercisable even when their inputs carry ``X``.
"""

from __future__ import annotations

import enum
from typing import Iterable, Union


class Logic(enum.IntEnum):
    """A single four-valued logic level."""

    L0 = 0
    L1 = 1
    X = 2
    Z = 3

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    def __str__(self) -> str:
        return _CHARS[self]

    @property
    def is_known(self) -> bool:
        """True when the level is a definite 0 or 1."""
        return self is Logic.L0 or self is Logic.L1

    @property
    def is_unknown(self) -> bool:
        """True for ``X`` or ``Z`` (anything a gate must treat as unknown)."""
        return not self.is_known

    def __invert__(self) -> "Logic":
        return l_not(self)

    def __and__(self, other: "Logic") -> "Logic":  # type: ignore[override]
        return l_and(self, coerce(other))

    def __or__(self, other: "Logic") -> "Logic":  # type: ignore[override]
        return l_or(self, coerce(other))

    def __xor__(self, other: "Logic") -> "Logic":  # type: ignore[override]
        return l_xor(self, coerce(other))


_CHARS = {Logic.L0: "0", Logic.L1: "1", Logic.X: "x", Logic.Z: "z"}
_FROM_CHAR = {"0": Logic.L0, "1": Logic.L1, "x": Logic.X, "X": Logic.X,
              "z": Logic.Z, "Z": Logic.Z}

LogicLike = Union[Logic, int, bool, str]


def coerce(value: LogicLike) -> Logic:
    """Convert ``0/1``, ``bool``, ``'0'/'1'/'x'/'z'`` or :class:`Logic`."""
    if isinstance(value, Logic):
        return value
    if isinstance(value, bool):
        return Logic.L1 if value else Logic.L0
    if isinstance(value, int):
        if value == 0:
            return Logic.L0
        if value == 1:
            return Logic.L1
        raise ValueError(f"cannot coerce int {value!r} to Logic")
    if isinstance(value, str):
        try:
            return _FROM_CHAR[value]
        except KeyError:
            raise ValueError(f"cannot coerce {value!r} to Logic") from None
    raise TypeError(f"cannot coerce {type(value).__name__} to Logic")


def _u(value: Logic) -> Logic:
    """Normalize ``Z`` to ``X`` for gate-input purposes."""
    return Logic.X if value is Logic.Z else value


def l_not(a: Logic) -> Logic:
    a = _u(a)
    if a is Logic.X:
        return Logic.X
    return Logic.L1 if a is Logic.L0 else Logic.L0


def l_and(a: Logic, b: Logic) -> Logic:
    a, b = _u(a), _u(b)
    if a is Logic.L0 or b is Logic.L0:
        return Logic.L0
    if a is Logic.X or b is Logic.X:
        return Logic.X
    return Logic.L1


def l_or(a: Logic, b: Logic) -> Logic:
    a, b = _u(a), _u(b)
    if a is Logic.L1 or b is Logic.L1:
        return Logic.L1
    if a is Logic.X or b is Logic.X:
        return Logic.X
    return Logic.L0


def l_xor(a: Logic, b: Logic) -> Logic:
    a, b = _u(a), _u(b)
    if a is Logic.X or b is Logic.X:
        return Logic.X
    return Logic.L1 if a is not b else Logic.L0


def l_nand(a: Logic, b: Logic) -> Logic:
    return l_not(l_and(a, b))


def l_nor(a: Logic, b: Logic) -> Logic:
    return l_not(l_or(a, b))


def l_xnor(a: Logic, b: Logic) -> Logic:
    return l_not(l_xor(a, b))


def l_buf(a: Logic) -> Logic:
    return _u(a)


def l_mux(sel: Logic, d0: Logic, d1: Logic) -> Logic:
    """2:1 mux with X-pessimism reduced when both data inputs agree.

    When the select is ``X`` but both data inputs carry the same known
    value, the output is that value -- the standard "X-optimism free but
    not needlessly pessimistic" mux semantics that gate-level simulators
    implement for ``MUX2`` cells.
    """
    sel, d0, d1 = _u(sel), _u(d0), _u(d1)
    if sel is Logic.L0:
        return d0
    if sel is Logic.L1:
        return d1
    if d0 is d1 and d0.is_known:
        return d0
    return Logic.X


def reduce_and(values: Iterable[Logic]) -> Logic:
    out = Logic.L1
    for v in values:
        out = l_and(out, v)
        if out is Logic.L0:
            return out
    return out


def reduce_or(values: Iterable[Logic]) -> Logic:
    out = Logic.L0
    for v in values:
        out = l_or(out, v)
        if out is Logic.L1:
            return out
    return out


def reduce_xor(values: Iterable[Logic]) -> Logic:
    out = Logic.L0
    for v in values:
        out = l_xor(out, v)
    return out


def covers(general: Logic, specific: Logic) -> bool:
    """True when ``general`` subsumes ``specific``.

    ``X`` covers everything; a known value covers only itself.  ``Z`` is
    treated as unknown.  This is the per-bit primitive underneath the CSM's
    strict-subset test (paper section 3.3).
    """
    general, specific = _u(general), _u(specific)
    if general is Logic.X:
        return True
    return general is specific


def merge(a: Logic, b: Logic) -> Logic:
    """Least conservative value covering both ``a`` and ``b``.

    This is the CSM's per-bit merge rule: differing bits become ``X``.
    """
    a, b = _u(a), _u(b)
    if a is b:
        return a
    return Logic.X
