"""Fixed-width four-valued bit-vectors.

:class:`LVec` is the workhorse value type for architectural state: register
contents, memory words, program counters.  Bits are stored LSB-first.
Arithmetic is *conservative*: an unknown operand bit poisons exactly the
result bits it can influence (e.g. an ``X`` in bit 3 of an addend makes
result bits 3..N-1 unknown via carry propagation), never fewer.  This is the
same over-approximation a gate-level ripple adder exhibits under Kleene
semantics, so vector-level models agree with gate-level simulation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from .value import (Logic, LogicLike, coerce, covers, l_and, l_not, l_or,
                    l_xor, merge)


class LVec:
    """An immutable, fixed-width vector of :class:`Logic` values."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[LogicLike]):
        self._bits: Tuple[Logic, ...] = tuple(coerce(b) for b in bits)

    # -- constructors ----------------------------------------------------
    @staticmethod
    def from_int(value: int, width: int) -> "LVec":
        if width <= 0:
            raise ValueError("width must be positive")
        mask = (1 << width) - 1
        value &= mask
        return LVec((Logic.L1 if (value >> i) & 1 else Logic.L0)
                    for i in range(width))

    @staticmethod
    def unknown(width: int) -> "LVec":
        return LVec([Logic.X] * width)

    @staticmethod
    def zeros(width: int) -> "LVec":
        return LVec.from_int(0, width)

    @staticmethod
    def from_str(text: str) -> "LVec":
        """Parse a Verilog-style literal body, MSB first (``"10x1"``)."""
        return LVec(coerce(ch) for ch in reversed(text.replace("_", "")))

    # -- basics ----------------------------------------------------------
    @property
    def width(self) -> int:
        return len(self._bits)

    @property
    def bits(self) -> Tuple[Logic, ...]:
        """LSB-first tuple of bits."""
        return self._bits

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[Logic]:
        return iter(self._bits)

    def __getitem__(self, idx: Union[int, slice]) -> Union[Logic, "LVec"]:
        if isinstance(idx, slice):
            return LVec(self._bits[idx])
        return self._bits[idx]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LVec) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __str__(self) -> str:
        return "".join(str(b) for b in reversed(self._bits))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LVec('{self}')"

    # -- queries ----------------------------------------------------------
    @property
    def is_known(self) -> bool:
        return all(b.is_known for b in self._bits)

    @property
    def has_x(self) -> bool:
        return any(not b.is_known for b in self._bits)

    def count_x(self) -> int:
        return sum(1 for b in self._bits if not b.is_known)

    def to_int(self) -> int:
        """Integer value; raises if any bit is unknown."""
        if not self.is_known:
            raise ValueError(f"vector {self} contains unknown bits")
        return sum(1 << i for i, b in enumerate(self._bits) if b is Logic.L1)

    def to_int_or(self, default: int) -> int:
        return self.to_int() if self.is_known else default

    # -- structure --------------------------------------------------------
    def concat(self, high: "LVec") -> "LVec":
        """Return ``{high, self}`` (self in the low bits)."""
        return LVec(self._bits + high._bits)

    def replace(self, idx: int, value: LogicLike) -> "LVec":
        bits = list(self._bits)
        bits[idx] = coerce(value)
        return LVec(bits)

    def zext(self, width: int) -> "LVec":
        if width < self.width:
            raise ValueError("zext target narrower than vector")
        return LVec(self._bits + (Logic.L0,) * (width - self.width))

    def sext(self, width: int) -> "LVec":
        if width < self.width:
            raise ValueError("sext target narrower than vector")
        return LVec(self._bits + (self._bits[-1],) * (width - self.width))

    def trunc(self, width: int) -> "LVec":
        return LVec(self._bits[:width])

    # -- bitwise ----------------------------------------------------------
    def _binary(self, other: "LVec", op) -> "LVec":
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")
        return LVec(op(a, b) for a, b in zip(self._bits, other._bits))

    def __and__(self, other: "LVec") -> "LVec":
        return self._binary(other, l_and)

    def __or__(self, other: "LVec") -> "LVec":
        return self._binary(other, l_or)

    def __xor__(self, other: "LVec") -> "LVec":
        return self._binary(other, l_xor)

    def __invert__(self) -> "LVec":
        return LVec(l_not(b) for b in self._bits)

    def shl(self, amount: int) -> "LVec":
        amount = min(amount, self.width)
        return LVec((Logic.L0,) * amount + self._bits[:self.width - amount])

    def shr(self, amount: int) -> "LVec":
        amount = min(amount, self.width)
        return LVec(self._bits[amount:] + (Logic.L0,) * amount)

    def sar(self, amount: int) -> "LVec":
        amount = min(amount, self.width)
        return LVec(self._bits[amount:] + (self._bits[-1],) * amount)

    # -- arithmetic --------------------------------------------------------
    def add(self, other: "LVec", carry_in: LogicLike = 0) -> "LVec":
        """Ripple-carry addition with X-propagating carries."""
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")
        carry = coerce(carry_in)
        out: List[Logic] = []
        for a, b in zip(self._bits, other._bits):
            out.append(l_xor(l_xor(a, b), carry))
            carry = l_or(l_and(a, b), l_and(carry, l_xor(a, b)))
        return LVec(out)

    def sub(self, other: "LVec") -> "LVec":
        return self.add(~other, carry_in=1)

    def __add__(self, other: "LVec") -> "LVec":
        return self.add(other)

    def __sub__(self, other: "LVec") -> "LVec":
        return self.sub(other)

    def eq(self, other: "LVec") -> Logic:
        """Four-valued equality: 1, 0, or X."""
        acc = Logic.L1
        for a, b in zip(self._bits, other._bits):
            acc = l_and(acc, l_not(l_xor(a, b)))
            if acc is Logic.L0:
                return acc
        return acc

    def ult(self, other: "LVec") -> Logic:
        """Unsigned less-than (borrow out of ``self - other``)."""
        diff_carry = coerce(1)
        for a, b in zip(self._bits, other._bits):
            nb = l_not(b)
            diff_carry = l_or(l_and(a, nb),
                              l_and(diff_carry, l_xor(a, nb)))
        return l_not(diff_carry)

    # -- CSM primitives ----------------------------------------------------
    def covers(self, other: "LVec") -> bool:
        """True when every bit of ``self`` subsumes the matching bit of
        ``other`` (X covers anything)."""
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")
        return all(covers(a, b) for a, b in zip(self._bits, other._bits))

    def merge(self, other: "LVec") -> "LVec":
        """Least conservative vector covering both operands."""
        return self._binary(other, merge)


def pack_vectors(vectors: Sequence[LVec]) -> LVec:
    """Concatenate vectors, first element in the low bits."""
    bits: List[Logic] = []
    for vec in vectors:
        bits.extend(vec.bits)
    return LVec(bits)
