"""Parallel execution-path exploration (paper section 3.3).

"Since each branch of the simulation can be run by a separate process,
launching these processes in parallel can drastically improve simulation
time."  The paper forks whole iverilog instances; here each worker
process holds its own compiled simulator and receives saved states to
continue from -- the same state hand-off, without re-launching a
simulator binary per path.

Exploration proceeds in waves: all currently pending paths are simulated
concurrently; the parent then feeds the halted states through the (single,
sequential) Conservative State Manager and schedules the next wave.  Wave
order differs from the serial engine's depth-first order, so path counts
can differ slightly -- exactly as they would between the paper's serial
and parallel runs -- while the exercisable-gate result is unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..csm.manager import ConservativeStateManager
from ..logic.value import Logic
from ..sim.state import SimState
from .results import CoAnalysisError, CoAnalysisResult, PathRecord
from .target import SymbolicTarget
from ..sim.activity import ToggleProfile

_worker_target: Optional[SymbolicTarget] = None
_worker_sim = None
_worker_budget = 0


def _init_worker(factory: Callable[[], SymbolicTarget],
                 max_cycles: int) -> None:
    global _worker_target, _worker_sim, _worker_budget
    _worker_target = factory()
    _worker_sim = _worker_target.make_sim()
    _worker_budget = max_cycles


def _simulate_segment(job: Tuple[bytes, Optional[int]]):
    """Run one pending path until halt/done; return a picklable record."""
    state_bytes, forced = job
    target, sim = _worker_target, _worker_sim
    sim.reset_activity()
    sim.restore(SimState.from_bytes(state_bytes))
    sim.arm_activity()

    first_forced = forced is not None
    if first_forced:
        sim.force(target.branch_force_net,
                  Logic.L1 if forced else Logic.L0)
    cycles = 0
    outcome = "budget"
    end_state: Optional[bytes] = None
    end_pc: Optional[int] = None
    while cycles <= _worker_budget:
        target.drive_all(sim)
        if not first_forced:
            if target.is_done(sim):
                outcome = "done"
                end_pc = target.current_pc(sim)
                sim.record_activity_now()
                break
            bp = target.at_branch_point(sim)
            if bp is not Logic.L0 and (not bp.is_known
                                       or target.monitored_has_x(sim)):
                outcome = "halt"
                end_pc = target.current_pc(sim)
                sim.record_activity_now()
                end_state = sim.snapshot(pc=end_pc).to_bytes()
                break
        sim.record_activity_now()
        target.on_edge(sim)
        sim.clock_edge()
        cycles += 1
        if first_forced:
            sim.release()
            first_forced = False
    return (outcome, end_pc, cycles, end_state,
            sim.toggled.copy(), sim.ever_x.copy(),
            (sim.val & sim.known).copy(), sim.known.copy())


@dataclass
class ParallelRunStats:
    waves: int = 0
    workers: int = 1
    wall_seconds: float = 0.0


class ParallelCoAnalysis:
    """Wave-parallel variant of :class:`CoAnalysisEngine`."""

    def __init__(self, target_factory: Callable[[], SymbolicTarget],
                 csm: Optional[ConservativeStateManager] = None,
                 workers: int = 2,
                 max_cycles_per_path: int = 20000,
                 application: str = "app"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.target_factory = target_factory
        self.csm = csm or ConservativeStateManager()
        self.workers = workers
        self.max_cycles_per_path = max_cycles_per_path
        self.application = application
        self.stats = ParallelRunStats(workers=workers)

    def run(self) -> CoAnalysisResult:
        t0 = time.perf_counter()
        target = self.target_factory()
        result = CoAnalysisResult(
            design=target.name, application=self.application,
            profile=ToggleProfile.empty(target.netlist))

        sim = target.make_sim()
        target.reset(sim)
        target.apply_symbolic_inputs(sim)
        target.drive_all(sim)
        initial = sim.snapshot(pc=target.current_pc(sim))

        pending: List[Tuple[bytes, Optional[int]]] = \
            [(initial.to_bytes(), None)]
        result.paths_created = 1

        ctx = mp.get_context("fork") if "fork" in \
            mp.get_all_start_methods() else mp.get_context("spawn")
        with ctx.Pool(self.workers, initializer=_init_worker,
                      initargs=(self.target_factory,
                                self.max_cycles_per_path)) as pool:
            while pending:
                self.stats.waves += 1
                wave = pending
                pending = []
                outputs = pool.map(_simulate_segment, wave)
                for (outcome, end_pc, cycles, state_bytes, toggled,
                     ever_x, cval, cknown), (_, forced) in \
                        zip(outputs, wave):
                    path_id = len(result.path_records)
                    result.simulated_cycles += cycles
                    result.profile.absorb(toggled, ever_x, cval, cknown)
                    if outcome == "budget":
                        raise CoAnalysisError(
                            f"cycle budget exhausted on path {path_id}")
                    if outcome == "halt":
                        decision = self.csm.observe(
                            end_pc, SimState.from_bytes(state_bytes))
                        if decision.covered:
                            result.paths_skipped += 1
                            outcome = "skipped"
                        else:
                            result.splits += 1
                            resume = decision.resume_state.to_bytes()
                            for branch in (1, 0):
                                pending.append((resume, branch))
                                result.paths_created += 1
                            outcome = "split"
                    result.path_records.append(PathRecord(
                        path_id, None, end_pc, cycles, outcome, forced))

        result.csm_stats = self.csm.stats.snapshot()
        self.stats.wall_seconds = time.perf_counter() - t0
        result.wall_seconds = self.stats.wall_seconds
        return result


def make_workload_target(design: str, benchmark: str) -> SymbolicTarget:
    """Picklable target factory for (design, benchmark) pairs."""
    from ..workloads import WORKLOADS, build_target
    return build_target(design, WORKLOADS[benchmark])


class WorkloadTargetFactory:
    """Picklable callable wrapper for worker initializers."""

    def __init__(self, design: str, benchmark: str):
        self.design = design
        self.benchmark = benchmark

    def __call__(self) -> SymbolicTarget:
        return make_workload_target(self.design, self.benchmark)
