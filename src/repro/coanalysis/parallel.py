"""Parallel execution-path exploration (paper section 3.3).

"Since each branch of the simulation can be run by a separate process,
launching these processes in parallel can drastically improve simulation
time."  The paper forks whole iverilog instances; here each worker
process holds its own compiled simulator and receives saved states to
continue from -- the same state hand-off, without re-launching a
simulator binary per path.

Exploration proceeds in waves: all currently pending paths are simulated
concurrently; the parent then feeds the halted states through the (single,
sequential) Conservative State Manager and schedules the next wave.  Wave
order differs from the serial engine's depth-first order, so path counts
can differ slightly -- exactly as they would between the paper's serial
and parallel runs -- while the exercisable-gate result is unchanged.

Since the kernel extraction the wave loop, CSM arbitration, budgets and
checkpointing all live in
:class:`~repro.coanalysis.kernel.ExplorationKernel`; this module
provides :class:`PoolExecutor` (the supervised worker-pool backend) and
the :class:`ParallelCoAnalysis` front that wires the two together with a
breadth-first frontier (wave order).

Long runs are supervised (see :mod:`repro.resilience`): each dispatched
segment carries a wall-clock deadline, lost or crashed segments are
re-dispatched with backoff onto rebuilt pools, and once the failure
budget is spent the run *degrades to in-process serial execution* with a
:class:`~repro.resilience.supervisor.DegradedToSerialWarning` -- the
result is then slower, never silently wrong.  Wave boundaries can be
journaled to an on-disk checkpoint for interrupt/resume.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..csm.manager import ConservativeStateManager
from ..resilience.checkpoint import as_checkpointer
from ..resilience.faults import FaultPlan, execute_fault
from ..resilience.quarantine import (Quarantined, QuarantineRegistry,
                                     as_quarantine, segment_key)
from ..resilience.supervisor import (DegradedToSerialWarning, PoolExhausted,
                                     PoolSupervisor, SupervisionPolicy)
from ..sim.state import SimState
from .backend import (BatchContext, PendingPath, SegmentResult, SimBackend,
                      prepare_initial_state, profile_activity_restore,
                      profile_activity_snapshot, simulate_segment)
from .kernel import ExplorationKernel
from .results import CoAnalysisResult, RunEvent
from .target import SymbolicTarget

_worker_target: Optional[SymbolicTarget] = None
_worker_sim = None
_worker_budget = 0


def _init_worker(factory: Callable[[], SymbolicTarget],
                 max_cycles: int) -> None:
    global _worker_target, _worker_sim, _worker_budget
    _worker_target = factory()
    _worker_sim = _worker_target.make_sim()
    _worker_budget = max_cycles


def _segment_impl(target: SymbolicTarget, sim, state_bytes: bytes,
                  forced: Optional[int], budget: int):
    """Run one pending path until halt/done; return a picklable record.

    A thin worker-side wrapper over the shared
    :func:`~repro.coanalysis.backend.simulate_segment` loop: arm a fresh
    activity window, run the segment, then flatten the result (plus the
    segment's activity planes) into a pickle-friendly tuple.
    """
    sim.reset_activity()
    sim.arm_activity()   # restore() re-blends _prev, so arming first is
                         # equivalent to arming right after the restore
    path = PendingPath(SimState.from_bytes(state_bytes), forced)
    segment = simulate_segment(target, sim, path, 0, budget, None)
    end_state = segment.end_state.to_bytes() \
        if segment.end_state is not None else None
    return (segment.outcome, segment.end_pc, segment.cycles, end_state,
            sim.toggled.copy(), sim.ever_x.copy(),
            (sim.val & sim.known).copy(), sim.known.copy())


def _simulate_segment(job: Tuple[bytes, Optional[int], Optional[str]]):
    """Pool-side entry point: apply any injected fault, then simulate."""
    state_bytes, forced, fault = job
    execute_fault(fault)
    return _segment_impl(_worker_target, _worker_sim, state_bytes, forced,
                         _worker_budget)


@dataclass
class ParallelRunStats:
    waves: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: wall time of each completed wave, in run order
    wave_wall_seconds: List[float] = field(default_factory=list)
    #: segments re-dispatched after a worker crash/hang/corruption
    segment_retries: int = 0
    #: pool rebuilds after lost or wedged workers
    worker_restarts: int = 0
    #: True when the run fell back to in-process serial exploration
    degraded: bool = False
    checkpoints_written: int = 0


class PoolExecutor(SimBackend):
    """Supervised worker-pool backend: one batch = one wave.

    ``batch_limit=None`` asks the kernel for the whole frontier per
    batch; segments are dispatched through a
    :class:`~repro.resilience.supervisor.PoolSupervisor` (deadlines,
    retry/backoff, pool rebuilds) and, after pool exhaustion, simulated
    in-process on the parent's own simulator (serial degradation).
    """

    kind = "parallel"
    batch_limit = None

    def __init__(self, target_factory: Callable[[], SymbolicTarget],
                 workers: int = 2,
                 max_cycles_per_path: int = 20000,
                 policy: Optional[SupervisionPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 stats: Optional[ParallelRunStats] = None,
                 quarantine: Optional[QuarantineRegistry] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.target_factory = target_factory
        self.target = target_factory()      # parent-side harness
        self.netlist = self.target.netlist
        self.design = self.target.name
        self.workers = workers
        self.max_cycles_per_path = max_cycles_per_path
        self.policy = policy or SupervisionPolicy()
        self.fault_plan = fault_plan
        self.stats = stats or ParallelRunStats(workers=workers)
        self.quarantine = quarantine
        self._result: Optional[CoAnalysisResult] = None
        self._supervisor: Optional[PoolSupervisor] = None
        self._serial_sim = None
        self._degraded = False

    # -- protocol -----------------------------------------------------------
    def bind(self, result: CoAnalysisResult) -> None:
        self._result = result

    def prepare(self) -> SimState:
        return prepare_initial_state(self.target, self.target.make_sim())

    def run_batch(self, batch: List[PendingPath],
                  ctx: BatchContext) -> List[SegmentResult]:
        if self._degraded:
            return self._run_serial_batch(batch)
        blobs = [p.state.to_bytes() for p in batch]
        jobs = [(blob, p.forced_decision)
                for blob, p in zip(blobs, batch)]
        keys = pcs = None
        if self.quarantine is not None:
            keys = [segment_key(blob, p.forced_decision)
                    for blob, p in zip(blobs, batch)]
            pcs = [p.state.pc for p in batch]
        supervisor = self._ensure_supervisor()
        wave_t0 = time.perf_counter()
        try:
            outputs = supervisor.run_wave(self.stats.waves, jobs,
                                          keys=keys, pcs=pcs)
        except PoolExhausted as exc:
            # nothing from the failed wave has been absorbed yet:
            # re-run it whole, serially, from the pristine bytes
            self._degrade(exc)
            return self._run_serial_batch(batch)
        self.stats.waves += 1
        self.stats.wave_wall_seconds.append(time.perf_counter() - wave_t0)
        return [self._to_segment(output) for output in outputs]

    def activity_snapshot(self) -> dict:
        return profile_activity_snapshot(self._result)

    def activity_restore(self, planes: dict) -> None:
        profile_activity_restore(self._result, planes)

    def on_checkpoint(self) -> None:
        self.stats.checkpoints_written += 1

    def on_resume(self, batches_done: int) -> None:
        self.stats.waves = batches_done

    def finalize(self, result: CoAnalysisResult) -> None:
        result.recovered_failures = self.stats.segment_retries

    def close(self) -> None:
        # always reap the pool -- interrupted runs must not leak
        # (possibly hung) workers
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None

    # -- pool plumbing ------------------------------------------------------
    def _ensure_supervisor(self) -> PoolSupervisor:
        if self._supervisor is None:
            # spawn (not fork) for cross-platform determinism: workers
            # build their simulator from the pickled factory on every
            # platform alike, instead of inheriting arbitrary parent
            # state on POSIX
            ctx = mp.get_context("spawn")
            self._supervisor = PoolSupervisor(
                lambda: ctx.Pool(self.workers, initializer=_init_worker,
                                 initargs=(self.target_factory,
                                           self.max_cycles_per_path)),
                _simulate_segment, policy=self.policy, stats=self.stats,
                journal=self._result.journal, fault_plan=self.fault_plan,
                quarantine=self.quarantine)
        return self._supervisor

    def _to_segment(self, output) -> SegmentResult:
        if isinstance(output, Quarantined):
            # sealed by the supervisor: no simulation happened, no
            # activity to absorb -- the kernel records the verdict
            return SegmentResult("quarantined", None, 0)
        (outcome, end_pc, cycles, state_bytes, toggled, ever_x, cval,
         cknown) = output
        activity = None
        if self.capture_activity:
            # kernel absorbs in batch order (cache replay contract);
            # the arrays arrived over pickle so they are already ours
            activity = (toggled, ever_x, cval, cknown)
        else:
            self._result.profile.absorb(toggled, ever_x, cval, cknown)
        end_state = SimState.from_bytes(state_bytes) \
            if state_bytes is not None else None
        return SegmentResult(outcome, end_pc, cycles, end_state,
                             activity=activity)

    # -- serial degradation -------------------------------------------------
    def _degrade(self, reason: PoolExhausted) -> None:
        self._degraded = True
        self.stats.degraded = True
        result = self._result
        result.degraded_to_serial = True
        result.journal.append(RunEvent("degraded", detail=str(reason)))
        warnings.warn(
            f"parallel exploration of {result.design}/"
            f"{result.application} degraded to serial execution: "
            f"{reason}", DegradedToSerialWarning, stacklevel=2)
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None

    def _run_serial_batch(self,
                          batch: List[PendingPath]) -> List[SegmentResult]:
        if self._serial_sim is None:
            self._serial_sim = self.target.make_sim()
        return [self._to_segment(_segment_impl(
                    self.target, self._serial_sim, path.state.to_bytes(),
                    path.forced_decision, self.max_cycles_per_path))
                for path in batch]


class ParallelCoAnalysis:
    """Wave-parallel variant of :class:`CoAnalysisEngine`.

    Args:
        target_factory: picklable zero-arg callable building the target
            (sent to workers; see :class:`WorkloadTargetFactory`).
        csm: the parent-side Conservative State Manager.
        workers: pool size.
        policy: failure-handling knobs (timeouts, retries, restarts).
        fault_plan: deterministic fault injection (tests/CI only).
        checkpoint: path or Checkpointer journaling wave boundaries.
        resume: continue from the newest intact checkpoint record.
        stop_after_waves: stop (with a checkpoint and
            :class:`RunInterrupted`) once this many total waves have
            completed -- time-sliced exploration for batch schedulers.
        frontier: frontier strategy name/instance (default ``"bfs"``,
            the wave order).
        tracer: optional :class:`~repro.coanalysis.trace.Tracer`.
        budget: optional :class:`~repro.resilience.governor.RunBudget`
            (or governor); a tripped limit ends the run as a
            :class:`~repro.coanalysis.results.PartialResult`.
        quarantine: optional threshold (int) or
            :class:`~repro.resilience.quarantine.QuarantineRegistry`
            quarantining poison segments instead of degrading.
    """

    def __init__(self, target_factory: Callable[[], SymbolicTarget],
                 csm: Optional[ConservativeStateManager] = None,
                 workers: int = 2,
                 max_cycles_per_path: int = 20000,
                 application: str = "app",
                 policy: Optional[SupervisionPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 checkpoint=None,
                 resume: bool = False,
                 stop_after_waves: Optional[int] = None,
                 frontier=None,
                 tracer=None,
                 budget=None,
                 quarantine=None,
                 segment_cache=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.target_factory = target_factory
        self.csm = csm or ConservativeStateManager()
        self.workers = workers
        self.max_cycles_per_path = max_cycles_per_path
        self.application = application
        self.policy = policy or SupervisionPolicy()
        self.fault_plan = fault_plan
        self.checkpoint = as_checkpointer(checkpoint)
        self.resume = resume
        self.stop_after_waves = stop_after_waves
        self.frontier = frontier
        self.tracer = tracer
        self.budget = budget
        #: one registry shared by the supervisor (failure counting) and
        #: the kernel (pre-dispatch skip + checkpoint round-trip)
        self.quarantine = as_quarantine(quarantine)
        self.segment_cache = segment_cache
        self.stats = ParallelRunStats(workers=workers)

    def run(self) -> CoAnalysisResult:
        t0 = time.perf_counter()
        executor = PoolExecutor(
            self.target_factory, workers=self.workers,
            max_cycles_per_path=self.max_cycles_per_path,
            policy=self.policy, fault_plan=self.fault_plan,
            stats=self.stats, quarantine=self.quarantine)
        kernel = ExplorationKernel(
            executor, csm=self.csm,
            frontier=self.frontier if self.frontier is not None else "bfs",
            max_cycles_per_path=self.max_cycles_per_path,
            max_total_cycles=None,
            application=self.application, checkpoint=self.checkpoint,
            resume=self.resume, stop_after_batches=self.stop_after_waves,
            tracer=self.tracer, budget=self.budget,
            quarantine=self.quarantine,
            segment_cache=self.segment_cache)
        try:
            result = kernel.run()
        finally:
            self.stats.wall_seconds = time.perf_counter() - t0
        result.wall_seconds = self.stats.wall_seconds
        return result


class WorkloadTargetFactory:
    """Picklable callable building the target for a (design, benchmark)
    pair -- the single construction site, sent to worker initializers."""

    def __init__(self, design: str, benchmark: str):
        self.design = design
        self.benchmark = benchmark

    def __call__(self) -> SymbolicTarget:
        from ..workloads import WORKLOADS, build_target
        return build_target(self.design, WORKLOADS[self.benchmark])


def make_workload_target(design: str, benchmark: str) -> SymbolicTarget:
    """Build a workload target once (delegates to
    :class:`WorkloadTargetFactory`, the one construction site)."""
    return WorkloadTargetFactory(design, benchmark)()
