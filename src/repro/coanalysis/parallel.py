"""Parallel execution-path exploration (paper section 3.3).

"Since each branch of the simulation can be run by a separate process,
launching these processes in parallel can drastically improve simulation
time."  The paper forks whole iverilog instances; here each worker
process holds its own compiled simulator and receives saved states to
continue from -- the same state hand-off, without re-launching a
simulator binary per path.

Exploration proceeds in waves: all currently pending paths are simulated
concurrently; the parent then feeds the halted states through the (single,
sequential) Conservative State Manager and schedules the next wave.  Wave
order differs from the serial engine's depth-first order, so path counts
can differ slightly -- exactly as they would between the paper's serial
and parallel runs -- while the exercisable-gate result is unchanged.

Long runs are supervised (see :mod:`repro.resilience`): each dispatched
segment carries a wall-clock deadline, lost or crashed segments are
re-dispatched with backoff onto rebuilt pools, and once the failure
budget is spent the run *degrades to in-process serial execution* with a
:class:`~repro.resilience.supervisor.DegradedToSerialWarning` -- the
result is then slower, never silently wrong.  Wave boundaries can be
journaled to an on-disk checkpoint for interrupt/resume.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..csm.manager import ConservativeStateManager
from ..logic.value import Logic
from ..resilience.checkpoint import as_checkpointer
from ..resilience.faults import FaultPlan, execute_fault
from ..resilience.supervisor import (DegradedToSerialWarning, PoolExhausted,
                                     PoolSupervisor, SupervisionPolicy)
from ..sim.activity import ToggleProfile
from ..sim.state import SimState
from .results import (CheckpointError, CoAnalysisError, CoAnalysisResult,
                      PathRecord, ResumeMismatch, RunEvent, RunInterrupted)
from .target import SymbolicTarget

_worker_target: Optional[SymbolicTarget] = None
_worker_sim = None
_worker_budget = 0


def _init_worker(factory: Callable[[], SymbolicTarget],
                 max_cycles: int) -> None:
    global _worker_target, _worker_sim, _worker_budget
    _worker_target = factory()
    _worker_sim = _worker_target.make_sim()
    _worker_budget = max_cycles


def _segment_impl(target: SymbolicTarget, sim, state_bytes: bytes,
                  forced: Optional[int], budget: int):
    """Run one pending path until halt/done; return a picklable record."""
    sim.reset_activity()
    sim.restore(SimState.from_bytes(state_bytes))
    sim.arm_activity()

    first_forced = forced is not None
    if first_forced:
        sim.force(target.branch_force_net,
                  Logic.L1 if forced else Logic.L0)
    cycles = 0
    outcome = "budget"
    end_state: Optional[bytes] = None
    end_pc: Optional[int] = None
    while cycles <= budget:
        target.drive_all(sim)
        if not first_forced:
            if target.is_done(sim):
                outcome = "done"
                end_pc = target.current_pc(sim)
                sim.record_activity_now()
                break
            bp = target.at_branch_point(sim)
            if bp is not Logic.L0 and (not bp.is_known
                                       or target.monitored_has_x(sim)):
                outcome = "halt"
                end_pc = target.current_pc(sim)
                sim.record_activity_now()
                end_state = sim.snapshot(pc=end_pc).to_bytes()
                break
        sim.record_activity_now()
        target.on_edge(sim)
        sim.clock_edge()
        cycles += 1
        if first_forced:
            sim.release()
            first_forced = False
    return (outcome, end_pc, cycles, end_state,
            sim.toggled.copy(), sim.ever_x.copy(),
            (sim.val & sim.known).copy(), sim.known.copy())


def _simulate_segment(job: Tuple[bytes, Optional[int], Optional[str]]):
    """Pool-side entry point: apply any injected fault, then simulate."""
    state_bytes, forced, fault = job
    execute_fault(fault)
    return _segment_impl(_worker_target, _worker_sim, state_bytes, forced,
                         _worker_budget)


@dataclass
class ParallelRunStats:
    waves: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: wall time of each completed wave, in run order
    wave_wall_seconds: List[float] = field(default_factory=list)
    #: segments re-dispatched after a worker crash/hang/corruption
    segment_retries: int = 0
    #: pool rebuilds after lost or wedged workers
    worker_restarts: int = 0
    #: True when the run fell back to in-process serial exploration
    degraded: bool = False
    checkpoints_written: int = 0


class ParallelCoAnalysis:
    """Wave-parallel variant of :class:`CoAnalysisEngine`.

    Args:
        target_factory: picklable zero-arg callable building the target
            (sent to workers; see :class:`WorkloadTargetFactory`).
        csm: the parent-side Conservative State Manager.
        workers: pool size.
        policy: failure-handling knobs (timeouts, retries, restarts).
        fault_plan: deterministic fault injection (tests/CI only).
        checkpoint: path or Checkpointer journaling wave boundaries.
        resume: continue from the newest intact checkpoint record.
        stop_after_waves: stop (with a checkpoint and
            :class:`RunInterrupted`) once this many total waves have
            completed -- time-sliced exploration for batch schedulers.
    """

    def __init__(self, target_factory: Callable[[], SymbolicTarget],
                 csm: Optional[ConservativeStateManager] = None,
                 workers: int = 2,
                 max_cycles_per_path: int = 20000,
                 application: str = "app",
                 policy: Optional[SupervisionPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 checkpoint=None,
                 resume: bool = False,
                 stop_after_waves: Optional[int] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.target_factory = target_factory
        self.csm = csm or ConservativeStateManager()
        self.workers = workers
        self.max_cycles_per_path = max_cycles_per_path
        self.application = application
        self.policy = policy or SupervisionPolicy()
        self.fault_plan = fault_plan
        self.checkpoint = as_checkpointer(checkpoint)
        self.resume = resume
        self.stop_after_waves = stop_after_waves
        self.stats = ParallelRunStats(workers=workers)

    def run(self) -> CoAnalysisResult:
        t0 = time.perf_counter()
        target = self.target_factory()
        result = CoAnalysisResult(
            design=target.name, application=self.application,
            profile=ToggleProfile.empty(target.netlist))

        pending: Optional[List[Tuple[bytes, Optional[int]]]] = None
        if self.resume:
            if self.checkpoint is None:
                raise CheckpointError("resume=True requires a checkpoint")
            payload = self.checkpoint.load_latest()
            if payload is not None:
                pending = self._apply_checkpoint(payload, target, result)
        if pending is None:
            sim = target.make_sim()
            target.reset(sim)
            target.apply_symbolic_inputs(sim)
            target.drive_all(sim)
            initial = sim.snapshot(pc=target.current_pc(sim))
            pending = [(initial.to_bytes(), None)]
            result.paths_created = 1

        # spawn (not fork) for cross-platform determinism: workers build
        # their simulator from the pickled factory on every platform
        # alike, instead of inheriting arbitrary parent state on POSIX
        ctx = mp.get_context("spawn")
        supervisor = PoolSupervisor(
            lambda: ctx.Pool(self.workers, initializer=_init_worker,
                             initargs=(self.target_factory,
                                       self.max_cycles_per_path)),
            _simulate_segment, policy=self.policy, stats=self.stats,
            journal=result.journal, fault_plan=self.fault_plan)
        degrade_reason: Optional[PoolExhausted] = None
        try:
            while pending:
                if self.checkpoint is not None and \
                        self.checkpoint.due(self.stats.waves):
                    self._write_checkpoint(pending, result)
                if self.stop_after_waves is not None and \
                        self.stats.waves >= self.stop_after_waves:
                    if self.checkpoint is not None:
                        self._write_checkpoint(pending, result)
                    raise RunInterrupted(
                        f"stopped after {self.stats.waves} waves with "
                        f"{len(pending)} paths pending; resume from the "
                        f"checkpoint to continue")
                wave = pending
                pending = []
                wave_t0 = time.perf_counter()
                try:
                    outputs = supervisor.run_wave(self.stats.waves, wave)
                except PoolExhausted as exc:
                    # nothing from the failed wave has been absorbed yet:
                    # re-run it whole, serially, from the pristine bytes
                    degrade_reason = exc
                    pending = wave
                    break
                self.stats.waves += 1
                self.stats.wave_wall_seconds.append(
                    time.perf_counter() - wave_t0)
                for output, (_, forced) in zip(outputs, wave):
                    self._absorb(output, forced, pending, result)
        finally:
            # always reap the pool -- interrupted runs must not leak
            # (possibly hung) workers
            supervisor.close()

        if degrade_reason is not None:
            self.stats.degraded = True
            result.degraded_to_serial = True
            result.journal.append(RunEvent("degraded",
                                           detail=str(degrade_reason)))
            warnings.warn(
                f"parallel exploration of {result.design}/"
                f"{self.application} degraded to serial execution: "
                f"{degrade_reason}", DegradedToSerialWarning,
                stacklevel=2)
            self._run_serial(target, pending, result)

        if self.checkpoint is not None:
            # final record: resuming a finished run returns immediately
            self._write_checkpoint([], result)

        result.recovered_failures = self.stats.segment_retries
        result.csm_stats = self.csm.stats.snapshot()
        self.stats.wall_seconds = time.perf_counter() - t0
        result.wall_seconds = self.stats.wall_seconds
        return result

    # -- shared bookkeeping ------------------------------------------------
    def _absorb(self, output, forced: Optional[int],
                pending: List[Tuple[bytes, Optional[int]]],
                result: CoAnalysisResult) -> None:
        """Fold one segment's output into the result and schedule any
        forked branches (identical for pool and serial-fallback paths)."""
        (outcome, end_pc, cycles, state_bytes, toggled, ever_x, cval,
         cknown) = output
        path_id = len(result.path_records)
        result.simulated_cycles += cycles
        result.profile.absorb(toggled, ever_x, cval, cknown)
        if outcome == "budget":
            raise CoAnalysisError(
                f"cycle budget exhausted on path {path_id}")
        if outcome == "halt":
            decision = self.csm.observe(
                end_pc, SimState.from_bytes(state_bytes))
            if decision.covered:
                result.paths_skipped += 1
                outcome = "skipped"
            else:
                result.splits += 1
                resume = decision.resume_state.to_bytes()
                for branch in (1, 0):
                    pending.append((resume, branch))
                    result.paths_created += 1
                outcome = "split"
        result.path_records.append(PathRecord(
            path_id, None, end_pc, cycles, outcome, forced))

    def _run_serial(self, target: SymbolicTarget,
                    pending: List[Tuple[bytes, Optional[int]]],
                    result: CoAnalysisResult) -> None:
        """Finish the exploration in-process after pool exhaustion."""
        sim = target.make_sim()
        while pending:
            state_bytes, forced = pending.pop()
            output = _segment_impl(target, sim, state_bytes, forced,
                                   self.max_cycles_per_path)
            self._absorb(output, forced, pending, result)

    # -- checkpoint plumbing -----------------------------------------------
    def _checkpoint_payload(self, pending, result: CoAnalysisResult) -> dict:
        return {
            "engine": "parallel",
            "design": result.design,
            "application": self.application,
            "pending": list(pending),
            "csm": self.csm.snapshot_state(),
            "profile": {"toggled": result.profile.toggled.copy(),
                        "ever_x": result.profile.ever_x.copy(),
                        "const_val": result.profile.const_val.copy(),
                        "const_known": result.profile.const_known.copy()},
            "counters": {"paths_created": result.paths_created,
                         "paths_skipped": result.paths_skipped,
                         "splits": result.splits,
                         "simulated_cycles": result.simulated_cycles,
                         "truncated_paths": result.truncated_paths},
            "path_records": list(result.path_records),
            "journal": list(result.journal),
            "waves_done": self.stats.waves,
        }

    def _write_checkpoint(self, pending, result: CoAnalysisResult) -> None:
        self.checkpoint.write(self._checkpoint_payload(pending, result),
                              progress=self.stats.waves)
        self.stats.checkpoints_written += 1
        result.journal.append(RunEvent(
            "checkpoint", wave=self.stats.waves,
            detail=f"{len(pending)} pending paths"))

    def _apply_checkpoint(self, payload: dict, target: SymbolicTarget,
                          result: CoAnalysisResult
                          ) -> List[Tuple[bytes, Optional[int]]]:
        if payload.get("engine") != "parallel":
            raise ResumeMismatch(
                f"checkpoint was written by the "
                f"{payload.get('engine')!r} engine, not 'parallel'")
        if payload["design"] != target.name or \
                payload["application"] != self.application:
            raise ResumeMismatch(
                f"checkpoint belongs to "
                f"{payload['design']}/{payload['application']}, not "
                f"{target.name}/{self.application}")
        self.csm.restore_state(payload["csm"])
        profile = payload["profile"]
        try:
            result.profile.toggled[:] = profile["toggled"]
            result.profile.ever_x[:] = profile["ever_x"]
            result.profile.const_val[:] = profile["const_val"]
            result.profile.const_known[:] = profile["const_known"]
        except ValueError as exc:
            raise ResumeMismatch(
                f"checkpoint profile arrays do not fit this netlist: "
                f"{exc}") from exc
        for key, value in payload["counters"].items():
            setattr(result, key, value)
        result.path_records = list(payload["path_records"])
        result.journal = list(payload["journal"])
        result.resumed = True
        self.stats.waves = payload["waves_done"]
        pending = [(blob, forced) for blob, forced in payload["pending"]]
        result.journal.append(RunEvent(
            "resume", wave=self.stats.waves,
            detail=f"{len(pending)} pending paths restored"))
        return pending


def make_workload_target(design: str, benchmark: str) -> SymbolicTarget:
    """Picklable target factory for (design, benchmark) pairs."""
    from ..workloads import WORKLOADS, build_target
    return build_target(design, WORKLOADS[benchmark])


class WorkloadTargetFactory:
    """Picklable callable wrapper for worker initializers."""

    def __init__(self, design: str, benchmark: str):
        self.design = design
        self.benchmark = benchmark

    def __call__(self) -> SymbolicTarget:
        return make_workload_target(self.design, self.benchmark)
