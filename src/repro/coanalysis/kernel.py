"""The shared exploration kernel (Algorithm 1, engine-agnostic).

The paper's explore/halt/fork/merge loop is the same whether segments
run on the compiled cycle engine, the event-driven engine, or a
supervised worker pool -- only *how a batch of segments is simulated*
differs.  :class:`ExplorationKernel` owns everything else:

* the frontier of pending paths (a pluggable
  :class:`~repro.coanalysis.frontier.FrontierStrategy`);
* CSM merge decisions and forking (both branch outcomes pushed);
* per-path and total cycle budgets;
* checkpoint/resume through the one versioned payload codec in
  :mod:`repro.resilience.checkpoint`;
* the structured trace stream (:mod:`repro.coanalysis.trace`);
* the run governor (:mod:`repro.resilience.governor`): wall-clock
  deadlines, the RSS memory watchdog, frontier/segment caps, and
  SIGINT/SIGTERM turned into cooperative stops -- all ending the run as
  a first-class :class:`~repro.coanalysis.results.PartialResult` with a
  final checkpoint, never a mid-flight exception;
* poison-segment quarantine (:mod:`repro.resilience.quarantine`):
  pending paths whose segment key is quarantined are skipped with a
  recorded verdict instead of being re-dispatched forever.

Backends plug in through the :class:`~repro.coanalysis.backend.SimBackend`
protocol (``SegmentExecutor`` is its compatibility alias): ``prepare()``
builds the reset+symbolic initial state, ``run_batch()`` simulates
pending paths up to their halt/done/budget boundary, and the activity
hooks round-trip toggle planes for checkpointing.  A backend never
touches the CSM or the frontier -- that is the point of the extraction:
every scaling or resilience feature lands in this file once, not four
times.  The shared segment loop backends build on lives in
:mod:`repro.coanalysis.backend`.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..resilience.checkpoint import (as_checkpointer, decode_run_payload,
                                     encode_run_payload)
from ..resilience.governor import TRACE_KIND_FOR_REASON, as_governor
from ..resilience.quarantine import as_quarantine, segment_key
from ..sim.activity import ToggleProfile
from ..sim.state import SimState
from .backend import (BatchContext, PendingPath, SegmentExecutor,
                      SegmentResult, SimBackend)
from .results import (CheckpointError, CoAnalysisError, CoAnalysisResult,
                      PartialResult, PathRecord, ResumeMismatch, RunEvent,
                      RunInterrupted)

__all__ = [
    "BatchContext", "ExplorationKernel", "PendingPath", "SegmentExecutor",
    "SegmentResult", "SimBackend",
]


class ExplorationKernel:
    """Runs Algorithm 1 over any :class:`SimBackend`."""

    def __init__(self, executor: SegmentExecutor,
                 csm=None,
                 frontier=None,
                 max_cycles_per_path: int = 20000,
                 max_total_cycles: Optional[int] = 2_000_000,
                 max_paths: int = 100_000,
                 strict: bool = True,
                 application: str = "app",
                 checkpoint=None,
                 resume: bool = False,
                 stop_after_batches: Optional[int] = None,
                 tracer=None,
                 budget=None,
                 quarantine=None,
                 segment_cache=None):
        from ..csm.manager import ConservativeStateManager
        from .frontier import make_frontier
        from .trace import Tracer
        self.executor = executor
        self.csm = csm or ConservativeStateManager()
        self.frontier = make_frontier(frontier)
        self.max_cycles_per_path = max_cycles_per_path
        self.max_total_cycles = max_total_cycles
        self.max_paths = max_paths
        self.strict = strict
        self.application = application
        self.checkpoint = as_checkpointer(checkpoint)
        self.resume = resume
        self.stop_after_batches = stop_after_batches
        self.tracer = tracer if tracer is not None else Tracer()
        self.governor = as_governor(budget)
        self.quarantine = as_quarantine(quarantine)
        #: optional :class:`~repro.store.segments.SegmentResultCache`:
        #: settled segments are replayed instead of re-simulated.  The
        #: executor switches to capture mode so the kernel owns profile
        #: absorption (cached and live segments fold in identically).
        self.segment_cache = segment_cache
        if segment_cache is not None:
            executor.capture_activity = True
        self.batches_done = 0
        self._stop = None               # StopRequest once governed-stopped

    # -- the main loop ------------------------------------------------------
    def run(self) -> CoAnalysisResult:
        if self.governor is not None:
            with self.governor.governed():
                return self._run()
        return self._run()

    def _run(self) -> CoAnalysisResult:
        executor, tracer = self.executor, self.tracer
        result = CoAnalysisResult(
            design=executor.design, application=self.application,
            profile=ToggleProfile.empty(executor.netlist))
        executor.bind(result)
        t0 = time.perf_counter()

        payload = None
        if self.resume:
            if self.checkpoint is None:
                raise CheckpointError("resume=True requires a checkpoint")
            payload = self.checkpoint.load_latest()

        try:
            initial = executor.prepare()
            # run_start frames the trace even when resuming: emit it
            # before _apply_checkpoint's "resume" event
            tracer.emit("run_start", frontier=int(payload is None),
                        data={"design": result.design,
                              "application": self.application,
                              "engine": executor.kind,
                              "strategy": self.frontier.name,
                              "resuming": payload is not None})
            if payload is not None:
                self._apply_checkpoint(payload, result)
            else:
                self.frontier.push(PendingPath(initial))
                result.paths_created = 1

            self._explore(result)
            if self.segment_cache is not None:
                self.segment_cache.flush()

            if self.checkpoint is not None:
                # final record: resuming a finished run returns
                # immediately, a governed-stopped run from where it ended
                self._write_checkpoint(result)

            explore_seconds = time.perf_counter() - t0
            tracer.emit("phase", data={"phase": "explore",
                                       "seconds": explore_seconds})
            f0 = time.perf_counter()
            executor.finalize(result)
            result.csm_stats = self.csm.stats.snapshot()
            if self.quarantine is not None:
                result.quarantine_verdicts = self.quarantine.summary()
            result.wall_seconds = time.perf_counter() - t0
            tracer.emit("phase", data={"phase": "finalize",
                                       "seconds":
                                       time.perf_counter() - f0})
            if self._stop is not None:
                result = PartialResult.from_result(
                    result, stop_reason=self._stop.reason,
                    stop_detail=self._stop.detail,
                    pending_paths=len(self.frontier))
            tracer.emit("run_end", frontier=len(self.frontier),
                        data=result.summary())
            result.metrics = tracer.metrics
            return result
        finally:
            if self.segment_cache is not None:
                try:        # best effort on error paths; atomic either way
                    self.segment_cache.flush()
                except Exception:
                    pass
            executor.close()
            tracer.close()

    def _explore(self, result: CoAnalysisResult) -> None:
        executor, tracer = self.executor, self.tracer
        while len(self.frontier):
            if self.governor is not None:
                stop = self.governor.check(
                    frontier=len(self.frontier),
                    segments=len(result.path_records))
                if stop is not None:
                    self._governed_stop(stop, result)
                    return
            if self.checkpoint is not None and \
                    self.checkpoint.due(self.batches_done):
                self._write_checkpoint(result)
            if self.stop_after_batches is not None and \
                    self.batches_done >= self.stop_after_batches:
                if self.checkpoint is not None:
                    self._write_checkpoint(result)
                tracer.emit("interrupt", frontier=len(self.frontier),
                            detail="batch budget reached")
                raise RunInterrupted(
                    f"stopped after {self.batches_done} waves with "
                    f"{len(self.frontier)} paths pending; resume from "
                    f"the checkpoint to continue",
                    stop_reason="wave_budget")

            batch = self.frontier.pop_batch(executor.batch_limit)
            if self.quarantine is not None and self.quarantine.active:
                batch = self._skip_quarantined(batch, result)
                if not batch:
                    continue
            cache = self.segment_cache
            keys = hits = None
            pending = batch
            if cache is not None:
                keys = [cache.key(p.state, p.forced_decision)
                        for p in batch]
                hits = [cache.lookup(key) for key in keys]
                pending = [p for p, hit in zip(batch, hits) if hit is None]
            ctx = BatchContext(
                first_path_id=len(result.path_records),
                max_cycles_per_path=self.max_cycles_per_path,
                total_cycles_remaining=(
                    None if self.max_total_cycles is None
                    else max(0, self.max_total_cycles
                             - result.simulated_cycles)))
            for offset, path in enumerate(batch):
                tracer.emit("segment_start",
                            path_id=ctx.first_path_id + offset,
                            pc=path.state.pc)
            journal_mark = len(result.journal)
            try:
                segments = executor.run_batch(pending, ctx) \
                    if pending else []
            except KeyboardInterrupt:
                self.frontier.requeue(batch)
                if self.checkpoint is not None:
                    result.journal.append(RunEvent(
                        "interrupt",
                        detail=f"{len(self.frontier)} pending paths "
                               f"checkpointed"))
                    self._write_checkpoint(result)
                tracer.emit("interrupt", frontier=len(self.frontier),
                            detail="keyboard interrupt")
                raise
            self.batches_done += 1
            # mirror resilience journal entries (worker retries, serial
            # degradation) into the trace stream
            for event in result.journal[journal_mark:]:
                if event.kind == "retry":
                    tracer.emit("retry", detail=event.detail)
                elif event.kind == "degraded":
                    tracer.emit("degraded", detail=event.detail)
            if cache is not None:
                # splice memoized segments back into batch order, store
                # the freshly simulated ones, and account hits/misses --
                # absorption below then runs in the same order a fully
                # live run would use, so the profile is bit-identical
                live = iter(segments)
                segments = []
                for offset, (path, hit, key) in enumerate(
                        zip(batch, hits, keys)):
                    path_id = ctx.first_path_id + offset
                    if hit is not None:
                        result.segment_cache_hits += 1
                        tracer.emit("cache_hit", path_id=path_id,
                                    pc=path.state.pc)
                        segments.append(hit)
                    else:
                        segment = next(live)
                        result.segment_cache_misses += 1
                        tracer.emit("cache_miss", path_id=path_id,
                                    pc=path.state.pc)
                        cache.store(key, segment)
                        segments.append(segment)
            for path, segment in zip(batch, segments):
                self._absorb(path, segment, result)
            batch_data = {"size": len(batch)}
            # lane accounting: executors that pack several paths into
            # one simulation (the batched backend) report how the
            # batch was laned so the trace shows realized parallelism
            stats_hook = getattr(executor, "batch_stats", None)
            if stats_hook is not None:
                batch_data.update(stats_hook())
            tracer.emit("batch", frontier=len(self.frontier),
                        data=batch_data)

    # -- governed stop / quarantine -----------------------------------------
    def _governed_stop(self, stop, result: CoAnalysisResult) -> None:
        """End the run cooperatively: flush a checkpoint, record why."""
        if self.checkpoint is not None:
            self._write_checkpoint(result)
        result.journal.append(RunEvent(
            "governed_stop", wave=self.batches_done,
            segment=len(result.path_records),
            detail=f"{stop.reason}: {stop.detail}"))
        self.tracer.emit(
            TRACE_KIND_FOR_REASON.get(stop.reason, "interrupt"),
            frontier=len(self.frontier), detail=stop.detail,
            data={"reason": stop.reason})
        self._stop = stop

    def _skip_quarantined(self, batch: List[PendingPath],
                          result: CoAnalysisResult) -> List[PendingPath]:
        """Seal pending paths whose segment key is quarantined with a
        recorded verdict; return the paths still worth dispatching."""
        live: List[PendingPath] = []
        for path in batch:
            key = segment_key(path.state.to_bytes(), path.forced_decision)
            if self.quarantine.is_quarantined(key):
                result.journal.append(RunEvent(
                    "quarantined", wave=self.batches_done,
                    segment=len(result.path_records),
                    detail=f"pending path skipped: key {key} "
                           f"(pc={path.state.pc})"))
                self._absorb(path, SegmentResult("quarantined", None, 0),
                             result)
            else:
                live.append(path)
        return live

    # -- segment bookkeeping ------------------------------------------------
    def _absorb(self, path: PendingPath, segment: SegmentResult,
                result: CoAnalysisResult) -> None:
        tracer = self.tracer
        path_id = len(result.path_records)
        result.simulated_cycles += segment.cycles
        if segment.activity is not None:
            # capture mode: the executor left absorption to the kernel
            result.profile.absorb(*segment.activity)
        outcome = segment.outcome
        if outcome == "budget":
            result.truncated_paths += 1
            if self.strict:
                if self.max_total_cycles is not None:
                    raise CoAnalysisError(
                        f"cycle budget exhausted on path {path_id} "
                        f"(per-path {self.max_cycles_per_path}, total "
                        f"{self.max_total_cycles}); analysis unsound")
                raise CoAnalysisError(
                    f"cycle budget exhausted on path {path_id} "
                    f"(per-path {self.max_cycles_per_path}); "
                    f"analysis unsound")
        elif outcome == "quarantined":
            result.quarantined_paths += 1
            tracer.emit("quarantined", path_id=path_id,
                        pc=path.state.pc, frontier=len(self.frontier))
        elif outcome == "halt":
            pc = segment.end_pc
            if pc is None:
                raise CoAnalysisError(
                    "program counter contains X at a control-flow halt; "
                    "cannot index the state repository (check the "
                    "monitored signal list covers every PC-affecting "
                    "source)")
            tracer.emit("halt", path_id=path_id, pc=pc,
                        cycles=segment.cycles)
            decision = self.csm.observe(pc, segment.end_state)
            self.frontier.observe_halt(pc)
            if decision.covered:
                result.paths_skipped += 1
                outcome = "skipped"
                tracer.emit("merge", path_id=path_id, pc=pc)
            else:
                if len(self.frontier) + 2 > self.max_paths:
                    raise CoAnalysisError(
                        f"path stack exceeded max_paths={self.max_paths}")
                result.splits += 1
                for branch in (1, 0):
                    self.frontier.push(PendingPath(
                        decision.resume_state, forced_decision=branch,
                        depth=path.depth + 1, parent=path_id,
                        origin_pc=pc))
                    result.paths_created += 1
                outcome = "split"
                tracer.emit("fork", path_id=path_id, pc=pc,
                            frontier=len(self.frontier))
        result.path_records.append(PathRecord(
            path_id, path.state.pc, segment.end_pc, segment.cycles,
            outcome, path.forced_decision, path.parent))
        if segment.exercised is not None:
            result.per_path_exercised.append(segment.exercised)
        tracer.emit("segment_end", path_id=path_id, pc=segment.end_pc,
                    cycles=segment.cycles, outcome=outcome,
                    frontier=len(self.frontier))

    # -- checkpoint plumbing ------------------------------------------------
    def _write_checkpoint(self, result: CoAnalysisResult) -> None:
        payload = encode_run_payload(
            engine=self.executor.kind,
            design=result.design,
            application=self.application,
            frontier=[(p.state.to_bytes(), p.forced_decision, p.depth,
                       p.parent, p.origin_pc)
                      for p in self.frontier.entries()],
            strategy=self.frontier.name,
            strategy_meta=self.frontier.snapshot_meta(),
            csm=self.csm.snapshot_state(),
            activity=self.executor.activity_snapshot(),
            counters={"paths_created": result.paths_created,
                      "paths_skipped": result.paths_skipped,
                      "splits": result.splits,
                      "simulated_cycles": result.simulated_cycles,
                      "truncated_paths": result.truncated_paths,
                      "quarantined_paths": result.quarantined_paths,
                      "segment_cache_hits": result.segment_cache_hits,
                      "segment_cache_misses":
                      result.segment_cache_misses,
                      "batches_done": self.batches_done},
            path_records=list(result.path_records),
            per_path_exercised=list(result.per_path_exercised),
            journal=list(result.journal),
            quarantine=(None if self.quarantine is None
                        else self.quarantine.snapshot_state()))
        self.checkpoint.write(payload, progress=self.batches_done)
        if self.segment_cache is not None:
            # flush the memo index at the same cadence as the journal,
            # so a crash loses at most one checkpoint interval of memos
            self.segment_cache.flush()
        hook = getattr(self.executor, "on_checkpoint", None)
        if hook is not None:
            hook()
        result.journal.append(RunEvent(
            "checkpoint", wave=self.batches_done,
            segment=len(result.path_records),
            detail=f"{len(self.frontier)} pending paths"))
        self.tracer.emit("checkpoint", frontier=len(self.frontier))

    def _apply_checkpoint(self, raw: dict,
                          result: CoAnalysisResult) -> None:
        payload = decode_run_payload(raw)
        kind = self.executor.kind
        if payload.get("engine") != kind:
            raise ResumeMismatch(
                f"checkpoint was written by the "
                f"{payload.get('engine')!r} engine, not {kind!r}")
        if payload["design"] != result.design or \
                payload["application"] != self.application:
            raise ResumeMismatch(
                f"checkpoint belongs to "
                f"{payload['design']}/{payload['application']}, not "
                f"{result.design}/{self.application}")
        self.csm.restore_state(payload["csm"])
        try:
            self.executor.activity_restore(payload["activity"])
        except ValueError as exc:
            raise ResumeMismatch(
                f"checkpoint activity arrays do not fit this netlist: "
                f"{exc}") from exc
        if self.segment_cache is not None \
                and payload["activity"].get("repr") == "sim":
            # capture mode skips finalize()'s sim-plane absorption (the
            # kernel folds per-segment activity instead), so activity
            # restored into the *sim* would otherwise never reach the
            # profile: fold it in now, before any new segment does
            import numpy as np
            planes = payload["activity"]
            val = np.asarray(planes["val"])
            known = np.asarray(planes["known"])
            result.profile.absorb(np.asarray(planes["toggled"]),
                                  np.asarray(planes["ever_x"]),
                                  val & known, known)
        counters = dict(payload["counters"])
        self.batches_done = counters.pop("batches_done", 0)
        for key, value in counters.items():
            setattr(result, key, value)
        result.path_records = list(payload["path_records"])
        result.per_path_exercised = list(payload["per_path_exercised"])
        result.journal = list(payload["journal"])
        if self.quarantine is not None and payload.get("quarantine"):
            self.quarantine.restore_state(payload["quarantine"])
        result.resumed = True
        for blob, forced, depth, parent, origin_pc in payload["frontier"]:
            self.frontier.push(PendingPath(
                SimState.from_bytes(blob), forced, depth, parent,
                origin_pc))
        if payload.get("strategy") == self.frontier.name:
            self.frontier.restore_meta(payload.get("strategy_meta", {}))
        hook = getattr(self.executor, "on_resume", None)
        if hook is not None:
            hook(self.batches_done)
        result.journal.append(RunEvent(
            "resume", wave=self.batches_done,
            segment=len(result.path_records),
            detail=f"{len(self.frontier)} pending paths restored"))
        self.tracer.emit(
            "resume", frontier=len(self.frontier),
            data={"paths_explored": len(result.path_records),
                  "splits": result.splits,
                  "merges_covered": result.paths_skipped,
                  "simulated_cycles": result.simulated_cycles,
                  "cache_hits": result.segment_cache_hits,
                  "cache_misses": result.segment_cache_misses,
                  "batches": self.batches_done})
