"""The design-under-analysis interface.

The paper's flow is design-agnostic: the user provides (1) the gate-level
netlist, (2) the application binary loaded into program memory, and (3) a
list of control-flow signals to monitor (Figure 1).  A
:class:`SymbolicTarget` packages exactly those ingredients plus the small
amount of testbench glue from Listing 1 (reset sequence, symbolic input
initialization, memory port service).

Processor models in :mod:`repro.processors` subclass this; anything else
(an accelerator, a custom FSM) can too -- the co-analysis engine only sees
this interface.
"""

from __future__ import annotations

from typing import List, Optional

from ..logic.value import Logic
from ..netlist.netlist import Netlist
from ..sim.cycle_sim import CompiledNetlist, CycleSim, compile_netlist


class SymbolicTarget:
    """A design prepared for symbolic hardware-software co-analysis."""

    #: human-readable design name (e.g. ``"omsp430"``)
    name: str = "target"

    #: how many drive/settle rounds one cycle needs.  2 covers the common
    #: processor case of two serial harness dependencies (instruction
    #: fetch feeding a load address).
    drive_rounds: int = 2

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        # cached by netlist identity: rebuilding a target per segment
        # replay / per worker job re-uses the one compile
        self.compiled = compile_netlist(netlist)
        #: control-flow signals handed to ``$monitor_x`` (net indices)
        self.monitored_nets: List[int] = []
        #: 1 when a PC-changing instruction is resolving this cycle
        self.branch_point_net: Optional[int] = None
        #: the 1-bit decision net forced to explore each execution path
        self.branch_force_net: Optional[int] = None
        #: program counter bus (LSB first)
        self.pc_nets: List[int] = []

    # -- life-cycle hooks (override as needed) ------------------------------
    def new_sim(self) -> CycleSim:
        """Build the default (cycle-engine) simulator, unprepared."""
        return CycleSim(self.compiled)

    def prepare_sim(self, sim):
        """Attach memories and drive constant inputs.

        Split out of :meth:`make_sim` so an alternative backend (the
        event-driven engine's CycleSim-compatible bridge) can be
        prepared identically: build your own ``sim``, then pass it
        through this hook.
        """
        return sim

    def make_sim(self) -> CycleSim:
        """Build a simulator with this target's memories attached."""
        return self.prepare_sim(self.new_sim())

    def reset(self, sim: CycleSim) -> None:
        """Apply the reset sequence (Listing 1's ``RST_n`` pulse)."""
        sim.set_input("rst", Logic.L1)
        for _ in range(2):
            self.drive_all(sim)
            self.on_edge(sim)
            sim.clock_edge()
        sim.set_input("rst", Logic.L0)

    def drive_all(self, sim: CycleSim) -> None:
        """Settle the design with harness services applied to fixpoint."""
        sim.settle()
        for _ in range(self.drive_rounds):
            self.drive(sim)
            sim.settle()

    def apply_symbolic_inputs(self, sim: CycleSim) -> None:
        """Set application inputs (registers / memory ranges) to X."""

    def drive(self, sim: CycleSim) -> None:
        """Combinational testbench services (e.g. memory read ports)."""

    def on_edge(self, sim: CycleSim) -> None:
        """Clock-edge testbench services (e.g. memory write commits)."""

    # -- observation hooks -----------------------------------------------------
    def current_pc(self, sim: CycleSim) -> Optional[int]:
        """Concrete PC value, or None when the PC contains Xs."""
        if not self.pc_nets:
            return None
        return sim.get_bus(self.pc_nets).to_int_or(None)  # type: ignore[arg-type]

    def at_branch_point(self, sim: CycleSim) -> Logic:
        """Settled value of the branch-point qualifier."""
        if self.branch_point_net is None:
            return Logic.L0
        return sim.get_net(self.branch_point_net)

    def monitored_has_x(self, sim: CycleSim) -> bool:
        """``$monitor_x`` condition over the control-flow signal list."""
        return any(not sim.get_net(n).is_known for n in self.monitored_nets)

    def is_done(self, sim: CycleSim) -> bool:
        """Program-termination condition (e.g. PC parked at a halt loop)."""
        return False

    # -- conveniences ------------------------------------------------------
    def monitored_names(self) -> List[str]:
        return [self.netlist.net_name(n) for n in self.monitored_nets]

    def state_net_positions(self) -> dict:
        """Map state-net name -> position inside SimState bitplanes.

        This is what lets CSM constraint files name signals
        symbolically (``net r5[6] 1``)."""
        return {self.netlist.net_name(net): pos
                for pos, net in enumerate(self.compiled.state_nets)}
