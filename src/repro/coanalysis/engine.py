"""Symbolic hardware-software co-analysis (Algorithm 1).

The engine drives a :class:`~repro.coanalysis.target.SymbolicTarget`
through the paper's procedure:

1. reset the design, load the application, set inputs to X;
2. simulate cycle by cycle until a monitored control-flow signal is X at a
   PC-changing instruction (``$monitor_x`` halts the simulation);
3. snapshot the state, present it to the Conservative State Manager;
   covered states are discarded, uncovered states are merged into a more
   conservative super-state and *both* branch outcomes are pushed as new
   execution paths (the decision net is forced 0/1 for one cycle);
4. repeat until the path stack is empty;
5. fold every path's toggle activity into a single profile whose
   complement is the guaranteed-unexercisable gate set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..csm.manager import ConservativeStateManager
from ..logic.value import Logic
from ..sim.activity import ToggleProfile
from ..sim.cycle_sim import CycleSim
from ..sim.state import SimState
from .results import (CheckpointError, CoAnalysisError, CoAnalysisResult,
                      PathRecord, ResumeMismatch, RunEvent)
from .target import SymbolicTarget


@dataclass
class PendingPath:
    """An unprocessed execution path (an entry of Algorithm 1's stack U)."""

    state: SimState
    forced_decision: Optional[int] = None   # 0 / 1 / None (initial path)
    depth: int = 0
    parent: Optional[int] = None            # spawning segment's path_id


class CoAnalysisEngine:
    """Runs Algorithm 1 on one (application, design) pair."""

    def __init__(self, target: SymbolicTarget,
                 csm: Optional[ConservativeStateManager] = None,
                 max_cycles_per_path: int = 20000,
                 max_total_cycles: int = 2_000_000,
                 max_paths: int = 100_000,
                 strict: bool = True,
                 application: str = "app",
                 cycle_observer=None,
                 record_per_path_activity: bool = False,
                 checkpoint=None,
                 resume: bool = False):
        self.target = target
        self.csm = csm or ConservativeStateManager()
        self.max_cycles_per_path = max_cycles_per_path
        self.max_total_cycles = max_total_cycles
        self.max_paths = max_paths
        self.strict = strict
        self.application = application
        #: a Checkpointer (or path coerced to one) journaling the run so
        #: an interrupted exploration can be resumed; ``resume=True``
        #: continues from the newest intact record instead of starting
        #: fresh.  A KeyboardInterrupt mid-segment writes a final
        #: checkpoint before propagating, so ^C never loses progress.
        from ..resilience.checkpoint import as_checkpointer
        self.checkpoint = as_checkpointer(checkpoint)
        self.resume = resume
        #: optional callable(sim, path_id, cycle) invoked on every
        #: settled cycle of every explored path -- the hook used by the
        #: peak-power analysis and by waveform dumping
        self.cycle_observer = cycle_observer
        #: when True, each PathRecord gains a per-segment exercised-net
        #: array in result.per_path_exercised (feeds the power-gating
        #: analysis of prior work [6])
        self.record_per_path_activity = record_per_path_activity

    # -- the main loop ------------------------------------------------------
    def run(self) -> CoAnalysisResult:
        target = self.target
        result = CoAnalysisResult(
            design=target.name, application=self.application,
            profile=ToggleProfile.empty(target.netlist))
        t0 = time.perf_counter()

        resumed = None
        if self.resume:
            if self.checkpoint is None:
                raise CheckpointError("resume=True requires a checkpoint")
            resumed = self.checkpoint.load_latest()

        sim = target.make_sim()
        target.reset(sim)
        target.apply_symbolic_inputs(sim)
        target.drive_all(sim)
        sim.arm_activity()

        if resumed is not None:
            stack = self._apply_checkpoint(resumed, sim, result)
        else:
            initial = sim.snapshot(pc=target.current_pc(sim))
            stack: List[PendingPath] = [PendingPath(initial)]
            result.paths_created = 1

        while stack:
            if self.checkpoint is not None and \
                    self.checkpoint.due(len(result.path_records)):
                self._write_checkpoint(sim, stack, result)
            pending = stack.pop()
            if self.record_per_path_activity:
                # true per-segment sets: park the global union, collect
                # this segment in cleared arrays, then re-merge
                saved_toggled = sim.toggled.copy()
                saved_x = sim.ever_x.copy()
                sim.toggled[:] = False
                sim.ever_x[:] = False
            pre_segment = (result.simulated_cycles, result.truncated_paths,
                           result.paths_created, result.paths_skipped,
                           result.splits, len(stack))
            try:
                record = self._simulate_segment(sim, pending, result, stack)
            except KeyboardInterrupt:
                if self.checkpoint is not None:
                    # the in-flight path replays from its start on resume:
                    # roll its partial bookkeeping back to the segment
                    # boundary (its partial *activity* may stay -- it is a
                    # subset of what the replay will record)
                    (result.simulated_cycles, result.truncated_paths,
                     result.paths_created, result.paths_skipped,
                     result.splits) = pre_segment[:5]
                    del stack[pre_segment[5]:]
                    if self.record_per_path_activity:
                        sim.toggled |= saved_toggled
                        sim.ever_x |= saved_x
                    stack.append(pending)
                    result.journal.append(RunEvent(
                        "interrupt",
                        detail=f"{len(stack)} pending paths checkpointed"))
                    self._write_checkpoint(sim, stack, result)
                raise
            result.path_records.append(record)
            if self.record_per_path_activity:
                result.per_path_exercised.append(sim.exercised_nets())
                sim.toggled |= saved_toggled
                sim.ever_x |= saved_x

        if self.checkpoint is not None:
            # final record: resuming a finished run returns immediately
            self._write_checkpoint(sim, [], result)

        result.profile.absorb(sim.toggled, sim.ever_x, sim.val & sim.known,
                              sim.known)
        result.csm_stats = self.csm.stats.snapshot()
        result.wall_seconds = time.perf_counter() - t0
        return result

    # -- checkpoint plumbing -----------------------------------------------
    def _checkpoint_payload(self, sim: CycleSim, stack: List[PendingPath],
                            result: CoAnalysisResult) -> dict:
        return {
            "engine": "serial",
            "design": self.target.name,
            "application": self.application,
            "stack": [(p.state.to_bytes(), p.forced_decision, p.depth,
                       p.parent) for p in stack],
            "csm": self.csm.snapshot_state(),
            "activity": {"toggled": sim.toggled.copy(),
                         "ever_x": sim.ever_x.copy(),
                         "val": sim.val.copy(),
                         "known": sim.known.copy()},
            "counters": {"paths_created": result.paths_created,
                         "paths_skipped": result.paths_skipped,
                         "splits": result.splits,
                         "simulated_cycles": result.simulated_cycles,
                         "truncated_paths": result.truncated_paths},
            "path_records": list(result.path_records),
            "per_path_exercised": list(result.per_path_exercised),
            "journal": list(result.journal),
        }

    def _write_checkpoint(self, sim: CycleSim, stack: List[PendingPath],
                          result: CoAnalysisResult) -> None:
        self.checkpoint.write(self._checkpoint_payload(sim, stack, result),
                              progress=len(result.path_records))
        result.journal.append(RunEvent(
            "checkpoint", segment=len(result.path_records),
            detail=f"{len(stack)} pending paths"))

    def _apply_checkpoint(self, payload: dict, sim: CycleSim,
                          result: CoAnalysisResult) -> List[PendingPath]:
        if payload.get("engine") != "serial":
            raise ResumeMismatch(
                f"checkpoint was written by the "
                f"{payload.get('engine')!r} engine, not 'serial'")
        if payload["design"] != self.target.name or \
                payload["application"] != self.application:
            raise ResumeMismatch(
                f"checkpoint belongs to "
                f"{payload['design']}/{payload['application']}, not "
                f"{self.target.name}/{self.application}")
        self.csm.restore_state(payload["csm"])
        activity = payload["activity"]
        try:
            sim.toggled[:] = activity["toggled"]
            sim.ever_x[:] = activity["ever_x"]
            sim.val[:] = activity["val"]
            sim.known[:] = activity["known"]
        except ValueError as exc:
            raise ResumeMismatch(
                f"checkpoint activity arrays do not fit this netlist: "
                f"{exc}") from exc
        # the bulk plane write bypassed per-net dirty tracking
        sim.mark_all_dirty()
        for key, value in payload["counters"].items():
            setattr(result, key, value)
        result.path_records = list(payload["path_records"])
        result.per_path_exercised = list(payload["per_path_exercised"])
        result.journal = list(payload["journal"])
        result.resumed = True
        stack = [PendingPath(SimState.from_bytes(blob), forced, depth,
                             parent)
                 for blob, forced, depth, parent in payload["stack"]]
        result.journal.append(RunEvent(
            "resume", segment=len(result.path_records),
            detail=f"{len(stack)} pending paths restored"))
        return stack

    # -- one execution path ------------------------------------------------
    def _simulate_segment(self, sim: CycleSim, pending: PendingPath,
                          result: CoAnalysisResult,
                          stack: List[PendingPath]) -> PathRecord:
        target = self.target
        path_id = len(result.path_records)
        sim.restore(pending.state)
        start_pc = pending.state.pc

        first_cycle_forced = pending.forced_decision is not None
        if first_cycle_forced:
            sim.force(target.branch_force_net,
                      Logic.L1 if pending.forced_decision else Logic.L0)

        cycles = 0
        while True:
            target.drive_all(sim)

            if not first_cycle_forced:
                if target.is_done(sim):
                    sim.record_activity_now()
                    return PathRecord(path_id, start_pc,
                                      target.current_pc(sim), cycles, "done",
                                      pending.forced_decision,
                                      pending.parent)
                bp = target.at_branch_point(sim)
                if bp is not Logic.L0 and (not bp.is_known or
                                           target.monitored_has_x(sim)):
                    sim.record_activity_now()
                    return self._halt_and_fork(sim, pending, result, stack,
                                               path_id, start_pc, cycles)

            if cycles >= self.max_cycles_per_path or \
                    result.simulated_cycles >= self.max_total_cycles:
                result.truncated_paths += 1
                if self.strict:
                    raise CoAnalysisError(
                        f"cycle budget exhausted on path {path_id} "
                        f"(per-path {self.max_cycles_per_path}, total "
                        f"{self.max_total_cycles}); analysis unsound")
                sim.release()   # abandoned path: don't leak the branch
                                # force into the next segment's restore
                return PathRecord(path_id, start_pc, target.current_pc(sim),
                                  cycles, "budget", pending.forced_decision,
                                  pending.parent)

            sim.record_activity_now()
            if self.cycle_observer is not None:
                self.cycle_observer(sim, path_id, cycles)
            target.on_edge(sim)
            sim.clock_edge()
            cycles += 1
            result.simulated_cycles += 1
            if first_cycle_forced:
                sim.release()
                first_cycle_forced = False

    # -- halt handling ---------------------------------------------------------
    def _halt_and_fork(self, sim: CycleSim, pending: PendingPath,
                       result: CoAnalysisResult, stack: List[PendingPath],
                       path_id: int, start_pc: Optional[int],
                       cycles: int) -> PathRecord:
        target = self.target
        pc = target.current_pc(sim)
        if pc is None:
            raise CoAnalysisError(
                "program counter contains X at a control-flow halt; "
                "cannot index the state repository (check the monitored "
                "signal list covers every PC-affecting source)")
        state = sim.snapshot(pc=pc)
        decision = self.csm.observe(pc, state)
        if decision.covered:
            result.paths_skipped += 1
            return PathRecord(path_id, start_pc, pc, cycles, "skipped",
                              pending.forced_decision, pending.parent)
        if len(stack) + 2 > self.max_paths:
            raise CoAnalysisError(
                f"path stack exceeded max_paths={self.max_paths}")
        result.splits += 1
        for outcome in (1, 0):
            stack.append(PendingPath(decision.resume_state,
                                     forced_decision=outcome,
                                     depth=pending.depth + 1,
                                     parent=path_id))
            result.paths_created += 1
        return PathRecord(path_id, start_pc, pc, cycles, "split",
                          pending.forced_decision, pending.parent)
