"""Symbolic hardware-software co-analysis (Algorithm 1).

The engine drives a :class:`~repro.coanalysis.target.SymbolicTarget`
through the paper's procedure:

1. reset the design, load the application, set inputs to X;
2. simulate cycle by cycle until a monitored control-flow signal is X at a
   PC-changing instruction (``$monitor_x`` halts the simulation);
3. snapshot the state, present it to the Conservative State Manager;
   covered states are discarded, uncovered states are merged into a more
   conservative super-state and *both* branch outcomes are pushed as new
   execution paths (the decision net is forced 0/1 for one cycle);
4. repeat until the path stack is empty;
5. fold every path's toggle activity into a single profile whose
   complement is the guaranteed-unexercisable gate set.

Since the kernel extraction this class is a thin front: the loop itself
lives in :class:`~repro.coanalysis.kernel.ExplorationKernel`, the
simulation backend in
:class:`~repro.coanalysis.executors.SerialExecutor`.  ``backend="event"``
swaps the vectorized cycle engine for the event-driven kernel behind the
same harness -- same kernel, same CSM, same result type -- and
``backend="batch"`` simulates the whole frontier in lockstep on the
bit-packed lane-parallel engine
(:class:`~repro.coanalysis.batch_executor.BatchSegmentExecutor`).
"""

from __future__ import annotations

from typing import Optional

from ..csm.manager import ConservativeStateManager
from .executors import SerialExecutor
from .kernel import ExplorationKernel, PendingPath  # noqa: F401 (re-export)
from .results import CoAnalysisResult
from .target import SymbolicTarget


class CoAnalysisEngine:
    """Runs Algorithm 1 on one (application, design) pair."""

    def __init__(self, target: SymbolicTarget,
                 csm: Optional[ConservativeStateManager] = None,
                 max_cycles_per_path: int = 20000,
                 max_total_cycles: int = 2_000_000,
                 max_paths: int = 100_000,
                 strict: bool = True,
                 application: str = "app",
                 cycle_observer=None,
                 record_per_path_activity: bool = False,
                 checkpoint=None,
                 resume: bool = False,
                 frontier=None,
                 tracer=None,
                 backend: str = "cycle",
                 budget=None,
                 quarantine=None,
                 segment_cache=None,
                 lanes: Optional[int] = None):
        self.target = target
        self.csm = csm or ConservativeStateManager()
        self.max_cycles_per_path = max_cycles_per_path
        self.max_total_cycles = max_total_cycles
        self.max_paths = max_paths
        self.strict = strict
        self.application = application
        #: a Checkpointer (or path coerced to one) journaling the run so
        #: an interrupted exploration can be resumed; ``resume=True``
        #: continues from the newest intact record instead of starting
        #: fresh.  A KeyboardInterrupt mid-segment writes a final
        #: checkpoint before propagating, so ^C never loses progress.
        from ..resilience.checkpoint import as_checkpointer
        self.checkpoint = as_checkpointer(checkpoint)
        self.resume = resume
        #: frontier scheduling policy: a name from
        #: :data:`~repro.coanalysis.frontier.FRONTIER_STRATEGIES`, an
        #: instance, or None for the paper's depth-first stack
        self.frontier = frontier
        #: optional :class:`~repro.coanalysis.trace.Tracer` receiving
        #: the structured event stream (JSONL sink, progress line, ...)
        self.tracer = tracer
        self.backend = backend
        #: optional callable(sim, path_id, cycle) invoked on every
        #: settled cycle of every explored path -- the hook used by the
        #: peak-power analysis and by waveform dumping
        self.cycle_observer = cycle_observer
        #: when True, each PathRecord gains a per-segment exercised-net
        #: array in result.per_path_exercised (feeds the power-gating
        #: analysis of prior work [6])
        self.record_per_path_activity = record_per_path_activity
        #: optional :class:`~repro.resilience.governor.RunBudget` (or
        #: governor) ending the run as a PartialResult when a deadline,
        #: RSS ceiling, or frontier/segment cap trips
        self.budget = budget
        #: optional quarantine threshold / registry for poison segments
        self.quarantine = quarantine
        #: optional :class:`~repro.store.segments.SegmentResultCache`:
        #: settled segments whose (run, state, decision) fingerprints
        #: match a prior run are replayed instead of re-simulated
        self.segment_cache = segment_cache
        #: lane-plane width for ``backend="batch"`` (any multiple of
        #: 64; None = the 64-lane default); ignored by other backends
        self.lanes = lanes

    def run(self) -> CoAnalysisResult:
        if self.backend == "batch":
            from ..sim.batch_sim import LANE_CAPACITY
            from .batch_executor import BatchSegmentExecutor
            executor = BatchSegmentExecutor(
                self.target, cycle_observer=self.cycle_observer,
                record_per_path_activity=self.record_per_path_activity,
                lanes=self.lanes if self.lanes is not None
                else LANE_CAPACITY)
        else:
            executor = SerialExecutor(
                self.target, cycle_observer=self.cycle_observer,
                record_per_path_activity=self.record_per_path_activity,
                backend=self.backend)
        kernel = ExplorationKernel(
            executor, csm=self.csm, frontier=self.frontier,
            max_cycles_per_path=self.max_cycles_per_path,
            max_total_cycles=self.max_total_cycles,
            max_paths=self.max_paths, strict=self.strict,
            application=self.application, checkpoint=self.checkpoint,
            resume=self.resume, tracer=self.tracer,
            budget=self.budget, quarantine=self.quarantine,
            segment_cache=self.segment_cache)
        return kernel.run()
