"""Symbolic hardware-software co-analysis engine (Algorithm 1)."""

from .engine import CoAnalysisEngine, PendingPath
from .event_engine import EventCoAnalysis, EventCoAnalysisResult
from .results import (CheckpointError, CoAnalysisError, CoAnalysisResult,
                      PathRecord, ResumeMismatch, RunEvent, RunInterrupted,
                      SegmentTimeout, StateCorruption, WorkerCrashed,
                      WorkerFailure)
from .target import SymbolicTarget

__all__ = [
    "CoAnalysisEngine", "PendingPath",
    "EventCoAnalysis", "EventCoAnalysisResult",
    "CoAnalysisResult", "CoAnalysisError", "PathRecord", "RunEvent",
    "WorkerFailure", "SegmentTimeout", "WorkerCrashed", "StateCorruption",
    "CheckpointError", "ResumeMismatch", "RunInterrupted",
    "SymbolicTarget",
]
