"""Symbolic hardware-software co-analysis engine (Algorithm 1).

The exploration loop lives in :class:`ExplorationKernel`; simulation
backends (serial cycle engine, event-driven engine, supervised worker
pool, lane-parallel batch) plug in as :class:`SimBackend`
implementations (``SegmentExecutor`` is the compatibility alias),
frontier ordering as :class:`FrontierStrategy` instances, and
observability as trace sinks on a :class:`Tracer`.
"""

from .backend import (SimBackend, boundary_outcome, prepare_initial_state,
                      simulate_segment)
from .engine import CoAnalysisEngine
from .event_engine import EventCoAnalysis
from .executors import EventSimBridge, SerialExecutor
from .frontier import (FRONTIER_STRATEGIES, BreadthFirstFrontier,
                       DepthFirstFrontier, FrontierStrategy,
                       NoveltyFrontier, make_frontier)
from .kernel import (BatchContext, ExplorationKernel, PendingPath,
                     SegmentExecutor, SegmentResult)
from .results import (CheckpointError, CoAnalysisError, CoAnalysisResult,
                      PathRecord, ResumeMismatch, RunEvent, RunInterrupted,
                      SegmentTimeout, StateCorruption, WorkerCrashed,
                      WorkerFailure)
from .target import SymbolicTarget
from .trace import (JsonlTraceSink, MetricsAggregator, ProgressLine,
                    RunMetrics, TraceEvent, Tracer, TraceSink,
                    aggregate_trace, read_trace)

__all__ = [
    "ExplorationKernel", "SimBackend", "SegmentExecutor", "SegmentResult",
    "BatchContext", "PendingPath",
    "boundary_outcome", "prepare_initial_state", "simulate_segment",
    "CoAnalysisEngine", "EventCoAnalysis",
    "SerialExecutor", "EventSimBridge",
    "FrontierStrategy", "DepthFirstFrontier", "BreadthFirstFrontier",
    "NoveltyFrontier", "FRONTIER_STRATEGIES", "make_frontier",
    "Tracer", "TraceSink", "TraceEvent", "JsonlTraceSink",
    "MetricsAggregator", "ProgressLine", "RunMetrics",
    "aggregate_trace", "read_trace",
    "CoAnalysisResult", "CoAnalysisError", "PathRecord", "RunEvent",
    "WorkerFailure", "SegmentTimeout", "WorkerCrashed", "StateCorruption",
    "CheckpointError", "ResumeMismatch", "RunInterrupted",
    "SymbolicTarget",
]
