"""Symbolic hardware-software co-analysis engine (Algorithm 1)."""

from .engine import CoAnalysisEngine, PendingPath
from .event_engine import EventCoAnalysis, EventCoAnalysisResult
from .results import CoAnalysisError, CoAnalysisResult, PathRecord
from .target import SymbolicTarget

__all__ = [
    "CoAnalysisEngine", "PendingPath",
    "EventCoAnalysis", "EventCoAnalysisResult",
    "CoAnalysisResult", "CoAnalysisError", "PathRecord",
    "SymbolicTarget",
]
