"""Concrete (fixed-input) execution of a target.

Used for three things:

* benchmark program bring-up in tests,
* the paper's validation methodology (section 5.0.1): run fixed inputs on
  the original and bespoke netlists and compare behaviour, and check that
  the concretely-exercised gate set is a subset of the symbolically
  reported exercisable set;
* measuring concrete activity profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..logic.value import Logic
from ..sim.cycle_sim import CycleSim
from .target import SymbolicTarget


@dataclass
class ConcreteRun:
    """Result of one fixed-input execution."""

    cycles: int
    finished: bool
    pc_trace: List[Optional[int]]
    write_trace: List[Tuple[int, int, int]]   # (cycle, addr, value)
    exercised_nets: np.ndarray
    final_sim: CycleSim

    def final_dmem(self, addr: int) -> int:
        mem = self.final_sim.memories["dmem"]
        return mem.read_concrete(addr).to_int()


def run_concrete(target: SymbolicTarget, inputs: Dict[int, int],
                 max_cycles: int = 20000,
                 trace_pc: bool = True) -> ConcreteRun:
    """Run the target's program to completion with fixed inputs."""
    sim = target.make_sim()
    target.reset(sim)
    target.apply_concrete_inputs(sim, inputs)   # type: ignore[attr-defined]
    target.drive_all(sim)
    sim.arm_activity()

    pc_trace: List[Optional[int]] = []
    write_trace: List[Tuple[int, int, int]] = []
    finished = False
    cycles = 0
    we_net = getattr(target, "_dmem_we", None)
    while cycles < max_cycles:
        target.drive_all(sim)
        if trace_pc:
            pc_trace.append(target.current_pc(sim))
        if target.is_done(sim):
            finished = True
            break
        sim.record_activity_now()
        if we_net is not None and sim.get_net(we_net) is Logic.L1:
            addr = sim.get_bus(target._dmem_addr)      # type: ignore
            data = sim.get_bus(target._dmem_wdata)     # type: ignore
            if addr.is_known and data.is_known:
                write_trace.append((cycles, addr.to_int(), data.to_int()))
        target.on_edge(sim)
        sim.clock_edge()
        cycles += 1

    return ConcreteRun(
        cycles=cycles,
        finished=finished,
        pc_trace=pc_trace,
        write_trace=write_trace,
        exercised_nets=sim.exercised_nets().copy(),
        final_sim=sim,
    )
