"""Algorithm 1 on the event-driven kernel (the paper's literal flow).

The production engine (:mod:`repro.coanalysis.engine`) drives the
vectorized cycle simulator for throughput.  This variant runs the same
procedure the way the paper's tool does it: a ``$monitor_x`` task in the
Symbolic event region halts the event simulator, the state is saved,
copies are made with the X-carrying state bits re-interpreted as 0/1,
and each copy continues in a fresh simulator instance -- one "iverilog
process" per path, with the CSM arbitrating.

It targets small memory-less designs (FSMs, datapaths with port-level
I/O); the per-event Python overhead makes whole cores impractical here,
which is precisely the scalability gap the vectorized engine exists to
close (measured in ``benchmarks/bench_engines.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..csm.manager import ConservativeStateManager
from ..logic.value import Logic
from ..netlist.netlist import Netlist
from ..sim.event_sim import EventSim
from ..sim.events import HaltSimulation
from ..sim.state import SimState
from ..sim.tasks import MonitorX
from .results import CoAnalysisError


@dataclass
class EventCoAnalysisResult:
    """Outputs of an event-kernel co-analysis run."""

    paths_created: int = 0
    paths_skipped: int = 0
    splits: int = 0
    simulated_cycles: int = 0
    exercised_nets: Set[int] = field(default_factory=set)
    events_executed: int = 0

    def exercisable_gates(self, netlist: Netlist) -> Set[int]:
        return {g.index for g in netlist.gates
                if g.output in self.exercised_nets}


class EventCoAnalysis:
    """Algorithm 1 over :class:`EventSim` for port-driven designs.

    Parameters:
        netlist: the design under analysis.
        monitored: control-flow signal names (the ``$monitor_x`` list).
        fork_nets: the state nets whose Xs are re-interpreted per path
            ("modify each copy with the status that allows the processor
            to take one of the possible executions").
        drive: called once per tick to apply testbench inputs.
        is_done: termination predicate.
        pc_of: maps a simulator to the CSM index (a PC or control-state
            key).
    """

    def __init__(self, netlist: Netlist,
                 monitored: Sequence[str],
                 fork_nets: Sequence[str],
                 drive: Callable[[EventSim], None],
                 is_done: Callable[[EventSim], bool],
                 pc_of: Callable[[EventSim], Optional[int]],
                 reset: Optional[Callable[[EventSim], None]] = None,
                 csm: Optional[ConservativeStateManager] = None,
                 max_cycles_per_path: int = 500,
                 max_paths: int = 10000):
        self.netlist = netlist
        self.monitored = list(monitored)
        self.fork_net_idx = [netlist.net_index(n) for n in fork_nets]
        self.drive = drive
        self.is_done = is_done
        self.pc_of = pc_of
        self.reset = reset
        self.csm = csm or ConservativeStateManager()
        self.max_cycles_per_path = max_cycles_per_path
        self.max_paths = max_paths
        self._state_nets = sorted(
            {g.output for g in netlist.gates if g.is_sequential}
            | set(netlist.inputs))

    # -- state conversion (event values <-> CSM bitplanes) ----------------
    def _to_simstate(self, sim: EventSim, pc: Optional[int]) -> SimState:
        vals = [sim.get_logic(n) for n in self._state_nets]
        return SimState(
            net_val=np.array([v is Logic.L1 for v in vals]),
            net_known=np.array([v.is_known for v in vals]),
            memories={}, cycle=sim.cycle, pc=pc)

    def _apply_simstate(self, sim: EventSim, state: SimState) -> None:
        saved = sim.save_state()
        for pos, net in enumerate(self._state_nets):
            if state.net_known[pos]:
                level = Logic.L1 if state.net_val[pos] else Logic.L0
            else:
                level = Logic.X
            saved["values"][net] = level
        saved["cycle"] = state.cycle
        sim.restore_state(saved)

    # -- main loop -----------------------------------------------------------
    def run(self) -> EventCoAnalysisResult:
        result = EventCoAnalysisResult()
        base = EventSim(self.netlist)
        if self.reset is not None:
            self.reset(base)     # Listing 1's RST pulse (may tick)
        self.drive(base)
        base.settle()
        initial = self._to_simstate(base, self.pc_of(base))
        stack: List[Tuple[SimState, Optional[int]]] = [(initial, None)]
        result.paths_created = 1

        while stack:
            if len(stack) > self.max_paths:
                raise CoAnalysisError("event co-analysis path explosion")
            state, forced = stack.pop()
            sim = EventSim(self.netlist)      # a fresh simulator process
            monitor = MonitorX(self.monitored)
            sim.add_symbolic_task(monitor)
            if forced is not None:
                state = state.copy()
                for pos, net in enumerate(self._state_nets):
                    if net in self.fork_net_idx and \
                            not state.net_known[pos]:
                        state.net_val[pos] = bool(forced)
                        state.net_known[pos] = True
            self._apply_simstate(sim, state)
            self.drive(sim)
            self._prev_values = None     # toggle baseline is per path

            cycles = 0
            halted = False
            while cycles < self.max_cycles_per_path:
                if self.is_done(sim):
                    break
                try:
                    sim.tick()
                except HaltSimulation:
                    halted = True
                cycles += 1
                result.simulated_cycles += 1
                self._note_activity(sim, result)
                if halted:
                    break
            else:
                raise CoAnalysisError(
                    "cycle budget exhausted on an event-kernel path")

            if halted:
                pc = self.pc_of(sim)
                if pc is None:
                    raise CoAnalysisError(
                        "control-state key contains X at halt")
                decision = self.csm.observe(pc, self._to_simstate(sim, pc))
                if decision.covered:
                    result.paths_skipped += 1
                else:
                    result.splits += 1
                    for branch in (1, 0):
                        stack.append((decision.resume_state, branch))
                        result.paths_created += 1
            result.events_executed += sim.scheduler.events_executed
        return result

    def _note_activity(self, sim: EventSim,
                       result: EventCoAnalysisResult) -> None:
        for net in range(len(self.netlist.nets)):
            if not sim.get_logic(net).is_known:
                result.exercised_nets.add(net)
        # toggles relative to the previous observation
        current = tuple(sim.get_logic(n) for n in range(len(
            self.netlist.nets)))
        previous = getattr(self, "_prev_values", None)
        if previous is not None:
            for net, (old, new) in enumerate(zip(previous, current)):
                if old is not new:
                    result.exercised_nets.add(net)
        self._prev_values = current
