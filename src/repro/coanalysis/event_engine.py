"""Algorithm 1 on the event-driven kernel (the paper's literal flow).

The production engine (:mod:`repro.coanalysis.engine`) drives the
vectorized cycle simulator for throughput.  This variant runs the same
procedure the way the paper's tool does it: a ``$monitor_x`` task in the
Symbolic event region halts the event simulator, the state is saved,
copies are made with the X-carrying state bits re-interpreted as 0/1,
and each copy continues in a fresh simulator instance -- one "iverilog
process" per path, with the CSM arbitrating.

Exploration, CSM merging, budgets and the result type are shared with
every other backend through
:class:`~repro.coanalysis.kernel.ExplorationKernel`; this module only
contributes the segment executor (fresh :class:`EventSim` per path,
fork-net X re-interpretation) and returns the same
:class:`~repro.coanalysis.results.CoAnalysisResult` the cycle engine
does -- exercised nets and exercisable gates come from
``result.profile``.

It targets small memory-less designs (FSMs, datapaths with port-level
I/O); the per-event Python overhead makes whole cores impractical here,
which is precisely the scalability gap the vectorized engine exists to
close (measured in ``benchmarks/bench_engines.py``).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..csm.manager import ConservativeStateManager
from ..logic.value import Logic
from ..netlist.netlist import Netlist
from ..sim.event_sim import EventSim
from ..sim.events import HaltSimulation
from ..sim.state import SimState
from ..sim.tasks import MonitorX
from .backend import PendingPath, SegmentResult, SimBackend
from .kernel import ExplorationKernel
from .results import CoAnalysisResult


class _CallbackEventExecutor(SimBackend):
    """One fresh event simulator per segment, driven by callbacks."""

    kind = "event"
    batch_limit = 1

    def __init__(self, analysis: "EventCoAnalysis"):
        self.analysis = analysis
        self.netlist = analysis.netlist
        self.design = analysis.netlist.name
        n = len(analysis.netlist.nets)
        self._toggled = np.zeros(n, dtype=bool)
        self._ever_x = np.zeros(n, dtype=bool)
        self._prev = None
        self.events_executed = 0

    # -- state conversion (event values <-> CSM bitplanes) ------------------
    def _to_simstate(self, sim: EventSim, pc: Optional[int]) -> SimState:
        vals = [sim.get_logic(n) for n in self.analysis._state_nets]
        return SimState(
            net_val=np.array([v is Logic.L1 for v in vals]),
            net_known=np.array([v.is_known for v in vals]),
            memories={}, cycle=sim.cycle, pc=pc)

    def _apply_simstate(self, sim: EventSim, state: SimState) -> None:
        saved = sim.save_state()
        for pos, net in enumerate(self.analysis._state_nets):
            if state.net_known[pos]:
                level = Logic.L1 if state.net_val[pos] else Logic.L0
            else:
                level = Logic.X
            saved["values"][net] = level
        saved["cycle"] = state.cycle
        sim.restore_state(saved)

    # -- protocol -----------------------------------------------------------
    def prepare(self) -> SimState:
        a = self.analysis
        base = EventSim(a.netlist)
        if a.reset is not None:
            a.reset(base)        # Listing 1's RST pulse (may tick)
        a.drive(base)
        base.settle()
        return self._to_simstate(base, a.pc_of(base))

    # run_batch: inherited default (per-segment dispatch via run_segment)

    def run_segment(self, path: PendingPath, path_id: int, per_path: int,
                    total_remaining: Optional[int]) -> SegmentResult:
        # total_remaining is unused: this front runs without a
        # total-cycle budget (max_total_cycles=None), matching the
        # paper's per-path-only cap
        a = self.analysis
        sim = EventSim(a.netlist)            # a fresh simulator process
        sim.add_symbolic_task(MonitorX(a.monitored))
        state = path.state
        if path.forced_decision is not None:
            # "modify each copy with the status that allows the
            # processor to take one of the possible executions"
            state = state.copy()
            for pos, net in enumerate(a._state_nets):
                if net in a.fork_net_idx and not state.net_known[pos]:
                    state.net_val[pos] = bool(path.forced_decision)
                    state.net_known[pos] = True
        self._apply_simstate(sim, state)
        a.drive(sim)
        self._prev = None        # toggle baseline is per path

        cycles = 0
        halted = False
        done = False
        while cycles < per_path:
            if a.is_done(sim):
                done = True
                break
            try:
                sim.tick()
            except HaltSimulation:
                halted = True
            cycles += 1
            self._note_activity(sim)
            if halted:
                break
        self.events_executed += sim.scheduler.events_executed
        if done:
            return SegmentResult("done", a.pc_of(sim), cycles)
        if halted:
            pc = a.pc_of(sim)
            end_state = self._to_simstate(sim, pc) if pc is not None \
                else None
            return SegmentResult("halt", pc, cycles, end_state)
        return SegmentResult("budget", a.pc_of(sim), cycles)

    def _note_activity(self, sim: EventSim) -> None:
        current = tuple(sim.get_logic(n)
                        for n in range(len(self.netlist.nets)))
        for net, value in enumerate(current):
            if not value.is_known:
                self._ever_x[net] = True
        if self._prev is not None:
            for net, (old, new) in enumerate(zip(self._prev, current)):
                if old is not new:
                    self._toggled[net] = True
        self._prev = current

    def activity_snapshot(self) -> dict:
        n = len(self.netlist.nets)
        return {"repr": "sim",
                "toggled": self._toggled.copy(),
                "ever_x": self._ever_x.copy(),
                "val": np.zeros(n, dtype=bool),
                "known": np.zeros(n, dtype=bool)}

    def activity_restore(self, planes: dict) -> None:
        self._toggled[:] = planes["toggled"]
        self._ever_x[:] = planes["ever_x"]

    def finalize(self, result: CoAnalysisResult) -> None:
        n = len(self.netlist.nets)
        # no constant-value claim: the per-path simulators are gone, so
        # every net is reported non-constant (conservative)
        result.profile.absorb(self._toggled, self._ever_x,
                              np.zeros(n, dtype=bool),
                              np.zeros(n, dtype=bool))
        result.events_executed = self.events_executed


class EventCoAnalysis:
    """Algorithm 1 over :class:`EventSim` for port-driven designs.

    Parameters:
        netlist: the design under analysis.
        monitored: control-flow signal names (the ``$monitor_x`` list).
        fork_nets: the state nets whose Xs are re-interpreted per path
            ("modify each copy with the status that allows the processor
            to take one of the possible executions").
        drive: called once per tick to apply testbench inputs.
        is_done: termination predicate.
        pc_of: maps a simulator to the CSM index (a PC or control-state
            key).
    """

    def __init__(self, netlist: Netlist,
                 monitored: Sequence[str],
                 fork_nets: Sequence[str],
                 drive: Callable[[EventSim], None],
                 is_done: Callable[[EventSim], bool],
                 pc_of: Callable[[EventSim], Optional[int]],
                 reset: Optional[Callable[[EventSim], None]] = None,
                 csm: Optional[ConservativeStateManager] = None,
                 max_cycles_per_path: int = 500,
                 max_paths: int = 10000,
                 frontier=None,
                 tracer=None,
                 application: str = "app"):
        self.netlist = netlist
        self.monitored = list(monitored)
        self.fork_net_idx = [netlist.net_index(n) for n in fork_nets]
        self.drive = drive
        self.is_done = is_done
        self.pc_of = pc_of
        self.reset = reset
        self.csm = csm or ConservativeStateManager()
        self.max_cycles_per_path = max_cycles_per_path
        self.max_paths = max_paths
        self.frontier = frontier
        self.tracer = tracer
        self.application = application
        self._state_nets = sorted(
            {g.output for g in netlist.gates if g.is_sequential}
            | set(netlist.inputs))

    def run(self) -> CoAnalysisResult:
        executor = _CallbackEventExecutor(self)
        kernel = ExplorationKernel(
            executor, csm=self.csm, frontier=self.frontier,
            max_cycles_per_path=self.max_cycles_per_path,
            max_total_cycles=None, max_paths=self.max_paths,
            application=self.application, tracer=self.tracer)
        return kernel.run()
