"""Structured observability for exploration runs.

The :class:`~repro.coanalysis.kernel.ExplorationKernel` narrates every
step of Algorithm 1 as a stream of typed :class:`TraceEvent` records --
``segment_start`` / ``halt`` / ``fork`` / ``merge`` / ``checkpoint`` /
``retry`` and friends -- and fans them out to pluggable sinks:

* :class:`JsonlTraceSink` appends one JSON object per line, so a long
  run leaves a machine-readable log that ``jq``/pandas can slice;
* :class:`MetricsAggregator` folds the stream into a
  :class:`RunMetrics` summary (paths, merges, frontier high-water mark,
  wall time per phase) that ``reporting/`` and ``benchmarks/`` consume
  instead of ad-hoc counters;
* :class:`ProgressLine` keeps a single live status line on a terminal.

Events describe the *kernel's* view of the run, so the same vocabulary
applies to the serial, event-driven, and wave-parallel backends.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional

#: the closed vocabulary of event kinds the kernel emits.  Sinks may
#: rely on unknown kinds never appearing; bump alongside the kernel.
EVENT_KINDS = (
    "run_start",      # exploration begins (design, application, strategy)
    "segment_start",  # a pending path was popped and dispatched
    "segment_end",    # one segment finished (outcome, cycles, pc)
    "halt",           # $monitor_x tripped: a state reached the CSM
    "fork",           # CSM expanded a state; both branches scheduled
    "merge",          # CSM covered a state; path discarded
    "checkpoint",     # a journal record was written
    "resume",         # run continued from a checkpoint record
    "retry",          # a worker failure was absorbed by re-dispatch
    "degraded",       # the pool was exhausted; run fell back to serial
    "interrupt",      # the run was interrupted (checkpoint written)
    "deadline",       # governor: wall-clock/segment budget spent
    "mem_pressure",   # governor: RSS ceiling or frontier cap reached
    "interrupted",    # governor: SIGINT/SIGTERM turned into a stop
    "quarantined",    # a poison segment was quarantined and skipped
    "cache_hit",      # a settled segment was replayed from the store
    "cache_miss",     # a segment was simulated and memoized
    "batch",          # one frontier batch (wave) completed
    "phase",          # wall-time accounting for one run phase
    "run_end",        # exploration finished (summary counters)
    "equiv_start",    # a formal equivalence check began (miter sizes)
    "equiv_outcome",  # it finished (UNSAT / SAT / UNKNOWN, conflicts)
)


@dataclass
class TraceEvent:
    """One typed observation from the kernel.

    Only ``kind``, ``seq`` and ``t`` are always present; the remaining
    fields carry whatever the kind needs (a ``segment_end`` has
    ``path_id``/``outcome``/``cycles``, a ``fork`` has ``pc``, ...).
    """

    kind: str
    seq: int = 0
    t: float = 0.0                      # seconds since run_start
    path_id: Optional[int] = None
    pc: Optional[int] = None
    cycles: Optional[int] = None
    outcome: Optional[str] = None
    frontier: Optional[int] = None      # frontier size after the event
    detail: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "seq": self.seq,
                                  "t": round(self.t, 6)}
        for key in ("path_id", "pc", "cycles", "outcome", "frontier"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.detail:
            out["detail"] = self.detail
        out.update(self.data)
        return out


class TraceSink:
    """Receives every :class:`TraceEvent` of a run, in order."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass


class JsonlTraceSink(TraceSink):
    """Appends one JSON object per event to ``path`` (JSON Lines).

    ``mode="a"`` continues an existing file instead of truncating it --
    a resumed (or re-sharded) run then leaves one trace whose ``resume``
    events mark each attempt boundary.
    """

    def __init__(self, path, mode: str = "w"):
        from pathlib import Path
        if mode not in ("w", "a"):
            raise ValueError(f"JsonlTraceSink mode must be 'w' or 'a', "
                             f"not {mode!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = open(self.path, mode)

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event.to_json(),
                                  separators=(",", ":"), default=str))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def read_trace(path) -> List[TraceEvent]:
    """Parse a JSONL trace file back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    from pathlib import Path
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        raw = json.loads(line)
        event = TraceEvent(kind=raw.pop("kind"), seq=raw.pop("seq", 0),
                           t=raw.pop("t", 0.0))
        for key in ("path_id", "pc", "cycles", "outcome", "frontier"):
            if key in raw:
                setattr(event, key, raw.pop(key))
        event.detail = raw.pop("detail", "")
        event.data = raw
        events.append(event)
    return events


@dataclass
class RunMetrics:
    """Aggregated run statistics derived purely from the trace stream.

    These mirror (and are cross-checked against) the engine's own
    counters; having them derivable from the event stream is what lets
    an operator reconstruct a run's story from the JSONL file alone.
    """

    paths_explored: int = 0             # segment_end events
    splits: int = 0                     # fork events
    merges_covered: int = 0             # merge events (paths skipped)
    halts: int = 0                      # halt events (CSM presentations)
    simulated_cycles: int = 0
    frontier_high_water: int = 0
    batches: int = 0
    checkpoints: int = 0
    resumes: int = 0
    retries: int = 0
    quarantined: int = 0                # quarantined events
    cache_hits: int = 0                 # cache_hit events (replayed)
    cache_misses: int = 0               # cache_miss events (memoized)
    #: why a governed run stopped early (None = ran to completion)
    stop_reason: Optional[str] = None
    outcomes: Dict[str, int] = field(default_factory=dict)
    equiv_checks: int = 0               # equiv_outcome events
    equiv_outcomes: Dict[str, int] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "paths_explored": self.paths_explored,
            "splits": self.splits,
            "merges_covered": self.merges_covered,
            "halts": self.halts,
            "simulated_cycles": self.simulated_cycles,
            "frontier_high_water": self.frontier_high_water,
            "batches": self.batches,
            "checkpoints": self.checkpoints,
            "resumes": self.resumes,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "stop_reason": self.stop_reason,
            "outcomes": dict(self.outcomes),
            "equiv_checks": self.equiv_checks,
            "equiv_outcomes": dict(self.equiv_outcomes),
            "phase_seconds": {k: round(v, 6)
                              for k, v in self.phase_seconds.items()},
            "wall_seconds": round(self.wall_seconds, 6),
        }


class MetricsAggregator(TraceSink):
    """Folds the event stream into a :class:`RunMetrics`."""

    def __init__(self):
        self.metrics = RunMetrics()

    def emit(self, event: TraceEvent) -> None:
        m = self.metrics
        if event.frontier is not None:
            m.frontier_high_water = max(m.frontier_high_water,
                                        event.frontier)
        if event.kind == "segment_end":
            m.paths_explored += 1
            if event.cycles:
                m.simulated_cycles += event.cycles
            if event.outcome:
                m.outcomes[event.outcome] = \
                    m.outcomes.get(event.outcome, 0) + 1
        elif event.kind == "fork":
            m.splits += 1
        elif event.kind == "merge":
            m.merges_covered += 1
        elif event.kind == "halt":
            m.halts += 1
        elif event.kind == "batch":
            m.batches += 1
        elif event.kind == "checkpoint":
            m.checkpoints += 1
        elif event.kind == "resume":
            m.resumes += 1
            # a resumed run inherits the counters accumulated before the
            # interruption, so the stream stays consistent with the
            # engine's totals
            for key in ("paths_explored", "splits", "merges_covered",
                        "simulated_cycles", "batches", "cache_hits",
                        "cache_misses"):
                if key in event.data:
                    setattr(m, key, event.data[key])
        elif event.kind == "retry":
            m.retries += 1
        elif event.kind == "quarantined":
            m.quarantined += 1
        elif event.kind == "cache_hit":
            m.cache_hits += 1
        elif event.kind == "cache_miss":
            m.cache_misses += 1
        elif event.kind in ("deadline", "mem_pressure", "interrupted"):
            m.stop_reason = str(event.data.get("reason", event.kind))
        elif event.kind == "equiv_outcome":
            m.equiv_checks += 1
            if event.outcome:
                m.equiv_outcomes[event.outcome] = \
                    m.equiv_outcomes.get(event.outcome, 0) + 1
        elif event.kind == "phase":
            name = str(event.data.get("phase", "unknown"))
            m.phase_seconds[name] = m.phase_seconds.get(name, 0.0) \
                + float(event.data.get("seconds", 0.0))
        elif event.kind == "run_end":
            m.wall_seconds = event.t


def aggregate_trace(events: Iterable[TraceEvent]) -> RunMetrics:
    """Replay a (parsed) event stream through a fresh aggregator."""
    agg = MetricsAggregator()
    for event in events:
        agg.emit(event)
    return agg.metrics


class ProgressLine(TraceSink):
    """A single live ``\\r``-rewritten status line for interactive runs."""

    def __init__(self, stream: Optional[IO[str]] = None,
                 min_interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last = 0.0
        self._explored = 0
        self._cycles = 0
        self._frontier = 0
        self._wrote = False

    def emit(self, event: TraceEvent) -> None:
        if event.kind == "segment_end":
            self._explored += 1
            self._cycles += event.cycles or 0
        if event.frontier is not None:
            self._frontier = event.frontier
        if event.kind == "run_end":
            self._render(event.t, final=True)
            return
        now = time.monotonic()
        if now - self._last >= self.min_interval:
            self._last = now
            self._render(event.t)

    def _render(self, t: float, final: bool = False) -> None:
        line = (f"\r[explore] paths={self._explored} "
                f"frontier={self._frontier} cycles={self._cycles} "
                f"t={t:.1f}s")
        self.stream.write(line)
        if final:
            self.stream.write("\n")
        self.stream.flush()
        self._wrote = True

    def close(self) -> None:
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False


class Tracer:
    """Stamps and fans events out to the configured sinks.

    A ``Tracer`` always carries a :class:`MetricsAggregator` so every
    run has a metrics summary for free; extra sinks (JSONL file, live
    progress line) are optional.
    """

    def __init__(self, sinks: Optional[List[TraceSink]] = None):
        self.aggregator = MetricsAggregator()
        self.sinks: List[TraceSink] = [self.aggregator] + list(sinks or [])
        self._seq = 0
        self._t0 = time.perf_counter()

    @property
    def metrics(self) -> RunMetrics:
        return self.aggregator.metrics

    def emit(self, kind: str, **fields) -> None:
        data = fields.pop("data", {})
        event = TraceEvent(kind=kind, seq=self._seq,
                           t=time.perf_counter() - self._t0,
                           data=dict(data), **fields)
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
