"""Segment executors: simulation backends behind the exploration kernel.

Each executor implements the
:class:`~repro.coanalysis.kernel.SegmentExecutor` protocol for one way
of simulating a path segment:

* :class:`SerialExecutor` -- one in-process simulator, restored per
  segment.  With ``backend="cycle"`` that simulator is the vectorized
  :class:`~repro.sim.cycle_sim.CycleSim` (the production engine); with
  ``backend="event"`` it is an :class:`EventSimBridge`, a
  CycleSim-compatible facade over the event-driven kernel, so the
  paper's literal simulator runs the exact same harness and kernel.
* the pool executor for wave parallelism lives in
  :mod:`repro.coanalysis.parallel` (its worker entry points must stay
  importable at module top level for ``spawn`` pickling).

The executor owns *how* a segment simulates; halting policy, CSM
merging, forking, budgets and checkpoints all live in the kernel.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..logic.value import Logic
from ..logic.vector import LVec
from ..sim.cycle_sim import ForcedRestoreWarning, compile_netlist
from ..sim.state import SimState
from .backend import (PendingPath, SegmentResult, SimBackend,
                      prepare_initial_state, simulate_segment)
from .target import SymbolicTarget


class SerialExecutor(SimBackend):
    """One simulator, one segment at a time (Algorithm 1's inner loop)."""

    batch_limit = 1

    def __init__(self, target: SymbolicTarget,
                 cycle_observer=None,
                 record_per_path_activity: bool = False,
                 backend: str = "cycle"):
        if backend not in ("cycle", "event"):
            raise ValueError(f"unknown backend {backend!r}; "
                             f"known: 'cycle', 'event'")
        self.target = target
        self.netlist = target.netlist
        self.design = target.name
        self.backend = backend
        self.kind = "serial" if backend == "cycle" else "event"
        #: optional callable(sim, path_id, cycle) invoked on every
        #: settled cycle of every explored path -- the hook used by the
        #: peak-power analysis and by waveform dumping
        self.cycle_observer = cycle_observer
        #: when True, each segment reports its own exercised-net array
        #: (feeds result.per_path_exercised / the power-gating analysis)
        self.record_per_path_activity = record_per_path_activity
        self.sim = None

    # -- protocol -----------------------------------------------------------
    # run_batch: inherited default (per-segment dispatch via run_segment)

    def prepare(self) -> SimState:
        target = self.target
        if self.backend == "event":
            sim = target.prepare_sim(
                EventSimBridge(target.netlist, target.compiled))
        else:
            sim = target.make_sim()
        self.sim = sim
        state = prepare_initial_state(target, sim)
        sim.arm_activity()
        return state

    def activity_snapshot(self) -> dict:
        sim = self.sim
        return {"repr": "sim",
                "toggled": sim.toggled.copy(),
                "ever_x": sim.ever_x.copy(),
                "val": np.array(sim.val, copy=True),
                "known": np.array(sim.known, copy=True)}

    def activity_restore(self, planes: dict) -> None:
        sim = self.sim
        sim.toggled[:] = planes["toggled"]
        sim.ever_x[:] = planes["ever_x"]
        if hasattr(sim, "load_value_planes"):
            sim.load_value_planes(planes["val"], planes["known"])
        else:
            sim.val[:] = planes["val"]
            sim.known[:] = planes["known"]
            # the bulk plane write bypassed per-net dirty tracking
            sim.mark_all_dirty()

    def finalize(self, result) -> None:
        sim = self.sim
        if not self.capture_activity:
            # under a segment cache the kernel absorbs per-segment
            # activity itself, in batch order (see SegmentResult.activity)
            val = np.asarray(sim.val)
            known = np.asarray(sim.known)
            result.profile.absorb(sim.toggled, sim.ever_x,
                                  val & known, known)
        if isinstance(sim, EventSimBridge):
            result.events_executed = sim.es.scheduler.events_executed

    # -- one execution path -------------------------------------------------
    def run_segment(self, path: PendingPath, path_id: int,
                    per_path: int,
                    total_remaining: Optional[int]) -> SegmentResult:
        sim = self.sim
        parked = None
        if self.record_per_path_activity or self.capture_activity:
            # true per-segment sets: park the global union, collect this
            # segment in cleared arrays, then re-merge
            parked = (sim.toggled.copy(), sim.ever_x.copy())
            sim.toggled[:] = False
            sim.ever_x[:] = False
        try:
            segment = simulate_segment(self.target, sim, path, path_id,
                                       per_path, total_remaining,
                                       self.cycle_observer)
            if parked is not None and self.record_per_path_activity:
                segment.exercised = sim.exercised_nets()
            if self.capture_activity:
                val = np.asarray(sim.val)
                known = np.asarray(sim.known)
                segment.activity = (sim.toggled.copy(), sim.ever_x.copy(),
                                    val & known, np.array(known, copy=True))
            return segment
        finally:
            if parked is not None:
                sim.toggled |= parked[0]
                sim.ever_x |= parked[1]


class EventSimBridge:
    """A CycleSim-compatible facade over :class:`EventSim`.

    Exposes the slice of the :class:`~repro.sim.cycle_sim.CycleSim`
    surface the harness and executor touch -- net/bus access, memories,
    settle/clock_edge, force/release, snapshot/restore, and the toggle
    activity planes -- backed by the event-driven kernel.  Snapshots use
    the same ``compiled.state_nets`` layout as CycleSim, so CSM
    constraint positions and state fingerprints line up between
    backends.
    """

    def __init__(self, netlist, compiled=None):
        from ..sim.event_sim import EventSim
        self.netlist = netlist
        self.c = compiled if compiled is not None else \
            compile_netlist(netlist)
        self.es = EventSim(netlist)
        self.memories = {}
        self.cycle = 0
        n = len(netlist.nets)
        self.toggled = np.zeros(n, dtype=bool)
        self.ever_x = np.zeros(n, dtype=bool)
        self._armed = False
        self._prev = list(self.es.values)

    # -- memories -----------------------------------------------------------
    def attach_memory(self, memory):
        if memory.name in self.memories:
            raise ValueError(f"memory {memory.name!r} already attached")
        self.memories[memory.name] = memory
        return memory

    # -- net access ---------------------------------------------------------
    def set_net(self, net: int, value: Logic) -> None:
        if net in self.es._forced:
            # the force owns the net until release() (CycleSim contract)
            return
        if self.netlist.nets[net].driver is None:
            self.es.poke(net, value)
        else:
            # transient write to an internal net, re-derived at settle
            self.es._write(net, value)

    def get_net(self, net: int) -> Logic:
        return self.es.get_logic(net)

    def set_bus(self, nets, value: LVec) -> None:
        if len(nets) != value.width:
            raise ValueError("bus width mismatch")
        for net, bit in zip(nets, value.bits):
            self.set_net(net, bit)

    def get_bus(self, nets) -> LVec:
        return LVec([self.es.get_logic(n) for n in nets])

    def set_input(self, name: str, value) -> None:
        nl = self.netlist
        if isinstance(value, LVec):
            self.set_bus(nl.bus(name, value.width), value)
        else:
            level = value if isinstance(value, Logic) else \
                (Logic.L1 if value else Logic.L0)
            self.set_net(nl.net_index(name), level)

    # -- value planes (read-only views derived from event values) -----------
    @property
    def val(self) -> np.ndarray:
        to_logic = self.es.domain.to_logic
        return np.fromiter((to_logic(v) is Logic.L1
                            for v in self.es.values),
                           dtype=bool, count=len(self.es.values))

    @property
    def known(self) -> np.ndarray:
        to_logic = self.es.domain.to_logic
        return np.fromiter((to_logic(v).is_known
                            for v in self.es.values),
                           dtype=bool, count=len(self.es.values))

    def load_value_planes(self, val, known) -> None:
        """Checkpoint restore: write full net planes back (the bridge's
        ``val``/``known`` are derived views, not writable arrays)."""
        if len(val) != len(self.es.values):
            raise ValueError("value planes do not fit this netlist")
        values = self.es.values
        for net in range(len(values)):
            if known[net]:
                values[net] = Logic.L1 if val[net] else Logic.L0
            else:
                values[net] = Logic.X
        self._resettle_all()

    # -- settling / clocking ------------------------------------------------
    def settle(self) -> None:
        self.es.scheduler.run_time_step()

    def clock_edge(self) -> None:
        es = self.es
        es.scheduler.run_time_step()      # settle pre-edge inputs
        es._posedge()
        es.scheduler.run_time_step()      # NBA commit + resettle
        es.cycle += 1
        es.scheduler.time += 1
        self.cycle += 1

    def mark_all_dirty(self) -> None:
        self._resettle_all()

    def _resettle_all(self) -> None:
        es = self.es
        es._pending_eval.clear()
        es.scheduler.clear()
        for gate in self.netlist.gates:
            if not gate.is_sequential:
                es._schedule_eval(gate.index)
        es.scheduler.run_time_step()

    # -- forcing ------------------------------------------------------------
    def force(self, net: int, value: Logic) -> None:
        self.es.force(net, value)

    def release(self, net: Optional[int] = None) -> None:
        self.es.release(net)

    # -- snapshot / restore -------------------------------------------------
    def snapshot(self, pc: Optional[int] = None) -> SimState:
        sn = self.c.state_nets
        vals = [self.es.get_logic(int(n)) for n in sn]
        return SimState(
            net_val=np.array([v is Logic.L1 for v in vals], dtype=bool),
            net_known=np.array([v.is_known for v in vals], dtype=bool),
            memories={name: mem.snapshot()
                      for name, mem in self.memories.items()},
            cycle=self.cycle,
            pc=pc,
        )

    def restore(self, state: SimState) -> None:
        sn = self.c.state_nets
        if state.net_val.shape != sn.shape:
            raise ValueError("snapshot does not match this netlist")
        es = self.es
        if es._forced:
            # release (not _forced.clear()) so the forced nets' own
            # drivers get re-scheduled, and release BEFORE warning so
            # warnings-as-errors cannot abort with the pins still set
            n_forced = len(es._forced)
            es.release()
            warnings.warn(
                f"restore() with {n_forced} active force(s): "
                f"forces do not survive a restore; re-apply them after "
                f"restoring", ForcedRestoreWarning, stacklevel=2)
        values = es.values
        for pos, net in enumerate(sn):
            if state.net_known[pos]:
                level = Logic.L1 if state.net_val[pos] else Logic.L0
            else:
                level = Logic.X
            values[int(net)] = level
        for name, snap in state.memories.items():
            self.memories[name].restore(snap)
        self.cycle = state.cycle
        es.cycle = state.cycle
        self._resettle_all()
        if self._armed:
            self._prev = list(es.values)

    # -- toggle activity ----------------------------------------------------
    def arm_activity(self) -> None:
        self._armed = True
        self._prev = list(self.es.values)

    def record_activity_now(self) -> None:
        if not self._armed:
            return
        to_logic = self.es.domain.to_logic
        toggled, ever_x = self.toggled, self.ever_x
        prev = self._prev
        for net, value in enumerate(self.es.values):
            if not to_logic(value).is_known:
                ever_x[net] = True
            if value is not prev[net] and value != prev[net]:
                toggled[net] = True
        self._prev = list(self.es.values)

    def exercised_nets(self) -> np.ndarray:
        return self.toggled | self.ever_x

    def reset_activity(self) -> None:
        self.toggled[:] = False
        self.ever_x[:] = False
        self._armed = False
