"""The SimBackend protocol and the one shared segment loop.

Every execution backend -- serial cycle, event-driven, wave-parallel
pool, lane-parallel batch -- used to carry its own copy of the same
three pieces of plumbing:

* the *per-cycle segment loop* (restore, apply the forked branch
  decision, drive to fixpoint, boundary checks, budget check, activity
  record, clock edge, release the first-cycle force);
* the *initial-state preparation* (reset, symbolic inputs, drive);
* the *per-batch dispatch* (walk the pending paths, decrement the
  total-cycle budget per finished segment).

This module is the single home for all three.  Backends implement
:class:`SimBackend` (the protocol the exploration kernel drives --
``SegmentExecutor`` remains as a compatibility alias) and reuse
:func:`simulate_segment` / :func:`boundary_outcome` /
:func:`prepare_initial_state` instead of restating the loop, so a
semantics fix lands once and every engine inherits it.  The lockstep
batch executor cannot call :func:`simulate_segment` directly (its
cycles advance all lanes at once) but shares
:func:`boundary_outcome`, keeping the halt policy literally the same
expression on every engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..logic.value import Logic
from ..sim.state import SimState


@dataclass
class PendingPath:
    """An unprocessed execution path (an entry of Algorithm 1's stack U)."""

    state: SimState
    forced_decision: Optional[int] = None   # 0 / 1 / None (initial path)
    depth: int = 0
    parent: Optional[int] = None            # spawning segment's path_id
    origin_pc: Optional[int] = None         # halt PC of the fork that
                                            # spawned this path (novelty)


@dataclass
class SegmentResult:
    """What one simulated segment reports back to the kernel."""

    outcome: str                            # "done" | "halt" | "budget"
    end_pc: Optional[int]
    cycles: int
    end_state: Optional[SimState] = None    # snapshot at a halt
    exercised: Optional[object] = None      # per-segment exercised nets
    #: per-segment activity planes ``(toggled, ever_x, val&known,
    #: known)``, attached when the executor runs in capture mode (the
    #: segment cache is on).  The kernel then owns profile absorption,
    #: in batch order, so a cached replay folds the exact same planes in
    #: the exact same order as the run that recorded them.
    activity: Optional[tuple] = None


@dataclass
class BatchContext:
    """Budget envelope the kernel hands a backend for one batch."""

    first_path_id: int
    max_cycles_per_path: int
    #: total-cycle budget left at batch start (``None`` = unlimited).
    #: Backends decrement it per segment so a batch cannot overshoot.
    total_cycles_remaining: Optional[int] = None


class SimBackend:
    """Protocol a simulation backend implements to plug into the kernel.

    Attributes
    ----------
    kind : str
        Checkpoint engine tag (``"serial"`` / ``"event"`` /
        ``"parallel"`` / ``"batch"``); resuming across kinds is a
        mismatch.
    design : str
        The design name stamped on the result.
    netlist : Netlist
        The netlist under analysis (sizes the toggle profile).
    batch_limit : Optional[int]
        How many paths the kernel should pop per batch: ``1`` for
        one-sim-at-a-time backends, ``None`` for "the whole frontier"
        (wave parallelism).
    """

    kind = "abstract"
    design = "?"
    netlist = None
    batch_limit: Optional[int] = 1
    #: set by the kernel when a segment cache is active: the backend
    #: must attach per-segment planes to ``SegmentResult.activity``
    #: instead of absorbing them into the profile itself
    capture_activity: bool = False

    def bind(self, result) -> None:
        """Give the backend the live result (journal, profile)."""

    def prepare(self) -> SimState:
        """Reset, load, apply symbolic inputs; return the initial state."""
        raise NotImplementedError

    def run_batch(self, batch: List[PendingPath],
                  ctx: BatchContext) -> List[SegmentResult]:
        """Simulate every path in ``batch`` to its segment boundary.

        The default walks the batch one segment at a time through
        :meth:`run_segment`, decrementing the total-cycle budget per
        finished segment -- the dispatch loop every one-sim-at-a-time
        backend previously duplicated.  Wave backends (pool, batch)
        override the whole method.
        """
        out: List[SegmentResult] = []
        remaining = ctx.total_cycles_remaining
        for offset, path in enumerate(batch):
            segment = self.run_segment(path, ctx.first_path_id + offset,
                                       ctx.max_cycles_per_path, remaining)
            if remaining is not None:
                remaining -= segment.cycles
            out.append(segment)
        return out

    def run_segment(self, path: PendingPath, path_id: int, per_path: int,
                    total_remaining: Optional[int]) -> SegmentResult:
        """Simulate one path to its boundary (default run_batch hook)."""
        raise NotImplementedError

    def activity_snapshot(self) -> dict:
        """Toggle/X planes for the checkpoint payload."""
        raise NotImplementedError

    def activity_restore(self, planes: dict) -> None:
        """Apply checkpointed planes (raise ``ValueError`` on misfit)."""
        raise NotImplementedError

    def finalize(self, result) -> None:
        """Fold accumulated activity into ``result.profile``."""

    def close(self) -> None:
        """Release pools/files; called exactly once, even on error."""


#: compatibility alias -- the protocol's pre-rename spelling
SegmentExecutor = SimBackend


def boundary_outcome(target, sim) -> Optional[str]:
    """Algorithm 1's halt policy: ``"done"``, ``"halt"`` or ``None``.

    The one expression every backend uses to decide whether a settled
    cycle is a segment boundary -- the program finished, or control
    reached a branch point whose decision (or monitored state) carries
    an X and the path must fork.
    """
    if target.is_done(sim):
        return "done"
    bp = target.at_branch_point(sim)
    if bp is not Logic.L0 and (not bp.is_known
                               or target.monitored_has_x(sim)):
        return "halt"
    return None


def simulate_segment(target, sim, path: PendingPath, path_id: int,
                     per_path: int, total_remaining: Optional[int],
                     cycle_observer=None) -> SegmentResult:
    """The per-cycle segment loop (Algorithm 1's inner loop), shared by
    the serial, event and pool backends.

    Restores ``path.state`` into ``sim``, applies the forked branch
    decision as a one-cycle force, then advances cycle by cycle:
    drive to fixpoint, boundary checks (skipped on the forced first
    cycle), budget check, activity record, observer hook, clock edge.
    Activity arming/parking is the caller's concern -- this function
    only runs the loop.
    """
    sim.restore(path.state)

    first_cycle_forced = path.forced_decision is not None
    if first_cycle_forced:
        sim.force(target.branch_force_net,
                  Logic.L1 if path.forced_decision else Logic.L0)

    cycles = 0
    while True:
        target.drive_all(sim)

        if not first_cycle_forced:
            outcome = boundary_outcome(target, sim)
            if outcome == "done":
                sim.record_activity_now()
                return SegmentResult("done", target.current_pc(sim),
                                     cycles)
            if outcome == "halt":
                sim.record_activity_now()
                pc = target.current_pc(sim)
                state = sim.snapshot(pc=pc) if pc is not None else None
                return SegmentResult("halt", pc, cycles, state)

        if cycles >= per_path or (total_remaining is not None
                                  and cycles >= total_remaining):
            sim.release()   # abandoned path: don't leak the branch
                            # force into the next segment's restore
            return SegmentResult("budget", target.current_pc(sim),
                                 cycles)

        sim.record_activity_now()
        if cycle_observer is not None:
            cycle_observer(sim, path_id, cycles)
        target.on_edge(sim)
        sim.clock_edge()
        cycles += 1
        if first_cycle_forced:
            sim.release()
            first_cycle_forced = False


def prepare_initial_state(target, sim) -> SimState:
    """Reset, apply symbolic inputs, drive: the shared ``prepare()``."""
    target.reset(sim)
    target.apply_symbolic_inputs(sim)
    target.drive_all(sim)
    return sim.snapshot(pc=target.current_pc(sim))


def profile_activity_snapshot(result) -> dict:
    """Checkpoint planes for backends that absorb at retirement (their
    accumulated activity lives in ``result.profile``, not in a sim)."""
    profile = result.profile
    return {"repr": "profile",
            "toggled": profile.toggled.copy(),
            "ever_x": profile.ever_x.copy(),
            "val": profile.const_val.copy(),
            "known": profile.const_known.copy()}


def profile_activity_restore(result, planes: dict) -> None:
    """Inverse of :func:`profile_activity_snapshot`."""
    profile = result.profile
    profile.toggled[:] = planes["toggled"]
    profile.ever_x[:] = planes["ever_x"]
    profile.const_val[:] = planes["val"]
    profile.const_known[:] = planes["known"]
