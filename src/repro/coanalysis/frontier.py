"""Pluggable frontier scheduling for Algorithm 1's pending-path set.

The paper's tool explores its stack ``U`` depth-first, but the order in
which pending paths are simulated is a *policy*, not part of the
algorithm's soundness argument: any order converges to the same
exercisable-gate dichotomy once the CSM's repository saturates (only
path/merge counts shift, exactly as between the paper's serial and
parallel runs).  Symbolic engines in the KLEE lineage make the same
split -- one exploration core, interchangeable "searchers" -- and that
separation is what lets scaling strategies compose.

Three strategies ship:

* :class:`DepthFirstFrontier` -- the paper's LIFO stack (serial default);
* :class:`BreadthFirstFrontier` -- FIFO, the wave-parallel engine's
  natural order (whole frontier dispatched per wave);
* :class:`NoveltyFrontier` -- prefers paths forked at rarely-seen halt
  PCs, steering simulation toward unexplored program regions first.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from .kernel import PendingPath


class FrontierStrategy:
    """Ordering policy over the set of unexplored paths.

    Subclasses own the container; the kernel only pushes forked paths,
    pops batches, and (for checkpointing) round-trips the entries --
    ``entries()`` must list paths in an order such that re-``push()``-ing
    them into a fresh instance reproduces the schedule.
    """

    name = "base"

    def push(self, path: PendingPath) -> None:
        raise NotImplementedError

    def pop_batch(self, limit: Optional[int]) -> List[PendingPath]:
        """Remove and return up to ``limit`` paths (``None`` = all)."""
        raise NotImplementedError

    def requeue(self, batch: List[PendingPath]) -> None:
        """Return an un-simulated batch to the head of the schedule
        (interrupt handling): the next ``pop_batch`` must yield these
        paths again, in the same order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def entries(self) -> List[PendingPath]:
        """Checkpoint view: every pending path, in re-push order."""
        raise NotImplementedError

    def observe_halt(self, pc: int) -> None:
        """Feedback hook: a path halted at ``pc`` (novelty bookkeeping)."""

    def snapshot_meta(self) -> dict:
        """Strategy-private state worth checkpointing (may be empty)."""
        return {}

    def restore_meta(self, meta: dict) -> None:
        pass


class DepthFirstFrontier(FrontierStrategy):
    """LIFO stack -- Algorithm 1's ``U`` exactly as the serial engine
    has always walked it."""

    name = "dfs"

    def __init__(self):
        self._stack: List[PendingPath] = []

    def push(self, path: PendingPath) -> None:
        self._stack.append(path)

    def pop_batch(self, limit: Optional[int]) -> List[PendingPath]:
        if limit is None or limit >= len(self._stack):
            batch = self._stack[::-1]
            self._stack.clear()
            return batch
        batch = [self._stack.pop() for _ in range(limit)]
        return batch

    def requeue(self, batch: List[PendingPath]) -> None:
        self._stack.extend(reversed(batch))

    def __len__(self) -> int:
        return len(self._stack)

    def entries(self) -> List[PendingPath]:
        return list(self._stack)


class BreadthFirstFrontier(FrontierStrategy):
    """FIFO queue: explore shallow forks first (wave order)."""

    name = "bfs"

    def __init__(self):
        from collections import deque
        self._queue = deque()

    def push(self, path: PendingPath) -> None:
        self._queue.append(path)

    def pop_batch(self, limit: Optional[int]) -> List[PendingPath]:
        if limit is None or limit >= len(self._queue):
            batch = list(self._queue)
            self._queue.clear()
            return batch
        return [self._queue.popleft() for _ in range(limit)]

    def requeue(self, batch: List[PendingPath]) -> None:
        self._queue.extendleft(reversed(batch))

    def __len__(self) -> int:
        return len(self._queue)

    def entries(self) -> List[PendingPath]:
        return list(self._queue)


class NoveltyFrontier(FrontierStrategy):
    """Priority schedule by estimated novelty of each path's fork site.

    A path forked at a halt PC the run has seen few times is likely to
    reach program regions (and therefore gates) no other path has
    exercised yet, so it is scheduled first; among equally novel paths
    the shallower one wins, then insertion order (deterministic).  This
    front-loads coverage growth -- useful with tight cycle budgets or
    time-sliced (``stop_after_waves``) exploration.
    """

    name = "novelty"

    def __init__(self):
        self._heap: List[tuple] = []
        self._seen: Dict[int, int] = {}       # halt pc -> observations
        self._counter = 0

    def _priority(self, path: PendingPath) -> tuple:
        seen = self._seen.get(path.origin_pc, 0) \
            if path.origin_pc is not None else 0
        return (seen, path.depth)

    def push(self, path: PendingPath) -> None:
        heapq.heappush(self._heap,
                       (*self._priority(path), self._counter, path))
        self._counter += 1

    def pop_batch(self, limit: Optional[int]) -> List[PendingPath]:
        if limit is None:
            limit = len(self._heap)
        batch = []
        while self._heap and len(batch) < limit:
            batch.append(heapq.heappop(self._heap)[-1])
        return batch

    def requeue(self, batch: List[PendingPath]) -> None:
        # negative insertion order keeps requeued paths ahead of
        # same-priority peers, preserving the interrupted schedule
        for offset, path in enumerate(batch):
            heapq.heappush(
                self._heap,
                (*self._priority(path), -(len(batch) - offset), path))

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> List[PendingPath]:
        return [item[-1] for item in sorted(self._heap)]

    def observe_halt(self, pc: int) -> None:
        self._seen[pc] = self._seen.get(pc, 0) + 1

    def snapshot_meta(self) -> dict:
        return {"seen": dict(self._seen)}

    def restore_meta(self, meta: dict) -> None:
        self._seen = dict(meta.get("seen", {}))


FRONTIER_STRATEGIES = {
    DepthFirstFrontier.name: DepthFirstFrontier,
    BreadthFirstFrontier.name: BreadthFirstFrontier,
    NoveltyFrontier.name: NoveltyFrontier,
}


def make_frontier(strategy) -> FrontierStrategy:
    """Coerce a strategy argument: a name looks up the registry, an
    instance passes through, ``None`` gives the DFS default."""
    if strategy is None:
        return DepthFirstFrontier()
    if isinstance(strategy, FrontierStrategy):
        return strategy
    try:
        return FRONTIER_STRATEGIES[strategy]()
    except KeyError:
        raise ValueError(
            f"unknown frontier strategy {strategy!r}; "
            f"known: {sorted(FRONTIER_STRATEGIES)}") from None
