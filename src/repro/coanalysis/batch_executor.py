"""The batched frontier backend: one settle advances a whole wave.

:class:`BatchSegmentExecutor` plugs the bit-packed lane-parallel
:class:`~repro.sim.batch_sim.BatchCycleSim` into the exploration kernel
through the same :class:`~repro.coanalysis.backend.SimBackend`
protocol the serial and pool backends implement -- the kernel, CSM,
frontier strategies, budgets, checkpointing, governor and trace layers
run unchanged.

Like the pool backend it asks the kernel for the *whole frontier* per
batch (``batch_limit=None``); unlike the pool it simulates every
pending path in **lockstep inside one process**: each path gets a lane,
all lanes share every ``settle()``/``clock_edge()``, and a lane that
reaches its segment boundary (done / halt / budget) retires
mid-flight while the rest keep running.

Retired lanes are not just dropped: **lane compaction** refills the
freed slots from the still-pending frontier at the top of the next
lockstep iteration, without repacking the survivors.  A refilled lane
restores its path's state (``settle=False``), takes the shared settle
alongside the running lanes, arms its activity window, applies its
branch force -- and from then on is indistinguishable from a lane that
started the wave.  Occupancy therefore stays near ``max_lanes`` for the
whole batch instead of draining to a straggler per fixed sub-wave;
``BatchRunStats.refills``/``compactions`` count how often that happened
and flow into each ``"batch"`` trace event.

The plane capacity is ``lanes`` (any multiple of 64; the sim grows
word-columns, see :class:`~repro.sim.planes.LanePlanes`), while
``max_lanes`` caps live occupancy within it -- useful in tests to force
compaction with tiny waves.

Per-cycle semantics mirror :func:`~repro.coanalysis.backend.simulate_segment`
exactly -- drive-to-fixpoint, boundary checks
(:func:`~repro.coanalysis.backend.boundary_outcome`, the same
expression every engine uses) before the budget check, activity
recorded after the checks, the first-cycle branch force released after
the first edge -- so the exercisable-gate dichotomy is identical
across engines (pinned by the equivalence matrix).  Because a
refilled lane's first boundary check precedes its first clock edge,
compaction is invisible to the results: only lane *scheduling*
changes, never per-path semantics.  One intentional divergence from
the serial engine: the total-cycle budget is folded into each lane's
allowance at induction and decremented at retirement, because
lockstep lanes share wall-clock cycles; strict runs raise on any
budget exhaustion either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..logic.value import Logic
from ..sim.batch_sim import LANE_CAPACITY, BatchCycleSim, LaneView
from ..sim.planes import LANE_WORD
from ..sim.state import SimState
from .backend import (BatchContext, PendingPath, SegmentResult, SimBackend,
                      boundary_outcome, prepare_initial_state,
                      profile_activity_restore, profile_activity_snapshot)
from .results import CoAnalysisResult
from .target import SymbolicTarget


@dataclass
class BatchRunStats:
    """Lane accounting for one batched run (the ``/trace`` batch data)."""

    #: lockstep waves started from an empty lane file (a frontier batch
    #: opens one; compaction keeps it running instead of starting more)
    waves: int = 0
    #: segments completed across all waves
    segments: int = 0
    #: most lanes ever live at once (packing high-water mark)
    peak_lanes: int = 0
    #: sum over segments of their cycle counts (lane-cycles simulated)
    lane_cycles: int = 0
    #: lockstep iterations actually stepped (shared settles); the ratio
    #: ``lane_cycles / lockstep_cycles`` is the realized parallelism
    lockstep_cycles: int = 0
    #: per-wave *initial* lane counts, in run order
    wave_lanes: List[int] = field(default_factory=list)
    #: lockstep iterations that swapped fresh paths into freed lanes
    #: while other lanes kept running (mid-flight compaction events)
    compactions: int = 0
    #: paths inducted into freed lanes mid-flight (total across
    #: compaction events)
    refills: int = 0

    def realized_parallelism(self) -> float:
        if not self.lockstep_cycles:
            return 0.0
        return self.lane_cycles / self.lockstep_cycles


class _LiveLane:
    """Bookkeeping for one occupied lane slot during a streaming batch."""

    __slots__ = ("index", "lane", "view", "cycles", "allowance",
                 "first_forced")

    def __init__(self, index: int, lane: int, view: LaneView,
                 allowance: int):
        self.index = index          # position in the frontier batch
        self.lane = lane
        self.view = view
        self.cycles = 0
        self.allowance = allowance
        self.first_forced = False


class BatchSegmentExecutor(SimBackend):
    """Lane-parallel in-process backend (``--engine batch``)."""

    kind = "batch"
    batch_limit = None      # give us the whole frontier; we stream it

    def __init__(self, target: SymbolicTarget,
                 cycle_observer=None,
                 record_per_path_activity: bool = False,
                 max_lanes: Optional[int] = None,
                 stats: Optional[BatchRunStats] = None,
                 lanes: int = LANE_CAPACITY):
        if lanes < 1 or lanes % LANE_WORD:
            raise ValueError(
                f"lane capacity must be a positive multiple of "
                f"{LANE_WORD}, got {lanes}")
        if max_lanes is None:
            max_lanes = lanes
        if not 1 <= max_lanes <= lanes:
            raise ValueError(f"max_lanes must be in [1, {lanes}]")
        self.target = target
        self.netlist = target.netlist
        self.design = target.name
        self.cycle_observer = cycle_observer
        self.record_per_path_activity = record_per_path_activity
        #: plane capacity in lanes (``n_words * 64``)
        self.lanes = lanes
        #: live-occupancy cap within the plane capacity
        self.max_lanes = max_lanes
        self.stats = stats or BatchRunStats()
        self.sim: Optional[BatchCycleSim] = None
        self._result: Optional[CoAnalysisResult] = None
        self._last_batch: Dict[str, int] = {}

    # -- protocol -----------------------------------------------------------
    def bind(self, result: CoAnalysisResult) -> None:
        self._result = result

    def prepare(self) -> SimState:
        target = self.target
        self.sim = BatchCycleSim(target.compiled, lanes=self.lanes)
        lane = self.sim.alloc_lane()
        view = self.sim.lane_view(lane)
        target.prepare_sim(view)
        prepare_initial_state(target, view)
        state = self.sim.lane_snapshot(lane, pc=target.current_pc(view))
        self.sim.drop_lane(lane)
        return state

    def run_batch(self, batch: List[PendingPath],
                  ctx: BatchContext) -> List[SegmentResult]:
        segments = self._run_streaming(batch, ctx.first_path_id,
                                       ctx.max_cycles_per_path,
                                       ctx.total_cycles_remaining)
        return segments

    def activity_snapshot(self) -> dict:
        return profile_activity_snapshot(self._result)

    def activity_restore(self, planes: dict) -> None:
        profile_activity_restore(self._result, planes)

    def batch_stats(self) -> Dict[str, int]:
        """Lane accounting the kernel folds into each batch trace event."""
        return dict(self._last_batch)

    def finalize(self, result: CoAnalysisResult) -> None:
        # per-segment activity was absorbed at lane retirement (the pool
        # backend's contract); nothing left to fold in here
        result.batch_stats = self.stats

    # -- one streaming batch ------------------------------------------------
    def _run_streaming(self, paths: List[PendingPath], first_path_id: int,
                       per_path: int,
                       remaining: Optional[int]) -> List[SegmentResult]:
        target, sim, stats = self.target, self.sim, self.stats
        finished: Dict[int, SegmentResult] = {}
        live: List[_LiveLane] = []
        next_index = 0
        compactions = 0
        refills = 0
        peak = 0

        def allowance() -> int:
            return per_path if remaining is None \
                else min(per_path, max(0, remaining))

        def retire(slot: _LiveLane, outcome: str, end_pc: Optional[int],
                   end_state: Optional[SimState] = None) -> None:
            nonlocal remaining
            finished[slot.index] = self._retire(
                slot.lane, outcome, end_pc, slot.cycles, end_state)
            if remaining is not None:
                remaining = max(0, remaining - slot.cycles)

        while live or next_index < len(paths):
            # -- compaction: refill freed lane slots from the frontier --
            if next_index < len(paths) and len(live) < self.max_lanes:
                fresh: List[_LiveLane] = []
                while next_index < len(paths) \
                        and len(live) + len(fresh) < self.max_lanes:
                    path = paths[next_index]
                    lane = sim.alloc_lane()
                    view = sim.lane_view(lane)
                    target.prepare_sim(view)
                    sim.lane_restore(lane, path.state, settle=False)
                    fresh.append(_LiveLane(next_index, lane, view,
                                           allowance()))
                    next_index += 1
                # one shared settle re-derives every refilled lane (the
                # survivors are re-settled at the top of the lockstep
                # step below anyway); arming must follow it so the
                # toggle baseline is the settled restore, as in the
                # serial engine
                sim.settle()
                for slot in fresh:
                    sim.lane_arm_activity(slot.lane)
                    path = paths[slot.index]
                    if path.forced_decision is not None:
                        slot.first_forced = True
                        sim.lane_force(slot.lane, target.branch_force_net,
                                       Logic.L1 if path.forced_decision
                                       else Logic.L0)
                if live:
                    compactions += 1
                    refills += len(fresh)
                else:
                    stats.waves += 1
                    stats.wave_lanes.append(len(fresh))
                live.extend(fresh)
                peak = max(peak, len(live))
                stats.peak_lanes = max(stats.peak_lanes, sim.n_lanes)

            # -- drive_all in lockstep: shared settles, per-lane services
            sim.settle()
            for _ in range(target.drive_rounds):
                for slot in live:
                    target.drive(slot.view)
                sim.settle()

            # -- boundary + budget checks (a retired slot frees its lane
            # for the next iteration's refill; a refilled lane reaches
            # this check before its first clock edge)
            still: List[_LiveLane] = []
            for slot in live:
                view = slot.view
                outcome = None if slot.first_forced \
                    else boundary_outcome(target, view)
                if outcome == "done":
                    sim.record_activity_now(1 << slot.lane)
                    retire(slot, "done", target.current_pc(view))
                    continue
                if outcome == "halt":
                    sim.record_activity_now(1 << slot.lane)
                    pc = target.current_pc(view)
                    state = sim.lane_snapshot(slot.lane, pc=pc) \
                        if pc is not None else None
                    retire(slot, "halt", pc, state)
                    continue
                if slot.cycles >= slot.allowance:
                    # abandoned path: drop the branch force, skip the
                    # activity record (mirrors the serial budget path)
                    sim.lane_release(slot.lane)
                    retire(slot, "budget", target.current_pc(view))
                    continue
                still.append(slot)
            live = still
            if not live:
                continue    # refill (or finish) without a dead edge

            sim.record_activity_now()       # all still-armed lanes
            if self.cycle_observer is not None:
                for slot in live:
                    self.cycle_observer(slot.view,
                                        first_path_id + slot.index,
                                        slot.cycles)
            for slot in live:
                target.on_edge(slot.view)
            sim.clock_edge()
            stats.lockstep_cycles += 1
            for slot in live:
                slot.cycles += 1
                if slot.first_forced:
                    sim.lane_release(slot.lane)
                    slot.first_forced = False

        stats.compactions += compactions
        stats.refills += refills
        self._last_batch = {"lanes": peak, "waves": 1 if paths else 0,
                            "compactions": compactions, "refills": refills}
        return [finished[i] for i in range(len(paths))]

    def _retire(self, lane: int, outcome: str, end_pc: Optional[int],
                cycles: int,
                end_state: Optional[SimState] = None) -> SegmentResult:
        """Fold a finished lane's activity into the profile and free it."""
        sim = self.sim
        toggled, ever_x = sim.lane_activity(lane)
        val, known = sim.lane_planes(lane)
        activity = None
        if self.capture_activity:
            # the kernel absorbs in batch order (cache replay contract);
            # copy -- the lane arrays are views reused after drop_lane
            activity = (toggled.copy(), ever_x.copy(),
                        (val & known).copy(), known.copy())
        else:
            self._result.profile.absorb(toggled, ever_x,
                                        val & known, known)
        exercised = (toggled | ever_x) \
            if self.record_per_path_activity else None
        sim.lane_reset_activity(lane)
        sim.drop_lane(lane)
        self.stats.segments += 1
        self.stats.lane_cycles += cycles
        return SegmentResult(outcome, end_pc, cycles, end_state,
                             exercised, activity)
