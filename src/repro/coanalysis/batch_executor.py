"""The batched frontier backend: one settle advances a whole wave.

:class:`BatchSegmentExecutor` plugs the bit-packed lane-parallel
:class:`~repro.sim.batch_sim.BatchCycleSim` into the exploration kernel
through the same :class:`~repro.coanalysis.kernel.SegmentExecutor`
protocol the serial and pool backends implement -- the kernel, CSM,
frontier strategies, budgets, checkpointing, governor and trace layers
run unchanged.

Like the pool backend it asks the kernel for the *whole frontier* per
batch (``batch_limit=None``); unlike the pool it simulates every
pending path in **lockstep inside one process**: each path gets a lane,
all lanes share every ``settle()``/``clock_edge()``, and a lane that
reaches its segment boundary (done / halt / budget) retires
mid-flight while the rest keep running.  Frontiers larger than the
64-lane word are processed in consecutive sub-waves.

Per-cycle semantics mirror ``SerialExecutor._simulate`` exactly --
drive-to-fixpoint, boundary checks before the budget check, activity
recorded after the checks, the first-cycle branch force released after
the first edge -- so the exercisable-gate dichotomy is identical across
engines (pinned by the equivalence matrix).  One intentional
divergence: the total-cycle budget is decremented per *sub-wave*, not
per segment, because lockstep lanes finish together; strict runs raise
on any budget exhaustion either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..logic.value import Logic
from ..sim.batch_sim import LANE_CAPACITY, BatchCycleSim, LaneView
from ..sim.state import SimState
from .kernel import BatchContext, PendingPath, SegmentExecutor, SegmentResult
from .results import CoAnalysisResult
from .target import SymbolicTarget


@dataclass
class BatchRunStats:
    """Lane accounting for one batched run (the ``/trace`` batch data)."""

    #: sub-waves simulated (one per <= 64 lanes of a frontier batch)
    waves: int = 0
    #: segments completed across all waves
    segments: int = 0
    #: most lanes ever live at once (packing high-water mark)
    peak_lanes: int = 0
    #: sum over segments of their cycle counts (lane-cycles simulated)
    lane_cycles: int = 0
    #: lockstep iterations actually stepped (shared settles); the ratio
    #: ``lane_cycles / lockstep_cycles`` is the realized parallelism
    lockstep_cycles: int = 0
    #: per-wave lane counts, in run order
    wave_lanes: List[int] = field(default_factory=list)

    def realized_parallelism(self) -> float:
        if not self.lockstep_cycles:
            return 0.0
        return self.lane_cycles / self.lockstep_cycles


class BatchSegmentExecutor(SegmentExecutor):
    """Lane-parallel in-process backend (``--engine batch``)."""

    kind = "batch"
    batch_limit = None      # give us the whole frontier; we sub-wave it

    def __init__(self, target: SymbolicTarget,
                 cycle_observer=None,
                 record_per_path_activity: bool = False,
                 max_lanes: int = LANE_CAPACITY,
                 stats: Optional[BatchRunStats] = None):
        if not 1 <= max_lanes <= LANE_CAPACITY:
            raise ValueError(
                f"max_lanes must be in [1, {LANE_CAPACITY}]")
        self.target = target
        self.netlist = target.netlist
        self.design = target.name
        self.cycle_observer = cycle_observer
        self.record_per_path_activity = record_per_path_activity
        self.max_lanes = max_lanes
        self.stats = stats or BatchRunStats()
        self.sim: Optional[BatchCycleSim] = None
        self._result: Optional[CoAnalysisResult] = None
        self._last_batch: Dict[str, int] = {}

    # -- protocol -----------------------------------------------------------
    def bind(self, result: CoAnalysisResult) -> None:
        self._result = result

    def prepare(self) -> SimState:
        target = self.target
        self.sim = BatchCycleSim(target.compiled)
        lane = self.sim.alloc_lane()
        view = self.sim.lane_view(lane)
        target.prepare_sim(view)
        target.reset(view)
        target.apply_symbolic_inputs(view)
        target.drive_all(view)
        state = self.sim.lane_snapshot(lane, pc=target.current_pc(view))
        self.sim.drop_lane(lane)
        return state

    def run_batch(self, batch: List[PendingPath],
                  ctx: BatchContext) -> List[SegmentResult]:
        out: List[SegmentResult] = []
        remaining = ctx.total_cycles_remaining
        waves = 0
        peak = 0
        for start in range(0, len(batch), self.max_lanes):
            wave = batch[start:start + self.max_lanes]
            segments = self._run_wave(wave, ctx.first_path_id + start,
                                      ctx.max_cycles_per_path, remaining)
            if remaining is not None:
                remaining = max(0, remaining - sum(s.cycles
                                                   for s in segments))
            out.extend(segments)
            waves += 1
            peak = max(peak, len(wave))
        self._last_batch = {"lanes": peak, "waves": waves}
        return out

    def activity_snapshot(self) -> dict:
        profile = self._result.profile
        return {"repr": "profile",
                "toggled": profile.toggled.copy(),
                "ever_x": profile.ever_x.copy(),
                "val": profile.const_val.copy(),
                "known": profile.const_known.copy()}

    def activity_restore(self, planes: dict) -> None:
        profile = self._result.profile
        profile.toggled[:] = planes["toggled"]
        profile.ever_x[:] = planes["ever_x"]
        profile.const_val[:] = planes["val"]
        profile.const_known[:] = planes["known"]

    def batch_stats(self) -> Dict[str, int]:
        """Lane accounting the kernel folds into each batch trace event."""
        return dict(self._last_batch)

    def finalize(self, result: CoAnalysisResult) -> None:
        # per-segment activity was absorbed at lane retirement (the pool
        # backend's contract); nothing left to fold in here
        result.batch_stats = self.stats

    # -- one lockstep wave --------------------------------------------------
    def _run_wave(self, paths: List[PendingPath], first_path_id: int,
                  per_path: int,
                  remaining: Optional[int]) -> List[SegmentResult]:
        target, sim = self.target, self.sim
        allowance = per_path if remaining is None \
            else min(per_path, remaining)

        lanes: List[int] = []
        views: List[LaneView] = []
        for path in paths:
            lane = sim.alloc_lane()
            view = sim.lane_view(lane)
            target.prepare_sim(view)
            sim.lane_restore(lane, path.state, settle=False)
            lanes.append(lane)
            views.append(view)
        sim.settle()        # one shared settle re-derives every lane
        first_forced = []
        for path, lane in zip(paths, lanes):
            sim.lane_arm_activity(lane)
            forced = path.forced_decision is not None
            if forced:
                sim.lane_force(lane, target.branch_force_net,
                               Logic.L1 if path.forced_decision
                               else Logic.L0)
            first_forced.append(forced)

        stats = self.stats
        stats.waves += 1
        stats.wave_lanes.append(len(paths))
        stats.peak_lanes = max(stats.peak_lanes, sim.n_lanes)

        finished: Dict[int, SegmentResult] = {}
        live = list(range(len(paths)))
        cycles = 0
        while live:
            # drive_all in lockstep: shared settles, per-lane services
            sim.settle()
            for _ in range(target.drive_rounds):
                for i in live:
                    target.drive(views[i])
                sim.settle()

            still: List[int] = []
            for i in live:
                view = views[i]
                if not first_forced[i]:
                    if target.is_done(view):
                        sim.record_activity_now(1 << lanes[i])
                        finished[i] = self._retire(
                            i, lanes[i], "done",
                            target.current_pc(view), cycles)
                        continue
                    bp = target.at_branch_point(view)
                    if bp is not Logic.L0 and \
                            (not bp.is_known
                             or target.monitored_has_x(view)):
                        sim.record_activity_now(1 << lanes[i])
                        pc = target.current_pc(view)
                        state = sim.lane_snapshot(lanes[i], pc=pc) \
                            if pc is not None else None
                        finished[i] = self._retire(
                            i, lanes[i], "halt", pc, cycles, state)
                        continue
                still.append(i)
            live = still
            if not live:
                break

            if cycles >= allowance:
                # abandoned paths: drop the branch force, skip the
                # activity record (mirrors the serial budget path)
                for i in live:
                    sim.lane_release(lanes[i])
                    finished[i] = self._retire(
                        i, lanes[i], "budget",
                        target.current_pc(views[i]), cycles)
                live = []
                break

            sim.record_activity_now()       # all still-armed lanes
            if self.cycle_observer is not None:
                for i in live:
                    self.cycle_observer(views[i], first_path_id + i,
                                        cycles)
            for i in live:
                target.on_edge(views[i])
            sim.clock_edge()
            cycles += 1
            stats.lockstep_cycles += 1
            for i in live:
                if first_forced[i]:
                    sim.lane_release(lanes[i])
                    first_forced[i] = False

        return [finished[i] for i in range(len(paths))]

    def _retire(self, index: int, lane: int, outcome: str,
                end_pc: Optional[int], cycles: int,
                end_state: Optional[SimState] = None) -> SegmentResult:
        """Fold a finished lane's activity into the profile and free it."""
        sim = self.sim
        toggled, ever_x = sim.lane_activity(lane)
        val, known = sim.lane_planes(lane)
        activity = None
        if self.capture_activity:
            # the kernel absorbs in batch order (cache replay contract);
            # copy -- the lane arrays are views reused after drop_lane
            activity = (toggled.copy(), ever_x.copy(),
                        (val & known).copy(), known.copy())
        else:
            self._result.profile.absorb(toggled, ever_x,
                                        val & known, known)
        exercised = (toggled | ever_x) \
            if self.record_per_path_activity else None
        sim.lane_reset_activity(lane)
        sim.drop_lane(lane)
        self.stats.segments += 1
        self.stats.lane_cycles += cycles
        return SegmentResult(outcome, end_pc, cycles, end_state,
                             exercised, activity)
