"""Co-analysis result records (the paper's reported metrics).

Table 3 reports exercisable gate counts and percentage reduction; Table 4
reports paths created, paths skipped, and simulated cycles.  These records
carry exactly those quantities, plus enough detail for the ablation
benches (per-path segments, CSM statistics, wall-clock time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.activity import ToggleProfile


@dataclass
class PathRecord:
    """One simulated execution segment (pop of Algorithm 1's U stack)."""

    path_id: int
    start_pc: Optional[int]
    end_pc: Optional[int]
    cycles: int
    outcome: str                 # "split" | "skipped" | "done" | "budget"
                                 # | "quarantined"
    forced_decision: Optional[int] = None
    #: path_id of the segment whose split spawned this one (None = root)
    parent: Optional[int] = None


@dataclass
class RunEvent:
    """One entry of a run's resilience journal.

    ``kind`` is drawn from a small vocabulary so operators can grep a
    long run's history: ``checkpoint``, ``resume``, ``timeout``,
    ``crash``, ``corrupt``, ``retry``, ``pool_restart``, ``degraded``,
    ``interrupt``, ``quarantined``, ``governed_stop``.
    """

    kind: str
    wave: Optional[int] = None
    segment: Optional[int] = None
    attempt: int = 0
    detail: str = ""


@dataclass
class CoAnalysisResult:
    """Everything Algorithm 1 produces for one (application, design) pair."""

    design: str
    application: str
    profile: ToggleProfile
    paths_created: int = 0
    paths_skipped: int = 0
    splits: int = 0
    simulated_cycles: int = 0
    wall_seconds: float = 0.0
    csm_stats: Dict[str, int] = field(default_factory=dict)
    path_records: List[PathRecord] = field(default_factory=list)
    truncated_paths: int = 0
    #: per-segment exercised-net arrays (aligned with path_records);
    #: populated when the engine runs with record_per_path_activity
    per_path_exercised: List = field(default_factory=list)
    #: resilience journal: every fault observed, retry issued, pool
    #: restart, checkpoint written, and resume performed during the run
    journal: List[RunEvent] = field(default_factory=list)
    #: worker failures that were absorbed by retry / re-dispatch
    recovered_failures: int = 0
    #: True when the parallel engine fell back to serial execution
    degraded_to_serial: bool = False
    #: True when this result continues an earlier checkpointed run
    resumed: bool = False
    #: discrete events processed (event-driven backend only; 0 otherwise)
    events_executed: int = 0
    #: aggregated :class:`~repro.coanalysis.trace.RunMetrics` derived
    #: from the kernel's trace stream (None for hand-built results)
    metrics: Optional[object] = None
    #: pending paths skipped because their segment key was quarantined
    quarantined_paths: int = 0
    #: machine-readable verdicts for every quarantined segment key
    #: (:meth:`~repro.resilience.quarantine.QuarantineRegistry.summary`)
    quarantine_verdicts: List[Dict] = field(default_factory=list)
    #: lane accounting from the batched backend
    #: (:class:`~repro.coanalysis.batch_executor.BatchRunStats`; None
    #: for the other engines)
    batch_stats: Optional[object] = None
    #: segments replayed from / recorded into a
    #: :class:`~repro.store.segments.SegmentResultCache` (both 0 when
    #: the run had no segment cache)
    segment_cache_hits: int = 0
    segment_cache_misses: int = 0

    @property
    def complete(self) -> bool:
        """True when exploration exhausted the frontier (a
        :class:`PartialResult` reports False)."""
        return True

    # -- headline metrics ------------------------------------------------------
    @property
    def total_gates(self) -> int:
        return self.profile.netlist.gate_count()

    @property
    def exercisable_gate_count(self) -> int:
        return len(self.profile.exercisable_gates())

    @property
    def unexercisable_gate_count(self) -> int:
        return self.total_gates - self.exercisable_gate_count

    @property
    def reduction_percent(self) -> float:
        """Percentage of gates proven unexercisable (Table 3's metric)."""
        if self.total_gates == 0:
            return 0.0
        return 100.0 * self.unexercisable_gate_count / self.total_gates

    def summary(self) -> Dict[str, object]:
        out = {
            "design": self.design,
            "application": self.application,
            "total_gates": self.total_gates,
            "exercisable_gates": self.exercisable_gate_count,
            "reduction_percent": round(self.reduction_percent, 2),
            "paths_created": self.paths_created,
            "paths_skipped": self.paths_skipped,
            "simulated_cycles": self.simulated_cycles,
            "truncated_paths": self.truncated_paths,
        }
        if self.quarantined_paths:
            out["quarantined_paths"] = self.quarantined_paths
        if self.segment_cache_hits or self.segment_cache_misses:
            out["segment_cache_hits"] = self.segment_cache_hits
            out["segment_cache_misses"] = self.segment_cache_misses
        return out


#: machine-readable reasons a governed run can stop early (open set)
STOP_REASONS = ("deadline", "memory", "frontier", "segments",
                "interrupted", "wave_budget")


@dataclass
class PartialResult(CoAnalysisResult):
    """A governed run that stopped early, as a first-class outcome.

    Carries everything a :class:`CoAnalysisResult` does -- the activity
    explored *so far* -- plus a machine-readable ``stop_reason`` (one of
    :data:`STOP_REASONS`) and the number of paths still pending.  A
    final checkpoint was flushed before the stop, so re-running with
    ``resume=True`` continues exactly where this result ends.

    The profile of a partial run is a *subset* of the converged answer:
    gates it marks exercisable are, gates it has not reached yet may
    still be.  Treat the dichotomy as sound only once a resumed run
    returns a complete :class:`CoAnalysisResult`.
    """

    stop_reason: str = "unknown"
    stop_detail: str = ""
    #: paths still pending on the frontier at the stop
    pending_paths: int = 0

    @property
    def complete(self) -> bool:
        return False

    @classmethod
    def from_result(cls, result: CoAnalysisResult, stop_reason: str,
                    stop_detail: str = "",
                    pending_paths: int = 0) -> "PartialResult":
        import dataclasses
        data = {f.name: getattr(result, f.name)
                for f in dataclasses.fields(CoAnalysisResult)}
        return cls(stop_reason=stop_reason, stop_detail=stop_detail,
                   pending_paths=pending_paths, **data)

    def summary(self) -> Dict[str, object]:
        out = super().summary()
        out["partial"] = True
        out["stop_reason"] = self.stop_reason
        out["stop_detail"] = self.stop_detail
        out["pending_paths"] = self.pending_paths
        return out


class CoAnalysisError(Exception):
    """Analysis could not complete soundly (e.g. path budget exhausted)."""


class WorkerFailure(CoAnalysisError):
    """A pool worker failed to produce a segment result."""

    def __init__(self, message: str, wave: Optional[int] = None,
                 segment: Optional[int] = None, attempts: int = 0):
        super().__init__(message)
        self.wave = wave
        self.segment = segment
        self.attempts = attempts


class SegmentTimeout(WorkerFailure):
    """A segment exceeded its wall-clock budget (hung or dead worker)."""


class WorkerCrashed(WorkerFailure):
    """A worker raised (or died) while simulating a segment."""


class StateCorruption(WorkerFailure):
    """A handed-off state blob failed its integrity check."""


class CheckpointError(CoAnalysisError):
    """A checkpoint could not be written, read, or applied."""


class ResumeMismatch(CheckpointError):
    """A checkpoint does not belong to the run being resumed
    (different design, application, or engine kind)."""


class RunInterrupted(CoAnalysisError):
    """The run stopped early on purpose (wave budget / interrupt) after
    writing a checkpoint; resume with ``resume=True`` to continue.

    Carries a machine-readable ``stop_reason`` mirroring
    :class:`PartialResult` so callers (the CLI exit message, schedulers)
    need not parse the human-readable text."""

    def __init__(self, message: str, stop_reason: str = "wave_budget"):
        super().__init__(message)
        self.stop_reason = stop_reason
