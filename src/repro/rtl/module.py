"""A tiny structural-RTL construction kit.

The paper analyzes third-party processor RTL that has been synthesized to a
gate-level netlist.  Since neither the vendors' RTL nor a synthesis tool is
available offline, cores in this repo are authored directly against this
kit, which plays the role of RTL + logic synthesis: every operator call
("add", "mux", "xor") immediately elaborates into primitive gates of the
cell library, yielding the same kind of flat gate-level
:class:`~repro.netlist.netlist.Netlist` the paper's tool consumes.

Usage sketch::

    d = Design("counter")
    en = d.input("en")
    cnt = d.reg(8, "cnt", reset=True)
    cnt.drive(cnt.q.add(d.const(1, 8))[0], enable=en)
    d.output("count", cnt.q)
    netlist = d.finalize()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..netlist.netlist import Netlist, NetlistError


class Sig:
    """A bundle of nets (LSB first) owned by a :class:`Design`.

    Operators elaborate gates into the owning design's netlist and return
    new signals.  Signals are cheap, immutable views.
    """

    __slots__ = ("design", "nets")

    def __init__(self, design: "Design", nets: Sequence[int]):
        self.design = design
        self.nets: Tuple[int, ...] = tuple(nets)

    @property
    def width(self) -> int:
        return len(self.nets)

    def _req(self, other: "Sig") -> None:
        if self.design is not other.design:
            raise NetlistError("signals belong to different designs")
        if self.width != other.width:
            raise NetlistError(
                f"width mismatch: {self.width} vs {other.width}")

    # -- structure ---------------------------------------------------------
    def __getitem__(self, idx: Union[int, slice]) -> "Sig":
        if isinstance(idx, slice):
            return Sig(self.design, self.nets[idx])
        return Sig(self.design, (self.nets[idx],))

    def cat(self, *highs: "Sig") -> "Sig":
        """Concatenate, ``self`` in the low bits."""
        nets = list(self.nets)
        for h in highs:
            if h.design is not self.design:
                raise NetlistError("signals belong to different designs")
            nets.extend(h.nets)
        return Sig(self.design, nets)

    def zext(self, width: int) -> "Sig":
        if width < self.width:
            raise NetlistError("zext narrower than signal")
        return self.cat(self.design.const(0, width - self.width)) \
            if width > self.width else self

    def sext(self, width: int) -> "Sig":
        if width < self.width:
            raise NetlistError("sext narrower than signal")
        if width == self.width:
            return self
        msb = self[self.width - 1]
        return self.cat(msb.repl(width - self.width))

    def repl(self, count: int) -> "Sig":
        if self.width != 1:
            raise NetlistError("repl expects a 1-bit signal")
        return Sig(self.design, self.nets * count)

    # -- bitwise -------------------------------------------------------------
    def _bitwise(self, other: "Sig", kind: str) -> "Sig":
        self._req(other)
        d = self.design
        out = [d._gate(kind, (a, b)) for a, b in zip(self.nets, other.nets)]
        return Sig(d, out)

    def __and__(self, other: "Sig") -> "Sig":
        return self._bitwise(other, "AND")

    def __or__(self, other: "Sig") -> "Sig":
        return self._bitwise(other, "OR")

    def __xor__(self, other: "Sig") -> "Sig":
        return self._bitwise(other, "XOR")

    def __invert__(self) -> "Sig":
        d = self.design
        return Sig(d, [d._gate("NOT", (a,)) for a in self.nets])

    # -- reductions ------------------------------------------------------------
    def _reduce(self, kind: str) -> "Sig":
        d = self.design
        nets = list(self.nets)
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(d._gate(kind, (nets[i], nets[i + 1])))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return Sig(d, nets)

    def any(self) -> "Sig":
        """OR-reduce to one bit."""
        return self._reduce("OR")

    def all(self) -> "Sig":
        """AND-reduce to one bit."""
        return self._reduce("AND")

    def parity(self) -> "Sig":
        return self._reduce("XOR")

    def none(self) -> "Sig":
        """1 when every bit is 0 (NOR-reduce)."""
        d = self.design
        return Sig(d, [d._gate("NOT", (self.any().nets[0],))])

    # -- arithmetic ---------------------------------------------------------
    def add(self, other: "Sig",
            carry_in: Optional["Sig"] = None) -> Tuple["Sig", "Sig"]:
        """Ripple-carry add; returns ``(sum, carry_out)``."""
        self._req(other)
        d = self.design
        carry = carry_in.nets[0] if carry_in is not None else \
            d.const(0, 1).nets[0]
        sums: List[int] = []
        for a, b in zip(self.nets, other.nets):
            axb = d._gate("XOR", (a, b))
            sums.append(d._gate("XOR", (axb, carry)))
            carry = d._gate("OR", (d._gate("AND", (a, b)),
                                   d._gate("AND", (carry, axb))))
        return Sig(d, sums), Sig(d, (carry,))

    def sub(self, other: "Sig") -> Tuple["Sig", "Sig"]:
        """Two's-complement subtract; returns ``(diff, not_borrow)``.

        ``not_borrow`` is the adder carry-out, i.e. 1 when
        ``self >= other`` (unsigned).
        """
        d = self.design
        return self.add(~other, carry_in=d.const(1, 1))

    def eq(self, other: "Sig") -> "Sig":
        self._req(other)
        return (self ^ other).none()

    def ne(self, other: "Sig") -> "Sig":
        return ~self.eq(other)

    def ult(self, other: "Sig") -> "Sig":
        _, not_borrow = self.sub(other)
        return ~not_borrow

    def uge(self, other: "Sig") -> "Sig":
        _, not_borrow = self.sub(other)
        return not_borrow

    def slt(self, other: "Sig") -> "Sig":
        """Signed less-than."""
        diff, _ = self.sub(other)
        a_msb, b_msb = self[self.width - 1], other[self.width - 1]
        d_msb = diff[diff.width - 1]
        # overflow = a.msb != b.msb and diff.msb != a.msb
        ovf = (a_msb ^ b_msb) & (d_msb ^ a_msb)
        return d_msb ^ ovf

    # -- shifting ------------------------------------------------------------
    def shl_const(self, amount: int) -> "Sig":
        d = self.design
        amount = min(amount, self.width)
        return Sig(d, d.const(0, amount).nets + self.nets[:self.width - amount])

    def shr_const(self, amount: int) -> "Sig":
        d = self.design
        amount = min(amount, self.width)
        return Sig(d, self.nets[amount:] + d.const(0, amount).nets)

    def sar_const(self, amount: int) -> "Sig":
        amount = min(amount, self.width)
        msb = Sig(self.design, (self.nets[-1],) * amount)
        return Sig(self.design, self.nets[amount:] + msb.nets)

    def shl(self, amount: "Sig") -> "Sig":
        """Barrel left shift by a variable amount."""
        out = self
        for stage in range(amount.width):
            shifted = out.shl_const(1 << stage)
            out = mux(amount[stage], out, shifted)
        return out

    def shr(self, amount: "Sig") -> "Sig":
        out = self
        for stage in range(amount.width):
            shifted = out.shr_const(1 << stage)
            out = mux(amount[stage], out, shifted)
        return out

    def sar(self, amount: "Sig") -> "Sig":
        out = self
        for stage in range(amount.width):
            shifted = out.sar_const(1 << stage)
            out = mux(amount[stage], out, shifted)
        return out


def mux(sel: Sig, when0: Sig, when1: Sig) -> Sig:
    """Bitwise 2:1 mux: ``sel ? when1 : when0``."""
    when0._req(when1)
    if sel.width != 1:
        raise NetlistError("mux select must be 1 bit")
    d = sel.design
    out = [d._gate("MUX2", (a, b, sel.nets[0]))
           for a, b in zip(when0.nets, when1.nets)]
    return Sig(d, out)


def mux_tree(sel: Sig, options: Sequence[Sig]) -> Sig:
    """N-way mux: ``options[sel]``; options padded with the last entry."""
    n = 1 << sel.width
    opts = list(options)
    if len(opts) > n:
        raise NetlistError(f"{len(opts)} options exceed select space {n}")
    while len(opts) < n:
        opts.append(opts[-1])
    layer = opts
    for bit in range(sel.width):
        layer = [mux(sel[bit], layer[i], layer[i + 1])
                 for i in range(0, len(layer), 2)]
    return layer[0]


def onehot_mux(selects: Sequence[Sig], options: Sequence[Sig]) -> Sig:
    """AND-OR mux over one-hot selects (priority-free)."""
    if len(selects) != len(options):
        raise NetlistError("onehot_mux: selects/options length mismatch")
    acc = None
    for sel, opt in zip(selects, options):
        masked = opt & sel.repl(opt.width)
        acc = masked if acc is None else (acc | masked)
    if acc is None:
        raise NetlistError("onehot_mux: empty option list")
    return acc


class Reg:
    """A register declared up-front and driven later (enables feedback).

    ``reset_value`` bits that are 1 are implemented by storing the
    complement in the flop and inverting at both D and Q -- the standard
    synthesis trick for reset-to-1 bits with reset-to-0 flops.
    """

    def __init__(self, design: "Design", width: int, name: str,
                 reset: bool, reset_value: int = 0):
        self.design = design
        self.name = name
        self.has_reset = reset
        self.reset_value = reset_value & ((1 << width) - 1)
        if not reset and reset_value:
            raise NetlistError(
                f"register {name!r}: reset_value needs reset=True")
        self._driven = False
        q_nets = [design._netlist.add_net(f"{name}[{i}]" if width > 1
                                          else name)
                  for i in range(width)]
        self.q = Sig(design, q_nets)

    def drive(self, data: Sig, enable: Optional[Sig] = None) -> None:
        """Connect the register's D input (exactly once)."""
        if self._driven:
            raise NetlistError(f"register {self.name!r} driven twice")
        if data.width != self.q.width:
            raise NetlistError(
                f"register {self.name!r}: data width {data.width} != "
                f"{self.q.width}")
        d = self.design
        self._driven = True
        for i, (data_net, q_net) in enumerate(zip(data.nets, self.q.nets)):
            invert = (self.reset_value >> i) & 1
            if invert:
                data_net = d._gate("NOT", (data_net,))
            pins: List[int] = [data_net]
            if enable is not None and self.has_reset:
                kind = "DFFER"
                pins += [enable.nets[0], d._reset_net()]
            elif enable is not None:
                kind = "DFFE"
                pins.append(enable.nets[0])
            elif self.has_reset:
                kind = "DFFR"
                pins.append(d._reset_net())
            else:
                kind = "DFF"
            if invert:
                raw = d._fresh_net()
                d._netlist.add_gate(f"{self.name}_ff{i}", kind,
                                    tuple(pins), raw)
                d._netlist.add_gate(f"{self.name}_qinv{i}", "NOT", (raw,),
                                    q_net)
            else:
                d._netlist.add_gate(f"{self.name}_ff{i}", kind,
                                    tuple(pins), q_net)

    @property
    def driven(self) -> bool:
        return self._driven


class Design:
    """Builder that elaborates RTL-style operations straight to gates."""

    def __init__(self, name: str):
        self._netlist = Netlist(name)
        self._auto = 0
        self._const_cache = {}
        self._regs: List[Reg] = []
        self._reset: Optional[int] = None

    # -- internal helpers ---------------------------------------------------
    def _fresh_net(self) -> int:
        idx = self._netlist.add_net(f"n{self._auto}")
        self._auto += 1
        return idx

    def _gate(self, kind: str, inputs: Tuple[int, ...]) -> int:
        out = self._fresh_net()
        self._netlist.add_gate(f"u{self._auto}", kind, inputs, out)
        self._auto += 1
        return out

    def _reset_net(self) -> int:
        if self._reset is None:
            self._reset = self._netlist.add_net("rst")
            self._netlist.mark_input(self._reset)
        return self._reset

    # -- public API -----------------------------------------------------------
    @property
    def netlist(self) -> Netlist:
        return self._netlist

    def input(self, name: str, width: int = 1) -> Sig:
        nets = []
        for i in range(width):
            net = self._netlist.add_net(f"{name}[{i}]" if width > 1
                                        else name)
            self._netlist.mark_input(net)
            nets.append(net)
        return Sig(self, nets)

    def output(self, name: str, sig: Sig) -> Sig:
        """Publish ``sig`` as primary output bus ``name`` (via BUFs so the
        output nets carry the requested names)."""
        nets = []
        for i, src in enumerate(sig.nets):
            net = self._netlist.add_net(f"{name}[{i}]" if sig.width > 1
                                        else name)
            self._netlist.add_gate(f"{name}_obuf{i}", "BUF", (src,), net)
            self._netlist.mark_output(net)
            nets.append(net)
        return Sig(self, nets)

    def const(self, value: int, width: int) -> Sig:
        nets = []
        for i in range(width):
            bit = (value >> i) & 1
            cached = self._const_cache.get(bit)
            if cached is None:
                cached = self._gate("TIE1" if bit else "TIE0", ())
                self._const_cache[bit] = cached
            nets.append(cached)
        return Sig(self, nets)

    def reg(self, width: int, name: str, reset: bool = True,
            reset_value: int = 0) -> Reg:
        r = Reg(self, width, name, reset, reset_value)
        self._regs.append(r)
        return r

    def name_sig(self, name: str, sig: Sig) -> Sig:
        """Give internal nets stable, findable names (via BUFs)."""
        nets = []
        for i, src in enumerate(sig.nets):
            net = self._netlist.add_net(f"{name}[{i}]" if sig.width > 1
                                        else name)
            self._netlist.add_gate(f"{name}_nbuf{i}", "BUF", (src,), net)
            nets.append(net)
        return Sig(self, nets)

    def finalize(self) -> Netlist:
        """Validate and return the elaborated netlist."""
        for r in self._regs:
            if not r.driven:
                raise NetlistError(f"register {r.name!r} was never driven")
        self._netlist.validate()
        return self._netlist
