"""Structural-RTL construction kit that elaborates directly to gates."""

from .module import Design, Reg, Sig, mux, mux_tree, onehot_mux

__all__ = ["Design", "Reg", "Sig", "mux", "mux_tree", "onehot_mux"]
