"""repro -- a design-agnostic symbolic simulation tool for
hardware-software co-analysis.

Reproduction of "A scalable symbolic simulation tool for low power
embedded systems" (Sethumurugan, Hegde, Cherupalli, Sartori; DAC 2022).

Typical flow::

    from repro import (build_target, WORKLOADS, CoAnalysisEngine,
                       generate_bespoke, validate_bespoke)

    target = build_target("omsp430", WORKLOADS["tea8"])
    result = CoAnalysisEngine(target, application="tea8").run()
    bespoke = generate_bespoke(target.netlist, result.profile)

Package map:

* :mod:`repro.logic`      -- four-valued + labeled-symbol logic substrate
* :mod:`repro.netlist`    -- gate-level netlist IR, cell library, Verilog IO
* :mod:`repro.rtl`        -- structural-RTL kit elaborating to gates
* :mod:`repro.sim`        -- event-driven kernel (with the Symbolic event
  region, ``$monitor_x``, ``$initialize_state``) + vectorized cycle engine
* :mod:`repro.csm`        -- Conservative State Manager
* :mod:`repro.coanalysis` -- Algorithm 1 (the co-analysis engine)
* :mod:`repro.bespoke`    -- prune / re-synthesize / validate bespoke cores
* :mod:`repro.isa`        -- three assemblers (MSP430 / MIPS32 / RV32E
  subsets)
* :mod:`repro.processors` -- the three gate-level processor models
* :mod:`repro.workloads`  -- the six benchmark applications (Table 1)
* :mod:`repro.reporting`  -- renderers for the paper's tables and figures
"""

from .bespoke import generate_bespoke, validate_bespoke
from .coanalysis import (CoAnalysisEngine, CoAnalysisError,
                         CoAnalysisResult, SymbolicTarget)
from .coanalysis.concrete import run_concrete
from .csm import (Clustered, ConservativeStateManager, ExactSet,
                  UberConservative)
from .logic import LVec, Logic, SymBit
from .netlist import Netlist, parse_verilog, write_verilog
from .processors import CoreTarget, build_bm32, build_dr5, build_omsp430
from .rtl import Design
from .sim import CompiledNetlist, CycleSim, EventSim, MonitorX, XMemory
from .workloads import WORKLOADS, WORKLOAD_ORDER, build_target, built_core

__version__ = "1.0.0"

__all__ = [
    "Logic", "LVec", "SymBit",
    "Netlist", "parse_verilog", "write_verilog",
    "Design",
    "CompiledNetlist", "CycleSim", "EventSim", "MonitorX", "XMemory",
    "ConservativeStateManager", "UberConservative", "Clustered", "ExactSet",
    "CoAnalysisEngine", "CoAnalysisResult", "CoAnalysisError",
    "SymbolicTarget", "run_concrete",
    "generate_bespoke", "validate_bespoke",
    "build_omsp430", "build_bm32", "build_dr5", "CoreTarget",
    "WORKLOADS", "WORKLOAD_ORDER", "build_target", "built_core",
    "__version__",
]
