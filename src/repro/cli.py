"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run``      -- symbolic co-analysis of a benchmark on a core
  (``analyze`` is the historical alias); ``--engine`` picks the
  simulation backend, ``--strategy`` the frontier scheduling policy,
  ``--csm`` the merge strategy, ``--trace``/``--progress`` the
  observability sinks
* ``bespoke``  -- analysis + bespoke generation + validation (+ Verilog out)
* ``verify``   -- formal equivalence check of the bespoke netlist
  (SAT miter under the co-analysis assumptions; ``--mode`` picks
  simulation spot-checks, the SAT proof, or both)
* ``grid``     -- the full evaluation grid: Tables 3/4, Figures 5/6
* ``power``    -- bespoke power savings + input-independent peak bound
* ``asm``      -- assemble a program file for one of the ISAs
* ``trace``    -- concrete run with a VCD waveform dump
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import (analyze_coverage, analyze_peak_power,
                       compare_power, concrete_peak, timing_slack)
from .bespoke import area_report, generate_bespoke, validate_bespoke
from .coanalysis.frontier import FRONTIER_STRATEGIES
from .coanalysis.results import (CoAnalysisError, PartialResult,
                                 RunInterrupted)
from .resilience.artifacts import atomic_write_text
from .resilience.governor import RunBudget
from .csm import CSM_STRATEGIES
from .isa import ASSEMBLERS
from .netlist import write_verilog
from .reporting import (DESIGN_ORDER, figure5, figure6, run_grid, table3,
                        table4)
from .reporting.runner import run_one
from .sim.vcd import VcdWriter
from .workloads import WORKLOAD_ORDER, WORKLOADS, build_target

#: CSM merge strategies (``--csm``) now live in
#: :data:`repro.csm.CSM_STRATEGIES` (shared with the job service);
#: frontier scheduling policies in
#: :data:`repro.coanalysis.frontier.FRONTIER_STRATEGIES` (``--strategy``).
#: ``STRATEGIES`` is the historical name from when ``--strategy``
#: selected the CSM.
STRATEGIES = CSM_STRATEGIES


def _add_pair_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("design", choices=["omsp430", "bm32", "dr5"])
    p.add_argument("benchmark", choices=WORKLOAD_ORDER)


def _run_budget(args) -> Optional[RunBudget]:
    budget = RunBudget(deadline_seconds=args.deadline,
                       max_rss_mb=args.max_rss_mb,
                       max_frontier=args.max_frontier,
                       max_segments=args.max_segments)
    return None if budget.unlimited else budget


def cmd_analyze(args) -> int:
    if args.lanes is not None and args.engine != "batch":
        print("error: --lanes requires --engine batch", file=sys.stderr)
        return 2
    if args.lanes is not None and (args.lanes <= 0 or args.lanes % 64):
        print(f"error: --lanes must be a positive multiple of 64, "
              f"got {args.lanes}", file=sys.stderr)
        return 2
    result = run_one(args.design, args.benchmark,
                     strategy=CSM_STRATEGIES[args.csm](),
                     use_constraints=not args.no_constraints,
                     checkpoint=args.checkpoint, resume=args.resume,
                     workers=args.workers,
                     frontier=args.strategy, engine=args.engine,
                     trace=args.trace, progress=args.progress,
                     budget=_run_budget(args),
                     quarantine=args.quarantine_after,
                     cache=args.cache, lanes=args.lanes)
    summary = result.summary()
    if result.resumed:
        print(f"# resumed from checkpoint {args.checkpoint}",
              file=sys.stderr)
    if args.cache:
        print(f"# segment cache: {result.segment_cache_hits} hits, "
              f"{result.segment_cache_misses} misses ({args.cache})",
              file=sys.stderr)
    if args.trace:
        print(f"# trace written to {args.trace}", file=sys.stderr)
    if args.json:
        summary["metrics"] = result.metrics.summary()
        # always present in machine output, even when zero / complete:
        # scripts branch on these without probing for the keys first
        summary["segment_cache_hits"] = result.segment_cache_hits
        summary["segment_cache_misses"] = result.segment_cache_misses
        summary["stop_reason"] = getattr(result, "stop_reason", None)
        if result.quarantine_verdicts:
            summary["quarantine_verdicts"] = result.quarantine_verdicts
        print(json.dumps(summary, indent=2))
    else:
        for key, value in summary.items():
            print(f"{key:>20}: {value}")
    if not result.complete:
        assert isinstance(result, PartialResult)
        hint = (f"; resume with --checkpoint {args.checkpoint} --resume"
                if args.checkpoint else
                "; re-run with --checkpoint to make partial runs resumable")
        print(f"# partial result ({result.stop_reason}): "
              f"{result.stop_detail or 'governed stop'} -- "
              f"{result.pending_paths} paths pending{hint}",
              file=sys.stderr)
        return 4
    return 0


def cmd_bespoke(args) -> int:
    result = run_one(args.design, args.benchmark)
    workload = WORKLOADS[args.benchmark]
    original = build_target(args.design, workload)
    bespoke_nl = generate_bespoke(original.netlist, result.profile)
    report = area_report(original.netlist, bespoke_nl)
    print(f"gates: {report['gates_before']} -> {report['gates_after']} "
          f"({report['gate_reduction_percent']}% reduction)")
    print(f"area : {report['area_before']} -> {report['area_after']} "
          f"({report['area_reduction_percent']}% reduction)")
    from .netlist.stats import pruned_breakdown
    print("pruned gates by cell kind:")
    print(pruned_breakdown(original.netlist, bespoke_nl))
    bespoke = build_target(args.design, workload, netlist=bespoke_nl)
    validation = validate_bespoke(original, bespoke, result,
                                  cases=workload.cases)
    print(f"validation: "
          f"{'PASS' if validation.ok else 'FAIL'} "
          f"({validation.cases_run} cases)")
    for mismatch in validation.mismatches:
        print("  !!", mismatch)
    if args.output:
        atomic_write_text(args.output, write_verilog(bespoke_nl))
        print(f"bespoke netlist written to {args.output}")
    return 0 if validation.ok else 1


def cmd_verify(args) -> int:
    from .bespoke.validate import validate_bespoke as _validate
    from .coanalysis.engine import CoAnalysisEngine
    from .coanalysis.trace import JsonlTraceSink, Tracer
    from .csm.constraints import ConstraintSet, parse_constraints
    from .csm.manager import ConservativeStateManager
    from .netlist.stats import pruned_breakdown
    from .reporting import equivalence_table

    workload = WORKLOADS[args.benchmark]
    target = build_target(args.design, workload)
    constraints = None
    text = workload.constraints.get(args.design)
    if text and not args.no_constraints:
        constraints = ConstraintSet(parse_constraints(text),
                                    target.state_net_positions())
    # run the engine directly (not run_one) so the CSM's reachable
    # super-states stay accessible for assumption cubes
    csm = ConservativeStateManager(CSM_STRATEGIES[args.csm](),
                                   constraints=constraints)
    engine = CoAnalysisEngine(target, csm=csm, application=args.benchmark)
    result = engine.run()
    bespoke_nl = generate_bespoke(target.netlist, result.profile)
    bespoke = build_target(args.design, workload, netlist=bespoke_nl)

    tracer = Tracer([JsonlTraceSink(args.trace)]) if args.trace else None
    states = None
    if args.csm_states:
        states = [s for lst in csm.repository.values() for s in lst]
    validation = _validate(target, bespoke, result, cases=workload.cases,
                           mode=args.mode, unroll=args.unroll,
                           max_conflicts=args.max_conflicts,
                           csm_states=states, tracer=tracer)
    if tracer is not None:
        tracer.close()
        print(f"# trace written to {args.trace}", file=sys.stderr)

    payload = {
        "design": args.design,
        "benchmark": args.benchmark,
        "mode": validation.mode,
        "ok": validation.ok,
        "equiv": validation.equiv,
        "equiv_status": validation.equiv_status,
        "equiv_replay": validation.equiv_replay,
        "sim_cases": validation.cases_run,
        "sim_ok": validation.sim_ok if args.mode != "sat" else None,
        "mismatches": validation.mismatches,
        "gates": {"original": validation.original_gates,
                  "bespoke": validation.bespoke_gates},
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        if args.mode in ("sat", "both"):
            print(equivalence_table([validation.equiv]))
            replay = validation.equiv_replay
            if replay:
                print(f"counterexample replay: "
                      f"{'CONFIRMED' if replay['confirmed'] else 'refuted'}"
                      f" -- {replay['note']}")
        if args.mode in ("sim", "both"):
            print(f"simulation spot-check: "
                  f"{'PASS' if validation.sim_ok else 'FAIL'} "
                  f"({validation.cases_run} cases)")
        for mismatch in validation.mismatches:
            print("  !!", mismatch)
        print("pruned gates by cell kind:")
        print(pruned_breakdown(target.netlist, bespoke_nl))
        print(f"verdict: {'PASS' if validation.ok else 'FAIL'}")
    if args.report:
        atomic_write_text(args.report, json.dumps(payload, indent=2))
        print(f"equivalence report written to {args.report}",
              file=sys.stderr)
    return 0 if validation.ok else 1


def cmd_grid(args) -> int:
    cache = Path(args.cache) if args.cache else None
    results = run_grid(cache_dir=cache, verbose=not args.quiet)
    print()
    print(table3(results, WORKLOAD_ORDER, DESIGN_ORDER))
    print()
    print(table4(results, WORKLOAD_ORDER, DESIGN_ORDER))
    if args.figures:
        print()
        print(figure5(results, WORKLOAD_ORDER, DESIGN_ORDER))
        print(figure6(results, WORKLOAD_ORDER, DESIGN_ORDER))
    return 0


def cmd_power(args) -> int:
    workload = WORKLOADS[args.benchmark]
    target = build_target(args.design, workload)
    peak = analyze_peak_power(target, application=args.benchmark)
    print(f"input-independent peak switching bound: "
          f"{peak.peak_bound:.1f} (cycle {peak.peak_cycle}, "
          f"path {peak.peak_path})")
    case = workload.cases[0]
    measured = concrete_peak(target, case)
    print(f"measured concrete peak (case 0)       : {measured:.1f}")

    bespoke_nl = generate_bespoke(target.netlist, peak.analysis.profile)
    bespoke = build_target(args.design, workload, netlist=bespoke_nl)
    savings = compare_power(target, bespoke, case)
    print(f"bespoke energy saving                  : "
          f"{savings.energy_saving_percent:.1f}%")
    print(f"bespoke leakage saving                 : "
          f"{savings.leakage_saving_percent:.1f}%")
    return 0


def cmd_timing(args) -> int:
    result = run_one(args.design, args.benchmark)
    target = build_target(args.design, WORKLOADS[args.benchmark])
    slack = timing_slack(target.netlist, result.profile)
    print(f"full critical path       : "
          f"{slack.full.critical_delay:.2f} gate-delays "
          f"({len(slack.full.critical_path)} stages, "
          f"endpoint {slack.full.endpoint})")
    print(f"exercisable critical path: "
          f"{slack.exercisable.critical_delay:.2f} gate-delays")
    print(f"application timing slack : {slack.slack_percent:.1f}%")
    return 0


def cmd_coverage(args) -> int:
    target = build_target(args.design, WORKLOADS[args.benchmark])
    report = analyze_coverage(target, application=args.benchmark)
    if args.json:
        print(json.dumps(report.summary(), indent=2))
        return 0
    for key, value in report.summary().items():
        print(f"{key:>18}: {value}")
    if report.dead:
        labels = report.dead_labels()
        print(f"{'dead addresses':>18}: {report.dead}"
              + (f" (labels: {labels})" if labels else ""))
    return 0


def cmd_store(args) -> int:
    from .store import ContentStore
    store = ContentStore(Path(args.cache))
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            for key, value in stats.items():
                print(f"{key:>15}: {value}")
        return 0
    if args.action == "ls":
        rows = []
        for name, manifest in sorted(store.manifests()):
            if manifest is None:
                rows.append({"name": name, "kind": "?",
                             "error": "unreadable"})
                continue
            row = {"name": name,
                   "kind": manifest.get("kind", "?")}
            components = manifest.get("components")
            if isinstance(components, dict):
                row["design"] = components.get("design")
                row["application"] = components.get("application")
            if manifest.get("kind") == "segments":
                segments = manifest.get("segments")
                row["segments"] = len(segments) \
                    if isinstance(segments, dict) else 0
            rows.append(row)
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            for row in rows:
                extra = " ".join(f"{k}={v}" for k, v in row.items()
                                 if k not in ("name", "kind")
                                 and v is not None)
                print(f"{row['kind']:>8}  {row['name']}"
                      + (f"  {extra}" if extra else ""))
        return 0
    if args.action == "gc":
        report = store.gc()
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(f"kept {report['kept']} objects, removed "
                  f"{report['removed']} "
                  f"({report['freed_bytes']} bytes freed)")
        return 0
    # verify
    report = store.verify()
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"objects: {report['objects']} "
              f"({len(report['corrupt_objects'])} corrupt), "
              f"manifests: {report['manifests']} "
              f"({len(report['unreadable_manifests'])} unreadable), "
              f"missing blobs: {len(report['missing_blobs'])}")
        for item in (report["corrupt_objects"]
                     + report["unreadable_manifests"]
                     + report["missing_blobs"]):
            print(f"  !! {item}")
        print("OK" if report["ok"] else "CORRUPT")
    return 0 if report["ok"] else 1


def cmd_serve(args) -> int:
    from .service import (DEFAULT_PORT, Scheduler, SchedulerConfig,
                          ServiceAPI)
    if args.port is None:
        args.port = DEFAULT_PORT
    config = SchedulerConfig(workers=args.workers,
                             max_retries=args.max_retries,
                             shard_segments=args.shard_segments,
                             quota_jobs=args.quota_jobs)
    scheduler = Scheduler(Path(args.cache), config).start()
    api = ServiceAPI(scheduler, host=args.host, port=args.port,
                     verbose=args.verbose)
    print(f"# job service on {api.url} (store: {args.cache}, "
          f"{config.workers} workers)", file=sys.stderr)
    try:
        api.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down: draining workers to checkpoints",
              file=sys.stderr)
    finally:
        api.shutdown()
        scheduler.stop(graceful=True)
    return 0


def _job_row(view: dict) -> str:
    state = view.get("state", "?")
    spec = view.get("spec", {})
    flags = []
    if view.get("cache_hit"):
        flags.append("cached")
    if view.get("coalesced_into") and not view.get("cache_hit"):
        flags.append(f"=>{view['coalesced_into']}")
    if view.get("resume_of"):
        flags.append(f"resumes:{view['resume_of']}")
    if view.get("shards"):
        flags.append(f"shards:{view['shards']}")
    if view.get("stop_reason"):
        flags.append(f"stop:{view['stop_reason']}")
    return (f"{view.get('job', '?'):>14}  {state:<9} "
            f"{spec.get('design', '?')}/{spec.get('benchmark', '?')} "
            f"csm={spec.get('csm', '?')} engine={spec.get('engine', '?')}"
            + (f"  [{' '.join(flags)}]" if flags else ""))


#: CLI exit code for each terminal job state (mirrors `repro run`)
_EXIT_FOR_STATE = {"DONE": 0, "FAILED": 2, "CANCELLED": 3, "PARTIAL": 4}


def cmd_submit(args) -> int:
    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url)
    spec = {"design": args.design, "benchmark": args.benchmark,
            "csm": args.csm, "engine": args.engine,
            "frontier": args.strategy, "lanes": args.lanes,
            "workers": args.workers,
            "use_constraints": not args.no_constraints,
            "deadline_seconds": args.deadline,
            "max_rss_mb": args.max_rss_mb,
            "max_frontier": args.max_frontier,
            "max_segments": args.max_segments,
            "shard_segments": args.shard_segments,
            "submitter": args.submitter,
            "dedup": not args.no_dedup,
            "resume_from": args.resume_from}
    try:
        view = client.submit(spec)
        if args.wait:
            view = client.wait(view["job"], timeout=args.timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(view, indent=2))
    else:
        print(_job_row(view))
    if args.wait:
        return _EXIT_FOR_STATE.get(view.get("state"), 2)
    return 0


def cmd_jobs(args) -> int:
    from .service import ServiceClient, ServiceError
    client = ServiceClient(args.url)
    try:
        if args.cancel:
            view = client.cancel(args.cancel)
            print(json.dumps(view, indent=2) if args.json
                  else _job_row(view))
            return 0
        if args.trace:
            for event in client.trace_lines(args.trace):
                print(json.dumps(event, separators=(",", ":")))
            return 0
        if args.metrics:
            print(json.dumps(client.metrics(), indent=2))
            return 0
        if args.job_id:
            view = client.artifacts(args.job_id) if args.artifacts \
                else client.job(args.job_id)
            print(json.dumps(view, indent=2) if args.json
                  else _job_row(view) if not args.artifacts
                  else json.dumps(view, indent=2))
            return 0
        views = client.jobs()
        if args.json:
            print(json.dumps(views, indent=2))
        else:
            for view in views:
                print(_job_row(view))
            if not views:
                print("# no jobs", file=sys.stderr)
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_asm(args) -> int:
    assembler = ASSEMBLERS[args.design]()
    source = Path(args.source).read_text()
    program = assembler.assemble(source, name=Path(args.source).stem)
    digits = (assembler.word_width + 3) // 4
    for addr, word in enumerate(program.words):
        print(f"{addr:04x}: {word:0{digits}x}")
    print(f"; {program.size} words, labels: "
          f"{', '.join(f'{k}={v}' for k, v in sorted(program.labels.items()))}",
          file=sys.stderr)
    return 0


def cmd_disasm(args) -> int:
    from .isa.disasm import disassemble_program
    assembler = ASSEMBLERS[args.design]()
    source = Path(args.source).read_text()
    program = assembler.assemble(source, name=Path(args.source).stem)
    by_addr = {v: k for k, v in program.labels.items()}
    for addr, text in enumerate(
            disassemble_program(args.design, program.words)):
        label = f"{by_addr[addr]}:" if addr in by_addr else ""
        print(f"{addr:04x}: {label:<12} {text}")
    return 0


def cmd_trace(args) -> int:
    workload = WORKLOADS[args.benchmark]
    target = build_target(args.design, workload)
    case = workload.cases[args.case]
    nets = target.pc_nets + list(target.monitored_nets)
    sim = target.make_sim()
    target.reset(sim)
    target.apply_concrete_inputs(sim, case)
    with VcdWriter(args.output, target.netlist, nets=nets) as vcd:
        cycles = 0
        while cycles < args.max_cycles:
            target.drive_all(sim)
            vcd.sample(sim)
            if target.is_done(sim):
                break
            target.on_edge(sim)
            sim.clock_edge()
            cycles += 1
    print(f"{cycles} cycles dumped to {args.output} "
          f"({len(nets)} signals)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Design-agnostic symbolic simulation for "
                    "hardware-software co-analysis (DAC'22 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
            ("run", "run symbolic co-analysis"),
            ("analyze", "alias of `run` (historical name)")):
        p = sub.add_parser(name, help=help_text)
        _add_pair_args(p)
        p.add_argument("--strategy", choices=sorted(FRONTIER_STRATEGIES),
                       default="dfs",
                       help="frontier scheduling policy (default: dfs, "
                            "the paper's depth-first stack)")
        p.add_argument("--csm", choices=sorted(CSM_STRATEGIES),
                       default="uber",
                       help="conservative-state-manager merge strategy")
        p.add_argument("--engine",
                       choices=["serial", "event", "parallel", "batch"],
                       default=None,
                       help="simulation backend (default: serial, or "
                            "parallel when --workers > 1; batch runs "
                            "the whole frontier in lockstep, --lanes "
                            "paths per settle)")
        p.add_argument("--lanes", type=int, default=None, metavar="N",
                       help="lane-plane width for --engine batch: paths "
                            "simulated per lockstep settle (a multiple "
                            "of 64; default 64).  Freed lanes are "
                            "refilled from the frontier by compaction.")
        p.add_argument("--no-constraints", action="store_true",
                       help="ignore the workload's CSM constraint file")
        p.add_argument("--json", action="store_true")
        p.add_argument("--trace", metavar="PATH",
                       help="write the structured exploration event "
                            "stream to PATH as JSON Lines")
        p.add_argument("--progress", action="store_true",
                       help="keep a live progress line on stderr")
        p.add_argument("--checkpoint", metavar="PATH",
                       help="journal the run to this file so it can be "
                            "resumed after an interruption")
        p.add_argument("--resume", action="store_true",
                       help="continue from the newest intact record in "
                            "--checkpoint instead of starting fresh")
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="explore paths with N supervised worker "
                            "processes (default: serial)")
        p.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget; a governed run past it "
                            "checkpoints and exits 4 with a partial "
                            "result (resume with --resume)")
        p.add_argument("--max-rss-mb", type=float, default=None,
                       metavar="MB",
                       help="memory watchdog: stop gracefully once the "
                            "process RSS exceeds MB mebibytes")
        p.add_argument("--max-frontier", type=int, default=None,
                       metavar="N",
                       help="stop gracefully once more than N paths are "
                            "pending (bounds checkpoint size and memory)")
        p.add_argument("--max-segments", type=int, default=None,
                       metavar="N",
                       help="stop gracefully after N explored segments")
        p.add_argument("--quarantine-after", type=int, default=None,
                       metavar="K",
                       help="quarantine a segment whose (pc, state) key "
                            "kills workers K times instead of degrading "
                            "the pool (parallel engine)")
        p.add_argument("--cache", metavar="DIR", default=None,
                       help="content-addressed artifact store: memoize "
                            "settled segments under the run's "
                            "fingerprint so an identical re-run replays "
                            "them instead of re-simulating")
        p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("bespoke", help="generate + validate a bespoke core")
    _add_pair_args(p)
    p.add_argument("-o", "--output", help="write bespoke Verilog here")
    p.set_defaults(func=cmd_bespoke)

    p = sub.add_parser("verify",
                       help="formal equivalence check of the bespoke "
                            "netlist (SAT miter + counterexample replay)")
    _add_pair_args(p)
    p.add_argument("--mode", choices=["sim", "sat", "both"],
                   default="sat",
                   help="simulation spot-checks, the SAT proof, or both "
                        "(default: sat)")
    p.add_argument("--unroll", type=int, default=1, metavar="K",
                   help="compare K chained transition-function frames "
                        "(default: 1)")
    p.add_argument("--max-conflicts", type=int, default=None, metavar="N",
                   help="CDCL conflict budget before reporting UNKNOWN")
    p.add_argument("--csm-states", action="store_true",
                   help="restrict frame-0 state to the CSM's reachable "
                        "super-states (one assumption cube per state)")
    p.add_argument("--csm", choices=sorted(CSM_STRATEGIES),
                   default="uber",
                   help="conservative-state-manager merge strategy")
    p.add_argument("--no-constraints", action="store_true",
                   help="ignore the workload's CSM constraint file")
    p.add_argument("--json", action="store_true")
    p.add_argument("--trace", metavar="PATH",
                   help="write typed equivalence events to PATH (JSONL)")
    p.add_argument("--report", metavar="PATH",
                   help="write the JSON equivalence report to PATH")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("grid", help="full evaluation grid (Tables 3/4)")
    p.add_argument("--cache", default=".repro_cache")
    p.add_argument("--figures", action="store_true")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=cmd_grid)

    p = sub.add_parser("power", help="power savings and peak bound")
    _add_pair_args(p)
    p.set_defaults(func=cmd_power)

    p = sub.add_parser("timing", help="application-specific timing slack")
    _add_pair_args(p)
    p.set_defaults(func=cmd_timing)

    p = sub.add_parser("coverage", help="symbolic program coverage")
    _add_pair_args(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_coverage)

    p = sub.add_parser("store",
                       help="inspect/maintain a content-addressed "
                            "artifact store (run/segment/grid caches)")
    p.add_argument("action", choices=["ls", "stats", "gc", "verify"],
                   help="ls: list manifests; stats: object/manifest "
                        "counts; gc: drop unreferenced blobs; verify: "
                        "re-hash every blob")
    p.add_argument("--cache", metavar="DIR", default=".repro_cache",
                   help="store root (default: .repro_cache)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_store)

    p = sub.add_parser("serve",
                       help="run the job service: an HTTP API over a "
                            "deduplicating scheduler and worker pool")
    p.add_argument("--cache", metavar="DIR", default=".repro_cache",
                   help="content-addressed store backing the queue, the "
                        "segment cache and every job artifact "
                        "(default: .repro_cache)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (default: 8351)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker processes running jobs (default: 2)")
    p.add_argument("--max-retries", type=int, default=1, metavar="N",
                   help="re-dispatches after a worker dies without a "
                        "verdict (default: 1)")
    p.add_argument("--shard-segments", type=int, default=None,
                   metavar="N",
                   help="default work-stealing shard size: slice every "
                        "job into N-segment frontier shards unless its "
                        "spec says otherwise")
    p.add_argument("--quota-jobs", type=int, default=None, metavar="N",
                   help="max active (queued+running) jobs per submitter")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a co-analysis job to a running "
                            "`repro serve` instance")
    _add_pair_args(p)
    p.add_argument("--url", default="http://127.0.0.1:8351",
                   help="service base URL (default: "
                        "http://127.0.0.1:8351)")
    p.add_argument("--csm", choices=sorted(CSM_STRATEGIES),
                   default="uber")
    p.add_argument("--engine",
                   choices=["serial", "event", "parallel", "batch"],
                   default=None)
    p.add_argument("--strategy", choices=sorted(FRONTIER_STRATEGIES),
                   default="dfs")
    p.add_argument("--lanes", type=int, default=None, metavar="N")
    p.add_argument("--workers", type=int, default=1, metavar="N")
    p.add_argument("--no-constraints", action="store_true")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS")
    p.add_argument("--max-rss-mb", type=float, default=None, metavar="MB")
    p.add_argument("--max-frontier", type=int, default=None, metavar="N")
    p.add_argument("--max-segments", type=int, default=None, metavar="N")
    p.add_argument("--shard-segments", type=int, default=None,
                   metavar="N",
                   help="run as resumable N-segment frontier shards "
                        "(work-stealing units) instead of one dispatch")
    p.add_argument("--submitter", default="cli",
                   help="tenant name for quota accounting")
    p.add_argument("--no-dedup", action="store_true",
                   help="force a fresh execution even when an identical "
                        "job is in flight or already done")
    p.add_argument("--resume", dest="resume_from", default=None,
                   metavar="JOB",
                   help="continue a PARTIAL/FAILED job's checkpoint as "
                        "a new job")
    p.add_argument("--wait", action="store_true",
                   help="block until the job settles; exit 0/2/3/4 for "
                        "DONE/FAILED/CANCELLED/PARTIAL")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS", help="give up --wait after this")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs",
                       help="inspect a running job service: list/show "
                            "jobs, stream traces, cancel, metrics")
    p.add_argument("job_id", nargs="?", default=None,
                   help="show one job instead of listing all")
    p.add_argument("--url", default="http://127.0.0.1:8351")
    p.add_argument("--cancel", metavar="JOB",
                   help="cancel a queued or running job")
    p.add_argument("--trace", metavar="JOB",
                   help="stream the job's JSONL trace (follows a "
                        "running job until it settles)")
    p.add_argument("--metrics", action="store_true",
                   help="print the service /metrics payload")
    p.add_argument("--artifacts", action="store_true",
                   help="with a job id: print artifact digests + summary")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("asm", help="assemble a program")
    p.add_argument("design", choices=["omsp430", "bm32", "dr5"])
    p.add_argument("source", help="assembly source file")
    p.set_defaults(func=cmd_asm)

    p = sub.add_parser("disasm", help="assemble then disassemble a program")
    p.add_argument("design", choices=["omsp430", "bm32", "dr5"])
    p.add_argument("source", help="assembly source file")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("trace", help="concrete run with VCD dump")
    _add_pair_args(p)
    p.add_argument("-o", "--output", default="trace.vcd")
    p.add_argument("--case", type=int, default=0)
    p.add_argument("--max-cycles", type=int, default=6000)
    p.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "checkpoint",
                                                      None):
        parser.error("--resume requires --checkpoint")
    try:
        return args.func(args)
    except RunInterrupted as exc:
        print(f"interrupted ({exc.stop_reason}): {exc}", file=sys.stderr)
        return 3
    except CoAnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        checkpoint = getattr(args, "checkpoint", None)
        hint = f"; resume with --checkpoint {checkpoint} --resume" \
            if checkpoint else ""
        print(f"interrupted{hint}", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
