"""Poison-segment quarantine.

Path explosion makes resource exhaustion the *expected* failure mode of
long symbolic runs, and some of it is input-shaped: one specific
(pc, state) segment can deterministically crash a worker, hang it, or
blow its memory -- every time, on every retry.  Without quarantine such
a segment burns the supervisor's whole failure budget and drags the
pool into serial degradation (or the run into abort), punishing the
99.9% of healthy segments for one poison input.

The :class:`QuarantineRegistry` keys every dispatched segment by its
``(pc, state-hash, forced-decision)`` fingerprint and counts failures
per key across retries, waves, *and resumes* (the registry rides in the
checkpoint payload).  Once a key fails ``threshold`` times it is
quarantined: the supervisor stops re-dispatching it, the kernel skips
any pending path carrying the key, and the run records a
machine-readable verdict (``quarantined`` path record + trace event)
instead of degrading.  A quarantined segment's activity is *not*
explored, so the result's exercisable set is a subset of the fault-free
answer -- the verdict is what tells an operator the answer is partial
and exactly which state to reproduce under a debugger.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional


def segment_key(state_bytes: bytes, forced: Optional[int],
                pc: Optional[int] = None) -> str:
    """Stable fingerprint of one dispatchable segment.

    Hashes the serialized state (which embeds the PC) plus the forced
    branch decision, so the two forks of one halt state get distinct
    keys.  ``pc`` is accepted for readability of the verdict record but
    does not change the digest (it is already inside ``state_bytes``).
    """
    h = hashlib.sha1()
    h.update(state_bytes)
    h.update(b"\x00" if forced is None else bytes([1, forced & 0xFF]))
    return h.hexdigest()[:16]


@dataclass
class QuarantineRecord:
    """The verdict for one poison segment."""

    key: str
    pc: Optional[int] = None
    failures: int = 0
    kinds: List[str] = field(default_factory=list)   # failure kinds seen
    detail: str = ""                                 # last failure message
    quarantined: bool = False

    def summary(self) -> Dict[str, object]:
        return {"key": self.key, "pc": self.pc,
                "failures": self.failures, "kinds": list(self.kinds),
                "detail": self.detail, "quarantined": self.quarantined}


class QuarantineRegistry:
    """Counts per-segment failures and quarantines repeat offenders.

    Args:
        threshold: failures of one segment key before it is quarantined
            (the CLI's ``--quarantine-after``).  Must be >= 1.
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")
        self.threshold = threshold
        self._records: Dict[str, QuarantineRecord] = {}

    def __len__(self) -> int:
        return sum(1 for r in self._records.values() if r.quarantined)

    @property
    def active(self) -> bool:
        """Any quarantined keys to filter against?"""
        return any(r.quarantined for r in self._records.values())

    # -- failure accounting -------------------------------------------------
    def record_failure(self, key: str, kind: str, detail: str = "",
                       pc: Optional[int] = None) -> bool:
        """Count one failure of ``key``; returns True when this failure
        crossed the threshold (the segment is *now* quarantined)."""
        record = self._records.get(key)
        if record is None:
            record = self._records[key] = QuarantineRecord(key, pc=pc)
        record.failures += 1
        record.kinds.append(kind)
        record.detail = detail
        if pc is not None:
            record.pc = pc
        if not record.quarantined and record.failures >= self.threshold:
            record.quarantined = True
            return True
        return False

    def is_quarantined(self, key: str) -> bool:
        record = self._records.get(key)
        return record is not None and record.quarantined

    def record(self, key: str) -> Optional[QuarantineRecord]:
        return self._records.get(key)

    def quarantined_records(self) -> List[QuarantineRecord]:
        return [r for r in self._records.values() if r.quarantined]

    def summary(self) -> List[Dict[str, object]]:
        """Machine-readable verdicts for every quarantined segment."""
        return [r.summary() for r in self.quarantined_records()]

    # -- checkpoint round-trip ----------------------------------------------
    def snapshot_state(self) -> dict:
        return {"threshold": self.threshold,
                "records": [{**r.summary()} for r in
                            self._records.values()]}

    def restore_state(self, state: dict) -> None:
        self._records.clear()
        for raw in state.get("records", []):
            record = QuarantineRecord(
                raw["key"], pc=raw.get("pc"),
                failures=raw.get("failures", 0),
                kinds=list(raw.get("kinds", [])),
                detail=raw.get("detail", ""),
                quarantined=raw.get("quarantined", False))
            self._records[record.key] = record


class Quarantined:
    """Wave-output sentinel: this slot was quarantined, not simulated."""

    def __init__(self, record: QuarantineRecord):
        self.record = record

    def __repr__(self) -> str:
        return f"Quarantined({self.record.key}, pc={self.record.pc})"


def as_quarantine(value) -> Optional[QuarantineRegistry]:
    """Coerce an engine's ``quarantine=`` argument: an int becomes a
    registry with that threshold, an instance passes through, ``None``
    stays ``None``."""
    if value is None or isinstance(value, QuarantineRegistry):
        return value
    return QuarantineRegistry(threshold=int(value))
