"""Fault tolerance for long co-analysis runs.

Algorithm 1 runs are open-ended (path explosion can push a run to the
full 2M-cycle budget across 100k paths) and the parallel mode hands
states to separate worker processes -- so this package makes the
exploration layer survive the failures that long runs actually hit:

* :mod:`~repro.resilience.checkpoint` -- an append-safe on-disk journal
  of the full Algorithm 1 state (pending-path stack, CSM repository,
  accumulated toggle activity) so interrupted runs resume instead of
  restarting;
* :mod:`~repro.resilience.supervisor` -- worker-pool supervision:
  per-segment wall-clock timeouts, bounded retry with exponential
  backoff, re-dispatch of segments lost to dead or hung workers, and
  graceful degradation to serial execution;
* :mod:`~repro.resilience.faults` -- a deterministic, seedable
  fault-injection harness (worker crashes, hangs, memory spikes,
  corrupted state bytes, mid-wave SIGTERM) so the supervision logic is
  testable in CI;
* :mod:`~repro.resilience.governor` -- the run governor: wall-clock
  deadlines, the RSS memory watchdog, frontier/segment caps, and
  SIGINT/SIGTERM turned into cooperative checkpoint-and-stop;
* :mod:`~repro.resilience.quarantine` -- poison-segment quarantine:
  a (pc, state) segment that keeps killing workers is skipped with a
  recorded verdict instead of burning the failure budget;
* :mod:`~repro.resilience.artifacts` -- crash-consistent artifact
  writes (temp file + fsync + ``os.replace``) for reports, benches,
  traces, and waveforms.
"""

from .artifacts import (atomic_open, atomic_write_bytes, atomic_write_json,
                        atomic_write_text, fsync_dir)
from .checkpoint import (CHECKPOINT_FORMAT_VERSION, Checkpointer,
                         load_checkpoint)
from .faults import FaultPlan, FaultSpec, InjectedFault, torn_write
from .governor import (RunBudget, RunGovernor, StopRequest, as_governor,
                       current_rss_mb)
from .quarantine import (Quarantined, QuarantineRecord, QuarantineRegistry,
                         as_quarantine, segment_key)
from .supervisor import (DegradedToSerialWarning, PoolExhausted,
                         PoolSupervisor, SupervisionPolicy)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION", "Checkpointer", "load_checkpoint",
    "FaultPlan", "FaultSpec", "InjectedFault", "torn_write",
    "DegradedToSerialWarning", "PoolExhausted", "PoolSupervisor",
    "SupervisionPolicy",
    "RunBudget", "RunGovernor", "StopRequest", "as_governor",
    "current_rss_mb",
    "Quarantined", "QuarantineRecord", "QuarantineRegistry",
    "as_quarantine", "segment_key",
    "atomic_open", "atomic_write_bytes", "atomic_write_json",
    "atomic_write_text", "fsync_dir",
]
