"""Fault tolerance for long co-analysis runs.

Algorithm 1 runs are open-ended (path explosion can push a run to the
full 2M-cycle budget across 100k paths) and the parallel mode hands
states to separate worker processes -- so this package makes the
exploration layer survive the failures that long runs actually hit:

* :mod:`~repro.resilience.checkpoint` -- an append-safe on-disk journal
  of the full Algorithm 1 state (pending-path stack, CSM repository,
  accumulated toggle activity) so interrupted runs resume instead of
  restarting;
* :mod:`~repro.resilience.supervisor` -- worker-pool supervision:
  per-segment wall-clock timeouts, bounded retry with exponential
  backoff, re-dispatch of segments lost to dead or hung workers, and
  graceful degradation to serial execution;
* :mod:`~repro.resilience.faults` -- a deterministic, seedable
  fault-injection harness (worker crashes, hangs, corrupted state
  bytes) so the supervision logic is testable in CI.
"""

from .checkpoint import (CHECKPOINT_FORMAT_VERSION, Checkpointer,
                         load_checkpoint)
from .faults import FaultPlan, FaultSpec, InjectedFault
from .supervisor import (DegradedToSerialWarning, PoolExhausted,
                         PoolSupervisor, SupervisionPolicy)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION", "Checkpointer", "load_checkpoint",
    "FaultPlan", "FaultSpec", "InjectedFault",
    "DegradedToSerialWarning", "PoolExhausted", "PoolSupervisor",
    "SupervisionPolicy",
]
