"""Deterministic fault injection for the parallel exploration layer.

The supervisor's recovery paths (timeout, retry, pool rebuild, serial
degradation) only earn their keep if CI can actually exercise them, so
this harness injects the three failure classes long parallel runs hit
in practice -- a worker raising, a worker dying or hanging, and state
bytes corrupted in hand-off -- at chosen (wave, segment) coordinates.

Faults are carried inside the dispatched job, so they fire *inside the
worker process* exactly where a real failure would, except ``corrupt``,
which mangles the state blob on the parent side before hand-off (the
pristine bytes are kept for the retry, modelling a transient transport
fault).  By default a spec fires only on a segment's first attempt, so
recovery succeeds; ``persistent=True`` makes it fire on every attempt
to drive the degradation path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from random import Random
from typing import Iterable, List, Optional, Sequence, Tuple

#: injectable failure classes
FAULT_KINDS = ("crash", "die", "hang", "corrupt")


class InjectedFault(RuntimeError):
    """Raised inside a worker by a ``crash`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        wave: wave index (0 = the initial single-path wave).
        segment: segment index within the wave.
        kind: one of :data:`FAULT_KINDS`.
        persistent: fire on every attempt, not just the first.
    """

    wave: int
    segment: int
    kind: str
    persistent: bool = False

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {FAULT_KINDS}")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` injections."""

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: List[FaultSpec] = list(specs)
        by_coord = {}
        for spec in self.specs:
            by_coord[(spec.wave, spec.segment)] = spec
        self._by_coord = by_coord
        self.fired: List[Tuple[int, int, int, str]] = []

    @classmethod
    def random(cls, seed: int, n_faults: int, max_wave: int = 8,
               max_segment: int = 8,
               kinds: Sequence[str] = FAULT_KINDS) -> "FaultPlan":
        """A reproducible plan: the same seed always yields the same
        (wave, segment, kind) schedule."""
        rng = Random(seed)
        seen = set()
        specs = []
        while len(specs) < n_faults:
            coord = (rng.randrange(max_wave), rng.randrange(max_segment))
            if coord in seen:
                continue
            seen.add(coord)
            specs.append(FaultSpec(coord[0], coord[1], rng.choice(kinds)))
        return cls(specs)

    # -- dispatch-side hooks ----------------------------------------------
    def fault_for(self, wave: int, segment: int,
                  attempt: int) -> Optional[str]:
        """The fault kind to apply to this dispatch, if any."""
        spec = self._by_coord.get((wave, segment))
        if spec is None:
            return None
        if attempt > 0 and not spec.persistent:
            return None
        self.fired.append((wave, segment, attempt, spec.kind))
        return spec.kind

    def decorate(self, wave: int, segment: int, attempt: int,
                 state_bytes: bytes, forced) -> Tuple[bytes, object,
                                                      Optional[str]]:
        """Turn a pending (state, forced) pair into the job actually
        dispatched, applying any scheduled fault."""
        kind = self.fault_for(wave, segment, attempt)
        if kind == "corrupt":
            return corrupt_bytes(state_bytes), forced, None
        return state_bytes, forced, kind


def corrupt_bytes(blob: bytes, stride: int = 37) -> bytes:
    """Deterministically flip bytes throughout ``blob``.

    The versioned :meth:`SimState.to_bytes` frame carries a CRC, so any
    flip inside the payload is detected on deserialization rather than
    yielding a plausible-but-wrong state.
    """
    mangled = bytearray(blob)
    for i in range(0, len(mangled), stride):
        mangled[i] ^= 0xA5
    return bytes(mangled)


def execute_fault(kind: Optional[str]) -> None:
    """Run inside a worker, before the segment simulates.

    ``crash`` raises (an exception the parent sees immediately); ``die``
    hard-kills the worker process (the parent sees a timeout and
    re-dispatches); ``hang`` sleeps past any sane segment budget.
    """
    if kind is None:
        return
    if kind == "crash":
        raise InjectedFault("injected worker crash")
    if kind == "die":                 # pragma: no cover - kills the process
        os._exit(3)
    if kind == "hang":                # pragma: no cover - reaped by terminate
        time.sleep(3600)
    raise ValueError(f"unknown fault kind {kind!r}")
