"""Deterministic fault injection for the exploration run lifecycle.

The supervisor's recovery paths (timeout, retry, pool rebuild, serial
degradation), the quarantine registry, and the run governor only earn
their keep if CI can actually exercise them, so this harness injects
the failure classes long runs hit in practice at chosen
(wave, segment) coordinates:

* ``crash``   -- the worker raises (the parent sees it immediately);
* ``die``     -- the worker process hard-exits (seen as a timeout);
* ``hang``    -- the worker sleeps past any sane segment budget;
* ``corrupt`` -- the state bytes are mangled in hand-off (parent side;
  the pristine bytes are kept for the retry, modelling a transient
  transport fault);
* ``memspike`` -- the worker balloons its heap before failing, the
  memory-exhaustion signature of a path-explosion blowup;
* ``sigterm`` -- the *parent* receives SIGTERM mid-wave, exactly what a
  batch scheduler's preemption delivers (the run governor turns it into
  a graceful checkpoint-and-stop).

Worker-side faults are carried inside the dispatched job, so they fire
*inside the worker process* exactly where a real failure would.  By
default a spec fires only on a segment's first attempt, so recovery
succeeds; ``persistent=True`` makes it fire on every attempt (a poison
segment -- drives the quarantine and degradation paths), and
``attempt=N`` pins a spec to one retry attempt so a single segment can
fail *differently* on consecutive attempts (mixed-kind chaos).

:func:`torn_write` simulates the partial-write crash window for
artifact/checkpoint tests: it writes only a prefix of the intended
bytes, the on-disk state a kill mid-``write()`` leaves behind.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Iterable, List, Optional, Sequence, Tuple, Union

#: injectable failure classes
FAULT_KINDS = ("crash", "die", "hang", "corrupt", "memspike", "sigterm")

#: kinds applied on the parent (dispatch) side rather than in the worker
PARENT_SIDE_KINDS = ("corrupt", "sigterm")

#: bytes a ``memspike`` fault allocates (and touches) before failing
MEMSPIKE_BYTES = 64 * 1024 * 1024


class InjectedFault(RuntimeError):
    """Raised inside a worker by a ``crash``/``memspike`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        wave: wave index (0 = the initial single-path wave).
        segment: segment index within the wave.
        kind: one of :data:`FAULT_KINDS`.
        persistent: fire on every attempt, not just the first.
        attempt: fire only on this attempt number (``None`` = the
            default first-attempt-only / persistent behavior).  Several
            specs may share a (wave, segment) coordinate as long as
            their ``attempt`` values differ.
    """

    wave: int
    segment: int
    kind: str
    persistent: bool = False
    attempt: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {FAULT_KINDS}")

    def fires_on(self, attempt: int) -> bool:
        if self.attempt is not None:
            return attempt == self.attempt
        return attempt == 0 or self.persistent


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` injections."""

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: List[FaultSpec] = list(specs)
        by_coord = {}
        for spec in self.specs:
            by_coord.setdefault((spec.wave, spec.segment), []).append(spec)
        self._by_coord = by_coord
        self.fired: List[Tuple[int, int, int, str]] = []

    @classmethod
    def random(cls, seed: int, n_faults: int, max_wave: int = 8,
               max_segment: int = 8,
               kinds: Sequence[str] = FAULT_KINDS) -> "FaultPlan":
        """A reproducible plan: the same seed always yields the same
        (wave, segment, kind) schedule."""
        rng = Random(seed)
        seen = set()
        specs = []
        while len(specs) < n_faults:
            coord = (rng.randrange(max_wave), rng.randrange(max_segment))
            if coord in seen:
                continue
            seen.add(coord)
            specs.append(FaultSpec(coord[0], coord[1], rng.choice(kinds)))
        return cls(specs)

    # -- dispatch-side hooks ----------------------------------------------
    def fault_for(self, wave: int, segment: int,
                  attempt: int) -> Optional[str]:
        """The fault kind to apply to this dispatch, if any."""
        for spec in self._by_coord.get((wave, segment), ()):
            if spec.fires_on(attempt):
                self.fired.append((wave, segment, attempt, spec.kind))
                return spec.kind
        return None

    def decorate(self, wave: int, segment: int, attempt: int,
                 state_bytes: bytes, forced) -> Tuple[bytes, object,
                                                      Optional[str]]:
        """Turn a pending (state, forced) pair into the job actually
        dispatched, applying any scheduled fault."""
        kind = self.fault_for(wave, segment, attempt)
        if kind == "corrupt":
            return corrupt_bytes(state_bytes), forced, None
        if kind == "sigterm":
            # preemption chaos: the parent process is signalled mid-wave;
            # under a governed run this requests a graceful stop, without
            # one it takes the default (fatal) disposition
            os.kill(os.getpid(), signal.SIGTERM)
            return state_bytes, forced, None
        return state_bytes, forced, kind


def corrupt_bytes(blob: bytes, stride: int = 37) -> bytes:
    """Deterministically flip bytes throughout ``blob``.

    The versioned :meth:`SimState.to_bytes` frame carries a CRC, so any
    flip inside the payload is detected on deserialization rather than
    yielding a plausible-but-wrong state.
    """
    mangled = bytearray(blob)
    for i in range(0, len(mangled), stride):
        mangled[i] ^= 0xA5
    return bytes(mangled)


def torn_write(path: Union[str, Path], blob: bytes,
               keep: float = 0.5) -> None:
    """Simulate a crash mid-write: leave only a prefix of ``blob``.

    Models the window an in-place writer is exposed to (and the atomic
    artifact writer closes): the file exists, its name resolves, but
    its content is a truncated prefix with no delimiter.
    """
    if not 0.0 <= keep <= 1.0:
        raise ValueError("keep must be within [0, 1]")
    Path(path).write_bytes(blob[:int(len(blob) * keep)])


def execute_fault(kind: Optional[str]) -> None:
    """Run inside a worker, before the segment simulates.

    ``crash`` raises (an exception the parent sees immediately); ``die``
    hard-kills the worker process (the parent sees a timeout and
    re-dispatches); ``hang`` sleeps past any sane segment budget;
    ``memspike`` balloons the worker heap, then fails like a crash.
    """
    if kind is None:
        return
    if kind == "crash":
        raise InjectedFault("injected worker crash")
    if kind == "memspike":
        ballast = bytearray(MEMSPIKE_BYTES)
        ballast[::4096] = b"\xa5" * len(ballast[::4096])   # touch pages
        raise InjectedFault(
            f"injected memory spike ({len(ballast)} bytes held)")
    if kind == "die":                 # pragma: no cover - kills the process
        os._exit(3)
    if kind == "hang":                # pragma: no cover - reaped by terminate
        time.sleep(3600)
    raise ValueError(f"unknown fault kind {kind!r}")
