"""The run governor: budgets, memory watchdog, graceful interruption.

Long co-analysis runs fail by *exhaustion*, not by exception: a frontier
that outgrows RAM, a deadline blown by path explosion, an operator's
Ctrl-C or a batch scheduler's SIGTERM.  The governor turns every one of
those endings into a first-class outcome -- the kernel checks it
cooperatively at segment/wave boundaries, and when a budget trips (or a
signal arrives) the run flushes a final checkpoint and returns a
:class:`~repro.coanalysis.results.PartialResult` with a machine-readable
``stop_reason`` instead of dying mid-flight.  ``--resume`` then picks up
exactly where the governed stop left off.

Three pieces:

* :class:`RunBudget` -- the declarative limits (wall-clock deadline, RSS
  ceiling sampled via :func:`resource.getrusage`, max frontier size,
  max total segments);
* :class:`RunGovernor` -- evaluates the budget at each boundary and
  carries the cooperative stop flag;
* signal handling -- ``governed()`` installs SIGINT/SIGTERM handlers
  that *request* a stop rather than killing the process, and restores
  the previous handlers on exit (nested/foreign handlers survive).
"""

from __future__ import annotations

import signal
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

#: machine-readable stop reasons a governed run can end with (open set;
#: ``"wave_budget"`` is produced by the kernel's ``stop_after_batches``)
STOP_REASONS = ("deadline", "memory", "frontier", "segments",
                "interrupted", "wave_budget")


def current_rss_mb() -> float:
    """This process's peak resident set size, in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; platforms
    without :mod:`resource` (Windows) report 0.0, disabling the memory
    watchdog rather than crashing the run.
    """
    try:
        import resource
    except ImportError:          # pragma: no cover - non-POSIX
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":     # pragma: no cover - platform dependent
        return usage / (1024.0 * 1024.0)
    return usage / 1024.0


@dataclass(frozen=True)
class StopRequest:
    """Why the governor wants the run to end, and how to describe it."""

    reason: str          # one of STOP_REASONS
    detail: str = ""


@dataclass
class RunBudget:
    """Declarative resource envelope for one exploration run.

    Every limit is optional; ``None`` disables that check.  The budget
    is evaluated cooperatively at segment/wave boundaries, so a single
    very long segment can overshoot -- budgets bound the *run*, the
    per-segment ``SupervisionPolicy.segment_timeout`` bounds segments.
    """

    deadline_seconds: Optional[float] = None
    max_rss_mb: Optional[float] = None
    max_frontier: Optional[int] = None
    max_segments: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return (self.deadline_seconds is None and self.max_rss_mb is None
                and self.max_frontier is None
                and self.max_segments is None)


class RunGovernor:
    """Evaluates a :class:`RunBudget` and carries the stop flag.

    Args:
        budget: limits to enforce (``None`` = only signal handling).
        clock: monotonic time source (injectable for tests).
        rss_mb: RSS sampler (injectable for tests).
    """

    def __init__(self, budget: Optional[RunBudget] = None,
                 clock: Callable[[], float] = time.monotonic,
                 rss_mb: Callable[[], float] = current_rss_mb):
        self.budget = budget or RunBudget()
        self.clock = clock
        self.rss_mb = rss_mb
        self._t0: Optional[float] = None
        self._stop: Optional[StopRequest] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Mark the run's start (deadline epoch); idempotent."""
        if self._t0 is None:
            self._t0 = self.clock()

    @property
    def elapsed(self) -> float:
        return 0.0 if self._t0 is None else self.clock() - self._t0

    # -- cooperative stop ----------------------------------------------------
    def request_stop(self, reason: str, detail: str = "") -> None:
        """Ask the run to end at the next boundary (first request wins)."""
        if self._stop is None:
            self._stop = StopRequest(reason, detail)

    @property
    def stop_requested(self) -> Optional[StopRequest]:
        return self._stop

    def check(self, frontier: int = 0,
              segments: int = 0) -> Optional[StopRequest]:
        """Evaluate the budget at a boundary; returns the (sticky) stop
        request, or ``None`` to continue."""
        if self._stop is not None:
            return self._stop
        self.start()
        b = self.budget
        if b.deadline_seconds is not None and \
                self.elapsed >= b.deadline_seconds:
            self.request_stop(
                "deadline",
                f"wall-clock deadline of {b.deadline_seconds:.1f}s "
                f"reached after {self.elapsed:.1f}s")
        elif b.max_rss_mb is not None:
            rss = self.rss_mb()
            if rss >= b.max_rss_mb:
                self.request_stop(
                    "memory",
                    f"RSS {rss:.1f} MiB is over the "
                    f"{b.max_rss_mb:.1f} MiB ceiling")
        if self._stop is None and b.max_frontier is not None and \
                frontier > b.max_frontier:
            self.request_stop(
                "frontier",
                f"frontier holds {frontier} pending paths "
                f"(limit {b.max_frontier})")
        if self._stop is None and b.max_segments is not None and \
                segments >= b.max_segments:
            self.request_stop(
                "segments",
                f"{segments} segments explored "
                f"(limit {b.max_segments})")
        return self._stop

    # -- signal handling -----------------------------------------------------
    @contextmanager
    def governed(self, signals=(signal.SIGINT,
                                signal.SIGTERM)) -> Iterator["RunGovernor"]:
        """Install handlers turning ``signals`` into cooperative stop
        requests; previous handlers are restored on exit.

        Outside the main thread (where CPython forbids installing
        handlers) the governor still enforces budgets -- signals just
        keep their previous behavior.
        """
        self.start()
        previous = {}
        try:
            for signum in signals:
                try:
                    previous[signum] = signal.signal(signum, self._on_signal)
                except ValueError:    # not the main thread
                    break
            yield self
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _on_signal(self, signum, frame) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:            # pragma: no cover - exotic signum
            name = str(signum)
        self.request_stop(
            "interrupted",
            f"{name} received; stopping at the next segment boundary")


#: map a stop reason to the trace-event kind that narrates it
TRACE_KIND_FOR_REASON = {
    "deadline": "deadline",
    "memory": "mem_pressure",
    "frontier": "mem_pressure",
    "segments": "deadline",
    "interrupted": "interrupted",
}


def as_governor(value) -> Optional[RunGovernor]:
    """Coerce an engine's ``budget=`` argument: a :class:`RunBudget`
    becomes a governor, a governor passes through, ``None`` stays
    ``None``."""
    if value is None or isinstance(value, RunGovernor):
        return value
    if isinstance(value, RunBudget):
        return RunGovernor(value)
    raise TypeError(f"budget must be a RunBudget or RunGovernor, "
                    f"not {type(value).__name__}")
