"""Append-safe on-disk checkpoints for Algorithm 1 runs.

A checkpoint file is a journal of self-contained snapshot records, each
framed as ``magic | version | payload-length | crc32 | pickle``.  The
writer only ever appends and fsyncs, so a crash mid-write can at worst
leave a truncated *last* record; the reader scans forward and keeps the
newest record whose length and checksum verify, silently discarding a
torn tail.  Resuming therefore always sees a consistent snapshot -- the
state as of some completed segment/wave boundary -- never a partially
written one.

The payload schema is owned by this module too:
:func:`encode_run_payload` / :func:`decode_run_payload` define the one
versioned run-payload codec used by the
:class:`~repro.coanalysis.kernel.ExplorationKernel` for every backend.
``decode_run_payload`` transparently upgrades the two legacy payload
shapes (the serial engine's ``stack`` payload and the parallel engine's
``pending``/``profile`` payload) so journals written before the codec
was unified still resume.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import time
import zlib
from pathlib import Path
from typing import Optional

from ..coanalysis.results import CheckpointError

#: bump when the record framing (not the payload schema) changes
CHECKPOINT_FORMAT_VERSION = 1

_MAGIC = b"RCKP"
_HEADER = struct.Struct("<BQI")      # version, payload length, crc32


class Checkpointer:
    """Paces and persists checkpoint records for one run.

    Args:
        path: checkpoint file (created on first write; parent directory
            must exist or be creatable).
        every_segments: write at most once per this many completed
            segments (serial engine) or waves (parallel engine).
        every_seconds: additionally require this much wall time between
            writes (``None`` -> no time gate).
    """

    def __init__(self, path, every_segments: int = 16,
                 every_seconds: Optional[float] = None):
        if every_segments < 1:
            raise ValueError("every_segments must be >= 1")
        self.path = Path(path)
        self.every_segments = every_segments
        self.every_seconds = every_seconds
        self.records_written = 0
        self._last_mark = None          # progress mark at last write
        self._last_write_time = 0.0

    # -- cadence -----------------------------------------------------------
    def due(self, progress: int) -> bool:
        """Should a checkpoint be written at this progress mark
        (segments or waves completed)?"""
        if self._last_mark is not None and \
                progress - self._last_mark < self.every_segments:
            return False
        if self.every_seconds is not None and \
                time.monotonic() - self._last_write_time < self.every_seconds:
            return False
        return True

    # -- writing -----------------------------------------------------------
    def write(self, payload: dict, progress: int = 0) -> None:
        """Append one snapshot record and fsync it to disk.

        The first write of a journal also fsyncs the containing
        directory: fsyncing the file alone makes its *content* durable,
        but a freshly created *name* lives in the directory, and a crash
        in that window can leave a fully-synced file that simply is not
        there after reboot."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        record = (_MAGIC
                  + _HEADER.pack(CHECKPOINT_FORMAT_VERSION, len(blob),
                                 zlib.crc32(blob))
                  + blob)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        try:
            with open(self.path, "ab") as fh:
                fh.write(record)
                fh.flush()
                os.fsync(fh.fileno())
            if not existed:
                from .artifacts import fsync_dir
                fsync_dir(self.path.parent)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {exc}") from exc
        self.records_written += 1
        self._last_mark = progress
        self._last_write_time = time.monotonic()

    # -- reading -----------------------------------------------------------
    def load_latest(self) -> Optional[dict]:
        return load_checkpoint(self.path)


def load_checkpoint(path) -> Optional[dict]:
    """Newest intact snapshot in ``path``, or ``None`` when the file is
    missing or holds no complete record.

    Raises :class:`CheckpointError` only for records that are structurally
    intact but written by an unsupported format version -- torn or
    corrupted trailing records are expected after a crash and skipped.
    """
    path = Path(path)
    if not path.exists():
        return None
    data = path.read_bytes()
    newest: Optional[dict] = None
    view = io.BytesIO(data)
    while True:
        magic = view.read(len(_MAGIC))
        if len(magic) < len(_MAGIC):
            break
        if magic != _MAGIC:
            break                     # torn write: nothing after it is framed
        header = view.read(_HEADER.size)
        if len(header) < _HEADER.size:
            break
        version, length, crc = _HEADER.unpack(header)
        blob = view.read(length)
        if len(blob) < length:
            break                     # truncated tail record
        if zlib.crc32(blob) != crc:
            break                     # corrupted record; stop at last good one
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint record v{version} in {path} is not supported "
                f"(this build reads v{CHECKPOINT_FORMAT_VERSION})")
        try:
            newest = pickle.loads(blob)
        except Exception as exc:
            raise CheckpointError(
                f"undecodable checkpoint record in {path}: {exc}") from exc
    return newest


#: version of the *run payload* schema (inside a record); independent of
#: the record framing version above
RUN_PAYLOAD_CODEC = 2


def encode_run_payload(engine: str, design: str, application: str,
                       frontier: list, strategy: str, strategy_meta: dict,
                       csm: dict, activity: dict, counters: dict,
                       path_records: list, per_path_exercised: list,
                       journal: list, quarantine: Optional[dict] = None
                       ) -> dict:
    """Build the one v2 run payload every backend checkpoints through.

    ``frontier`` is a list of ``(state_bytes, forced_decision, depth,
    parent, origin_pc)`` tuples in re-push order; ``activity`` carries a
    ``"repr"`` key (``"sim"`` for live simulator planes, ``"profile"``
    for an accumulated toggle profile) beside the four boolean planes.
    ``quarantine`` is an optional
    :meth:`~repro.resilience.quarantine.QuarantineRegistry.snapshot_state`
    dict so poison-segment verdicts survive a resume; payloads written
    before the key existed decode with it absent (still codec v2).
    """
    return {
        "codec": RUN_PAYLOAD_CODEC,
        "engine": engine,
        "design": design,
        "application": application,
        "frontier": list(frontier),
        "strategy": strategy,
        "strategy_meta": dict(strategy_meta),
        "csm": csm,
        "activity": activity,
        "counters": dict(counters),
        "path_records": list(path_records),
        "per_path_exercised": list(per_path_exercised),
        "journal": list(journal),
        "quarantine": quarantine,
    }


def decode_run_payload(payload: dict) -> dict:
    """Normalise any supported payload shape to the v2 schema.

    Legacy (pre-codec) payloads carried no ``"codec"`` key: the serial
    engine stored the frontier as 4-tuples under ``"stack"`` with live
    sim planes, the parallel engine as 2-tuples under ``"pending"``
    with an accumulated profile.  Both upgrade losslessly.
    """
    codec = payload.get("codec")
    if codec == RUN_PAYLOAD_CODEC:
        out = dict(payload)
        out.setdefault("per_path_exercised", [])
        out.setdefault("strategy_meta", {})
        out.setdefault("quarantine", None)
        return out
    if codec is not None:
        raise CheckpointError(
            f"run payload codec v{codec} is not supported "
            f"(this build reads v{RUN_PAYLOAD_CODEC} and the legacy "
            f"pre-codec shapes)")
    engine = payload.get("engine")
    if engine == "serial":
        counters = dict(payload["counters"])
        counters.setdefault("batches_done", len(payload["path_records"]))
        activity = dict(payload["activity"])
        activity.setdefault("repr", "sim")
        return {
            "codec": RUN_PAYLOAD_CODEC,
            "engine": "serial",
            "design": payload["design"],
            "application": payload["application"],
            "frontier": [(blob, forced, depth, parent, None)
                         for blob, forced, depth, parent
                         in payload["stack"]],
            "strategy": "dfs",
            "strategy_meta": {},
            "csm": payload["csm"],
            "activity": activity,
            "counters": counters,
            "path_records": list(payload["path_records"]),
            "per_path_exercised": list(payload["per_path_exercised"]),
            "journal": list(payload["journal"]),
        }
    if engine == "parallel":
        counters = dict(payload["counters"])
        counters.setdefault("batches_done", payload.get("waves_done", 0))
        profile = payload["profile"]
        return {
            "codec": RUN_PAYLOAD_CODEC,
            "engine": "parallel",
            "design": payload["design"],
            "application": payload["application"],
            "frontier": [(blob, forced, 0, None, None)
                         for blob, forced in payload["pending"]],
            "strategy": "bfs",
            "strategy_meta": {},
            "csm": payload["csm"],
            "activity": {"repr": "profile",
                         "toggled": profile["toggled"],
                         "ever_x": profile["ever_x"],
                         "val": profile["const_val"],
                         "known": profile["const_known"]},
            "counters": counters,
            "path_records": list(payload["path_records"]),
            "per_path_exercised": [],
            "journal": list(payload["journal"]),
        }
    # unknown engine tag: hand back just enough for the kernel to raise
    # its engine-mismatch ResumeMismatch with the original tag
    return {"codec": RUN_PAYLOAD_CODEC, "engine": engine,
            "design": payload.get("design"),
            "application": payload.get("application")}


def as_checkpointer(checkpoint) -> Optional[Checkpointer]:
    """Coerce an engine's ``checkpoint=`` argument: a path becomes a
    default-cadence :class:`Checkpointer`, an existing instance passes
    through, ``None`` stays ``None``."""
    if checkpoint is None or isinstance(checkpoint, Checkpointer):
        return checkpoint
    return Checkpointer(checkpoint)
