"""Worker-pool supervision for wave-parallel exploration.

The paper's parallel mode forks a simulator process per branch; at scale
that inherits every failure mode of process pools -- workers that raise,
die, or hang, and states corrupted in hand-off.  The supervisor runs
each wave of segment jobs under per-segment wall-clock deadlines,
retries failed segments with exponential backoff, rebuilds the pool when
workers are lost or wedged (a timed-out slot cannot be trusted again),
and -- once the configured failure budget is spent -- signals the caller
to degrade to serial execution rather than return a partial (unsound)
answer.

A wave either completes with every segment's output present (a slot may
hold a :class:`~repro.resilience.quarantine.Quarantined` verdict instead
of a result), or raises: :class:`PoolExhausted` (degrade to serial) is
the only non-exceptional failure exit, so callers can never silently
drop a segment.

With a :class:`~repro.resilience.quarantine.QuarantineRegistry`
attached, a segment key that keeps failing is quarantined once it
crosses the registry's threshold -- its slot is sealed with a recorded
verdict and the wave proceeds, instead of one poison input burning the
retry budget and dragging the whole pool into serial degradation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..coanalysis.results import (RunEvent, SegmentTimeout, StateCorruption,
                                  WorkerCrashed, WorkerFailure)
from ..sim.state import StateDecodeError
from .faults import FaultPlan
from .quarantine import Quarantined, QuarantineRegistry


class DegradedToSerialWarning(RuntimeWarning):
    """The parallel engine fell back to serial exploration.

    Structured so operators can ``-W error::`` it in CI; the run result
    is still sound -- only the speedup is lost."""


class PoolExhausted(WorkerFailure):
    """The failure budget is spent; the caller should degrade."""


@dataclass
class SupervisionPolicy:
    """Failure-handling knobs for :class:`PoolSupervisor`.

    Attributes:
        segment_timeout: wall-clock budget per dispatched segment; a
            segment past its deadline is treated as lost (hung or dead
            worker) and re-dispatched after a pool rebuild.
        max_retries: re-dispatches allowed per segment before degrading.
        backoff_base / backoff_cap: exponential retry backoff, seconds.
        max_pool_restarts: pool rebuilds allowed per run before degrading.
        poll_interval: result-polling period, seconds.
    """

    segment_timeout: float = 300.0
    max_retries: int = 3
    backoff_base: float = 0.2
    backoff_cap: float = 5.0
    max_pool_restarts: int = 2
    poll_interval: float = 0.02


class PoolSupervisor:
    """Owns one worker pool and runs waves of jobs to completion.

    Args:
        pool_factory: zero-argument callable building a fresh
            ``multiprocessing`` pool (workers pre-initialized).
        task: the pool-side function; receives one job tuple
            ``(state_bytes, forced, fault_kind)``.
        policy: failure-handling knobs.
        stats: object with ``segment_retries`` / ``worker_restarts``
            counters to increment (the engine's run stats).
        journal: list collecting :class:`RunEvent` entries.
        fault_plan: optional :class:`FaultPlan` decorating dispatches.
        quarantine: optional registry counting per-key failures; a key
            over the threshold seals its slot with a
            :class:`~repro.resilience.quarantine.Quarantined` verdict
            instead of raising :class:`PoolExhausted`.
    """

    def __init__(self, pool_factory: Callable, task: Callable,
                 policy: Optional[SupervisionPolicy] = None,
                 stats=None, journal: Optional[List[RunEvent]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 quarantine: Optional[QuarantineRegistry] = None):
        self.pool_factory = pool_factory
        self.task = task
        self.policy = policy or SupervisionPolicy()
        self.stats = stats
        self.journal = journal if journal is not None else []
        self.fault_plan = fault_plan
        self.quarantine = quarantine
        self._pool = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self.pool_factory()
        return self._pool

    def _terminate_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Tear the pool down unconditionally (also reaps hung workers)."""
        self._terminate_pool()

    def _restart_pool(self, wave: int) -> None:
        if self.stats is not None:
            self.stats.worker_restarts += 1
        restarts = self.stats.worker_restarts if self.stats is not None \
            else 1
        self.journal.append(RunEvent("pool_restart", wave=wave,
                                     detail=f"restart #{restarts}"))
        self._terminate_pool()
        if restarts > self.policy.max_pool_restarts:
            raise PoolExhausted(
                f"worker pool restarted {restarts} times "
                f"(limit {self.policy.max_pool_restarts}); degrading",
                wave=wave)

    # -- wave execution ----------------------------------------------------
    def run_wave(self, wave: int, jobs: List,
                 keys: Optional[Sequence[str]] = None,
                 pcs: Optional[Sequence[Optional[int]]] = None) -> List:
        """Run one wave of ``(state_bytes, forced)`` jobs; outputs are
        returned aligned with ``jobs``, every slot filled -- with the
        segment's result, or a :class:`Quarantined` verdict when its
        ``keys[idx]`` crossed the quarantine threshold."""
        outputs: List = [None] * len(jobs)
        attempts = [0] * len(jobs)
        todo = list(range(len(jobs)))
        while todo:
            pool = self._ensure_pool()
            inflight = {}
            for idx in todo:
                state_bytes, forced = jobs[idx]
                fault = None
                if self.fault_plan is not None:
                    state_bytes, forced, fault = self.fault_plan.decorate(
                        wave, idx, attempts[idx], state_bytes, forced)
                deadline = time.monotonic() + self.policy.segment_timeout
                inflight[idx] = (
                    pool.apply_async(self.task,
                                     ((state_bytes, forced, fault),)),
                    deadline)
            failures = []
            lost_to_timeout = False
            while inflight:
                progressed = False
                for idx in list(inflight):
                    result, deadline = inflight[idx]
                    if result.ready():
                        del inflight[idx]
                        progressed = True
                        try:
                            outputs[idx] = result.get()
                        except Exception as exc:  # remote failure
                            failures.append(
                                (idx, self._classify(exc, wave, idx,
                                                     attempts[idx])))
                    elif time.monotonic() > deadline:
                        del inflight[idx]
                        progressed = True
                        lost_to_timeout = True
                        failures.append((idx, SegmentTimeout(
                            f"segment {idx} of wave {wave} exceeded "
                            f"{self.policy.segment_timeout:.1f}s "
                            f"(worker hung or died)",
                            wave=wave, segment=idx,
                            attempts=attempts[idx])))
                if inflight and not progressed:
                    time.sleep(self.policy.poll_interval)
            todo = []
            for idx, failure in failures:
                attempts[idx] += 1
                kind = {"SegmentTimeout": "timeout",
                        "StateCorruption": "corrupt"}.get(
                            type(failure).__name__, "crash")
                self.journal.append(RunEvent(
                    kind, wave=wave, segment=idx, attempt=attempts[idx],
                    detail=str(failure)))
                if self.quarantine is not None and keys is not None:
                    self.quarantine.record_failure(
                        keys[idx], kind, detail=str(failure),
                        pc=pcs[idx] if pcs is not None else None)
                    if self.quarantine.is_quarantined(keys[idx]):
                        record = self.quarantine.record(keys[idx])
                        outputs[idx] = Quarantined(record)
                        self.journal.append(RunEvent(
                            "quarantined", wave=wave, segment=idx,
                            attempt=attempts[idx],
                            detail=f"key {record.key} (pc={record.pc}) "
                                   f"failed {record.failures}x: "
                                   f"{record.detail}"))
                        continue
                if attempts[idx] > self.policy.max_retries:
                    raise PoolExhausted(
                        f"segment {idx} of wave {wave} failed "
                        f"{attempts[idx]} times ({failure}); degrading",
                        wave=wave, segment=idx, attempts=attempts[idx])
                if self.stats is not None:
                    self.stats.segment_retries += 1
                self.journal.append(RunEvent(
                    "retry", wave=wave, segment=idx, attempt=attempts[idx]))
                todo.append(idx)
            if lost_to_timeout:
                # a timed-out slot may still be wedged: rebuild the pool
                # so re-dispatched segments land on fresh workers
                self._restart_pool(wave)
            if todo:
                worst = max(attempts[idx] for idx in todo)
                time.sleep(min(self.policy.backoff_cap,
                               self.policy.backoff_base * 2 ** (worst - 1)))
        return outputs

    @staticmethod
    def _classify(exc: Exception, wave: int, segment: int,
                  attempt: int) -> WorkerFailure:
        if isinstance(exc, StateDecodeError):
            return StateCorruption(
                f"segment {segment} of wave {wave}: {exc}",
                wave=wave, segment=segment, attempts=attempt)
        return WorkerCrashed(
            f"segment {segment} of wave {wave}: "
            f"{type(exc).__name__}: {exc}",
            wave=wave, segment=segment, attempts=attempt)
