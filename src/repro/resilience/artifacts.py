"""Crash-consistent artifact writing (tempfile + fsync + rename).

Checkpoint journals are append-safe by construction, but every *other*
output a run leaves behind -- equivalence reports, benchmark JSON,
trace-derived metrics, rendered tables, VCD waveforms, grid caches --
used to be written in place: a kill mid-write left a torn file that
looks present but does not parse.  This module gives every non-journal
artifact the standard crash-consistency recipe:

1. write the full content to a temporary file *in the destination
   directory* (same filesystem, so the final rename is atomic);
2. flush and ``fsync`` the temporary file so the bytes are durable;
3. ``os.replace`` it over the destination (atomic on POSIX and
   Windows);
4. ``fsync`` the containing directory so the rename itself survives a
   power cut.

A crash at any instant therefore leaves either the complete old file or
the complete new file -- never a prefix.  The obvious costs (one extra
fsync pair per artifact) are irrelevant at artifact frequency.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

PathLike = Union[str, Path]


def fsync_dir(path: PathLike) -> None:
    """Flush a directory's entry table to disk (best effort).

    Needed after creating, renaming, or deleting a file: the file's own
    fsync makes its *contents* durable, but the name-to-inode mapping
    lives in the directory.  Platforms that cannot open directories
    (Windows) are silently skipped -- the rename there is already as
    durable as the platform offers.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_open(path: PathLike, mode: str = "w") -> Iterator:
    """Open a temporary file that atomically becomes ``path`` on exit.

    The handle behaves like a normal file object opened with ``mode``
    (``"w"`` or ``"wb"``).  On clean exit the content is fsynced and
    renamed over ``path``; on an exception the temporary file is
    removed and the destination is left untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open supports 'w' and 'wb', not {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                    prefix=path.name + ".", suffix=".tmp")
    tmp = Path(tmp_name)
    fh = os.fdopen(fd, mode)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        if not fh.closed:
            fh.close()
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def atomic_write_bytes(path: PathLike, blob: bytes) -> None:
    """Atomically replace ``path`` with ``blob``."""
    with atomic_open(path, "wb") as fh:
        fh.write(blob)


def atomic_publish_bytes(path: PathLike, blob: bytes) -> bool:
    """Atomically create ``path`` with ``blob`` -- but never replace it.

    The write-once variant of :func:`atomic_write_bytes` for
    content-addressed objects, where the destination name *is* the
    content digest: once any writer has published the file, every other
    writer holds identical bytes, so losing the race is success.  The
    temporary file is linked to the destination with ``os.link`` (an
    O_EXCL-style create: it fails with ``EEXIST`` instead of replacing),
    which closes the window where two concurrent ``os.replace`` calls
    would re-expose a blob mid-read or bump its inode under a reader.

    Returns ``True`` when this call created the file, ``False`` when
    another writer got there first.  Filesystems without hard links
    fall back to the (still atomic, last-writer-wins) rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                    prefix=path.name + ".", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        except OSError:
            # no hard links here (some network/FAT mounts): degrade to
            # the rename recipe -- atomic, identical content either way
            os.replace(tmp, path)
            tmp = None
        fsync_dir(path.parent)
        return True
    finally:
        if tmp is not None:
            try:
                tmp.unlink()
            except OSError:
                pass


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: PathLike, obj, indent: int = 2) -> None:
    """Atomically replace ``path`` with ``obj`` serialized as JSON."""
    atomic_write_text(path, json.dumps(obj, indent=indent, default=str)
                      + "\n")
