"""The asyncio job scheduler: dedup, worker pool, shard work-stealing.

One event loop owns the queue.  Submissions land (from any thread --
the HTTP handlers run in their own) under a lock; the loop fills free
worker slots from a shared runnable deque and supervises each launched
worker with an asyncio task.  Three properties do the scaling work:

* **Dedup.**  Submissions are keyed by their run fingerprint.  An
  identical spec already in flight coalesces (one execution, every
  follower adopts its outcome); a fingerprint already DONE in the store
  is served without running at all.  Either way the Nth identical
  submission costs O(manifest write), which is what makes "millions of
  users" mostly a cache problem.
* **Shards + work-stealing.**  A spec with ``shard_segments`` runs as a
  sequence of governed slices: each dispatch explores at most that many
  segments, checkpoints, and re-enqueues at the *front* of the runnable
  deque as a pending frontier shard.  Any idle worker steals the next
  shard -- a long run no longer pins one worker, it time-shares the
  pool with everything else in the queue.
* **Supervision.**  Workers run the whole PR 1/PR 5 stack: a per-job
  :class:`~repro.resilience.governor.RunGovernor` turns SIGTERM and
  budget trips into checkpointed PARTIALs (the worker exits cleanly
  with a verdict manifest), and a worker that dies without a verdict is
  retried with ``resume=True`` against its own checkpoint before the
  job is declared PARTIAL (resumable) or FAILED.

Workers communicate results through the store, not pipes: each attempt
writes an atomic ``jobresult-<id>`` manifest stamped with its attempt
number.  A SIGKILL at any instant leaves either a complete verdict or
none -- never a torn one -- and the attempt stamp stops a retry from
trusting a stale verdict.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import shutil
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional

from ..store import ContentStore, StoreError
from .jobs import (Job, JobSpec, JobStore, TERMINAL_STATES, UnknownJob)


class QuotaExceeded(RuntimeError):
    """A submitter is over their queued-jobs quota."""


@dataclass
class SchedulerConfig:
    """Operational knobs for one :class:`Scheduler`."""

    #: worker processes running jobs concurrently
    workers: int = 2
    #: event-loop poll period, seconds
    poll_interval: float = 0.05
    #: re-dispatches allowed after a worker dies without a verdict
    max_retries: int = 1
    #: default ``shard_segments`` applied to specs that set none
    shard_segments: Optional[int] = None
    #: max QUEUED+RUNNING jobs per submitter (None = unlimited)
    quota_jobs: Optional[int] = None
    #: multiprocessing start method (spawn: no inherited state)
    mp_context: str = "spawn"
    #: per-job detail rows kept for the /metrics endpoint
    metrics_jobs_kept: int = 50


def _execute_job(store_root: str, job_id: str, spec_dict: Dict,
                 resume: bool, attempt: int,
                 shard_segments: Optional[int]) -> None:
    """Worker-process entry point: run one job (or one shard of it).

    Runs the full ``run_one`` stack -- segment cache against the shared
    store, checkpoint journal and JSONL trace in the job directory, a
    governor that turns SIGTERM/budget trips into checkpointed
    PARTIALs -- then writes one atomic ``jobresult-<id>`` verdict
    manifest.  Exceptions become FAILED verdicts; only a hard kill
    leaves no verdict at all (the scheduler treats that as a lost
    worker).
    """
    import pickle

    from ..coanalysis.trace import JsonlTraceSink
    from ..csm import CSM_STRATEGIES
    from ..reporting.runner import run_one
    from ..resilience.checkpoint import load_checkpoint
    from ..resilience.governor import RunBudget, RunGovernor

    spec = JobSpec.from_dict(spec_dict)
    store = ContentStore(Path(store_root))
    job_store = JobStore(store)
    job_dir = job_store.job_dir(job_id)
    job_dir.mkdir(parents=True, exist_ok=True)
    ckpt = job_store.checkpoint_path(job_id)
    trace_path = job_store.trace_path(job_id)

    budget = spec.budget()
    if shard_segments:
        # a shard's segment cap is *relative* to what the journal
        # already holds, so shard N+1 actually advances the frontier
        base = 0
        if resume:
            try:
                from ..resilience.checkpoint import decode_run_payload
                payload = load_checkpoint(ckpt)
                if payload is not None:
                    base = len(decode_run_payload(payload)["path_records"])
            except Exception:
                base = 0
        cap = base + shard_segments
        if budget is not None and budget.max_segments is not None:
            cap = min(cap, budget.max_segments)
        budget = RunBudget(
            deadline_seconds=getattr(budget, "deadline_seconds", None),
            max_rss_mb=getattr(budget, "max_rss_mb", None),
            max_frontier=getattr(budget, "max_frontier", None),
            max_segments=cap)
    # always govern service work: even an unlimited job must turn
    # SIGTERM into a checkpointed PARTIAL, not a dead worker
    governor = RunGovernor(budget or RunBudget())

    verdict: Dict[str, object] = {"kind": "jobresult", "job": job_id,
                                  "attempt": attempt}
    sink = JsonlTraceSink(trace_path, mode="a" if resume else "w")
    try:
        result = run_one(spec.design, spec.benchmark,
                         strategy=CSM_STRATEGIES[spec.csm](),
                         use_constraints=spec.use_constraints,
                         checkpoint=str(ckpt), resume=resume,
                         workers=spec.workers, frontier=spec.frontier,
                         engine=spec.engine, trace=sink,
                         budget=governor, cache=store, lanes=spec.lanes)
    except Exception as exc:          # noqa: BLE001 -- verdict, not crash
        verdict.update(state="FAILED",
                       error=f"{type(exc).__name__}: {exc}")
    else:
        summary = result.summary()
        metrics = result.metrics.summary() if result.metrics else {}
        artifacts: Dict[str, str] = {}
        for label, path in (("checkpoint", ckpt), ("trace", trace_path)):
            try:
                if path.is_file():
                    artifacts[label] = store.put_bytes(path.read_bytes())
            except OSError:
                continue
        verdict.update(
            state="DONE" if result.complete else "PARTIAL",
            summary=summary, metrics=metrics,
            stop_reason=getattr(result, "stop_reason", None),
            stop_detail=getattr(result, "stop_detail", ""),
            pending_paths=getattr(result, "pending_paths", 0),
            result=store.put_bytes(pickle.dumps(
                result, protocol=pickle.HIGHEST_PROTOCOL)),
            artifacts=artifacts)
    store.put_manifest(f"jobresult-{job_id}", verdict)


@dataclass
class _Running:
    """Book-keeping for one launched worker."""

    proc: multiprocessing.process.BaseProcess
    attempt: int
    cancel_requested: bool = False
    started: float = field(default_factory=time.monotonic)


class Scheduler:
    """Owns the queue, the worker pool, and every job's lifecycle.

    Thread-safe: ``submit``/``cancel``/``get``/``metrics`` may be
    called from any thread (the HTTP handlers do); the asyncio loop
    runs in a background thread started by :meth:`start`.
    """

    def __init__(self, store, config: Optional[SchedulerConfig] = None):
        self.store = store if isinstance(store, ContentStore) \
            else ContentStore(Path(store))
        self.job_store = JobStore(self.store)
        self.config = config or SchedulerConfig()
        self._ctx = multiprocessing.get_context(self.config.mp_context)
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._runnable: Deque[str] = deque()
        self._running: Dict[str, _Running] = {}
        #: in-flight primary by dedup key (fingerprint + budget shape)
        self._inflight: Dict[tuple, str] = {}
        #: coalesced followers by primary job id
        self._followers: Dict[str, List[str]] = {}
        #: DONE job by fingerprint digest (store-served dedup)
        self._done_by_fp: Dict[str, str] = {}
        #: fingerprint digests memoized by spec shape (computing one
        #: builds the whole target netlist)
        self._fp_cache: Dict[tuple, str] = {}
        self.counters = {"submitted": 0, "executed": 0, "coalesced": 0,
                         "cache_served": 0, "retries": 0, "shards": 0,
                         "segment_cache_hits": 0,
                         "segment_cache_misses": 0}
        self._stop_requested = False
        self._graceful = True
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -- submission ----------------------------------------------------------
    def submit(self, spec) -> Job:
        """Queue (or dedup) one submission; returns its :class:`Job`.

        Raises :class:`~repro.service.jobs.JobSpecError` on a bad spec,
        :class:`QuotaExceeded` over quota, :class:`UnknownJob` for a
        ``resume_from`` that does not exist.
        """
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        resume_source: Optional[Job] = None
        if spec.resume_from:
            resume_source = self.get(spec.resume_from)
            if resume_source.state not in ("PARTIAL", "FAILED"):
                raise UnknownJob(
                    f"job {spec.resume_from} is {resume_source.state}, "
                    f"not resumable (PARTIAL/FAILED)")
            # the continuation runs the source's configuration; only
            # service routing fields come from the new submission
            spec = JobSpec.from_dict({
                **resume_source.spec.to_dict(),
                "submitter": spec.submitter,
                "dedup": False,
                "resume_from": spec.resume_from})
        with self._lock:
            self._check_quota(spec.submitter)
            fingerprint = self._fingerprint(spec)
            job = Job.new(spec, fingerprint)
            self.counters["submitted"] += 1
            if resume_source is not None:
                self._prime_resume(job, resume_source)
            elif spec.dedup:
                primary_id = self._inflight.get(spec.dedup_key())
                if primary_id is not None and \
                        not self._jobs[primary_id].terminal:
                    job.coalesced_into = primary_id
                    self._followers.setdefault(primary_id,
                                               []).append(job.job_id)
                    self.counters["coalesced"] += 1
                    self._jobs[job.job_id] = job
                    self.job_store.save(job)
                    return job
                done = self._find_done(fingerprint)
                if done is not None:
                    self._serve_from_store(job, done)
                    self._jobs[job.job_id] = job
                    self.job_store.save(job)
                    return job
            self._jobs[job.job_id] = job
            self._runnable.append(job.job_id)
            if spec.dedup:
                self._inflight[spec.dedup_key()] = job.job_id
            self.job_store.save(job)
            return job

    def _check_quota(self, submitter: str) -> None:
        quota = self.config.quota_jobs
        if quota is None:
            return
        active = sum(1 for job in self._jobs.values()
                     if job.spec.submitter == submitter
                     and not job.terminal)
        if active >= quota:
            raise QuotaExceeded(
                f"submitter {submitter!r} already has {active} active "
                f"job(s); quota is {quota}")

    def _fingerprint(self, spec: JobSpec) -> str:
        key = spec.fingerprint_key()
        digest = self._fp_cache.get(key)
        if digest is None:
            digest = spec.compute_fingerprint()
            self._fp_cache[key] = digest
        return digest

    def _find_done(self, fingerprint: str) -> Optional[Job]:
        job_id = self._done_by_fp.get(fingerprint)
        if job_id is None:
            return None
        job = self._jobs.get(job_id)
        if job is None:
            try:
                job = self.job_store.load(job_id)
            except UnknownJob:
                del self._done_by_fp[fingerprint]
                return None
        if job.state != "DONE" or not job.result_digest or \
                not self.store.has(job.result_digest):
            # gc'd or corrupted result: forget it and run fresh
            self._done_by_fp.pop(fingerprint, None)
            return None
        return job

    def _serve_from_store(self, job: Job, done: Job) -> None:
        """Complete ``job`` immediately from ``done``'s stored result."""
        job.cache_hit = True
        job.coalesced_into = done.job_id
        job.summary = dict(done.summary)
        job.metrics = dict(done.metrics)
        job.result_digest = done.result_digest
        job.artifacts = dict(done.artifacts)
        job.advance("DONE")
        self.counters["cache_served"] += 1

    def _prime_resume(self, job: Job, source: Job) -> None:
        """Seed a resume job's directory from its source's checkpoint."""
        src_ckpt = self.job_store.checkpoint_path(source.job_id)
        job_dir = self.job_store.job_dir(job.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        if src_ckpt.is_file():
            shutil.copyfile(src_ckpt,
                            self.job_store.checkpoint_path(job.job_id))
        elif source.artifacts.get("checkpoint"):
            try:
                blob = self.store.get_bytes(source.artifacts["checkpoint"])
                self.job_store.checkpoint_path(job.job_id).write_bytes(blob)
            except StoreError:
                pass                  # no checkpoint: run from scratch
        src_trace = self.job_store.trace_path(source.job_id)
        if src_trace.is_file():
            shutil.copyfile(src_trace, self.job_store.trace_path(job.job_id))
        job.resume_next = self.job_store.checkpoint_path(
            job.job_id).is_file()
        job.resume_of = source.job_id

    # -- queries -------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return job
        return self.job_store.load(job_id)

    def list_jobs(self) -> List[Job]:
        with self._lock:
            known = dict(self._jobs)
        for job in self.job_store.list_jobs():
            known.setdefault(job.job_id, job)
        return sorted(known.values(), key=lambda j: j.created)

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.05) -> Job:
        """Block until ``job_id`` reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.get(job_id)
            if job.terminal:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state} after {timeout}s")
            time.sleep(poll)

    def metrics(self) -> Dict:
        """The /metrics payload: queue, utilization, dedup, cache."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            hits = self.counters["segment_cache_hits"]
            misses = self.counters["segment_cache_misses"]
            submitted = self.counters["submitted"]
            dedup_hits = (self.counters["coalesced"]
                          + self.counters["cache_served"])
            per_job: Dict[str, Dict] = {}
            recent = sorted(self._jobs.values(), key=lambda j: j.created,
                            reverse=True)[:self.config.metrics_jobs_kept]
            for job in recent:
                per_job[job.job_id] = {
                    "state": job.state,
                    "segments": job.metrics.get("paths_explored", 0),
                    "simulated_cycles":
                        job.metrics.get("simulated_cycles", 0),
                    "cache_hits": job.metrics.get("cache_hits", 0),
                    "cache_misses": job.metrics.get("cache_misses", 0),
                }
            return {
                "queue_depth": len(self._runnable),
                "running": len(self._running),
                "workers": self.config.workers,
                "worker_utilization": (len(self._running)
                                       / max(1, self.config.workers)),
                "jobs_by_state": by_state,
                "counters": dict(self.counters),
                "dedup_hit_ratio": (dedup_hits / submitted
                                    if submitted else 0.0),
                "segment_cache": {
                    "hits": hits, "misses": misses,
                    "hit_ratio": (hits / (hits + misses)
                                  if hits + misses else 0.0)},
                "per_job": per_job,
            }

    # -- cancellation --------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job, or SIGTERM a running one (its governor
        checkpoints and the job ends CANCELLED, frontier intact)."""
        with self._lock:
            job = self.get(job_id)
            self._jobs.setdefault(job.job_id, job)
            if job.terminal:
                return job
            running = self._running.get(job_id)
            if running is not None:
                running.cancel_requested = True
                try:
                    running.proc.terminate()        # SIGTERM, not SIGKILL
                except (OSError, ValueError):
                    pass
                return job
            # queued (or a coalesced follower): settle it immediately
            try:
                self._runnable.remove(job_id)
            except ValueError:
                pass
            if job.coalesced_into:
                followers = self._followers.get(job.coalesced_into, [])
                if job_id in followers:
                    followers.remove(job_id)
            self._release_inflight(job)
            job.advance("CANCELLED")
            self.job_store.save(job)
            return job

    # -- the event loop ------------------------------------------------------
    def start(self) -> "Scheduler":
        """Recover persisted queue state and start the loop thread."""
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self.recover()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-scheduler",
                                        daemon=True)
        self._thread.start()
        self._started.wait(5.0)
        return self

    def stop(self, graceful: bool = True,
             timeout: Optional[float] = 30.0) -> None:
        """Stop dispatching and wind the pool down.

        ``graceful`` SIGTERMs running workers so each checkpoints and
        ends PARTIAL (resumable); otherwise they are killed and their
        jobs settle from whatever checkpoint survives.
        """
        with self._lock:
            self._stop_requested = True
            self._graceful = graceful
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def recover(self) -> None:
        """Rebuild queue state from the store after a restart."""
        with self._lock:
            for job in self.job_store.list_jobs():
                if job.job_id in self._jobs:
                    continue
                if job.state == "DONE" and job.result_digest:
                    self._done_by_fp.setdefault(job.fingerprint,
                                                job.job_id)
                elif job.state == "QUEUED" and not job.coalesced_into:
                    self._jobs[job.job_id] = job
                    self._runnable.append(job.job_id)
                    if job.spec.dedup:
                        self._inflight.setdefault(job.spec.dedup_key(),
                                                  job.job_id)
                elif job.state == "RUNNING":
                    # orphaned by a dead service: settle it now
                    self._jobs[job.job_id] = job
                    if self.job_store.checkpoint_path(
                            job.job_id).is_file():
                        job.stop_reason = "service_restart"
                        job.stop_detail = ("service restarted while the "
                                           "job was running")
                        job.advance("PARTIAL")
                    else:
                        job.error = "service restarted mid-run, " \
                                    "no checkpoint to resume"
                        job.advance("FAILED")
                    self.job_store.save(job)

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._started.set()
        signaled = False
        while True:
            with self._lock:
                stopping = self._stop_requested
                if not stopping:
                    self._fill_slots()
                running = list(self._running.items())
            if stopping and not signaled:
                signaled = True
                for _, entry in running:
                    try:
                        if self._graceful:
                            entry.proc.terminate()
                        else:
                            entry.proc.kill()
                    except (OSError, ValueError):
                        pass
            finished = [(job_id, entry) for job_id, entry in running
                        if not entry.proc.is_alive()]
            for job_id, entry in finished:
                entry.proc.join()
                self._finish(job_id, entry)
            with self._lock:
                if self._stop_requested and not self._running:
                    return
            await asyncio.sleep(self.config.poll_interval)

    def _fill_slots(self) -> None:
        while len(self._running) < self.config.workers and self._runnable:
            job_id = self._runnable.popleft()
            job = self._jobs.get(job_id)
            if job is None or job.state != "QUEUED":
                continue
            self._dispatch(job)

    def _dispatch(self, job: Job) -> None:
        job.attempts += 1
        shard = job.spec.shard_segments or self.config.shard_segments
        proc = self._ctx.Process(
            target=_execute_job,
            args=(str(self.store.root), job.job_id, job.spec.to_dict(),
                  job.resume_next, job.attempts, shard),
            name=f"repro-job-{job.job_id}", daemon=False)
        proc.start()
        self._running[job.job_id] = _Running(proc=proc,
                                             attempt=job.attempts)
        self.counters["executed"] += 1
        job.advance("RUNNING")
        self.job_store.save(job)

    # -- completion ----------------------------------------------------------
    def _finish(self, job_id: str, entry: _Running) -> None:
        with self._lock:
            job = self._jobs[job_id]
            verdict = self._load_verdict(job_id, entry.attempt)
            if verdict is None:
                self._finish_lost_worker(job, entry)
            else:
                self._finish_with_verdict(job, entry, verdict)
            del self._running[job_id]
            if job.terminal:
                self._settle(job)
            self.job_store.save(job)

    def _load_verdict(self, job_id: str,
                      attempt: int) -> Optional[Dict]:
        try:
            verdict = self.store.get_manifest(f"jobresult-{job_id}")
        except StoreError:
            return None
        if not verdict or verdict.get("attempt") != attempt:
            return None               # stale verdict from a prior attempt
        return verdict

    def _finish_with_verdict(self, job: Job, entry: _Running,
                             verdict: Dict) -> None:
        job.summary = dict(verdict.get("summary") or {})
        job.metrics = dict(verdict.get("metrics") or {})
        job.error = str(verdict.get("error", ""))
        job.stop_reason = verdict.get("stop_reason")
        job.stop_detail = str(verdict.get("stop_detail", ""))
        job.pending_paths = int(verdict.get("pending_paths", 0))
        job.result_digest = verdict.get("result")
        job.artifacts = dict(verdict.get("artifacts") or {})
        self.counters["segment_cache_hits"] += \
            job.metrics.get("cache_hits", 0)
        self.counters["segment_cache_misses"] += \
            job.metrics.get("cache_misses", 0)
        state = str(verdict.get("state", "FAILED"))
        if entry.cancel_requested and state != "DONE":
            # the governor turned our SIGTERM into a checkpointed stop;
            # surface it as the cancellation it was
            job.advance("CANCELLED")
            return
        if state == "PARTIAL" and job.stop_reason == "segments" \
                and not entry.cancel_requested \
                and self._shard_should_continue(job):
            # one frontier shard done: back on the deque, at the front,
            # so idle workers steal pending shards before new jobs
            job.shards += 1
            job.resume_next = True
            self.counters["shards"] += 1
            job.advance("QUEUED")
            self._runnable.appendleft(job.job_id)
            return
        job.advance(state)

    def _shard_should_continue(self, job: Job) -> bool:
        shard = job.spec.shard_segments or self.config.shard_segments
        if not shard:
            return False
        explored = job.metrics.get("paths_explored", 0)
        cap = job.spec.max_segments
        return cap is None or explored < cap

    def _finish_lost_worker(self, job: Job, entry: _Running) -> None:
        """No verdict: the worker was killed outright."""
        exitcode = entry.proc.exitcode
        has_ckpt = self.job_store.checkpoint_path(job.job_id).is_file()
        if entry.cancel_requested:
            job.advance("CANCELLED")
            job.error = f"worker terminated before checkpointing " \
                        f"(exit {exitcode})"
            return
        if job.retries < self.config.max_retries:
            job.retries += 1
            job.resume_next = has_ckpt
            self.counters["retries"] += 1
            job.advance("QUEUED")
            self._runnable.appendleft(job.job_id)
            return
        if has_ckpt:
            job.stop_reason = "worker_lost"
            job.stop_detail = (f"worker died (exit {exitcode}) after "
                              f"{job.retries} retries; checkpoint intact")
            job.pending_paths = self._pending_from_checkpoint(job)
            job.advance("PARTIAL")
        else:
            job.error = f"worker died (exit {exitcode}) with no " \
                        f"checkpoint to resume"
            job.advance("FAILED")

    def _pending_from_checkpoint(self, job: Job) -> int:
        try:
            from ..resilience.checkpoint import (decode_run_payload,
                                                 load_checkpoint)
            payload = load_checkpoint(
                self.job_store.checkpoint_path(job.job_id))
            if payload is None:
                return 0
            return len(decode_run_payload(payload)["frontier"])
        except Exception:
            return 0

    def _settle(self, job: Job) -> None:
        """Terminal housekeeping: release dedup slots, pay followers."""
        self._release_inflight(job)
        if job.state == "DONE" and job.result_digest:
            self._done_by_fp[job.fingerprint] = job.job_id
        for follower_id in self._followers.pop(job.job_id, []):
            follower = self._jobs.get(follower_id)
            if follower is None or follower.terminal:
                continue
            follower.summary = dict(job.summary)
            follower.metrics = dict(job.metrics)
            follower.error = job.error
            follower.stop_reason = job.stop_reason
            follower.stop_detail = job.stop_detail
            follower.pending_paths = job.pending_paths
            follower.result_digest = job.result_digest
            follower.artifacts = dict(job.artifacts)
            follower.advance(job.state)
            self.job_store.save(follower)

    def _release_inflight(self, job: Job) -> None:
        key = job.spec.dedup_key()
        if self._inflight.get(key) == job.job_id:
            del self._inflight[key]
