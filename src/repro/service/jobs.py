"""The job model: specs, the state machine, and persistence.

A *job* is one requested co-analysis run.  Its :class:`JobSpec` is the
user-facing configuration (what to run, under which budgets, for whom);
the spec's run-affecting subset maps onto a
:func:`~repro.store.fingerprint.run_fingerprint` digest, which is what
the scheduler dedupes on -- two specs with equal fingerprints request
the same simulation and are interchangeable.

Every job is persisted as a ``job-<id>`` JSON manifest in the
:class:`~repro.store.content.ContentStore` on every state transition
(atomic writes), so the queue survives a service restart: QUEUED jobs
re-enqueue, orphaned RUNNING jobs become resumable PARTIALs, and DONE
jobs keep serving duplicate submissions from the store.

State machine::

    QUEUED --> RUNNING --> DONE | FAILED | CANCELLED | PARTIAL
       |          |
       |          +--> QUEUED      (retry after a lost worker, or the
       |                            next frontier shard of a sharded run)
       +--> CANCELLED | DONE | FAILED | PARTIAL
                                   (cancel while queued; coalesced
                                    followers adopt their primary's
                                    terminal state without running)

DONE / FAILED / CANCELLED / PARTIAL are terminal.  A PARTIAL job is
resumable: ``repro submit --resume <id>`` creates a *new* job that
continues from its checkpoint artifact.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional

from ..coanalysis.frontier import FRONTIER_STRATEGIES
from ..csm import CSM_STRATEGIES
from ..resilience.governor import RunBudget
from ..store import ContentStore, StoreError

#: designs the processors package can build (mirrors the CLI choices)
DESIGNS = ("omsp430", "bm32", "dr5")

JOB_STATES = ("QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED", "PARTIAL")
TERMINAL_STATES = frozenset({"DONE", "FAILED", "CANCELLED", "PARTIAL"})

#: legal state transitions (see the module docstring's diagram)
_TRANSITIONS = {
    "QUEUED": {"RUNNING", "CANCELLED", "DONE", "FAILED", "PARTIAL"},
    "RUNNING": {"DONE", "FAILED", "CANCELLED", "PARTIAL", "QUEUED"},
    "DONE": set(),
    "FAILED": set(),
    "CANCELLED": set(),
    "PARTIAL": set(),
}


class JobSpecError(ValueError):
    """A submitted spec does not describe a runnable job."""


class JobStateError(RuntimeError):
    """An illegal state transition was attempted."""


class UnknownJob(KeyError):
    """No job with that id exists (in memory or in the store)."""

    def __str__(self) -> str:        # KeyError quotes its arg by default
        return str(self.args[0]) if self.args else "unknown job"


@dataclass(frozen=True)
class JobSpec:
    """One requested co-analysis run, as submitted.

    The run-shaped fields (design .. ``use_constraints``) feed the run
    fingerprint; the budget fields govern the execution without changing
    what is computed; ``shard_segments`` slices the run into resumable
    frontier shards; ``submitter``/``dedup``/``resume_from`` are
    service-level routing.
    """

    design: str
    benchmark: str
    csm: str = "uber"
    engine: str = "serial"
    frontier: str = "dfs"
    lanes: Optional[int] = None
    workers: int = 1
    use_constraints: bool = True
    # -- per-job RunBudget quotas ------------------------------------------
    deadline_seconds: Optional[float] = None
    max_rss_mb: Optional[float] = None
    max_frontier: Optional[int] = None
    max_segments: Optional[int] = None
    #: run at most this many segments per worker dispatch; a run that
    #: trips it re-enqueues as a pending frontier shard (work-stealing
    #: unit) instead of ending PARTIAL
    shard_segments: Optional[int] = None
    # -- service routing ----------------------------------------------------
    submitter: str = "anon"
    dedup: bool = True
    #: id of a PARTIAL job whose checkpoint this submission continues
    resume_from: Optional[str] = None

    # -- validation / construction -----------------------------------------
    @classmethod
    def from_dict(cls, raw: Dict) -> "JobSpec":
        if not isinstance(raw, dict):
            raise JobSpecError(f"spec must be a JSON object, "
                               f"not {type(raw).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise JobSpecError(f"unknown spec field(s): "
                               f"{', '.join(unknown)}")
        missing = sorted(name for name in ("design", "benchmark")
                         if not raw.get(name))
        if missing:
            raise JobSpecError(f"missing required spec field(s): "
                               f"{', '.join(missing)}")
        data = dict(raw)
        # resolve run_one's engine default here so equal submissions
        # fingerprint equally no matter how they spelled the default
        if data.get("engine") in (None, ""):
            data["engine"] = ("parallel"
                              if int(data.get("workers") or 1) > 1
                              else "serial")
        spec = cls(**data)
        spec.validate()
        return spec

    def validate(self) -> None:
        from ..reporting.runner import ENGINES
        from ..workloads import WORKLOAD_ORDER
        if self.design not in DESIGNS:
            raise JobSpecError(f"unknown design {self.design!r}; "
                               f"known: {', '.join(DESIGNS)}")
        if self.benchmark not in WORKLOAD_ORDER:
            raise JobSpecError(f"unknown benchmark {self.benchmark!r}; "
                               f"known: {', '.join(WORKLOAD_ORDER)}")
        if self.csm not in CSM_STRATEGIES:
            raise JobSpecError(f"unknown csm strategy {self.csm!r}")
        if self.engine not in ENGINES:
            raise JobSpecError(f"unknown engine {self.engine!r}")
        if self.frontier not in FRONTIER_STRATEGIES:
            raise JobSpecError(f"unknown frontier {self.frontier!r}")
        if self.lanes is not None:
            if self.engine != "batch":
                raise JobSpecError("lanes requires the batch engine")
            if self.lanes <= 0 or self.lanes % 64:
                raise JobSpecError(f"lanes must be a positive multiple "
                                   f"of 64, got {self.lanes}")
        if self.workers < 1:
            raise JobSpecError("workers must be >= 1")
        for name in ("deadline_seconds", "max_rss_mb", "max_frontier",
                     "max_segments", "shard_segments"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise JobSpecError(f"{name} must be positive, "
                                   f"got {value}")

    def to_dict(self) -> Dict:
        return asdict(self)

    # -- derived views -------------------------------------------------------
    def budget(self) -> Optional[RunBudget]:
        """The spec's declarative :class:`RunBudget` (None = unlimited)."""
        budget = RunBudget(deadline_seconds=self.deadline_seconds,
                           max_rss_mb=self.max_rss_mb,
                           max_frontier=self.max_frontier,
                           max_segments=self.max_segments)
        return None if budget.unlimited else budget

    def fingerprint_key(self) -> tuple:
        """The spec fields the run fingerprint depends on (cache key for
        the fingerprint itself -- computing one builds the target)."""
        return (self.design, self.benchmark, self.csm, self.engine,
                self.frontier, self.lanes, self.use_constraints)

    def dedup_key(self) -> tuple:
        """What in-flight coalescing requires to match: the run
        fingerprint inputs *plus* the budget/shard envelope -- a
        deadline-capped submission must not adopt an uncapped run's
        slot, nor vice versa."""
        return self.fingerprint_key() + (
            self.deadline_seconds, self.max_rss_mb, self.max_frontier,
            self.max_segments, self.shard_segments)

    def compute_fingerprint(self) -> str:
        """The run-fingerprint digest this spec maps to (builds the
        target; cache by :meth:`fingerprint_key` where it matters)."""
        from ..reporting.runner import pair_fingerprint
        return pair_fingerprint(
            self.design, self.benchmark,
            strategy=CSM_STRATEGIES[self.csm](),
            use_constraints=self.use_constraints,
            engine=self.engine, frontier=self.frontier,
            lanes=self.lanes).digest


@dataclass
class Job:
    """One submission's lifecycle record (persisted on every change)."""

    job_id: str
    spec: JobSpec
    fingerprint: str
    state: str = "QUEUED"
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    #: worker launches (first dispatch + retries + shard continuations)
    attempts: int = 0
    #: launches lost to a dead worker (bounded by the retry budget)
    retries: int = 0
    #: frontier shards completed so far (sharded runs only)
    shards: int = 0
    #: the next dispatch resumes this job's checkpoint journal
    resume_next: bool = False
    #: primary job this (duplicate) submission coalesced onto
    coalesced_into: Optional[str] = None
    #: True when the result was served from the store without running
    cache_hit: bool = False
    #: PARTIAL job whose checkpoint this job continues
    resume_of: Optional[str] = None
    error: str = ""
    stop_reason: Optional[str] = None
    stop_detail: str = ""
    pending_paths: int = 0
    summary: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)
    #: blob digest of the pickled CoAnalysisResult
    result_digest: Optional[str] = None
    #: blob digests of the run's on-disk artifacts (checkpoint, trace)
    artifacts: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def new(cls, spec: JobSpec, fingerprint: str) -> "Job":
        return cls(job_id=uuid.uuid4().hex[:12], spec=spec,
                   fingerprint=fingerprint, created=time.time())

    # -- state machine -------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def advance(self, state: str) -> None:
        if state not in JOB_STATES:
            raise JobStateError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {state}")
        self.state = state
        now = time.time()
        if state == "RUNNING" and self.started is None:
            self.started = now
        if state in TERMINAL_STATES:
            self.finished = now

    # -- persistence ---------------------------------------------------------
    def to_manifest(self) -> Dict:
        out = {
            "kind": "job",
            "job": self.job_id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "fingerprint": self.fingerprint,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "retries": self.retries,
            "shards": self.shards,
            "resume_next": self.resume_next,
            "coalesced_into": self.coalesced_into,
            "cache_hit": self.cache_hit,
            "resume_of": self.resume_of,
            "error": self.error,
            "stop_reason": self.stop_reason,
            "stop_detail": self.stop_detail,
            "pending_paths": self.pending_paths,
            "summary": self.summary,
            "metrics": self.metrics,
            "result": self.result_digest,
            "artifacts": dict(self.artifacts),
        }
        return out

    @classmethod
    def from_manifest(cls, manifest: Dict) -> "Job":
        spec = JobSpec.from_dict(manifest["spec"])
        job = cls(job_id=str(manifest["job"]), spec=spec,
                  fingerprint=str(manifest["fingerprint"]),
                  state=str(manifest.get("state", "QUEUED")),
                  created=float(manifest.get("created") or 0.0))
        job.started = manifest.get("started")
        job.finished = manifest.get("finished")
        job.attempts = int(manifest.get("attempts", 0))
        job.retries = int(manifest.get("retries", 0))
        job.shards = int(manifest.get("shards", 0))
        job.resume_next = bool(manifest.get("resume_next", False))
        job.coalesced_into = manifest.get("coalesced_into")
        job.cache_hit = bool(manifest.get("cache_hit", False))
        job.resume_of = manifest.get("resume_of")
        job.error = str(manifest.get("error", ""))
        job.stop_reason = manifest.get("stop_reason")
        job.stop_detail = str(manifest.get("stop_detail", ""))
        job.pending_paths = int(manifest.get("pending_paths", 0))
        job.summary = dict(manifest.get("summary") or {})
        job.metrics = dict(manifest.get("metrics") or {})
        job.result_digest = manifest.get("result")
        job.artifacts = dict(manifest.get("artifacts") or {})
        return job

    def public_view(self) -> Dict:
        """The manifest, as the API serves it (identical today; the
        indirection keeps internal fields free to diverge)."""
        return self.to_manifest()


class JobStore:
    """Job persistence on a :class:`ContentStore` (manifests + blobs).

    One manifest per job (``job-<id>``), plus a per-job scratch
    directory (``<root>/jobs/<id>/``) holding the live checkpoint
    journal and JSONL trace while the job runs; at completion those are
    also registered as content-addressed blobs so ``gc`` keeps them
    exactly as long as the job manifest lives.
    """

    def __init__(self, store: ContentStore):
        self.store = store

    # -- layout --------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.store.root / "jobs" / job_id

    def checkpoint_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoint.journal"

    def trace_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "trace.jsonl"

    # -- manifests -----------------------------------------------------------
    def save(self, job: Job) -> None:
        self.store.put_manifest(f"job-{job.job_id}", job.to_manifest())

    def load(self, job_id: str) -> Job:
        try:
            manifest = self.store.get_manifest(f"job-{job_id}")
        except StoreError:
            manifest = None
        if manifest is None or manifest.get("kind") != "job":
            raise UnknownJob(job_id)
        return Job.from_manifest(manifest)

    def list_jobs(self) -> List[Job]:
        jobs: List[Job] = []
        for name in self.store.manifest_names():
            if not name.startswith("job-"):
                continue
            try:
                jobs.append(self.load(name[len("job-"):]))
            except (UnknownJob, JobSpecError, KeyError, ValueError):
                continue              # foreign/corrupt manifest: skip
        jobs.sort(key=lambda j: j.created)
        return jobs

    def load_result(self, job: Job):
        """Unpickle a terminal job's CoAnalysisResult (None if absent
        or unreadable)."""
        import pickle
        if not job.result_digest:
            return None
        try:
            return pickle.loads(self.store.get_bytes(job.result_digest))
        except Exception:
            return None
