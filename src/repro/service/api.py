"""The dependency-free HTTP face of the job service.

:class:`ServiceAPI` wraps a :class:`~repro.service.scheduler.Scheduler`
in a :class:`http.server.ThreadingHTTPServer` -- stdlib only, one
thread per connection, which is plenty for a control plane whose hot
path (a duplicate submission) is a manifest write.  Routes::

    GET  /healthz                  liveness probe
    GET  /metrics                  queue depth, utilization, cache ratios
    GET  /jobs                     all jobs (most recent last)
    POST /jobs                     submit a JobSpec (JSON body)
    GET  /jobs/<id>                one job's manifest
    POST /jobs/<id>/cancel         cancel (SIGTERM if running)
    GET  /jobs/<id>/artifacts      artifact digests + result summary
    GET  /jobs/<id>/trace          the JSONL trace, streamed as written

:class:`ServiceClient` is the matching urllib client the CLI uses, so
``repro submit`` works against any reachable service with no extra
installs on either side.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, List, Optional

from .jobs import JobSpecError, JobStateError, UnknownJob
from .scheduler import QuotaExceeded, Scheduler

#: default TCP port for ``repro serve``
DEFAULT_PORT = 8351


class ServiceError(RuntimeError):
    """A client-side request failed; carries the HTTP status."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.scheduler``."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: A003 -- quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler

    def _send_json(self, payload, status: int = 200) -> None:
        blob = json.dumps(payload, indent=2, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise JobSpecError("empty request body; expected a JSON spec")
        try:
            payload = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as exc:
            raise JobSpecError(f"request body is not JSON: {exc}")
        return payload

    # -- routing -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        try:
            self._route_get()
        except UnknownJob as exc:
            self._send_error_json(404, f"unknown job: {exc}")
        except BrokenPipeError:
            pass
        except Exception as exc:      # noqa: BLE001 -- API boundary
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route_post()
        except JobSpecError as exc:
            self._send_error_json(400, str(exc))
        except QuotaExceeded as exc:
            self._send_error_json(429, str(exc))
        except UnknownJob as exc:
            self._send_error_json(404, f"unknown job: {exc}")
        except JobStateError as exc:
            self._send_error_json(409, str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:      # noqa: BLE001
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def _route_get(self) -> None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            self._send_json({"ok": True})
        elif parts == ["metrics"]:
            self._send_json(self.scheduler.metrics())
        elif parts == ["jobs"]:
            self._send_json({"jobs": [job.public_view() for job
                                      in self.scheduler.list_jobs()]})
        elif len(parts) == 2 and parts[0] == "jobs":
            self._send_json(self.scheduler.get(parts[1]).public_view())
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "artifacts":
            self._get_artifacts(parts[1])
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "trace":
            self._get_trace(parts[1])
        else:
            self._send_error_json(404, f"no route for {self.path}")

    def _route_post(self) -> None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            job = self.scheduler.submit(self._read_body())
            self._send_json(job.public_view(), status=202)
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "cancel":
            self._send_json(self.scheduler.cancel(parts[1]).public_view())
        else:
            self._send_error_json(404, f"no route for {self.path}")

    # -- artifact / trace routes ---------------------------------------------
    def _get_artifacts(self, job_id: str) -> None:
        job = self.scheduler.get(job_id)
        self._send_json({
            "job": job.job_id,
            "state": job.state,
            "result": job.result_digest,
            "artifacts": dict(job.artifacts),
            "summary": dict(job.summary),
            "metrics": dict(job.metrics),
        })

    def _get_trace(self, job_id: str) -> None:
        """Stream the job's JSONL trace, chunked, following a live file
        until the job settles (so a client can tail a running job)."""
        job = self.scheduler.get(job_id)
        path = self.scheduler.job_store.trace_path(job.job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for chunk in self._follow(job_id, path):
                self.wfile.write(b"%x\r\n" % len(chunk))
                self.wfile.write(chunk)
                self.wfile.write(b"\r\n")
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _follow(self, job_id: str, path) -> Iterator[bytes]:
        """Yield complete trace lines; keep following while the job is
        live, stop once it is terminal and the file is drained."""
        offset = 0
        pending = b""
        while True:
            terminal = self.scheduler.get(job_id).terminal
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    data = fh.read()
            except OSError:
                data = b""
            if data:
                offset += len(data)
                pending += data
                head, sep, tail = pending.rpartition(b"\n")
                if sep:
                    yield head + sep
                    pending = tail
            elif terminal:
                if pending:
                    yield pending     # unterminated final line, if any
                return
            else:
                time.sleep(0.1)


class ServiceAPI:
    """Owns the HTTP server; pair with a started scheduler."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, verbose: bool = False):
        self.scheduler = scheduler
        self.server = ThreadingHTTPServer((host, port), _Handler)
        self.server.scheduler = scheduler
        self.server.verbose = verbose
        self.server.daemon_threads = True
        self.host, self.port = self.server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceAPI":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        name="repro-api", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (``repro serve``)."""
        self.server.serve_forever()

    def shutdown(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "ServiceAPI":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()


class ServiceClient:
    """Thin urllib client for the routes above (what the CLI speaks)."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------
    def _request(self, path: str, body: Optional[Dict] = None) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.url + path, data=data,
                                     headers=headers,
                                     method="POST" if body is not None
                                     else "GET")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:          # noqa: BLE001 -- best-effort detail
                detail = ""
            raise ServiceError(detail or f"HTTP {exc.code} on {path}",
                               status=exc.code) from None
        except (urllib.error.URLError, socket.timeout, OSError) as exc:
            raise ServiceError(f"service unreachable at {self.url}: "
                               f"{exc}") from None

    # -- routes --------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("/healthz")

    def metrics(self) -> Dict:
        return self._request("/metrics")

    def submit(self, spec: Dict) -> Dict:
        """POST a spec; an empty-POST body error comes back as 400."""
        return self._request("/jobs", body=dict(spec))

    def job(self, job_id: str) -> Dict:
        return self._request(f"/jobs/{job_id}")

    def jobs(self) -> List[Dict]:
        return list(self._request("/jobs").get("jobs", []))

    def cancel(self, job_id: str) -> Dict:
        return self._request(f"/jobs/{job_id}/cancel", body={})

    def artifacts(self, job_id: str) -> Dict:
        return self._request(f"/jobs/{job_id}/artifacts")

    def trace_lines(self, job_id: str) -> Iterator[Dict]:
        """Stream ``/jobs/<id>/trace``, yielding one parsed event per
        line as the service writes them."""
        req = urllib.request.Request(self.url + f"/jobs/{job_id}/trace")
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout) as resp:
                for raw in resp:
                    line = raw.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise ServiceError(f"HTTP {exc.code} on trace",
                               status=exc.code) from None
        except (urllib.error.URLError, socket.timeout, OSError) as exc:
            raise ServiceError(f"service unreachable at {self.url}: "
                               f"{exc}") from None

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> Dict:
        """Poll until the job is terminal; returns its final manifest."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view.get("state") in ("DONE", "FAILED", "CANCELLED",
                                     "PARTIAL"):
                return view
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(f"job {job_id} still "
                                   f"{view.get('state')} after {timeout}s")
            time.sleep(poll)
