"""Co-analysis job service: queued, observable, deduplicated runs.

The scaling story so far made one run fast (batched lanes), durable
(checkpoints, governor) and addressable (the content store).  This
package turns those runs into a *service*: many tenants submit
(design, benchmark, CSM, engine) specs, a scheduler dedupes and shards
them across supervised worker processes, and every outcome -- including
partial ones -- is a manifest in the store that survives restarts.

* :mod:`repro.service.jobs` -- the :class:`JobSpec`/:class:`Job` model
  and its state machine, persisted through :class:`JobStore`;
* :mod:`repro.service.scheduler` -- the asyncio :class:`Scheduler`:
  fingerprint dedup (in-flight coalescing + store-served results), a
  multiprocessing worker pool with work-stealing over pending frontier
  shards, retry/resume for dead workers;
* :mod:`repro.service.api` -- the dependency-free HTTP API
  (:class:`ServiceAPI`) and :class:`ServiceClient`, behind
  ``repro serve`` / ``repro submit`` / ``repro jobs``.
"""

from .jobs import (JOB_STATES, TERMINAL_STATES, Job, JobSpec, JobSpecError,
                   JobStateError, JobStore, UnknownJob)
from .scheduler import QuotaExceeded, Scheduler, SchedulerConfig
from .api import DEFAULT_PORT, ServiceAPI, ServiceClient, ServiceError

__all__ = [
    "JOB_STATES", "TERMINAL_STATES", "Job", "JobSpec", "JobSpecError",
    "JobStateError", "JobStore", "UnknownJob",
    "QuotaExceeded", "Scheduler", "SchedulerConfig",
    "DEFAULT_PORT", "ServiceAPI", "ServiceClient", "ServiceError",
]
