"""Formal equivalence checking of bespoke netlists (SAT-based).

The bespoke flow (:mod:`repro.bespoke`) deletes logic the symbolic
co-analysis proved unexercisable and re-synthesizes the rest; the
paper's gate-count savings are only meaningful if that transformation
preserves behaviour.  This package discharges the obligation formally:

* :mod:`repro.equiv.cnf` -- Tseitin encoding with structural hashing;
* :mod:`repro.equiv.solver` -- a dependency-free CDCL SAT solver;
* :mod:`repro.equiv.miter` -- miter construction, co-analysis
  assumption injection, bounded sequential unrolling;
* :mod:`repro.equiv.cex` -- counterexample replay through ``CycleSim``;
* :mod:`repro.equiv.mutate` -- seeded mutations that keep the checker
  honest.

Entry points: :func:`check_equivalence` for the programmatic API,
``repro verify`` on the command line, and the ``mode="sat"`` /
``mode="both"`` arguments of
:func:`repro.bespoke.validate.validate_bespoke`.
"""

from .cex import ReplayResult, confirm_counterexample, replay_witness
from .cnf import (CELL_CLAUSES, FALSE_LIT, TRUE_LIT, CnfBuilder,
                  StructuralEncoder, cell_clauses)
from .miter import (DEFAULT_MAX_CONFLICTS, EquivOutcome, Miter, MiterError,
                    build_miter, check_equivalence, csm_state_cubes,
                    profile_assumptions)
from .mutate import (MutatedNetlist, Mutation, MutationError, mutate,
                     mutation_campaign)
from .solver import SAT, UNKNOWN, UNSAT, SolveResult, Solver, solve_cnf

__all__ = [
    "TRUE_LIT", "FALSE_LIT", "CnfBuilder", "StructuralEncoder",
    "CELL_CLAUSES", "cell_clauses",
    "Solver", "SolveResult", "solve_cnf", "SAT", "UNSAT", "UNKNOWN",
    "Miter", "MiterError", "EquivOutcome", "build_miter",
    "check_equivalence", "csm_state_cubes", "profile_assumptions",
    "DEFAULT_MAX_CONFLICTS",
    "ReplayResult", "replay_witness", "confirm_counterexample",
    "Mutation", "MutatedNetlist", "MutationError", "mutate",
    "mutation_campaign",
]
