"""Tseitin encoding of netlists into CNF.

Two layers, deliberately separate:

* :func:`cell_clauses` -- the raw per-cell clause generators.  One
  generator per combinational cell kind in :mod:`repro.netlist.cells`,
  cross-checked exhaustively against the 4-valued evaluation tables in
  :mod:`repro.logic.tables` by the unit suite.  CNF is **binary-only**:
  the clauses characterize the cell's function on known (0/1) inputs,
  which is exactly the fragment a SAT witness ranges over.  The ``X``
  rows of the 4-valued tables have no CNF counterpart -- an ``X`` in the
  co-analysis means "either binary value", and the solver explores both
  sides of that choice explicitly instead of propagating a third value
  (see the equivalence-checking notes in ``docs/TUTORIAL.md``).

* :class:`StructuralEncoder` -- the encoder the miter actually uses.
  It lowers every cell to an AND/XOR/NOT node algebra with constant
  folding and structural hashing, so two netlists encoded through the
  *same* encoder share literals for structurally identical cones.  This
  is what keeps the miter of an original core against its bespoke
  re-synthesis tractable for a CDCL solver: the surviving logic is
  byte-identical on both sides and collapses to shared variables, and
  only genuine differences reach the clause database.

Literals are DIMACS-style signed integers: variable ``v`` is the
positive literal ``v``, its negation ``-v``.  The constant *true* is the
reserved literal :data:`TRUE_LIT` (variable 1, pinned by a unit clause);
*false* is its negation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..netlist.cells import COMB_KINDS, SEQ_KINDS
from ..netlist.netlist import Netlist

#: the reserved constant-true literal (variable 1)
TRUE_LIT = 1
FALSE_LIT = -1

Clause = List[int]


class CnfBuilder:
    """Growable CNF formula with a reserved constant-true variable."""

    def __init__(self):
        self.n_vars = 1                      # var 1 == constant true
        self.clauses: List[Clause] = [[TRUE_LIT]]
        #: optional human-readable labels (var -> name), for debugging
        #: and counterexample rendering
        self.labels: Dict[int, str] = {1: "<true>"}

    def new_var(self, label: Optional[str] = None) -> int:
        self.n_vars += 1
        if label is not None:
            self.labels[self.n_vars] = label
        return self.n_vars

    def add_clause(self, lits: Sequence[int]) -> None:
        self.clauses.append(list(lits))

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)


# -- raw per-cell clause generators -------------------------------------------

def _buf(o: int, ins: Sequence[int]) -> List[Clause]:
    a, = ins
    return [[-o, a], [o, -a]]


def _not(o: int, ins: Sequence[int]) -> List[Clause]:
    a, = ins
    return [[-o, -a], [o, a]]


def _and(o: int, ins: Sequence[int]) -> List[Clause]:
    a, b = ins
    return [[-o, a], [-o, b], [o, -a, -b]]


def _nand(o: int, ins: Sequence[int]) -> List[Clause]:
    a, b = ins
    return [[o, a], [o, b], [-o, -a, -b]]


def _or(o: int, ins: Sequence[int]) -> List[Clause]:
    a, b = ins
    return [[o, -a], [o, -b], [-o, a, b]]


def _nor(o: int, ins: Sequence[int]) -> List[Clause]:
    a, b = ins
    return [[-o, -a], [-o, -b], [o, a, b]]


def _xor(o: int, ins: Sequence[int]) -> List[Clause]:
    a, b = ins
    return [[-o, a, b], [-o, -a, -b], [o, -a, b], [o, a, -b]]


def _xnor(o: int, ins: Sequence[int]) -> List[Clause]:
    a, b = ins
    return [[o, a, b], [o, -a, -b], [-o, -a, b], [-o, a, -b]]


def _mux2(o: int, ins: Sequence[int]) -> List[Clause]:
    # pin order D0, D1, S: o = S ? D1 : D0
    d0, d1, s = ins
    return [[-s, -d1, o], [-s, d1, -o],
            [s, -d0, o], [s, d0, -o],
            # redundant but propagation-strengthening: if D0 == D1 the
            # output is that value regardless of S
            [-d0, -d1, o], [d0, d1, -o]]


def _tie0(o: int, ins: Sequence[int]) -> List[Clause]:
    return [[-o]]


def _tie1(o: int, ins: Sequence[int]) -> List[Clause]:
    return [[o]]


#: clause generator per combinational cell kind; exhaustively
#: cross-checked against :data:`repro.logic.tables.COMB_EVAL`
CELL_CLAUSES: Dict[str, Callable[[int, Sequence[int]], List[Clause]]] = {
    "BUF": _buf,
    "NOT": _not,
    "AND": _and,
    "NAND": _nand,
    "OR": _or,
    "NOR": _nor,
    "XOR": _xor,
    "XNOR": _xnor,
    "MUX2": _mux2,
    "TIE0": _tie0,
    "TIE1": _tie1,
}

assert set(CELL_CLAUSES) == set(COMB_KINDS), \
    "every combinational cell kind needs a CNF clause generator"


def cell_clauses(kind: str, out: int, ins: Sequence[int]) -> List[Clause]:
    """Raw Tseitin clauses asserting ``out == kind(ins)`` (binary)."""
    try:
        gen = CELL_CLAUSES[kind]
    except KeyError:
        raise KeyError(f"no CNF clause generator for cell kind {kind!r}") \
            from None
    return gen(out, ins)


# -- structural encoder -------------------------------------------------------

class StructuralEncoder:
    """Hash-consing AND/XOR node encoder over a :class:`CnfBuilder`.

    All cell kinds are lowered to a two-operator algebra (AND and XOR
    over signed literals, with negation free) with local rewriting:

    * constants fold (``AND(x, true) -> x``, ``XOR(x, false) -> x``, ...);
    * idempotence/annihilation (``AND(x, x) -> x``, ``AND(x, -x) ->
      false``, ``XOR(x, x) -> false``, ``XOR(x, -x) -> true``);
    * commutative operands are canonically ordered, and XOR polarity is
      pulled out of the node (``XOR(-a, b) == -XOR(a, b)``) so all four
      polarity variants share one variable.

    The node cache is keyed on the rewritten operands, so any two cones
    with the same structure -- whichever netlist they came from --
    encode to the *same literal*.  A miter over an original netlist and
    a rewrite of it therefore only spends clauses on real differences.
    """

    def __init__(self, builder: Optional[CnfBuilder] = None):
        self.builder = builder or CnfBuilder()
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}

    # -- node constructors ------------------------------------------------
    def and2(self, a: int, b: int) -> int:
        if a == FALSE_LIT or b == FALSE_LIT or a == -b:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT or a == b:
            return a
        key = (a, b) if a < b else (b, a)
        lit = self._and_cache.get(key)
        if lit is None:
            lit = self.builder.new_var()
            self.builder.clauses.extend(_and(lit, key))
            self._and_cache[key] = lit
        return lit

    def xor2(self, a: int, b: int) -> int:
        if a == b:
            return FALSE_LIT
        if a == -b:
            return TRUE_LIT
        if abs(a) == 1:          # constant operand
            return b if a == FALSE_LIT else -b
        if abs(b) == 1:
            return a if b == FALSE_LIT else -a
        # pull polarity out of the node: XOR(-a, b) == -XOR(a, b)
        sign = 1
        if a < 0:
            a, sign = -a, -sign
        if b < 0:
            b, sign = -b, -sign
        key = (a, b) if a < b else (b, a)
        lit = self._xor_cache.get(key)
        if lit is None:
            lit = self.builder.new_var()
            self.builder.clauses.extend(_xor(lit, key))
            self._xor_cache[key] = lit
        return sign * lit

    def or2(self, a: int, b: int) -> int:
        return -self.and2(-a, -b)

    def mux(self, d0: int, d1: int, s: int) -> int:
        if s == FALSE_LIT:
            return d0
        if s == TRUE_LIT:
            return d1
        if d0 == d1:
            return d0
        return self.or2(self.and2(s, d1), self.and2(-s, d0))

    def iff(self, a: int, b: int) -> int:
        return -self.xor2(a, b)

    # -- cell lowering ----------------------------------------------------
    def cell_lit(self, kind: str, ins: Sequence[int]) -> int:
        """Literal for a combinational cell applied to input literals."""
        if kind == "TIE0":
            return FALSE_LIT
        if kind == "TIE1":
            return TRUE_LIT
        if kind == "BUF":
            return ins[0]
        if kind == "NOT":
            return -ins[0]
        if kind == "AND":
            return self.and2(ins[0], ins[1])
        if kind == "NAND":
            return -self.and2(ins[0], ins[1])
        if kind == "OR":
            return self.or2(ins[0], ins[1])
        if kind == "NOR":
            return -self.or2(ins[0], ins[1])
        if kind == "XOR":
            return self.xor2(ins[0], ins[1])
        if kind == "XNOR":
            return -self.xor2(ins[0], ins[1])
        if kind == "MUX2":
            return self.mux(ins[0], ins[1], ins[2])
        raise KeyError(f"no encoder for cell kind {kind!r}")

    def flop_next_lit(self, kind: str, q: int, ins: Sequence[int]) -> int:
        """Next-state literal of a sequential cell (binary semantics).

        Mirrors :meth:`repro.sim.cycle_sim.CycleSim.clock_edge`: the
        enable mux resolves first, then a synchronous reset overrides.
        """
        if kind == "DFF":
            return ins[0]
        if kind == "DFFR":
            d, r = ins
            return self.and2(d, -r)
        if kind == "DFFE":
            d, e = ins
            return self.mux(q, d, e)
        if kind == "DFFER":
            d, e, r = ins
            return self.and2(self.mux(q, d, e), -r)
        raise KeyError(f"no next-state encoder for cell kind {kind!r}")

    # -- netlist lowering -------------------------------------------------
    def encode_comb(self, netlist: Netlist,
                    cut: Dict[int, int]) -> Dict[int, int]:
        """Encode one netlist's combinational cloud.

        ``cut`` maps net index -> literal for every *cut* net (primary
        inputs and flop outputs); constants injected there fold through
        the whole cone.  Returns the completed net -> literal map for
        all nets in the combinational fanout of the cut.
        """
        lit_of: Dict[int, int] = dict(cut)
        levels = netlist.levelize()
        # ties first within level 0: a level-0 gate may read a tie output
        # (levelization counts only comb-driven edges)
        order = sorted((g for g in netlist.gates if not g.is_sequential),
                       key=lambda g: (levels[g.index],
                                      g.kind not in ("TIE0", "TIE1")))
        for gate in order:
            if gate.output in lit_of:
                continue        # cut nets (incl. assumed constants) win
            ins = []
            for net in gate.inputs:
                lit = lit_of.get(net)
                if lit is None:
                    raise KeyError(
                        f"net {netlist.net_name(net)!r} read by gate "
                        f"{gate.name!r} has no literal; is it an "
                        f"undriven non-input net?")
                ins.append(lit)
            lit_of[gate.output] = self.cell_lit(gate.kind, ins)
        return lit_of


def assumption_literal(value: bool) -> int:
    """The constant literal for an assumed net value."""
    return TRUE_LIT if value else FALSE_LIT


__all__ = [
    "TRUE_LIT", "FALSE_LIT", "CnfBuilder", "CELL_CLAUSES", "cell_clauses",
    "StructuralEncoder", "assumption_literal", "SEQ_KINDS",
]
