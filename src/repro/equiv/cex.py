"""Counterexample replay: confirm SAT witnesses in concrete simulation.

A SAT answer from :func:`~repro.equiv.miter.check_equivalence` claims the
two netlists can disagree.  The claim rests on the encoding being right
*and* on the injected co-analysis assumptions -- either could be wrong,
and a formal tool that reports phantom divergences is worse than none.
So every witness is driven through :class:`~repro.sim.cycle_sim.CycleSim`
(the reference cycle-accurate engine, which shares no code with the CNF
encoder) on both netlists:

* both simulators start from the witness's frame-0 state (flop outputs,
  including the assumed constants the model was built under);
* each frame drives the witness's primary-input values, settles, and
  compares primary outputs; the last frame also clocks both designs and
  compares the matched next-state;
* a reproduced difference is a **confirmed** counterexample -- the
  bespoke netlist really diverges from the original in a state the
  assumptions permit;
* a witness that does *not* replay is flagged: either the co-analysis
  assumptions exclude the witness state in a way the miter could not see
  (an assumption gap worth reporting) or the encoder/solver has a bug.

Memories are outside the netlist (accessed through port primary inputs),
so the replay needs no memory model: the witness already fixes what every
"read" returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..logic.value import Logic
from ..netlist.netlist import Netlist
from ..sim.cycle_sim import CycleSim, compile_netlist
from .miter import Miter


@dataclass
class Divergence:
    """One observed original-vs-bespoke difference during replay."""

    kind: str      # "po" | "state"
    name: str
    frame: int
    original: str  # "0" / "1" / "X"
    bespoke: str

    def __str__(self) -> str:
        return (f"{self.kind}:{self.name}@frame{self.frame} "
                f"original={self.original} bespoke={self.bespoke}")


@dataclass
class ReplayResult:
    """Outcome of replaying one witness through :class:`CycleSim`."""

    confirmed: bool                 # the simulators really diverged
    frames: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    note: str = ""

    @property
    def first(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def summary(self) -> Dict[str, object]:
        return {
            "confirmed": self.confirmed,
            "frames": self.frames,
            "divergences": [str(d) for d in self.divergences[:8]],
            "note": self.note,
        }


def _logic(bit: int) -> Logic:
    return Logic.L1 if bit else Logic.L0


def _fmt(value: Logic) -> str:
    if value is Logic.X:
        return "X"
    return "1" if value is Logic.L1 else "0"


def _load_state(sim: CycleSim, netlist: Netlist,
                state: Dict[str, int]) -> None:
    for name, bit in state.items():
        if netlist.has_net(name):
            sim.set_net(netlist.net_index(name), _logic(bit))


def _drive_inputs(sim: CycleSim, netlist: Netlist,
                  inputs: Dict[str, int]) -> None:
    for name, bit in inputs.items():
        if netlist.has_net(name):
            idx = netlist.net_index(name)
            if idx in netlist.inputs:
                sim.set_net(idx, _logic(bit))


def replay_witness(original: Netlist, bespoke: Netlist,
                   witness: Dict[str, object],
                   unroll: int = 1) -> ReplayResult:
    """Replay a miter witness through both netlists, cycle by cycle.

    ``witness`` is the payload produced by the miter's extraction:
    ``{"state": {net: bit}, "inputs": [{net: bit}, ...]}`` over the
    original netlist's names.  Returns a :class:`ReplayResult` whose
    ``confirmed`` says whether concrete simulation reproduced *any*
    divergence the SAT model promised.
    """
    sim_o = CycleSim(compile_netlist(original), record_activity=False)
    sim_b = CycleSim(compile_netlist(bespoke), record_activity=False)

    state = dict(witness.get("state", {}))
    frames: List[Dict[str, int]] = list(witness.get("inputs", []))
    if not frames:
        frames = [{}]
    frames = frames[:unroll] if unroll else frames

    _load_state(sim_o, original, state)
    _load_state(sim_b, bespoke, state)

    result = ReplayResult(confirmed=False, frames=len(frames))
    matched_flops = [original.net_name(g.output)
                     for g in original.seq_gates
                     if bespoke.has_net(original.net_name(g.output))
                     and any(bg.output ==
                             bespoke.net_index(original.net_name(g.output))
                             for bg in bespoke.seq_gates)]

    for frame, pi_vals in enumerate(frames):
        _drive_inputs(sim_o, original, pi_vals)
        _drive_inputs(sim_b, bespoke, pi_vals)
        sim_o.settle()
        sim_b.settle()
        for oi in original.outputs:
            name = original.net_name(oi)
            if not bespoke.has_net(name):
                continue
            vo = sim_o.get_net(oi)
            vb = sim_b.get_net(bespoke.net_index(name))
            if vo is not vb:
                result.divergences.append(Divergence(
                    "po", name, frame, _fmt(vo), _fmt(vb)))
        sim_o.clock_edge()
        sim_b.clock_edge()
        if frame == len(frames) - 1:
            for name in matched_flops:
                vo = sim_o.get_net(original.net_index(name))
                vb = sim_b.get_net(bespoke.net_index(name))
                if vo is not vb:
                    result.divergences.append(Divergence(
                        "state", name, frame, _fmt(vo), _fmt(vb)))

    result.confirmed = bool(result.divergences)
    if result.confirmed:
        result.note = (f"witness reproduced: {len(result.divergences)} "
                       f"differing observation(s), first {result.first}")
    else:
        result.note = ("witness did NOT replay to a concrete divergence: "
                       "either a co-analysis assumption excludes this "
                       "state in a way the miter cannot express, or the "
                       "CNF encoding/solver has a bug -- investigate")
    return result


def confirm_counterexample(miter: Miter,
                           witness: Dict[str, object]) -> ReplayResult:
    """Replay a witness against the netlists a miter was built from."""
    return replay_witness(miter.original, miter.bespoke, witness,
                          unroll=miter.unroll)


__all__ = ["Divergence", "ReplayResult", "replay_witness",
           "confirm_counterexample"]
