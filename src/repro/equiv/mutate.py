"""Seeded netlist mutations: self-test harness for the equivalence flow.

A formal checker that always answers UNSAT is indistinguishable from one
that checks nothing.  This module injects a *known* bug into a bespoke
netlist -- flip one gate's function, swap a constant tie -- and the test
suite then asserts the full pipeline reacts correctly end to end: the
miter goes SAT, and the extracted witness replays through
:class:`~repro.sim.cycle_sim.CycleSim` to a *concrete* divergence
(:mod:`repro.equiv.cex`).

Mutations are restricted to gates the co-analysis profile marks
*exercisable*: mutating a gate in unexercisable logic changes nothing
observable under the assumptions (the miter stays UNSAT by design --
that is the whole point of bespoke pruning), so such a mutation would
test nothing.  All mutations are deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..netlist.netlist import Netlist
from ..sim.activity import ToggleProfile

#: function substitutions that change behaviour for at least one input
#: pattern (each maps to a kind with the same pin count/order)
_KIND_SWAPS: Dict[str, Sequence[str]] = {
    "AND": ("OR", "XOR", "NAND"),
    "OR": ("AND", "XNOR", "NOR"),
    "NAND": ("NOR", "XNOR", "AND"),
    "NOR": ("NAND", "XOR", "OR"),
    "XOR": ("XNOR", "AND", "OR"),
    "XNOR": ("XOR", "NOR", "NAND"),
    "NOT": ("BUF",),
    "BUF": ("NOT",),
    "TIE0": ("TIE1",),
    "TIE1": ("TIE0",),
}


@dataclass
class Mutation:
    """A recorded single-gate mutation."""

    gate_name: str
    net_name: str          # the gate's output net
    old_kind: str
    new_kind: str
    swapped_inputs: bool = False

    def describe(self) -> str:
        if self.swapped_inputs:
            return (f"{self.gate_name} ({self.net_name}): "
                    f"MUX2 data inputs swapped")
        return (f"{self.gate_name} ({self.net_name}): "
                f"{self.old_kind} -> {self.new_kind}")


class MutationError(Exception):
    """No mutable gate available (e.g. nothing exercisable)."""


def mutable_gates(netlist: Netlist,
                  profile: Optional[ToggleProfile] = None) -> List[int]:
    """Indices of gates whose mutation is observable under the profile.

    Without a profile every combinational gate with a known substitution
    qualifies; with one, only gates driving *exercised* nets do.
    """
    exercised = profile.exercised_nets() if profile is not None else None
    out = []
    for gate in netlist.gates:
        if gate.is_sequential:
            continue
        if gate.kind not in _KIND_SWAPS and gate.kind != "MUX2":
            continue
        # ties are always candidates: their outputs are unexercised by
        # construction (that is why they were tied), but a swapped tie
        # contradicts the assumed constant and is visible wherever the
        # cone reaches an output or flop
        if gate.kind not in ("TIE0", "TIE1") \
                and exercised is not None and not exercised[gate.output]:
            continue
        out.append(gate.index)
    return out


def mutate(netlist: Netlist, seed: int,
           profile: Optional[ToggleProfile] = None) -> "MutatedNetlist":
    """Clone ``netlist`` and flip one gate, chosen by ``seed``.

    The original netlist is untouched.  Returns the mutated clone
    together with the :class:`Mutation` record (for the test report and
    for checking the counterexample blames the right cone).
    """
    candidates = mutable_gates(netlist, profile)
    if not candidates:
        raise MutationError(
            f"netlist {netlist.name!r} has no mutable exercisable gates")
    rng = random.Random(seed)
    target = netlist.gates[rng.choice(candidates)]

    mutant = netlist.clone()
    gate = mutant.gates[target.index]
    if gate.kind == "MUX2":
        d0, d1, s = gate.inputs
        gate.inputs = (d1, d0, s)
        record = Mutation(gate.name, mutant.net_name(gate.output),
                          "MUX2", "MUX2", swapped_inputs=True)
    else:
        new_kind = rng.choice(_KIND_SWAPS[gate.kind])
        record = Mutation(gate.name, mutant.net_name(gate.output),
                          gate.kind, new_kind)
        gate.kind = new_kind
    mutant._mutation_version += 1
    mutant.name = f"{netlist.name}_mut{seed}"
    return MutatedNetlist(mutant, record, seed)


@dataclass
class MutatedNetlist:
    """A mutated clone plus provenance."""

    netlist: Netlist
    mutation: Mutation
    seed: int


def mutation_campaign(original: Netlist, bespoke: Netlist,
                      profile: ToggleProfile, seeds: Sequence[int],
                      unroll: int = 1,
                      max_conflicts: int = 50_000) -> List[Dict[str, object]]:
    """Run the whole detect-and-confirm loop for each seed.

    For every seed: mutate the bespoke netlist, check the miter against
    the original, and (on SAT) replay the witness.  Returns one record
    per seed -- the test suite asserts every record is
    ``detected and confirmed``.
    """
    from .cex import replay_witness
    from .miter import check_equivalence

    records: List[Dict[str, object]] = []
    for seed in seeds:
        mutated = mutate(bespoke, seed, profile)
        outcome = check_equivalence(original, mutated.netlist,
                                    profile=profile, unroll=unroll,
                                    max_conflicts=max_conflicts)
        record: Dict[str, object] = {
            "seed": seed,
            "mutation": mutated.mutation.describe(),
            "status": outcome.status,
            "detected": outcome.status == "SAT",
            "confirmed": False,
        }
        if outcome.status == "SAT" and outcome.witness is not None:
            replay = replay_witness(original, mutated.netlist,
                                    outcome.witness, unroll=unroll)
            record["confirmed"] = replay.confirmed
            record["divergence"] = str(replay.first) if replay.first else ""
        records.append(record)
    return records


__all__ = ["Mutation", "MutatedNetlist", "MutationError",
           "mutable_gates", "mutate", "mutation_campaign"]
