"""Miter construction and equivalence checking (original vs bespoke).

The paper's bespoke flow replaces gates proven unexercisable by symbolic
co-analysis with constant ties and re-synthesizes the survivor logic.
Equivalence between the original and the bespoke netlist therefore only
holds *under the co-analysis assumptions*: the unexercisable nets carry
their observed constants on every reachable cycle.  This module
discharges exactly that obligation with SAT:

* :func:`build_miter` encodes both netlists over one shared
  :class:`~repro.equiv.cnf.StructuralEncoder` -- primary inputs and
  matched flop outputs share variables, the profile's
  unexercisable-constant facts are injected as encode-time constants on
  the original's cut nets and *checked* against the bespoke tie values,
  and every primary-output / next-state pair contributes one XOR to the
  miter.  Structural hashing collapses the (large) identical remainder
  of the two designs, so the CDCL solver only ever sees real
  differences.

* Bounded sequential unrolling: ``unroll=k`` chains ``k`` copies of the
  transition function with fresh primary inputs per frame, comparing
  outputs at every frame and matched next-state at the last.

* Reachable-super-state injection: the CSM's merged states can be
  turned into assumption cubes (:func:`csm_state_cubes`) and checked
  one by one through the solver's assumption interface -- one CNF, many
  initial-state hypotheses.

SAT means the two designs *can* disagree somewhere inside the assumed
cube; the witness is handed to :mod:`repro.equiv.cex` for replay
through :class:`~repro.sim.cycle_sim.CycleSim`.  UNSAT is the proof the
pruning preserved behaviour; UNKNOWN reports a blown conflict budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.netlist import Netlist
from ..sim.activity import ToggleProfile
from .cnf import FALSE_LIT, TRUE_LIT, StructuralEncoder
from .solver import SAT, UNKNOWN, UNSAT, Solver

#: default conflict budget for one equivalence query
DEFAULT_MAX_CONFLICTS = 200_000


class MiterError(Exception):
    """The two netlists cannot be mitered (interface mismatch, ...)."""


@dataclass
class ComparePoint:
    """One output pair the miter compares."""

    kind: str            # "po" | "state"
    name: str            # net name (in the original netlist)
    frame: int
    xor_lit: int         # literal that is true iff the pair differs
    #: True when structural hashing already proved the pair equal
    proved_structurally: bool = False


@dataclass
class Miter:
    """An encoded miter, ready to solve (possibly several times)."""

    original: Netlist
    bespoke: Netlist
    unroll: int
    solver: Solver
    compare_points: List[ComparePoint]
    #: per-frame map: original net index -> literal (frame-0 cut +
    #: everything derived); used for witness extraction
    frame_lits: List[Dict[int, int]]
    #: same for the bespoke netlist
    frame_lits_bespoke: List[Dict[int, int]]
    #: frame-0 cut: original net index -> literal (PIs + flop outputs)
    cut_lits: Dict[int, int]
    #: net indices (original) whose frame-0 value was assumed constant
    assumed_consts: Dict[int, bool]
    n_vars: int = 0
    n_clauses: int = 0
    #: miter disjunction literals actually handed to the solver
    open_points: List[ComparePoint] = field(default_factory=list)

    @property
    def proved_structurally(self) -> int:
        return sum(1 for p in self.compare_points if p.proved_structurally)


@dataclass
class EquivOutcome:
    """Result of one equivalence check."""

    status: str                       # UNSAT / SAT / UNKNOWN
    design: str = ""
    unroll: int = 1
    n_vars: int = 0
    n_clauses: int = 0
    compare_points: int = 0
    proved_structurally: int = 0
    conflicts: int = 0
    decisions: int = 0
    restarts: int = 0
    wall_seconds: float = 0.0
    assumptions_injected: int = 0
    csm_cubes_checked: int = 0
    #: for SAT: the first differing compare point
    diff_point: Optional[str] = None
    #: for SAT: witness values, see :mod:`repro.equiv.cex`
    witness: Optional[dict] = None
    detail: str = ""

    @property
    def equivalent(self) -> bool:
        return self.status == UNSAT

    def summary(self) -> Dict[str, object]:
        out = {
            "status": self.status,
            "design": self.design,
            "unroll": self.unroll,
            "vars": self.n_vars,
            "clauses": self.n_clauses,
            "compare_points": self.compare_points,
            "proved_structurally": self.proved_structurally,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "restarts": self.restarts,
            "assumptions": self.assumptions_injected,
            "csm_cubes": self.csm_cubes_checked,
            "wall_seconds": round(self.wall_seconds, 4),
        }
        if self.diff_point:
            out["diff_point"] = self.diff_point
        if self.detail:
            out["detail"] = self.detail
        return out


def _match_by_name(original: Netlist, bespoke: Netlist,
                   indices: Sequence[int]) -> List[Tuple[int, Optional[int]]]:
    """Map original net indices to bespoke net indices by name."""
    out = []
    for idx in indices:
        name = original.net_name(idx)
        out.append((idx, bespoke.net_index(name)
                    if bespoke.has_net(name) else None))
    return out


def _flop_outputs(netlist: Netlist) -> Dict[str, object]:
    """Flop-output name -> gate, for sequential cells."""
    return {netlist.net_name(g.output): g for g in netlist.seq_gates}


def profile_assumptions(original: Netlist,
                        profile: ToggleProfile) -> Dict[int, bool]:
    """The co-analysis unexercisable-constant facts as net -> value.

    Only *cut* nets (primary inputs and flop outputs) need explicit
    constants -- internal combinational constants then fall out of the
    encoding where they are implied, and are additionally forced for the
    nets the pruner actually tied (so the check mirrors exactly the
    facts the bespoke flow consumed).
    """
    exercised = profile.exercised_nets()
    consts: Dict[int, bool] = {}
    state_nets = set(original.inputs)
    for gate in original.seq_gates:
        state_nets.add(gate.output)
    for net in range(len(original.nets)):
        if exercised[net] or not profile.const_known[net]:
            continue
        consts[net] = bool(profile.const_val[net])
    # restrict to nets that exist (all do) -- keep every constant: the
    # pruning consumed exactly this plane, so the equivalence obligation
    # is stated under the same facts
    return consts


def build_miter(original: Netlist, bespoke: Netlist,
                profile: Optional[ToggleProfile] = None,
                unroll: int = 1,
                assume_consts: Optional[Dict[int, bool]] = None) -> Miter:
    """Encode the miter of ``original`` vs ``bespoke``.

    ``profile`` supplies the unexercisable-constant assumptions (pass
    None for an assumption-free miter, e.g. for pure re-synthesis
    checks).  ``assume_consts`` overrides/extends them (original net
    index -> bool).  ``unroll`` chains that many transition-function
    frames.
    """
    if unroll < 1:
        raise MiterError("unroll must be >= 1")
    enc = StructuralEncoder()
    builder = enc.builder

    consts: Dict[int, bool] = {}
    if profile is not None:
        consts.update(profile_assumptions(original, profile))
    if assume_consts:
        consts.update(assume_consts)

    orig_flops = _flop_outputs(original)
    besp_flops = _flop_outputs(bespoke)

    # -- frame-0 cut -------------------------------------------------------
    cut_orig: Dict[int, int] = {}
    cut_besp: Dict[int, int] = {}
    # primary inputs: shared variables, matched by name
    po_pairs = _match_by_name(original, bespoke, original.outputs)
    pi_pairs = _match_by_name(original, bespoke, original.inputs)
    for oi, bi in pi_pairs:
        name = original.net_name(oi)
        if oi in consts:
            lit = TRUE_LIT if consts[oi] else FALSE_LIT
        else:
            lit = builder.new_var(f"pi:{name}")
        cut_orig[oi] = lit
        if bi is not None:
            cut_besp[bi] = lit
    # bespoke-only inputs would be an interface break
    besp_input_names = {bespoke.net_name(i) for i in bespoke.inputs}
    orig_input_names = {original.net_name(i) for i in original.inputs}
    extra = besp_input_names - orig_input_names
    if extra:
        raise MiterError(f"bespoke netlist adds primary inputs {sorted(extra)[:4]}")

    # flop outputs: matched flops share a state variable; original-only
    # flops (pruned to ties or swept) take their assumed constant, or a
    # free variable if the profile does not constrain them
    matched_flops: List[Tuple[object, object]] = []
    for name, og in orig_flops.items():
        bg = besp_flops.get(name)
        onet = og.output
        if bg is not None:
            lit = (TRUE_LIT if consts[onet] else FALSE_LIT) \
                if onet in consts else builder.new_var(f"state:{name}")
            cut_orig[onet] = lit
            cut_besp[bg.output] = lit
            matched_flops.append((og, bg))
        else:
            if onet in consts:
                cut_orig[onet] = TRUE_LIT if consts[onet] else FALSE_LIT
            else:
                cut_orig[onet] = builder.new_var(f"state:{name}")
    if set(besp_flops) - set(orig_flops):
        raise MiterError("bespoke netlist adds flops not in the original")

    # internal combinational constants (pruned gates): injected on the
    # original side so its cone folds exactly like the pruner folded the
    # bespoke side.  Cut nets already handled above.
    comb_consts: Dict[int, bool] = {
        net: val for net, val in consts.items() if net not in cut_orig}

    compare_points: List[ComparePoint] = []
    frame_lits: List[Dict[int, int]] = []
    frame_lits_besp: List[Dict[int, int]] = []

    state_o = dict(cut_orig)
    state_b = dict(cut_besp)
    for frame in range(unroll):
        if frame > 0:
            # fresh primary inputs per frame (shared across netlists)
            for oi, bi in pi_pairs:
                name = original.net_name(oi)
                if oi in consts:
                    lit = TRUE_LIT if consts[oi] else FALSE_LIT
                else:
                    lit = builder.new_var(f"pi{frame}:{name}")
                state_o[oi] = lit
                if bi is not None:
                    state_b[bi] = lit
        # the co-analysis facts on internal nets are seeded into the cut
        # *before* encoding, so every reader folds through the assumed
        # constant exactly like the pruner folded the bespoke side; the
        # claim "constant on every reachable cycle" applies per frame
        cut_o = dict(state_o)
        for net, val in comb_consts.items():
            cut_o[net] = TRUE_LIT if val else FALSE_LIT
        lits_o = enc.encode_comb(original, cut_o)
        lits_b = enc.encode_comb(bespoke, state_b)
        frame_lits.append(lits_o)
        frame_lits_besp.append(lits_b)

        # compare primary outputs this frame
        for oi, bi in po_pairs:
            name = original.net_name(oi)
            if bi is None:
                raise MiterError(
                    f"primary output {name!r} missing from bespoke netlist")
            x = enc.xor2(lits_o[oi], lits_b[bi])
            compare_points.append(ComparePoint(
                "po", name, frame, x, proved_structurally=(x == FALSE_LIT)))

        # advance matched state (and compare next-state on the last frame)
        next_o: Dict[int, int] = {}
        next_b: Dict[int, int] = {}
        for og, bg in matched_flops:
            name = original.net_name(og.output)
            no = enc.flop_next_lit(
                og.kind, lits_o[og.output],
                [lits_o[n] for n in og.inputs])
            nb = enc.flop_next_lit(
                bg.kind, lits_b[bg.output],
                [lits_b[n] for n in bg.inputs])
            if frame == unroll - 1:
                x = enc.xor2(no, nb)
                compare_points.append(ComparePoint(
                    "state", name, frame, x,
                    proved_structurally=(x == FALSE_LIT)))
            next_o[og.output] = no
            next_b[bg.output] = nb
        if frame < unroll - 1:
            # original-only flops advance too (their cones may feed the
            # miter in later frames through assumed-free nets)
            for name, og in orig_flops.items():
                if og.output in next_o:
                    continue
                if og.output in comb_consts or og.output in consts:
                    nxt = TRUE_LIT if consts.get(
                        og.output, comb_consts.get(og.output)) else FALSE_LIT
                else:
                    nxt = enc.flop_next_lit(
                        og.kind, lits_o[og.output],
                        [lits_o[n] for n in og.inputs])
                next_o[og.output] = nxt
            state_o = dict(state_o)
            state_o.update(next_o)
            state_b = dict(state_b)
            state_b.update(next_b)

    open_points = [p for p in compare_points if p.xor_lit != FALSE_LIT]
    # a compare point whose XOR folded to constant TRUE is an immediate
    # structural inequivalence; keep it -- the unit clause makes the
    # formula trivially SAT and the witness extraction still works
    miter_clause = [p.xor_lit for p in open_points]
    solver = Solver(builder.n_vars, builder.clauses)
    if miter_clause:
        solver.add_clause(miter_clause)

    return Miter(
        original=original, bespoke=bespoke, unroll=unroll, solver=solver,
        compare_points=compare_points, frame_lits=frame_lits,
        frame_lits_bespoke=frame_lits_besp, cut_lits=cut_orig,
        assumed_consts=consts,
        n_vars=builder.n_vars, n_clauses=builder.n_clauses,
        open_points=open_points)


def csm_state_cubes(miter: Miter, states,
                    state_positions: Dict[str, int]) -> List[List[int]]:
    """Turn CSM super-states into assumption cubes over frame-0 state.

    ``states`` is an iterable of :class:`~repro.sim.state.SimState`
    (the CSM repository's merged states); ``state_positions`` maps state
    net names to bitplane positions (from
    :meth:`~repro.coanalysis.target.SymbolicTarget.state_net_positions`).
    Known bits become literals; ``X`` (merged) bits stay free.  Constant
    (assumed) nets are skipped -- they are already encode-time facts.
    """
    by_pos: Dict[int, int] = {}
    for name, pos in state_positions.items():
        if miter.original.has_net(name):
            net = miter.original.net_index(name)
            lit = miter.cut_lits.get(net)
            if lit is not None and abs(lit) != 1:
                by_pos[pos] = lit
    cubes: List[List[int]] = []
    for state in states:
        cube: List[int] = []
        for pos, lit in by_pos.items():
            if bool(state.net_known[pos]):
                cube.append(lit if bool(state.net_val[pos]) else -lit)
        cubes.append(cube)
    return cubes


def check_equivalence(original: Netlist, bespoke: Netlist,
                      profile: Optional[ToggleProfile] = None,
                      unroll: int = 1,
                      max_conflicts: int = DEFAULT_MAX_CONFLICTS,
                      csm_cubes: Optional[Sequence[Sequence[int]]] = None,
                      csm_states=None,
                      state_positions: Optional[Dict[str, int]] = None,
                      miter: Optional[Miter] = None,
                      design: str = "",
                      tracer=None) -> EquivOutcome:
    """Build (or reuse) a miter and decide equivalence.

    With ``csm_cubes`` (literal cubes over an existing ``miter``) or
    ``csm_states`` + ``state_positions`` (CSM ``SimState`` objects,
    translated against the miter built here) the check runs once per
    cube -- the reachable super-state hypotheses -- through the
    solver's assumption interface and reports SAT as soon as any cube
    admits a divergence; otherwise one unconstrained solve.  ``tracer``
    (a :class:`~repro.coanalysis.trace.Tracer`) receives typed
    ``equiv_start`` / ``equiv_outcome`` events.
    """
    t0 = time.perf_counter()
    if miter is None:
        miter = build_miter(original, bespoke, profile=profile,
                            unroll=unroll)
    if csm_states is not None:
        if state_positions is None:
            raise MiterError("csm_states requires state_positions")
        csm_cubes = csm_state_cubes(miter, csm_states, state_positions)
    if tracer is not None:
        tracer.emit("equiv_start", detail=design or original.name,
                    data={"unroll": miter.unroll, "vars": miter.n_vars,
                          "clauses": miter.n_clauses,
                          "compare_points": len(miter.compare_points)})
    if profile is not None:
        # phase priming: prefer the last settled values, so witnesses
        # stay close to states the co-analysis explored
        phases = {}
        for net, lit in miter.cut_lits.items():
            if abs(lit) != 1 and profile.const_known[net]:
                var = abs(lit)
                val = bool(profile.const_val[net])
                phases[var] = val if lit > 0 else not val
        miter.solver.prime_phases(phases)

    outcome = EquivOutcome(
        status=UNSAT, design=design or original.name, unroll=miter.unroll,
        n_vars=miter.n_vars, n_clauses=miter.n_clauses,
        compare_points=len(miter.compare_points),
        proved_structurally=miter.proved_structurally,
        assumptions_injected=len(miter.assumed_consts))

    if not miter.open_points:
        # every compare point collapsed structurally: equivalence holds
        # by construction, no search needed
        outcome.detail = "all compare points proved structurally"
    else:
        cubes = list(csm_cubes) if csm_cubes else [[]]
        status = UNSAT
        for cube in cubes:
            res = miter.solver.solve(cube, max_conflicts=max_conflicts)
            outcome.conflicts += res.conflicts
            outcome.decisions += res.decisions
            outcome.restarts += res.restarts
            outcome.csm_cubes_checked += 1
            if res.status == SAT:
                status = SAT
                outcome.witness = _extract_witness(miter, res)
                outcome.diff_point = _first_diff_point(miter, res)
                break
            if res.status == UNKNOWN:
                status = UNKNOWN
                outcome.detail = (f"conflict budget ({max_conflicts}) "
                                  f"exhausted")
                break
        outcome.status = status
    outcome.wall_seconds = time.perf_counter() - t0
    if tracer is not None:
        tracer.emit("equiv_outcome", outcome=outcome.status,
                    detail=outcome.diff_point or outcome.detail,
                    data={"conflicts": outcome.conflicts,
                          "wall_seconds": round(outcome.wall_seconds, 6),
                          "proved_structurally":
                              outcome.proved_structurally})
    return outcome


def _extract_witness(miter: Miter, res) -> dict:
    """Project a SAT model onto the miter's input space.

    Returns ``{"inputs": [frame -> {net name: bit}], "state": {net
    name: bit}}`` over the *original* netlist's name space; assumed
    constants are included so the replay can start from a complete
    state.
    """
    nl = miter.original
    state: Dict[str, int] = {}
    seq_outputs = {g.output for g in nl.seq_gates}
    for net, lit in miter.cut_lits.items():
        if net in nl.inputs and net not in seq_outputs:
            continue
        state[nl.net_name(net)] = _lit_value(res, lit)
    inputs: List[Dict[str, int]] = []
    for frame in range(miter.unroll):
        vals: Dict[str, int] = {}
        for net in nl.inputs:
            lit = miter.frame_lits[frame].get(net)
            if lit is None:
                lit = miter.cut_lits[net]
            vals[nl.net_name(net)] = _lit_value(res, lit)
        inputs.append(vals)
    return {"state": state, "inputs": inputs}


def _lit_value(res, lit: int) -> int:
    if lit == TRUE_LIT:
        return 1
    if lit == FALSE_LIT:
        return 0
    v = res.value(lit)
    return int(bool(v))


def _first_diff_point(miter: Miter, res) -> Optional[str]:
    for p in miter.compare_points:
        if p.xor_lit == FALSE_LIT:
            continue
        if p.xor_lit == TRUE_LIT or res.value(p.xor_lit):
            return f"{p.kind}:{p.name}@frame{p.frame}"
    return None


__all__ = [
    "Miter", "MiterError", "ComparePoint", "EquivOutcome",
    "build_miter", "check_equivalence", "csm_state_cubes",
    "profile_assumptions", "DEFAULT_MAX_CONFLICTS",
]
