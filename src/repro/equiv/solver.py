"""A dependency-free CDCL SAT solver.

The equivalence subsystem must run wherever the rest of the tool runs --
pure Python, no native solver to ship or link.  This is a compact but
real CDCL implementation:

* two-watched-literal propagation;
* first-UIP conflict analysis with a cheap clause-minimization pass;
* VSIDS-style exponential variable activity with phase saving;
* Luby-sequence restarts;
* LBD-aware learned-clause database reduction;
* an **assumption interface**: :meth:`Solver.solve` takes a cube of
  literals decided before any free decision, so one CNF can be queried
  under many hypotheses (the miter uses this to re-check the same
  unrolling under each CSM super-state without re-encoding);
* a conflict budget, so equivalence checks time out with ``UNKNOWN``
  instead of hanging an analysis pipeline.

Literals are DIMACS-style signed ints (see :mod:`repro.equiv.cnf`).
Variable 0 is unused.  Assumptions are asserted one per decision level
before any free decision, so a conflict whose decision level lies inside
the assumption prefix proves unsatisfiability *under the assumptions*.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"


@dataclass
class SolveResult:
    """Outcome of one :meth:`Solver.solve` call."""

    status: str                                  # SAT / UNSAT / UNKNOWN
    #: var -> bool assignment (only for SAT); vars the search never
    #: touched keep their saved phase, so the model is always total
    model: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0

    def value(self, lit: int) -> Optional[bool]:
        v = self.model.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


class _Clause:
    __slots__ = ("lits", "learned", "lbd", "activity")

    def __init__(self, lits: List[int], learned: bool = False,
                 lbd: int = 0):
        self.lits = lits
        self.learned = learned
        self.lbd = lbd
        self.activity = 0.0


def _luby(x: int) -> int:
    """The reluctant-doubling sequence 1 1 2 1 1 2 4 1 1 2 ... (0-based)."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x = x % size
    return 1 << seq


class Solver:
    """CDCL over DIMACS-style literals."""

    def __init__(self, n_vars: int = 0,
                 clauses: Optional[Iterable[Sequence[int]]] = None):
        self.n_vars = 0
        self.assign: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[_Clause]] = [None]
        self.phase: List[bool] = [False]
        self.activity: List[float] = [0.0]
        self.watches: Dict[int, List[_Clause]] = {}
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self._ok = True              # False once a root conflict is found
        self._order: List = []       # lazy max-activity heap
        self.conflicts_total = 0
        if n_vars:
            self.ensure_vars(n_vars)
        for cl in clauses or ():
            self.add_clause(cl)

    # -- construction -----------------------------------------------------
    def ensure_vars(self, n: int) -> None:
        while self.n_vars < n:
            self.n_vars += 1
            v = self.n_vars
            self.assign.append(None)
            self.level.append(0)
            self.reason.append(None)
            self.phase.append(False)
            self.activity.append(0.0)
            self.watches[v] = []
            self.watches[-v] = []
            heapq.heappush(self._order, (0.0, v))

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a problem clause; returns False when the formula became
        trivially unsatisfiable at the root level."""
        if not self._ok:
            return False
        seen = set()
        out: List[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 is not a valid DIMACS literal")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True          # tautology
            if lit in seen:
                continue
            seen.add(lit)
            val = self._value(lit)
            if val is True and self.level[abs(lit)] == 0:
                return True          # satisfied at root
            if val is False and self.level[abs(lit)] == 0:
                continue             # falsified at root: drop literal
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if self._value(out[0]) is True:
                return True
            if self._value(out[0]) is False:
                self._ok = False
                return False
            self._enqueue(out[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(out)
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: _Clause) -> None:
        self.watches[-clause.lits[0]].append(clause)
        self.watches[-clause.lits[1]].append(clause)

    # -- assignment primitives --------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        v = self.assign[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> None:
        v = abs(lit)
        self.assign[v] = lit > 0
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(lit)

    def _propagate(self) -> Optional[_Clause]:
        """BCP to fixpoint; returns the conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            watchlist = self.watches[lit]
            i = 0
            while i < len(watchlist):
                clause = watchlist[i]
                lits = clause.lits
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) is True:
                    i += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[-lits[1]].append(clause)
                        watchlist[i] = watchlist[-1]
                        watchlist.pop()
                        moved = True
                        break
                if moved:
                    continue
                if self._value(first) is False:
                    self.qhead = len(self.trail)
                    return clause
                self._enqueue(first, clause)
                i += 1
        return None

    # -- VSIDS ------------------------------------------------------------
    def _bump_var(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for u in range(1, self.n_vars + 1):
                self.activity[u] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self._order, (-self.activity[v], v))

    def _pick_branch_var(self) -> Optional[int]:
        while self._order:
            act, v = self._order[0]
            if self.assign[v] is None and -act == self.activity[v]:
                return v
            heapq.heappop(self._order)
        refill = [(-self.activity[v], v)
                  for v in range(1, self.n_vars + 1)
                  if self.assign[v] is None]
        if not refill:
            return None
        heapq.heapify(refill)
        self._order = refill
        return self._order[0][1]

    # -- conflict analysis -------------------------------------------------
    def _analyze(self, conflict: _Clause) -> tuple:
        """First-UIP learning; returns (learnt_lits, backtrack_level).

        ``learnt_lits[0]`` is the asserting literal."""
        learnt: List[int] = [0]
        seen = [False] * (self.n_vars + 1)
        counter = 0
        lit: Optional[int] = None
        reason: Optional[_Clause] = conflict
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)
        while True:
            if reason is not None:
                if reason.learned:
                    reason.activity += self.cla_inc
                for q in reason.lits:
                    if lit is not None and abs(q) == abs(lit):
                        continue     # the implied literal itself
                    v = abs(q)
                    if not seen[v] and self.level[v] > 0:
                        seen[v] = True
                        self._bump_var(v)
                        if self.level[v] >= cur_level:
                            counter += 1
                        else:
                            learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            v = abs(lit)
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            reason = self.reason[v]
        # cheap minimization: drop literals whose reason clause is fully
        # covered by the remaining literals (or root-level facts)
        cached = {abs(q) for q in learnt}
        minimized = [learnt[0]]
        for q in learnt[1:]:
            r = self.reason[abs(q)]
            if r is not None and all(
                    abs(p) in cached or self.level[abs(p)] == 0
                    for p in r.lits if abs(p) != abs(q)):
                continue
            minimized.append(q)
        learnt = minimized
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self.level[abs(learnt[i])] > self.level[abs(
                        learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self.level[abs(learnt[1])]
        return learnt, bt_level

    def _lbd(self, lits: Sequence[int]) -> int:
        return len({self.level[abs(q)] for q in lits})

    def _backtrack(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        for lit in reversed(self.trail[limit:]):
            v = abs(lit)
            self.phase[v] = lit > 0
            self.assign[v] = None
            self.reason[v] = None
            heapq.heappush(self._order, (-self.activity[v], v))
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    def _reduce_db(self) -> None:
        """Drop the less valuable half of the learned clauses."""
        self.learned.sort(key=lambda c: (c.lbd, -c.activity))
        locked = {id(self.reason[abs(lit)]) for lit in self.trail
                  if self.reason[abs(lit)] is not None}
        half = len(self.learned) // 2
        keep: List[_Clause] = []
        for i, clause in enumerate(self.learned):
            if i < half or clause.lbd <= 3 or id(clause) in locked:
                keep.append(clause)
            else:
                for w in (-clause.lits[0], -clause.lits[1]):
                    try:
                        self.watches[w].remove(clause)
                    except ValueError:
                        pass
        self.learned = keep

    # -- phase priming -----------------------------------------------------
    def prime_phases(self, phases: Dict[int, bool]) -> None:
        """Seed saved phases (e.g. with the activity profile's settled
        values) so SAT witnesses stay close to observed states."""
        for var, value in phases.items():
            if 1 <= var <= self.n_vars:
                self.phase[var] = bool(value)

    # -- main search -------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None) -> SolveResult:
        """Search under ``assumptions``; ``UNKNOWN`` when the conflict
        budget runs out.

        Solver state persists between calls: learned clauses and
        activities survive, so repeated queries over the same CNF under
        different assumption cubes get faster, not slower.
        """
        result = SolveResult(status=UNKNOWN)
        assumptions = list(assumptions)
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        self._backtrack(0)
        if not self._ok:
            result.status = UNSAT
            return result
        if self._propagate() is not None:
            self._ok = False
            result.status = UNSAT
            return result
        restart_num = 0
        conflicts_at_restart = 0
        restart_budget = 100 * _luby(restart_num)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                result.conflicts += 1
                self.conflicts_total += 1
                conflicts_at_restart += 1
                if len(self.trail_lim) == 0:
                    self._ok = False
                    result.status = UNSAT
                    return result
                if len(self.trail_lim) <= len(assumptions):
                    # every decision on the trail is an assumption: the
                    # conflict follows from the formula + the cube
                    result.status = UNSAT
                    self._backtrack(0)
                    return result
                learnt, bt_level = self._analyze(conflict)
                self._backtrack(bt_level)
                if len(learnt) == 1:
                    if self._value(learnt[0]) is False:
                        self._ok = False
                        result.status = UNSAT
                        return result
                    if self._value(learnt[0]) is None:
                        self._enqueue(learnt[0], None)
                else:
                    clause = _Clause(learnt, learned=True,
                                     lbd=self._lbd(learnt))
                    self.learned.append(clause)
                    self._watch(clause)
                    self._enqueue(learnt[0], clause)
                self.var_inc /= self.var_decay
                if max_conflicts is not None and \
                        result.conflicts >= max_conflicts:
                    result.status = UNKNOWN
                    self._backtrack(0)
                    return result
                if len(self.learned) > 2000 + 8 * (len(self.clauses)
                                                   ** 0.5):
                    self._reduce_db()
                if conflicts_at_restart >= restart_budget:
                    restart_num += 1
                    result.restarts += 1
                    conflicts_at_restart = 0
                    restart_budget = 100 * _luby(restart_num)
                    self._backtrack(0)
                continue
            result.propagations = len(self.trail)
            # decide the next pending assumption (one per level)
            if len(self.trail_lim) < len(assumptions):
                lit = assumptions[len(self.trail_lim)]
                val = self._value(lit)
                if val is False:
                    result.status = UNSAT
                    self._backtrack(0)
                    return result
                self.trail_lim.append(len(self.trail))
                if val is None:
                    self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var is None:
                result.status = SAT
                result.model = {
                    v: (bool(self.assign[v]) if self.assign[v] is not None
                        else self.phase[v])
                    for v in range(1, self.n_vars + 1)}
                self._backtrack(0)
                return result
            result.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)


def solve_cnf(n_vars: int, clauses: Iterable[Sequence[int]],
              assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None) -> SolveResult:
    """One-shot convenience wrapper."""
    solver = Solver(n_vars, clauses)
    return solver.solve(assumptions, max_conflicts=max_conflicts)


__all__ = ["Solver", "SolveResult", "solve_cnf", "SAT", "UNSAT", "UNKNOWN"]
