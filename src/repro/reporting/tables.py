"""Formatting of the paper's tables from co-analysis results.

* Table 1: benchmark applications (metadata)
* Table 2: target platform characterization (metadata)
* Table 3: gate count analysis (exercisable gates + % reduction)
* Table 4: simulation path and runtime analysis
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from ..coanalysis.results import CoAnalysisResult


def _rule(widths: Sequence[int]) -> str:
    return "+".join("-" * (w + 2) for w in [0, *widths, 0])[1:-1]


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Plain-text grid renderer used by every table/bench report."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [_rule(widths)]
    lines.append("|" + "|".join(f" {h:<{w}} "
                                for h, w in zip(headers, widths)) + "|")
    lines.append(_rule(widths))
    for row in srows:
        lines.append("|" + "|".join(f" {c:<{w}} "
                                    for c, w in zip(row, widths)) + "|")
    lines.append(_rule(widths))
    return "\n".join(lines)


def table1(workloads) -> str:
    """Paper Table 1: benchmark applications."""
    rows = [(w.name, w.description) for w in workloads]
    return render_table(["Benchmark", "Description"], rows)


def table2(metas) -> str:
    """Paper Table 2: target platform characterization."""
    rows = [(m.name, m.isa, m.features) for m in metas]
    return render_table(["Design", "ISA", "Features"], rows)


ResultGrid = Mapping[str, Mapping[str, CoAnalysisResult]]
# results[design][benchmark] -> CoAnalysisResult


def table3(results: ResultGrid, benchmarks: Sequence[str],
           designs: Sequence[str]) -> str:
    """Paper Table 3: exercisable gate count and % reduction."""
    headers = ["Benchmark"]
    for design in designs:
        any_result = next(iter(results[design].values()))
        headers += [f"{design} (tgc {any_result.total_gates})",
                    "% reduction"]
    rows = []
    for bench in benchmarks:
        row: List[object] = [bench]
        for design in designs:
            r = results[design][bench]
            row += [r.exercisable_gate_count,
                    f"{r.reduction_percent:.2f}"]
        rows.append(row)
    return render_table(headers, rows)


def table4(results: ResultGrid, benchmarks: Sequence[str],
           designs: Sequence[str]) -> str:
    """Paper Table 4: paths created / skipped and simulated cycles."""
    headers = ["Benchmark"]
    for design in designs:
        headers += [f"{design} created", "skipped", "cycles"]
    rows = []
    for bench in benchmarks:
        row: List[object] = [bench]
        for design in designs:
            r = results[design][bench]
            row += [r.paths_created, r.paths_skipped, r.simulated_cycles]
        rows.append(row)
    return render_table(headers, rows)


def results_csv(results: ResultGrid, benchmarks: Sequence[str],
                designs: Sequence[str]) -> str:
    """Machine-readable dump of every reported metric."""
    lines = ["design,benchmark,total_gates,exercisable_gates,"
             "reduction_percent,paths_created,paths_skipped,"
             "simulated_cycles,wall_seconds"]
    for design in designs:
        for bench in benchmarks:
            r = results[design][bench]
            lines.append(
                f"{design},{bench},{r.total_gates},"
                f"{r.exercisable_gate_count},{r.reduction_percent:.2f},"
                f"{r.paths_created},{r.paths_skipped},"
                f"{r.simulated_cycles},{r.wall_seconds:.3f}")
    return "\n".join(lines)


def resilience_table(results: Iterable) -> str:
    """Operational health of a set of runs, one row per result.

    Surfaces the run-governor and fault-tolerance story an operator
    needs after a long campaign: whether each run completed or stopped
    early (and why), how many segments were quarantined, retried, or
    survived a serial degradation, and how many checkpoints landed.
    """
    headers = ["Design", "Benchmark", "Complete", "Stop reason",
               "Pending", "Quarantined", "Retries", "Degraded",
               "Checkpoints", "Resumed"]
    rows: List[List[object]] = []
    for r in results:
        checkpoints = sum(1 for e in r.journal if e.kind == "checkpoint")
        rows.append([
            r.design, r.application,
            "yes" if r.complete else "no",
            "-" if r.complete else getattr(r, "stop_reason", "?"),
            getattr(r, "pending_paths", 0),
            r.quarantined_paths,
            r.recovered_failures,
            "yes" if r.degraded_to_serial else "no",
            checkpoints,
            "yes" if r.resumed else "no"])
    return render_table(headers, rows)


def equivalence_table(outcomes: Iterable) -> str:
    """Formal equivalence results, one row per miter check.

    ``outcomes`` holds :class:`repro.equiv.miter.EquivOutcome` objects
    or their ``summary()`` dicts; rendered by ``repro verify`` and the
    validation benchmark.
    """
    headers = ["Design", "Unroll", "Result", "Vars", "Clauses",
               "Compare pts", "Structural", "Conflicts", "Time (s)"]
    rows: List[List[object]] = []
    for o in outcomes:
        s = o.summary() if hasattr(o, "summary") else dict(o)
        rows.append([
            s.get("design", ""), s.get("unroll", 1),
            s.get("status", "?"), s.get("vars", 0), s.get("clauses", 0),
            s.get("compare_points", 0), s.get("proved_structurally", 0),
            s.get("conflicts", 0),
            f"{float(s.get('wall_seconds', 0.0)):.3f}"])
    return render_table(headers, rows)
